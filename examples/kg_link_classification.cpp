// Knowledge-graph relation classification (the paper's Table IV setting):
// pre-train on a Wiki-style KG, then predict relation types of unseen KGs
// in-context. Also demonstrates swapping the retrieval distance metric.
//
//   ./examples/kg_link_classification [--steps=300]

#include <cstdio>

#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "util/cpuid.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  gp::ConfigureIndexFromFlags(flags);
  gp::ConfigureSimdFromFlags(flags);
  const uint64_t seed = flags.GetInt("seed", 17);

  gp::DatasetBundle wiki = gp::MakeWikiSim(0.6, seed);
  gp::GraphPrompterModel model(
      gp::FullGraphPrompterConfig(wiki.graph.feature_dim(), seed));
  gp::PretrainConfig pretrain;
  pretrain.steps = static_cast<int>(flags.GetInt("steps", 300));
  pretrain.ways = 5;
  std::printf("pretraining on %s (%d steps)...\n", wiki.name.c_str(),
              pretrain.steps);
  gp::Pretrain(&model, wiki, pretrain);

  // Evaluate across the three downstream KGs of the paper.
  gp::TablePrinter table({"dataset", "ways", "accuracy %", "±std"});
  const std::vector<gp::DatasetBundle> downstream = {
      gp::MakeConceptNetSim(0.6, seed + 1),
      gp::MakeFb15kSim(0.6, seed + 2),
      gp::MakeNellSim(0.6, seed + 3),
  };
  for (const auto& ds : downstream) {
    for (int ways : {5, 10}) {
      if (ways > ds.num_classes) continue;
      gp::EvalConfig eval;
      eval.ways = ways;
      eval.shots = 3;
      eval.num_queries = 60;
      eval.trials = 3;
      eval.seed = seed + ways;
      const auto result = gp::EvaluateInContext(model, ds, eval);
      table.AddRow({ds.name, std::to_string(ways),
                    gp::TablePrinter::Num(result.accuracy_percent.mean),
                    gp::TablePrinter::Num(result.accuracy_percent.std)});
    }
  }
  std::printf("\nGraphPrompter in-context relation classification:\n");
  table.Print();

  // The retrieval metric is pluggable (Sec. IV-B2).
  std::printf("\ndistance-metric sweep on %s (5-way):\n",
              downstream[1].name.c_str());
  for (gp::DistanceMetric metric :
       {gp::DistanceMetric::kCosine, gp::DistanceMetric::kEuclidean,
        gp::DistanceMetric::kManhattan}) {
    gp::GraphPrompterConfig config =
        gp::FullGraphPrompterConfig(wiki.graph.feature_dim(), seed);
    config.metric = metric;
    gp::GraphPrompterModel variant(config);
    gp::Pretrain(&variant, wiki, pretrain);
    gp::EvalConfig eval;
    eval.ways = 5;
    eval.num_queries = 40;
    eval.trials = 2;
    const auto result = gp::EvaluateInContext(variant, downstream[1], eval);
    std::printf("  %-10s %.2f%%\n", gp::DistanceMetricName(metric),
                result.accuracy_percent.mean);
  }
  return 0;
}
