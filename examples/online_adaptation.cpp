// Online test-time adaptation with the Prompt Augmenter (Sec. IV-C): shows
// how the LFU cache of pseudo-labelled queries lifts accuracy when the
// downstream task has many more classes than pre-training episodes, and
// how cache size trades off (Fig. 5's shape).
//
// Also demonstrates the fault-tolerance surface: inputs and config are
// validated at the pipeline boundary, and --fault=<spec> (or GP_FAULT)
// injects deterministic faults whose recoveries are reported as
// degradation counters.
//
//   ./examples/online_adaptation [--steps=300] [--ways=20]
//                                [--fault=embed_nan=0.2,seed=7]
//                                [--telemetry=telemetry.json]
//                                [--trace=trace.json]

#include <cstdio>

#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "util/fault.h"
#include "util/cpuid.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  gp::ConfigureIndexFromFlags(flags);
  gp::ConfigureSimdFromFlags(flags);
  const uint64_t seed = flags.GetInt("seed", 23);
  const int ways = static_cast<int>(flags.GetInt("ways", 20));
  CHECK_OK(gp::ConfigureGlobalFaultInjection(flags.GetString("fault", "")));
  gp::ConfigureObservability(flags.GetString("telemetry", ""),
                             flags.GetString("trace", ""));

  gp::DatasetBundle wiki = gp::MakeWikiSim(0.6, seed);
  gp::DatasetBundle nell = gp::MakeNellSim(0.6, seed + 1);
  // Boundary validation: a malformed graph fails here with a typed error
  // instead of crashing mid-episode.
  CHECK_OK(wiki.graph.Validate());
  CHECK_OK(nell.graph.Validate());

  // Pre-train once; reuse the weights across augmenter settings (the
  // augmenter is a pure inference-time mechanism).
  gp::GraphPrompterConfig base =
      gp::FullGraphPrompterConfig(wiki.graph.feature_dim(), seed);
  CHECK_OK(gp::Validate(base));
  gp::GraphPrompterModel model(base);
  gp::PretrainConfig pretrain;
  pretrain.steps = static_cast<int>(flags.GetInt("steps", 300));
  pretrain.ways = 5;
  std::printf("pretraining on %s (5-way episodes, %d steps)...\n",
              wiki.name.c_str(), pretrain.steps);
  gp::Pretrain(&model, wiki, pretrain);
  const std::string ckpt = "/tmp/graphprompter_online_demo.ckpt";
  CHECK_OK(gp::SaveModule(model, ckpt));

  gp::EvalConfig eval;
  eval.ways = ways;
  eval.shots = 3;
  eval.num_queries = 80;
  eval.trials = 3;
  eval.seed = seed + 5;

  gp::TablePrinter table({"cache size c", "accuracy %", "±std"});
  gp::DegradationStats degradation;
  for (int cache : {0, 1, 3, 5, 10}) {
    gp::GraphPrompterConfig config = base;
    config.use_augmenter = cache > 0;
    config.augmenter.cache_capacity = cache;
    CHECK_OK(gp::Validate(config));
    gp::GraphPrompterModel variant(config);
    CHECK_OK(gp::LoadModule(&variant, ckpt));  // same pretrained weights
    const auto result = gp::EvaluateInContext(variant, nell, eval);
    degradation.Merge(result.degradation);
    table.AddRow({cache == 0 ? "off" : std::to_string(cache),
                  gp::TablePrinter::Num(result.accuracy_percent.mean),
                  gp::TablePrinter::Num(result.accuracy_percent.std)});
  }
  std::printf("\n%d-way online adaptation on %s (pretrained 5-way):\n", ways,
              nell.name.c_str());
  table.Print();
  std::printf(
      "\nThe cache inserts confident pseudo-labelled test queries as extra\n"
      "prompts (LFU replacement); a small cache helps, an oversized one\n"
      "admits noisy pseudo-labels (paper Fig. 5 peaks at c=3).\n");
  std::printf("\ndegradation events across all runs:\n%s",
              degradation.ToString().c_str());

  // End-of-run telemetry summary: per-stage span timings, cache hit rate,
  // fault-injector activations, registry-backed degradation counters.
  std::printf("\n%s", gp::TelemetrySummary(gp::Telemetry().Snapshot()).c_str());
  CHECK_OK(gp::ExportConfiguredObservability());
  return 0;
}
