// Quickstart: build a small graph, pre-train GraphPrompter on it, and make
// in-context predictions on a second graph with different classes — all in
// ~60 lines of user code.
//
//   ./examples/quickstart [--steps=200] [--seed=1]
//                         [--telemetry=telemetry.json] [--trace=trace.json]

#include <cstdio>

#include "baselines/prodigy.h"
#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "obs/export.h"
#include "util/cpuid.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  gp::ConfigureIndexFromFlags(flags);
  gp::ConfigureSimdFromFlags(flags);
  const uint64_t seed = flags.GetInt("seed", 1);
  gp::ConfigureObservability(flags.GetString("telemetry", ""),
                             flags.GetString("trace", ""));

  // 1. Datasets. MakeMagSim / MakeArxivSim generate citation-style graphs
  //    sharing a semantic feature space but with disjoint label sets; any
  //    gp::Graph + gp::MakeBundleFromGraph works the same way.
  gp::DatasetBundle pretrain_ds = gp::MakeMagSim(0.5, seed);
  gp::DatasetBundle downstream = gp::MakeArxivSim(0.5, seed + 1);
  std::printf("pretraining graph: %s\n",
              pretrain_ds.graph.DebugString().c_str());
  std::printf("downstream graph:  %s\n\n",
              downstream.graph.DebugString().c_str());

  // 2. Model: the full GraphPrompter (Prompt Generator + Selector +
  //    Augmenter over a GraphSAGE encoder and attention task graph).
  gp::GraphPrompterConfig config = gp::FullGraphPrompterConfig(
      pretrain_ds.graph.feature_dim(), seed + 2);
  gp::GraphPrompterModel model(config);
  std::printf("model parameters: %lld\n",
              static_cast<long long>(model.NumParameters()));

  // 3. Pre-train once with the Neighbor-Matching + Multi-Task objectives.
  gp::PretrainConfig pretrain;
  pretrain.steps = static_cast<int>(flags.GetInt("steps", 200));
  pretrain.ways = 5;
  pretrain.verbose = true;
  const auto curves = gp::Pretrain(&model, pretrain_ds, pretrain);
  std::printf("final pretraining loss: %.3f (train acc %.1f%%)\n\n",
              curves.loss.back(), curves.train_accuracy.back());

  // 4. In-context evaluation on the new graph: no gradient updates, just
  //    3 prompt examples per class.
  gp::EvalConfig eval;
  eval.ways = 5;
  eval.shots = 3;
  eval.num_queries = 60;
  eval.trials = 3;
  eval.seed = seed + 3;
  const auto ours = gp::EvaluateInContext(model, downstream, eval);

  // Compare with the Prodigy baseline (random prompt selection).
  gp::GraphPrompterConfig prodigy_config =
      gp::ProdigyConfig(pretrain_ds.graph.feature_dim(), seed + 2);
  gp::GraphPrompterModel prodigy(prodigy_config);
  gp::Pretrain(&prodigy, pretrain_ds, pretrain);
  const auto baseline = gp::EvaluateInContext(prodigy, downstream, eval);

  std::printf("5-way 3-shot in-context accuracy on %s:\n",
              downstream.name.c_str());
  std::printf("  Prodigy (random prompts):  %.2f%% ±%.2f\n",
              baseline.accuracy_percent.mean, baseline.accuracy_percent.std);
  std::printf("  GraphPrompter (ours):      %.2f%% ±%.2f\n",
              ours.accuracy_percent.mean, ours.accuracy_percent.std);

  // 5. End-of-run telemetry: stage timings and pipeline counters collected
  //    by the observability registry while the steps above ran.
  std::printf("\n%s", gp::TelemetrySummary(gp::Telemetry().Snapshot()).c_str());
  CHECK_OK(gp::ExportConfiguredObservability());
  return 0;
}
