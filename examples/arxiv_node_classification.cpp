// Node-classification scenario (the paper's Table III setting): pre-train
// on a large citation graph, then classify papers of a *different* citation
// graph in-context, sweeping the number of classes (ways).
//
//   ./examples/arxiv_node_classification [--steps=300] [--queries=60]

#include <cstdio>

#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "util/cpuid.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  gp::ConfigureIndexFromFlags(flags);
  gp::ConfigureSimdFromFlags(flags);
  const uint64_t seed = flags.GetInt("seed", 7);

  gp::DatasetBundle mag = gp::MakeMagSim(0.7, seed);
  gp::DatasetBundle arxiv = gp::MakeArxivSim(0.7, seed + 1);

  gp::GraphPrompterModel model(
      gp::FullGraphPrompterConfig(mag.graph.feature_dim(), seed));
  gp::PretrainConfig pretrain;
  pretrain.steps = static_cast<int>(flags.GetInt("steps", 300));
  pretrain.ways = 5;
  std::printf("pretraining on %s (%d steps)...\n", mag.name.c_str(),
              pretrain.steps);
  gp::Pretrain(&model, mag, pretrain);

  gp::TablePrinter table({"ways", "accuracy %", "±std", "ms/query"});
  for (int ways : {3, 5, 10, 20, 40}) {
    gp::EvalConfig eval;
    eval.ways = ways;
    eval.shots = 3;
    eval.num_queries = static_cast<int>(flags.GetInt("queries", 60));
    eval.trials = 3;
    eval.seed = seed + ways;
    const auto result = gp::EvaluateInContext(model, arxiv, eval);
    table.AddRow({std::to_string(ways),
                  gp::TablePrinter::Num(result.accuracy_percent.mean),
                  gp::TablePrinter::Num(result.accuracy_percent.std),
                  gp::TablePrinter::Num(result.ms_per_query, 1)});
  }
  std::printf("\nGraphPrompter in-context node classification on %s:\n",
              arxiv.name.c_str());
  table.Print();
  return 0;
}
