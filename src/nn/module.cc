#include "nn/module.h"

namespace gp {

Tensor Module::RegisterParameter(const std::string& name, Tensor tensor) {
  tensor.set_requires_grad(true);
  params_.emplace_back(name, tensor);
  return tensor;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : params_) out.push_back(t);
  for (const auto& [name, child] : children_) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [name, t] : params_) out.emplace_back(name, t);
  for (const auto& [name, child] : children_) {
    for (const auto& [sub_name, t] : child->NamedParameters()) {
      out.emplace_back(name + "/" + sub_name, t);
    }
  }
  return out;
}

void Module::ZeroGrad() {
  for (auto& t : Parameters()) t.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& t : Parameters()) total += t.size();
  return total;
}

}  // namespace gp
