#include "nn/optimizer.h"

#include <cmath>

namespace gp {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

float Optimizer::ClipGradNorm(float max_norm) {
  double total = 0.0;
  for (const auto& p : params_) {
    for (float g : p.grad()) total += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      for (float& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, float learning_rate, float momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  learning_rate_ = learning_rate;
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    velocity_[i].assign(params_[i].size(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& data = p.mutable_data();
    const auto& grad = p.grad();
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      if (momentum_ > 0.0f) {
        vel[j] = momentum_ * vel[j] + grad[j];
        data[j] -= learning_rate_ * vel[j];
      } else {
        data[j] -= learning_rate_ * grad[j];
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float learning_rate, float beta1,
           float beta2, float eps, float weight_decay,
           bool decoupled_weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled_weight_decay) {
  learning_rate_ = learning_rate;
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].size(), 0.0f);
    v_[i].assign(params_[i].size(), 0.0f);
  }
}

void Adam::Step() {
  ++step_count_;
  const float bias1 =
      1.0f - std::pow(beta1_, static_cast<float>(step_count_));
  const float bias2 =
      1.0f - std::pow(beta2_, static_cast<float>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) continue;
    auto& data = p.mutable_data();
    const auto& grad = p.grad();
    auto& m = m_[i];
    auto& v = v_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      float g = grad[j];
      if (!decoupled_ && weight_decay_ > 0.0f) g += weight_decay_ * data[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      float update = m_hat / (std::sqrt(v_hat) + eps_);
      if (decoupled_ && weight_decay_ > 0.0f) {
        update += weight_decay_ * data[j];
      }
      data[j] -= learning_rate_ * update;
    }
  }
}

}  // namespace gp
