// Fully-connected layer: y = x W + b.

#ifndef GRAPHPROMPTER_NN_LINEAR_H_
#define GRAPHPROMPTER_NN_LINEAR_H_

#include "nn/module.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {

// A dense affine map. Weights are Xavier-initialised; bias starts at zero.
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng* rng, bool use_bias = true);

  // x: (N x in) -> (N x out).
  Tensor Forward(const Tensor& x) const;

  // relu(x W + b) in one fused kernel (see LinearRelu in tensor/ops.h);
  // bitwise identical to Relu(Forward(x)).
  Tensor ForwardRelu(const Tensor& x) const;

  int in_features() const { return in_features_; }
  int out_features() const { return out_features_; }

  const Tensor& weight() const { return weight_; }
  const Tensor& bias() const { return bias_; }

 private:
  int in_features_;
  int out_features_;
  bool use_bias_;
  Tensor weight_;  // (in x out)
  Tensor bias_;    // (1 x out)
};

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_LINEAR_H_
