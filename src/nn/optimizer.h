// First-order optimizers: SGD (with momentum), Adam, AdamW.
//
// The paper pre-trains with AdamW (lr 1e-3, weight decay 1e-3, Sec. V-A4);
// SGD and Adam are provided for the ablation/baseline configurations.

#ifndef GRAPHPROMPTER_NN_OPTIMIZER_H_
#define GRAPHPROMPTER_NN_OPTIMIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace gp {

// Interface shared by all optimizers. Parameters are captured at
// construction; Step() applies one update from the accumulated gradients.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  virtual void Step() = 0;

  // Zeroes all parameter gradients.
  void ZeroGrad();

  // Rescales gradients so their global L2 norm is at most `max_norm`.
  // Returns the pre-clip norm.
  float ClipGradNorm(float max_norm);

  void set_learning_rate(float lr) { learning_rate_ = lr; }
  float learning_rate() const { return learning_rate_; }

 protected:
  std::vector<Tensor> params_;
  float learning_rate_ = 1e-3f;
};

// Vanilla SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float learning_rate, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

// Adam (Kingma & Ba). `decoupled_weight_decay=false` gives classic Adam with
// L2-in-gradient decay; AdamW below uses the decoupled form.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float learning_rate, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f,
       bool decoupled_weight_decay = false);

  void Step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  bool decoupled_;
  int64_t step_count_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// AdamW: Adam with decoupled weight decay — the paper's pretraining
// optimizer (lr = 1e-3, weight decay = 1e-3).
class AdamW : public Adam {
 public:
  AdamW(std::vector<Tensor> params, float learning_rate = 1e-3f,
        float weight_decay = 1e-3f, float beta1 = 0.9f, float beta2 = 0.999f,
        float eps = 1e-8f)
      : Adam(std::move(params), learning_rate, beta1, beta2, eps,
             weight_decay, /*decoupled_weight_decay=*/true) {}
};

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_OPTIMIZER_H_
