// Binary checkpointing of module parameters.
//
// Format: magic, count, then for each parameter: name length, name bytes,
// rows, cols, float32 data. Loading matches by name and checks shapes, so a
// checkpoint can be restored into a freshly constructed model.

#ifndef GRAPHPROMPTER_NN_SERIALIZE_H_
#define GRAPHPROMPTER_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace gp {

// Writes every named parameter of `module` to `path`.
Status SaveModule(const Module& module, const std::string& path);

// Restores parameters from `path` into `module`. Every parameter of
// `module` must be present in the file with a matching shape.
Status LoadModule(Module* module, const std::string& path);

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_SERIALIZE_H_
