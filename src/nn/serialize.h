// Binary checkpointing of module parameters.
//
// Format: an integrity frame [magic u32][version u32][payload][crc32 u32]
// (util/checksum.h) whose payload is: count, then for each parameter: name
// length, name bytes, rows, cols, float32 data. Loading matches by name and
// checks shapes, so a checkpoint can be restored into a freshly constructed
// model. Corruption is reported as a typed error instead of garbage
// weights: kDataLoss for truncation or a CRC mismatch, kInvalidArgument for
// a wrong magic or non-finite parameter values, kFailedPrecondition for an
// unsupported version.

#ifndef GRAPHPROMPTER_NN_SERIALIZE_H_
#define GRAPHPROMPTER_NN_SERIALIZE_H_

#include <string>

#include "nn/module.h"
#include "util/status.h"

namespace gp {

// Writes every named parameter of `module` to `path`.
Status SaveModule(const Module& module, const std::string& path);

// Restores parameters from `path` into `module`. Every parameter of
// `module` must be present in the file with a matching shape.
Status LoadModule(Module* module, const std::string& path);

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_SERIALIZE_H_
