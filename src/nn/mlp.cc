#include "nn/mlp.h"

#include "tensor/ops.h"

namespace gp {

Tensor ApplyActivation(const Tensor& x, Activation activation) {
  switch (activation) {
    case Activation::kRelu:
      return Relu(x);
    case Activation::kTanh:
      return Tanh(x);
    case Activation::kSigmoid:
      return Sigmoid(x);
    case Activation::kLeakyRelu:
      return LeakyRelu(x);
    case Activation::kIdentity:
      return x;
  }
  return x;
}

Mlp::Mlp(const std::vector<int>& dims, Rng* rng, Activation activation)
    : activation_(activation) {
  CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("layer" + std::to_string(i), layers_.back().get());
  }
}

Tensor Mlp::Forward(const Tensor& x) const {
  Tensor h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const bool hidden = i + 1 < layers_.size();
    if (hidden && activation_ == Activation::kRelu) {
      // Hot path: hidden relu layers skip the intermediate pre-activation
      // tensor entirely.
      h = layers_[i]->ForwardRelu(h);
    } else {
      h = layers_[i]->Forward(h);
      if (hidden) h = ApplyActivation(h, activation_);
    }
  }
  return h;
}

}  // namespace gp
