#include "nn/serialize.h"

#include <cmath>
#include <cstdint>
#include <map>

#include "util/checksum.h"

namespace gp {
namespace {

constexpr uint32_t kMagic = 0x47505031;  // "GPP1"
// v1 was the footer-less legacy layout; v2 adds the integrity frame
// (version + CRC32) around the same parameter payload.
constexpr uint32_t kVersion = 2;

}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  const auto named = module.NamedParameters();
  PayloadWriter payload;
  payload.WriteU32(static_cast<uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    payload.WriteU32(static_cast<uint32_t>(name.size()));
    payload.WriteBytes(name.data(), name.size());
    payload.WriteU32(static_cast<uint32_t>(tensor.rows()));
    payload.WriteU32(static_cast<uint32_t>(tensor.cols()));
    payload.WriteBytes(tensor.data().data(), tensor.size() * sizeof(float));
  }
  return WriteFramedFile(path, kMagic, kVersion, payload.payload());
}

Status LoadModule(Module* module, const std::string& path) {
  GP_ASSIGN_OR_RETURN(
      FramedPayload framed,
      ReadFramedFile(path, kMagic, kVersion, kVersion, "checkpoint"));
  PayloadReader reader(framed.payload);
  uint32_t count = 0;
  if (!reader.ReadU32(&count)) {
    return DataLossError("truncated checkpoint: " + path);
  }
  std::map<std::string, std::pair<std::pair<int, int>, std::vector<float>>>
      stored;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!reader.ReadU32(&name_len)) {
      return DataLossError("truncated checkpoint: " + path);
    }
    std::string name;
    if (!reader.ReadString(&name, name_len)) {
      return DataLossError("truncated parameter name: " + path);
    }
    if (!reader.ReadU32(&rows) || !reader.ReadU32(&cols)) {
      return DataLossError("truncated checkpoint: " + path);
    }
    const size_t elems = static_cast<size_t>(rows) * cols;
    if (elems * sizeof(float) > reader.remaining()) {
      return DataLossError("truncated parameter data for '" + name +
                           "': " + path);
    }
    std::vector<float> data(elems);
    if (!reader.ReadBytes(data.data(), elems * sizeof(float))) {
      return DataLossError("truncated checkpoint: " + path);
    }
    // Weight hygiene: a checkpoint written after divergent training (or
    // corrupted before the CRC was computed) must not silently poison
    // every downstream embedding.
    for (float v : data) {
      if (!std::isfinite(v)) {
        return InvalidArgumentError("non-finite values in parameter '" +
                                    name + "': " + path);
      }
    }
    stored[name] = {{static_cast<int>(rows), static_cast<int>(cols)},
                    std::move(data)};
  }
  for (auto& [name, tensor] : module->NamedParameters()) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return NotFoundError("parameter missing from checkpoint: " + name);
    }
    const auto& [shape, data] = it->second;
    if (shape.first != tensor.rows() || shape.second != tensor.cols()) {
      return InvalidArgumentError("shape mismatch for parameter: " + name);
    }
    tensor.mutable_data() = data;
  }
  return Status::Ok();
}

}  // namespace gp
