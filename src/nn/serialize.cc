#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <map>

namespace gp {
namespace {

constexpr uint32_t kMagic = 0x47505031;  // "GPP1"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveModule(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return InternalError("cannot open checkpoint for writing: " + path);
  }
  const auto named = module.NamedParameters();
  WriteU32(out, kMagic);
  WriteU32(out, static_cast<uint32_t>(named.size()));
  for (const auto& [name, tensor] : named) {
    WriteU32(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WriteU32(out, static_cast<uint32_t>(tensor.rows()));
    WriteU32(out, static_cast<uint32_t>(tensor.cols()));
    out.write(reinterpret_cast<const char*>(tensor.data().data()),
              static_cast<std::streamsize>(tensor.size() * sizeof(float)));
  }
  if (!out.good()) return InternalError("write failed: " + path);
  return Status::Ok();
}

Status LoadModule(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open checkpoint: " + path);
  }
  uint32_t magic = 0, count = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return InvalidArgumentError("bad checkpoint magic in " + path);
  }
  if (!ReadU32(in, &count)) {
    return InvalidArgumentError("truncated checkpoint: " + path);
  }
  std::map<std::string, std::pair<std::pair<int, int>, std::vector<float>>>
      stored;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t name_len = 0, rows = 0, cols = 0;
    if (!ReadU32(in, &name_len)) {
      return InvalidArgumentError("truncated checkpoint: " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!ReadU32(in, &rows) || !ReadU32(in, &cols)) {
      return InvalidArgumentError("truncated checkpoint: " + path);
    }
    std::vector<float> data(static_cast<size_t>(rows) * cols);
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!in.good()) {
      return InvalidArgumentError("truncated checkpoint: " + path);
    }
    stored[name] = {{static_cast<int>(rows), static_cast<int>(cols)},
                    std::move(data)};
  }
  for (auto& [name, tensor] : module->NamedParameters()) {
    auto it = stored.find(name);
    if (it == stored.end()) {
      return NotFoundError("parameter missing from checkpoint: " + name);
    }
    const auto& [shape, data] = it->second;
    if (shape.first != tensor.rows() || shape.second != tensor.cols()) {
      return InvalidArgumentError("shape mismatch for parameter: " + name);
    }
    tensor.mutable_data() = data;
  }
  return Status::Ok();
}

}  // namespace gp
