// Multi-layer perceptron — the "MLP_phi" of the Prompt Generator (Eq. 2)
// and the "MLP_theta" of the Prompt Selector (Eq. 5).

#ifndef GRAPHPROMPTER_NN_MLP_H_
#define GRAPHPROMPTER_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace gp {

enum class Activation { kRelu, kTanh, kSigmoid, kLeakyRelu, kIdentity };

// Applies `activation` elementwise.
Tensor ApplyActivation(const Tensor& x, Activation activation);

// A stack of Linear layers with an activation between them (not after the
// last layer). `dims` lists layer widths including input and output, e.g.
// {in, hidden, out} builds a two-layer network — the paper's reconstruction
// and selection layers are two-layer MLPs (Sec. V-F).
class Mlp : public Module {
 public:
  Mlp(const std::vector<int>& dims, Rng* rng,
      Activation activation = Activation::kRelu);

  Tensor Forward(const Tensor& x) const;

  int in_features() const { return layers_.front()->in_features(); }
  int out_features() const { return layers_.back()->out_features(); }
  int num_layers() const { return static_cast<int>(layers_.size()); }

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation activation_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_MLP_H_
