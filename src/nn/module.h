// Module base class: a named-parameter registry for neural network
// components, mirroring the torch.nn.Module idiom at a much smaller scale.

#ifndef GRAPHPROMPTER_NN_MODULE_H_
#define GRAPHPROMPTER_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace gp {

// Base class for anything that owns trainable parameters. Subclasses call
// RegisterParameter / RegisterModule in their constructors; the optimizer
// and (de)serializer then enumerate everything through Parameters() /
// NamedParameters().
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All trainable tensors of this module and its registered children.
  std::vector<Tensor> Parameters() const;

  // Same, with hierarchical "child/param" names.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  // Zeroes every parameter's gradient buffer.
  void ZeroGrad();

  // Total number of trainable scalars.
  int64_t NumParameters() const;

 protected:
  // Registers `tensor` as a trainable parameter; marks requires_grad and
  // returns it for convenient member initialisation.
  Tensor RegisterParameter(const std::string& name, Tensor tensor);

  // Registers `child` (not owned; must outlive this module).
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_NN_MODULE_H_
