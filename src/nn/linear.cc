#include "nn/linear.h"

#include "tensor/ops.h"

namespace gp {

Linear::Linear(int in_features, int out_features, Rng* rng, bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias) {
  CHECK_GT(in_features, 0);
  CHECK_GT(out_features, 0);
  weight_ = RegisterParameter(
      "weight", Tensor::Xavier(in_features, out_features, rng));
  if (use_bias_) {
    bias_ = RegisterParameter("bias", Tensor::Zeros(1, out_features));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  CHECK_EQ(x.cols(), in_features_);
  Tensor out = MatMul(x, weight_);
  if (use_bias_) out = Add(out, bias_);
  return out;
}

Tensor Linear::ForwardRelu(const Tensor& x) const {
  CHECK_EQ(x.cols(), in_features_);
  return LinearRelu(x, weight_, use_bias_ ? bias_ : Tensor());
}

}  // namespace gp
