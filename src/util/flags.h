// Tiny command-line flag parser for the benchmark and example binaries.
//
// Supports "--name=value" and "--name value" forms. Unrecognised flags are
// reported; positional arguments are ignored. This keeps the bench binaries
// dependency-free while allowing `--seed`, `--trials` etc. overrides.

#ifndef GRAPHPROMPTER_UTIL_FLAGS_H_
#define GRAPHPROMPTER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace gp {

// Parses flags from argv and exposes typed getters with defaults.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;

  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_FLAGS_H_
