#include "util/cpuid.h"

#include <cstdlib>
#include <mutex>

#include "obs/telemetry.h"
#include "util/flags.h"
#include "util/logging.h"

namespace gp {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

StatusOr<SimdLevel> ParseSimdLevel(const std::string& name) {
  if (name == "off" || name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "auto") return DetectedSimdLevel();
  return InvalidArgumentError("unknown simd level \"" + name +
                              "\" (expected off, scalar, avx2, or auto)");
}

SimdLevel DetectedSimdLevel() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  static const SimdLevel detected = [] {
    __builtin_cpu_init();
    return (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
               ? SimdLevel::kAvx2
               : SimdLevel::kScalar;
  }();
  return detected;
#else
  return SimdLevel::kScalar;
#endif
}

namespace simd_internal {
std::atomic<bool> g_avx2_active{false};
}  // namespace simd_internal

namespace {

std::mutex g_simd_mu;
SimdLevel g_simd_level = SimdLevel::kScalar;
bool g_simd_resolved = false;

// Resolves GP_SIMD (else auto-detect). Caller holds g_simd_mu.
SimdLevel ResolveLocked() {
  if (g_simd_resolved) return g_simd_level;
  SimdLevel level = DetectedSimdLevel();
  if (const char* env = std::getenv("GP_SIMD")) {
    const StatusOr<SimdLevel> parsed = ParseSimdLevel(env);
    if (parsed.ok()) {
      level = *parsed;
    } else {
      LOG(WARNING) << "ignoring GP_SIMD=" << env << ": "
                   << parsed.status().ToString();
    }
  }
  if (level > DetectedSimdLevel()) {
    LOG(WARNING) << "simd level " << SimdLevelName(level)
                 << " not supported by this CPU; falling back to scalar";
    level = SimdLevel::kScalar;
  }
  g_simd_level = level;
  g_simd_resolved = true;
  simd_internal::g_avx2_active.store(level == SimdLevel::kAvx2,
                                     std::memory_order_relaxed);
  return g_simd_level;
}

void PublishDispatchGauge(SimdLevel level) {
  Telemetry().GetGauge("simd/dispatch")->Set(static_cast<int64_t>(level));
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  std::lock_guard<std::mutex> lock(g_simd_mu);
  return ResolveLocked();
}

void SetSimdLevel(SimdLevel level) {
  if (level > DetectedSimdLevel()) {
    LOG(WARNING) << "simd level " << SimdLevelName(level)
                 << " not supported by this CPU; falling back to scalar";
    level = SimdLevel::kScalar;
  }
  std::lock_guard<std::mutex> lock(g_simd_mu);
  g_simd_level = level;
  g_simd_resolved = true;
  simd_internal::g_avx2_active.store(level == SimdLevel::kAvx2,
                                     std::memory_order_relaxed);
  PublishDispatchGauge(level);
}

SimdLevel ConfigureSimdFromFlags(const Flags& flags) {
  SimdLevel level;
  {
    std::lock_guard<std::mutex> lock(g_simd_mu);
    level = ResolveLocked();
  }
  if (flags.Has("simd")) {
    const StatusOr<SimdLevel> parsed =
        ParseSimdLevel(flags.GetString("simd", ""));
    CHECK_OK(parsed.status());
    level = *parsed;
  }
  SetSimdLevel(level);
  return ActiveSimdLevel();
}

// Resolve GP_SIMD before main() so kernels dispatched from static-init-time
// code (and tests that never touch flags) already see the right level. Kept
// telemetry-free: the registry may not be constructed yet.
namespace {
const SimdLevel g_simd_static_init = [] {
  std::lock_guard<std::mutex> lock(g_simd_mu);
  return ResolveLocked();
}();
}  // namespace

}  // namespace gp
