#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace gp {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.size() < 3 || arg.substr(0, 2) != "--") continue;
    arg.remove_prefix(2);
    const size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[++i];
    } else {
      values_[std::string(arg)] = "true";  // bare boolean flag
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

}  // namespace gp
