#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace gp {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string TablePrinter::MeanStd(double mean, double std, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << mean << " ±" << std;
  return out.str();
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << "\n";
  };
  emit_row(header_);
  out << "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  std::fputs(ToString().c_str(), stdout);
  std::fflush(stdout);
}

namespace {

std::string CsvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

Status TablePrinter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return InternalError("cannot open file for writing: " + path);
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) file << ",";
      file << CsvEscape(row[c]);
    }
    file << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return Status::Ok();
}

SeriesWriter::SeriesWriter(std::string x_name,
                           std::vector<std::string> series_names)
    : x_name_(std::move(x_name)), series_names_(std::move(series_names)) {}

void SeriesWriter::AddPoint(double x, const std::vector<double>& ys) {
  CHECK_EQ(ys.size(), series_names_.size());
  points_.emplace_back(x, ys);
}

Status SeriesWriter::WriteCsv(const std::string& path) const {
  std::ofstream file(path);
  if (!file.is_open()) {
    return InternalError("cannot open file for writing: " + path);
  }
  file << x_name_;
  for (const auto& name : series_names_) file << "," << name;
  file << "\n";
  for (const auto& [x, ys] : points_) {
    file << x;
    for (double y : ys) file << "," << y;
    file << "\n";
  }
  return Status::Ok();
}

std::string SeriesWriter::ToString() const {
  TablePrinter table([&] {
    std::vector<std::string> header = {x_name_};
    header.insert(header.end(), series_names_.begin(), series_names_.end());
    return header;
  }());
  for (const auto& [x, ys] : points_) {
    std::vector<std::string> row = {TablePrinter::Num(x, 0)};
    for (double y : ys) row.push_back(TablePrinter::Num(y, 3));
    table.AddRow(std::move(row));
  }
  return table.ToString();
}

}  // namespace gp
