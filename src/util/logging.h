// Minimal logging and CHECK macros.
//
// CHECK* macros abort on failure and are always on; DCHECK* compile away in
// NDEBUG builds. LOG(level) streams to stderr with a severity prefix.

#ifndef GRAPHPROMPTER_UTIL_LOGGING_H_
#define GRAPHPROMPTER_UTIL_LOGGING_H_

#include <sstream>
#include <string>

#include "util/status.h"

namespace gp {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

// Accumulates a message and emits it (to stderr) on destruction. A kFatal
// message aborts the program after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Sets the minimum severity that is actually printed (kFatal always prints
// and aborts). Returns the previous threshold. Used by tests to silence logs.
LogSeverity SetMinLogSeverity(LogSeverity severity);

}  // namespace gp

#define GP_LOG_INFO \
  ::gp::LogMessage(::gp::LogSeverity::kInfo, __FILE__, __LINE__).stream()
#define GP_LOG_WARNING \
  ::gp::LogMessage(::gp::LogSeverity::kWarning, __FILE__, __LINE__).stream()
#define GP_LOG_ERROR \
  ::gp::LogMessage(::gp::LogSeverity::kError, __FILE__, __LINE__).stream()
#define GP_LOG_FATAL \
  ::gp::LogMessage(::gp::LogSeverity::kFatal, __FILE__, __LINE__).stream()

#define LOG(severity) GP_LOG_##severity

#define CHECK(condition)                                      \
  if (!(condition))                                           \
  GP_LOG_FATAL << "Check failed: " #condition " "

#define CHECK_OP(lhs, rhs, op)                                          \
  if (!((lhs)op(rhs)))                                                  \
  GP_LOG_FATAL << "Check failed: " #lhs " " #op " " #rhs " (" << (lhs)  \
               << " vs " << (rhs) << ") "

#define CHECK_EQ(lhs, rhs) CHECK_OP(lhs, rhs, ==)
#define CHECK_NE(lhs, rhs) CHECK_OP(lhs, rhs, !=)
#define CHECK_LT(lhs, rhs) CHECK_OP(lhs, rhs, <)
#define CHECK_LE(lhs, rhs) CHECK_OP(lhs, rhs, <=)
#define CHECK_GT(lhs, rhs) CHECK_OP(lhs, rhs, >)
#define CHECK_GE(lhs, rhs) CHECK_OP(lhs, rhs, >=)

// Aborts if `status_expr` (a gp::Status) is not OK.
#define CHECK_OK(status_expr)                                 \
  do {                                                        \
    ::gp::Status gp_check_ok_status_ = (status_expr);         \
    CHECK(gp_check_ok_status_.ok())                           \
        << gp_check_ok_status_.ToString();                    \
  } while (false)

#ifdef NDEBUG
#define DCHECK(condition) \
  while (false) CHECK(condition)
#define DCHECK_EQ(lhs, rhs) \
  while (false) CHECK_EQ(lhs, rhs)
#define DCHECK_LT(lhs, rhs) \
  while (false) CHECK_LT(lhs, rhs)
#define DCHECK_LE(lhs, rhs) \
  while (false) CHECK_LE(lhs, rhs)
#define DCHECK_GE(lhs, rhs) \
  while (false) CHECK_GE(lhs, rhs)
#define DCHECK_GT(lhs, rhs) \
  while (false) CHECK_GT(lhs, rhs)
#else
#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(lhs, rhs) CHECK_EQ(lhs, rhs)
#define DCHECK_LT(lhs, rhs) CHECK_LT(lhs, rhs)
#define DCHECK_LE(lhs, rhs) CHECK_LE(lhs, rhs)
#define DCHECK_GE(lhs, rhs) CHECK_GE(lhs, rhs)
#define DCHECK_GT(lhs, rhs) CHECK_GT(lhs, rhs)
#endif

#endif  // GRAPHPROMPTER_UTIL_LOGGING_H_
