// CRC32 checksumming and integrity-framed binary files.
//
// Checkpoints and graph dumps are written as
//   [magic u32][version u32][payload bytes][crc32 u32]
// where the CRC covers everything before the footer. Loading verifies the
// frame and returns typed errors: kInvalidArgument for a foreign file (bad
// magic), kDataLoss for truncation or bit corruption, kFailedPrecondition
// for a format-version mismatch. This turns silently garbage weights from a
// damaged checkpoint into a recoverable, observable failure.

#ifndef GRAPHPROMPTER_UTIL_CHECKSUM_H_
#define GRAPHPROMPTER_UTIL_CHECKSUM_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace gp {

// CRC-32 (IEEE 802.3 polynomial, the zlib variant) of `size` bytes.
// `seed` chains incremental computations: pass the previous return value.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

// Writes `payload` to `path` framed with magic, version, and CRC footer.
Status WriteFramedFile(const std::string& path, uint32_t magic,
                       uint32_t version, const std::string& payload);

struct FramedPayload {
  uint32_t version = 0;
  std::string payload;
};

// Reads a framed file, verifying size, magic, CRC, and version (must lie in
// [min_version, max_version]). `kind` names the file type in error messages
// ("checkpoint", "graph").
StatusOr<FramedPayload> ReadFramedFile(const std::string& path,
                                       uint32_t magic, uint32_t min_version,
                                       uint32_t max_version,
                                       const std::string& kind);

// Bounds-checked little cursor over an in-memory payload. Every Read*
// returns false once the payload is exhausted, so parsers can surface
// truncation as a typed error instead of reading garbage.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : payload_(payload) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadF64(double* v) { return ReadRaw(v, sizeof(*v)); }

  // Copies `size` raw bytes into `out`.
  bool ReadBytes(void* out, size_t size) { return ReadRaw(out, size); }

  bool ReadString(std::string* out, size_t size) {
    if (remaining() < size) return false;
    out->assign(payload_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  size_t remaining() const { return payload_.size() - pos_; }

 private:
  bool ReadRaw(void* out, size_t size) {
    if (remaining() < size) return false;
    std::memcpy(out, payload_.data() + pos_, size);
    pos_ += size;
    return true;
  }

  const std::string& payload_;
  size_t pos_ = 0;
};

// Append-only builder for the payload of a framed file.
class PayloadWriter {
 public:
  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteF64(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteBytes(const void* data, size_t size) { WriteRaw(data, size); }

  const std::string& payload() const { return payload_; }

 private:
  void WriteRaw(const void* data, size_t size) {
    payload_.append(static_cast<const char*>(data), size);
  }

  std::string payload_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_CHECKSUM_H_
