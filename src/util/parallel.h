// Lazily-initialised persistent thread pool with a chunked ParallelFor.
//
// Determinism contract: the loop range [begin, end) is split into
// ceil((end - begin) / grain) fixed chunks of `grain` iterations each
// (the last chunk may be short). Chunk boundaries depend only on
// (begin, end, grain) — never on the thread count — so a kernel that
// writes disjoint state per chunk, or that reduces per-chunk partials in
// chunk order, produces bitwise-identical results whether the pool runs
// 1 or N threads.
//
// Thread count resolution order: SetNumThreads() > GP_NUM_THREADS env >
// std::thread::hardware_concurrency(). Pool threads are spawned lazily on
// the first parallel call that needs them and persist for the process
// lifetime (or until SetNumThreads resizes the pool).

#ifndef GRAPHPROMPTER_UTIL_PARALLEL_H_
#define GRAPHPROMPTER_UTIL_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace gp {

// Number of threads parallel regions target (>= 1).
int NumThreads();

// Resizes the pool; n < 1 is clamped to 1 (fully serial). Existing pool
// threads are joined and respawned lazily. Call between parallel regions,
// not from inside one.
void SetNumThreads(int n);

// Number of fixed chunks ParallelFor(begin, end, grain, ...) executes.
int64_t NumChunks(int64_t begin, int64_t end, int64_t grain);

// Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end).
// Empty ranges return immediately without touching the pool. The first
// exception thrown by fn is rethrown on the calling thread once all
// in-flight chunks finish; chunks not yet started are skipped. Nested
// calls (from inside a chunk) run serially inline on the calling thread,
// preserving the same chunk boundaries.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_PARALLEL_H_
