// ASCII table and CSV emitters used by the benchmark harnesses to print
// paper-style result tables and to dump series for figures.

#ifndef GRAPHPROMPTER_UTIL_TABLE_H_
#define GRAPHPROMPTER_UTIL_TABLE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace gp {

// Collects rows of string cells and renders them as an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Adds one row; it is padded/truncated to the header width.
  void AddRow(std::vector<std::string> row);

  // Formats helpers for numeric cells.
  static std::string Num(double value, int precision = 2);
  // "mean ±std" cell, paper-style.
  static std::string MeanStd(double mean, double std, int precision = 2);

  // Renders the table (with a separator under the header).
  std::string ToString() const;

  // Prints to stdout.
  void Print() const;

  // Writes the table as CSV to `path` (creating parent-less path as given).
  Status WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Accumulates (x, series...) rows for a figure and writes them to CSV.
class SeriesWriter {
 public:
  // `x_name` labels the sweep variable; `series_names` one column per curve.
  SeriesWriter(std::string x_name, std::vector<std::string> series_names);

  void AddPoint(double x, const std::vector<double>& ys);

  Status WriteCsv(const std::string& path) const;

  // Renders as an aligned table (for console output).
  std::string ToString() const;

 private:
  std::string x_name_;
  std::vector<std::string> series_names_;
  std::vector<std::pair<double, std::vector<double>>> points_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_TABLE_H_
