#include "util/rng.h"

#include <cmath>

#include "util/logging.h"

namespace gp {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  DCHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  uint64_t r;
  do {
    r = NextUint64();
  } while (r < threshold);
  return r % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  DCHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

float Rng::UniformFloat() {
  return static_cast<float>(NextUint64() >> 40) * (1.0f / 16777216.0f);
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) *
         (1.0 / 9007199254740992.0);
}

float Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller.
  float u1 = UniformFloat();
  float u2 = UniformFloat();
  while (u1 <= 1e-7f) u1 = UniformFloat();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float theta = 2.0f * static_cast<float>(M_PI) * u2;
  cached_normal_ = radius * std::sin(theta);
  have_cached_normal_ = true;
  return radius * std::cos(theta);
}

float Rng::Normal(float mean, float stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int population, int count) {
  CHECK_GE(population, count);
  CHECK_GE(count, 0);
  // Partial Fisher-Yates over an index vector; O(population) memory which is
  // fine at the graph sizes this library targets.
  std::vector<int> indices(population);
  for (int i = 0; i < population; ++i) indices[i] = i;
  for (int i = 0; i < count; ++i) {
    int j = i + static_cast<int>(UniformInt(population - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(count);
  return indices;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace gp
