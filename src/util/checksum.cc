#include "util/checksum.h"

#include <array>
#include <fstream>

namespace gp {

namespace {

// Byte-at-a-time table, generated once at first use.
const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& table = Crc32Table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = seed ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ bytes[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Status WriteFramedFile(const std::string& path, uint32_t magic,
                       uint32_t version, const std::string& payload) {
  std::string framed;
  framed.reserve(payload.size() + 12);
  AppendU32(&framed, magic);
  AppendU32(&framed, version);
  framed += payload;
  AppendU32(&framed, Crc32(framed.data(), framed.size()));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    return InternalError("cannot open file for writing: " + path);
  }
  out.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  if (!out.good()) return InternalError("write failed: " + path);
  return Status::Ok();
}

StatusOr<FramedPayload> ReadFramedFile(const std::string& path,
                                       uint32_t magic, uint32_t min_version,
                                       uint32_t max_version,
                                       const std::string& kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open " + kind + " file: " + path);
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (!in.good() && !in.eof()) {
    return InternalError("read failed for " + kind + " file: " + path);
  }
  // Frame = magic + version + footer at minimum.
  if (contents.size() < 12) {
    return DataLossError("truncated " + kind + " file (" +
                         std::to_string(contents.size()) + " bytes): " + path);
  }
  uint32_t stored_magic = 0;
  std::memcpy(&stored_magic, contents.data(), sizeof(stored_magic));
  if (stored_magic != magic) {
    return InvalidArgumentError("bad magic: not a " + kind + " file: " + path);
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, contents.data() + contents.size() - 4,
              sizeof(stored_crc));
  const uint32_t actual_crc = Crc32(contents.data(), contents.size() - 4);
  if (stored_crc != actual_crc) {
    return DataLossError("CRC mismatch in " + kind + " file (corrupt or "
                         "truncated): " + path);
  }
  FramedPayload out;
  std::memcpy(&out.version, contents.data() + 4, sizeof(out.version));
  if (out.version < min_version || out.version > max_version) {
    return FailedPreconditionError(
        kind + " file version " + std::to_string(out.version) +
        " unsupported (expected " + std::to_string(min_version) + ".." +
        std::to_string(max_version) + "): " + path);
  }
  out.payload.assign(contents, 8, contents.size() - 12);
  return out;
}

}  // namespace gp
