// Lightweight Status / StatusOr error-handling primitives.
//
// The library follows the Google style guide and does not use C++
// exceptions. Recoverable errors are reported through `Status` (or
// `StatusOr<T>` for value-returning functions); programmer errors abort via
// the CHECK macros in util/logging.h.

#ifndef GRAPHPROMPTER_UTIL_STATUS_H_
#define GRAPHPROMPTER_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace gp {

// Canonical error codes, modelled after absl::StatusCode.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  // Unrecoverable loss or corruption of stored data (truncated or
  // bit-flipped checkpoint/graph files).
  kDataLoss = 7,
  // The service cannot take the request right now (admission queue full,
  // circuit breaker open, transient backend failure). Retryable.
  kUnavailable = 8,
  // The request's deadline budget expired before the work completed.
  kDeadlineExceeded = 9,
};

// Returns a short human-readable name for `code` ("OK", "INVALID_ARGUMENT"…).
const char* StatusCodeName(StatusCode code);

// A success-or-error result carrying a code and a message.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Convenience constructors for common error codes.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status OutOfRangeError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnimplementedError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status DeadlineExceededError(std::string message);

// Holds either a value of type T or an error Status.
//
// Accessing `value()` on a non-OK StatusOr aborts the program, in keeping
// with the no-exceptions policy: callers must test `ok()` first.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit, mirroring absl::StatusOr ergonomics: functions
  // can `return value;` or `return SomeError(...)`.
  StatusOr(const T& value) : value_(value) {}                 // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}           // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}     // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    AbortIfError();
    return *value_;
  }
  T& value() & {
    AbortIfError();
    return *value_;
  }
  T&& value() && {
    AbortIfError();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  Status status_;
  std::optional<T> value_;
};

namespace internal {
// Defined in status.cc; prints `message` to stderr and aborts.
[[noreturn]] void DieBecauseStatus(const std::string& message);
}  // namespace internal

template <typename T>
void StatusOr<T>::AbortIfError() const {
  if (!ok()) {
    internal::DieBecauseStatus("StatusOr access on error: " +
                               status_.ToString());
  }
}

}  // namespace gp

// Propagates an error Status from an expression, absl-style.
#define GP_RETURN_IF_ERROR(expr)              \
  do {                                        \
    ::gp::Status gp_status_ = (expr);         \
    if (!gp_status_.ok()) return gp_status_;  \
  } while (false)

// Evaluates `expr` (a StatusOr<T>), returns its Status on error, otherwise
// move-assigns the value into `lhs`:
//   GP_ASSIGN_OR_RETURN(Graph graph, LoadGraph(path));
// `lhs` may declare a new variable or name an existing one.
#define GP_ASSIGN_OR_RETURN(lhs, expr) \
  GP_ASSIGN_OR_RETURN_IMPL_(GP_STATUS_CONCAT_(gp_statusor_, __LINE__), lhs, \
                            expr)

#define GP_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, expr) \
  auto statusor = (expr);                              \
  if (!statusor.ok()) return statusor.status();        \
  lhs = std::move(statusor).value()

#define GP_STATUS_CONCAT_(a, b) GP_STATUS_CONCAT_IMPL_(a, b)
#define GP_STATUS_CONCAT_IMPL_(a, b) a##b

#endif  // GRAPHPROMPTER_UTIL_STATUS_H_
