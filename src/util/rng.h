// Deterministic random number generation (xoshiro256** seeded by splitmix64).
//
// Every stochastic component in the library takes an explicit Rng (or a
// seed), so all experiments are reproducible bit-for-bit across runs.

#ifndef GRAPHPROMPTER_UTIL_RNG_H_
#define GRAPHPROMPTER_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gp {

// xoshiro256** PRNG. Not thread-safe; create one per thread / component.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  uint64_t NextUint64();

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  // Uniform float in [0, 1).
  float UniformFloat();

  // Uniform double in [0, 1).
  double UniformDouble();

  // Standard normal via Box-Muller.
  float Normal();
  float Normal(float mean, float stddev);

  // Returns true with probability `p`.
  bool Bernoulli(double p);

  // Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    if (values->empty()) return;
    for (size_t i = values->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  // Samples `count` distinct indices from [0, population) without
  // replacement. Requires count <= population. Order is random.
  std::vector<int> SampleWithoutReplacement(int population, int count);

  // Creates a child generator with an independent stream; convenient for
  // giving deterministic sub-seeds to components.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_RNG_H_
