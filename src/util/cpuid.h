// Runtime CPU feature probe and the process-wide SIMD dispatch level.
//
// The distance kernels (core/distance.h), the quantized candidate-pass
// kernels (core/quantizer.h), and the blocked-GEMM panel (tensor/ops.cc)
// each ship a portable scalar implementation plus an AVX2 variant compiled
// with function-level target attributes. Which variant runs is decided
// ONCE per process from this header — never per call site — so a run is
// internally consistent: every kernel sees the same level for the whole
// process lifetime (tests may flip it explicitly via SetSimdLevel).
//
// Determinism contract (DESIGN.md §10):
//   * kScalar ("--simd=off" / GP_SIMD=off) reproduces the historical
//     ascending-index double-accumulation kernels bit for bit — golden
//     pins are defined at this level.
//   * kAvx2 uses wider accumulators (vector lanes reduced in a fixed
//     order), so float results may differ from scalar in the last ULPs;
//     the documented bounds are pinned by tests/simd_kernels_test.cc.
//     The GEMM panel is the exception: its vectorization is elementwise
//     (no reduction order changes), so it stays bitwise identical to the
//     scalar micro-kernel at every level.
//
// Resolution order: SetSimdLevel()/ConfigureSimdFromFlags (--simd) >
// GP_SIMD env ("off"|"scalar", "avx2", "auto") > auto-detect. Requesting
// avx2 on a CPU without it falls back to scalar with a warning.

#ifndef GRAPHPROMPTER_UTIL_CPUID_H_
#define GRAPHPROMPTER_UTIL_CPUID_H_

#include <atomic>
#include <string>

#include "util/status.h"

namespace gp {

class Flags;

enum class SimdLevel {
  kScalar = 0,  // portable C++ loops; the bitwise-pinned reference
  kAvx2 = 1,    // AVX2(+FMA) kernels where provided
};

const char* SimdLevelName(SimdLevel level);

// Parses "off"/"scalar" -> kScalar, "avx2" -> kAvx2. "auto" resolves to
// the detected level. Anything else is an error.
StatusOr<SimdLevel> ParseSimdLevel(const std::string& name);

// What the CPU supports (probed once; AVX2 requires AVX2 + FMA).
SimdLevel DetectedSimdLevel();

// The level kernels dispatch on. First read resolves GP_SIMD (else
// auto-detect); SetSimdLevel overrides, clamped to DetectedSimdLevel().
SimdLevel ActiveSimdLevel();
void SetSimdLevel(SimdLevel level);

// Applies --simd=off|avx2|auto on top of the current level (env fallback
// included), publishes the simd/dispatch gauge, and returns the resolved
// level. Aborts on an unparseable --simd.
SimdLevel ConfigureSimdFromFlags(const Flags& flags);

namespace simd_internal {
// Hot-path dispatch bit, kept branch-cheap: a relaxed atomic bool the
// inline kernel wrappers test. Maintained by SetSimdLevel/ActiveSimdLevel.
extern std::atomic<bool> g_avx2_active;
}  // namespace simd_internal

// True when kernels should take their AVX2 variant. Inline: this sits
// inside O(P*Q) scoring loops.
inline bool Avx2Enabled() {
  return simd_internal::g_avx2_active.load(std::memory_order_relaxed);
}

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_CPUID_H_
