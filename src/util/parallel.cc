#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "util/logging.h"

namespace gp {
namespace {

// True while this thread is executing chunks of a parallel region (either
// as a pool worker or as the thread that issued the region). Nested
// ParallelFor calls detect this and run serially inline.
thread_local bool tls_in_parallel = false;

int DefaultNumThreads() {
  if (const char* env = std::getenv("GP_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

// One parallel region. Each Run() allocates a fresh Job so a stale worker
// (woken late, or preempted mid-drain) can never claim chunks of a newer
// region: a completed Job's chunk cursor stays exhausted forever, and the
// shared_ptr keeps its atomics alive until the last observer drops it.
// The callback pointer is only dereferenced after a successful chunk
// claim, which is impossible once the issuing Run() has returned.
struct Job {
  const std::function<void(int64_t, int64_t)>* fn = nullptr;
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t chunks = 0;
  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> done{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr error;  // guarded by the pool mutex
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    const int spawn = std::max(0, num_threads - 1);
    workers_.reserve(spawn);
    for (int i = 0; i < spawn; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    job_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  void Run(int64_t begin, int64_t end, int64_t grain,
           const std::function<void(int64_t, int64_t)>& fn) {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->begin = begin;
    job->end = end;
    job->grain = grain;
    job->chunks = NumChunks(begin, end, grain);
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++generation_;
    }
    job_cv_.notify_all();
    Drain(*job);
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == job->chunks;
    });
    if (job_ == job) job_ = nullptr;
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  void WorkerLoop() {
    tls_in_parallel = true;
    uint64_t seen = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        job_cv_.wait(lock,
                     [&] { return shutdown_ || generation_ != seen; });
        if (shutdown_) return;
        seen = generation_;
        job = job_;
      }
      if (job) Drain(*job);
    }
  }

  // Claims and runs chunks until the job is exhausted. Safe against stale
  // arrivals: a finished job has no unclaimed chunks, so the loop exits
  // before touching the (possibly dead) callback.
  void Drain(Job& job) {
    while (true) {
      const int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) return;
      if (!job.cancelled.load(std::memory_order_relaxed)) {
        const int64_t cb = job.begin + c * job.grain;
        const int64_t ce = std::min(job.end, cb + job.grain);
        try {
          (*job.fn)(cb, ce);
        } catch (...) {
          job.cancelled.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> lock(mu_);
          if (!job.error) job.error = std::current_exception();
        }
      }
      if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.chunks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers wait for a new generation
  std::condition_variable done_cv_;  // issuer waits for chunk completion
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;  // current region; null when idle
};

std::mutex g_pool_mu;  // guards g_pool / g_num_threads
std::unique_ptr<ThreadPool> g_pool;
int g_num_threads = 0;  // 0 = not yet resolved

// Serialises pool jobs issued from different user threads; the loser
// blocks until the pool frees up rather than interleaving job state.
std::mutex g_run_mu;

ThreadPool* GetPool(int threads) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(threads);
  return g_pool.get();
}

void SerialFor(int64_t begin, int64_t end, int64_t grain,
               const std::function<void(int64_t, int64_t)>& fn) {
  for (int64_t cb = begin; cb < end; cb += grain) {
    fn(cb, std::min(end, cb + grain));
  }
}

}  // namespace

int NumThreads() {
  int resolved;
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (g_num_threads == 0) g_num_threads = DefaultNumThreads();
    resolved = g_num_threads;
  }
  static Gauge* threads = Telemetry().GetGauge("parallel/threads");
  threads->Set(resolved);
  return resolved;
}

void SetNumThreads(int n) {
  n = std::max(1, n);
  {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (n != g_num_threads) {
      g_pool.reset();  // joins old workers; respawned lazily at the new size
      g_num_threads = n;
    }
  }
  static Gauge* threads = Telemetry().GetGauge("parallel/threads");
  threads->Set(n);
}

int64_t NumChunks(int64_t begin, int64_t end, int64_t grain) {
  if (end <= begin) return 0;
  CHECK_GT(grain, 0);
  return (end - begin + grain - 1) / grain;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  CHECK_GT(grain, 0);
  const int64_t chunks = NumChunks(begin, end, grain);
  if (tls_in_parallel || chunks <= 1 || NumThreads() <= 1) {
    static Counter* serial_regions =
        Telemetry().GetCounter("parallel/serial_regions");
    serial_regions->Add(1);
    SerialFor(begin, end, grain, fn);
    return;
  }
  static Counter* regions = Telemetry().GetCounter("parallel/regions");
  static Counter* dispatched = Telemetry().GetCounter("parallel/chunks");
  regions->Add(1);
  dispatched->Add(chunks);
  ThreadPool* pool = GetPool(NumThreads());
  std::lock_guard<std::mutex> run_lock(g_run_mu);
  tls_in_parallel = true;
  try {
    pool->Run(begin, end, grain, fn);
  } catch (...) {
    tls_in_parallel = false;
    throw;
  }
  tls_in_parallel = false;
}

}  // namespace gp
