#include "util/fault.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <thread>

#include "obs/telemetry.h"
#include "util/logging.h"

namespace gp {

namespace {

// Owns the installed global injector; raw pointer handed out to sites.
std::unique_ptr<FaultInjector>& GlobalInjectorSlot() {
  static std::unique_ptr<FaultInjector> slot;
  return slot;
}

FaultInjector* g_injector = nullptr;

// Thread-local override: distinguishes "no override installed" from an
// explicit null override (which suppresses the global injector).
struct ThreadOverride {
  bool installed = false;
  FaultInjector* injector = nullptr;
};
thread_local ThreadOverride t_override;

// Kept in sync with the grammar in fault.h; quoted by the unknown-kind
// error so a typo'd --fault spec names its alternatives.
constexpr char kValidKinds[] =
    "embed_nan, prompt_drop, prompt_dup, cache_poison, file, slow_every, "
    "slow_ms, serve_fail, serve_torn, serve_stall, serve_stall_ms, seed";

StatusOr<double> ParseProbability(const std::string& key,
                                  const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    return InvalidArgumentError("fault spec: " + key +
                                " needs a probability in [0,1], got '" +
                                value + "'");
  }
  return p;
}

StatusOr<int64_t> ParseInt(const std::string& key, const std::string& value) {
  char* end = nullptr;
  const long long v = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || v < 0) {
    return InvalidArgumentError("fault spec: " + key +
                                " needs a non-negative integer, got '" +
                                value + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

const char* FileFaultModeName(FileFaultMode mode) {
  switch (mode) {
    case FileFaultMode::kNone:
      return "none";
    case FileFaultMode::kTruncate:
      return "truncate";
    case FileFaultMode::kBitFlip:
      return "bitflip";
    case FileFaultMode::kMagic:
      return "magic";
  }
  return "?";
}

bool FaultSpec::Any() const {
  return embed_nan_prob > 0.0 || prompt_drop_prob > 0.0 ||
         prompt_dup_prob > 0.0 || cache_poison_prob > 0.0 ||
         file_mode != FileFaultMode::kNone || slow_every > 0 ||
         serve_fail_prob > 0.0 || serve_torn_prob > 0.0 ||
         serve_stall_prob > 0.0;
}

StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec) {
  FaultSpec out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return InvalidArgumentError("fault spec item needs kind=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "embed_nan") {
      GP_ASSIGN_OR_RETURN(out.embed_nan_prob, ParseProbability(key, value));
    } else if (key == "prompt_drop") {
      GP_ASSIGN_OR_RETURN(out.prompt_drop_prob, ParseProbability(key, value));
    } else if (key == "prompt_dup") {
      GP_ASSIGN_OR_RETURN(out.prompt_dup_prob, ParseProbability(key, value));
    } else if (key == "cache_poison") {
      GP_ASSIGN_OR_RETURN(out.cache_poison_prob,
                          ParseProbability(key, value));
    } else if (key == "file") {
      if (value == "truncate") {
        out.file_mode = FileFaultMode::kTruncate;
      } else if (value == "bitflip") {
        out.file_mode = FileFaultMode::kBitFlip;
      } else if (value == "magic") {
        out.file_mode = FileFaultMode::kMagic;
      } else {
        return InvalidArgumentError(
            "fault spec: file needs truncate|bitflip|magic, got '" + value +
            "'");
      }
    } else if (key == "slow_every") {
      GP_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      out.slow_every = static_cast<int>(v);
    } else if (key == "slow_ms") {
      GP_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      out.slow_ms = static_cast<int>(v);
    } else if (key == "serve_fail") {
      GP_ASSIGN_OR_RETURN(out.serve_fail_prob, ParseProbability(key, value));
    } else if (key == "serve_torn") {
      GP_ASSIGN_OR_RETURN(out.serve_torn_prob, ParseProbability(key, value));
    } else if (key == "serve_stall") {
      GP_ASSIGN_OR_RETURN(out.serve_stall_prob, ParseProbability(key, value));
    } else if (key == "serve_stall_ms") {
      GP_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      out.serve_stall_ms = static_cast<int>(v);
    } else if (key == "seed") {
      GP_ASSIGN_OR_RETURN(int64_t v, ParseInt(key, value));
      out.seed = static_cast<uint64_t>(v);
    } else {
      return InvalidArgumentError("fault spec: unknown fault kind '" + key +
                                  "' (valid kinds: " + kValidKinds + ")");
    }
  }
  return out;
}

FaultInjector::FaultInjector(const FaultSpec& spec)
    : spec_(spec), rng_(spec.seed) {}

int FaultInjector::CorruptRows(std::vector<float>* data, int rows, int cols) {
  if (spec_.embed_nan_prob <= 0.0 || rows == 0 || cols == 0) return 0;
  int corrupted = 0;
  for (int r = 0; r < rows; ++r) {
    if (!rng_.Bernoulli(spec_.embed_nan_prob)) continue;
    float* row = data->data() + static_cast<size_t>(r) * cols;
    // Poison every 4th element, mixing NaN and +/-Inf so both non-finite
    // classes are exercised downstream.
    for (int c = 0; c < cols; c += 4) {
      switch (rng_.UniformInt(3)) {
        case 0:
          row[c] = std::numeric_limits<float>::quiet_NaN();
          break;
        case 1:
          row[c] = std::numeric_limits<float>::infinity();
          break;
        default:
          row[c] = -std::numeric_limits<float>::infinity();
          break;
      }
    }
    ++corrupted;
  }
  if (corrupted > 0) {
    static Counter* c = Telemetry().GetCounter("fault/embed_rows_corrupted");
    c->Add(corrupted);
  }
  return corrupted;
}

int FaultInjector::MutatePromptSet(std::vector<int>* selected) {
  if ((spec_.prompt_drop_prob <= 0.0 && spec_.prompt_dup_prob <= 0.0) ||
      selected->empty()) {
    return 0;
  }
  int mutations = 0;
  std::vector<int> mutated;
  mutated.reserve(selected->size() * 2);
  for (int p : *selected) {
    if (spec_.prompt_drop_prob > 0.0 &&
        rng_.Bernoulli(spec_.prompt_drop_prob)) {
      ++mutations;  // dropped
      continue;
    }
    mutated.push_back(p);
    if (spec_.prompt_dup_prob > 0.0 &&
        rng_.Bernoulli(spec_.prompt_dup_prob)) {
      mutated.push_back(p);  // duplicated
      ++mutations;
    }
  }
  // A total wipeout would leave the task graph with zero prompts; a real
  // lossy transport would also retain at least the last fragment.
  if (mutated.empty()) mutated.push_back(selected->front());
  *selected = std::move(mutated);
  if (mutations > 0) {
    static Counter* c = Telemetry().GetCounter("fault/prompt_mutations");
    c->Add(mutations);
  }
  return mutations;
}

int FaultInjector::PickCacheEntryToPoison(int num_entries) {
  if (spec_.cache_poison_prob <= 0.0 || num_entries <= 0) return -1;
  if (!rng_.Bernoulli(spec_.cache_poison_prob)) return -1;
  static Counter* c = Telemetry().GetCounter("fault/cache_poisonings");
  c->Add(1);
  return static_cast<int>(rng_.UniformInt(static_cast<uint64_t>(num_entries)));
}

Status FaultInjector::CorruptFileBytes(const std::string& path) {
  if (spec_.file_mode == FileFaultMode::kNone) return Status::Ok();
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return NotFoundError("fault: cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  if (contents.empty()) {
    return FailedPreconditionError("fault: empty file " + path);
  }
  switch (spec_.file_mode) {
    case FileFaultMode::kTruncate:
      contents.resize(contents.size() / 2);
      break;
    case FileFaultMode::kBitFlip: {
      const size_t byte = static_cast<size_t>(
          rng_.UniformInt(static_cast<uint64_t>(contents.size())));
      contents[byte] = static_cast<char>(
          contents[byte] ^ (1 << rng_.UniformInt(8)));
      break;
    }
    case FileFaultMode::kMagic:
      for (size_t i = 0; i < contents.size() && i < 4; ++i) {
        contents[i] = '\0';
      }
      break;
    case FileFaultMode::kNone:
      break;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return InternalError("fault: cannot rewrite " + path);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  if (!out.good()) return InternalError("fault: rewrite failed " + path);
  static Counter* c = Telemetry().GetCounter("fault/file_corruptions");
  c->Add(1);
  return Status::Ok();
}

bool FaultInjector::MaybeSlowBatch() {
  if (spec_.slow_every <= 0) return false;
  if (++batch_counter_ % spec_.slow_every != 0) return false;
  static Counter* c = Telemetry().GetCounter("fault/slow_batches");
  c->Add(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(spec_.slow_ms));
  return true;
}

bool FaultInjector::MaybeFailRequest() {
  if (spec_.serve_fail_prob <= 0.0) return false;
  if (!rng_.Bernoulli(spec_.serve_fail_prob)) return false;
  static Counter* c = Telemetry().GetCounter("fault/transient_failures");
  c->Add(1);
  return true;
}

int64_t FaultInjector::TornFrameBytes(size_t frame_bytes) {
  if (spec_.serve_torn_prob <= 0.0 || frame_bytes == 0) return -1;
  if (!rng_.Bernoulli(spec_.serve_torn_prob)) return -1;
  static Counter* c = Telemetry().GetCounter("fault/torn_frames");
  c->Add(1);
  return static_cast<int64_t>(
      rng_.UniformInt(static_cast<uint64_t>(frame_bytes)));
}

int FaultInjector::MaybeStallMs() {
  if (spec_.serve_stall_prob <= 0.0) return 0;
  if (!rng_.Bernoulli(spec_.serve_stall_prob)) return 0;
  static Counter* c = Telemetry().GetCounter("fault/client_stalls");
  c->Add(1);
  return spec_.serve_stall_ms;
}

FaultInjector* GlobalFaultInjector() { return g_injector; }

FaultInjector* ActiveFaultInjector() {
  return t_override.installed ? t_override.injector : g_injector;
}

ScopedThreadFaultInjector::ScopedThreadFaultInjector(FaultInjector* injector)
    : previous_(t_override.injector) {
  // previous_ doubles as the restore value only when an override was
  // already installed; otherwise destruction uninstalls entirely.
  if (!t_override.installed) previous_ = nullptr;
  const bool was_installed = t_override.installed;
  t_override.installed = true;
  t_override.injector = injector;
  installed_before_ = was_installed;
}

ScopedThreadFaultInjector::~ScopedThreadFaultInjector() {
  t_override.installed = installed_before_;
  t_override.injector = previous_;
}

Status ConfigureGlobalFaultInjection(const std::string& spec) {
  std::string effective = spec;
  if (effective.empty()) {
    const char* env = std::getenv("GP_FAULT");
    if (env != nullptr) effective = env;
  }
  if (effective.empty()) {
    GlobalInjectorSlot().reset();
    g_injector = nullptr;
    return Status::Ok();
  }
  GP_ASSIGN_OR_RETURN(FaultSpec parsed, ParseFaultSpec(effective));
  if (!parsed.Any()) {
    GlobalInjectorSlot().reset();
    g_injector = nullptr;
    return Status::Ok();
  }
  GlobalInjectorSlot() = std::make_unique<FaultInjector>(parsed);
  g_injector = GlobalInjectorSlot().get();
  LOG(WARNING) << "fault injection active: " << effective;
  return Status::Ok();
}

ScopedFaultInjection::ScopedFaultInjection(const FaultSpec& spec)
    : previous_(g_injector) {
  // The scoped injector intentionally bypasses the global slot's ownership:
  // the previous unique_ptr (if any) stays alive in the slot, and we swap
  // the raw pointer only.
  g_injector = new FaultInjector(spec);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  delete g_injector;
  g_injector = previous_;
}

}  // namespace gp
