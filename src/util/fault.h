// Deterministic fault injection for robustness testing.
//
// A FaultInjector simulates the failure modes a production serving system
// must survive: non-finite embeddings coming out of a numerically damaged
// encoder, prompts dropped or duplicated by a lossy upstream stage,
// poisoned pseudo-prompt cache entries, corrupted checkpoint/graph files,
// and pathologically slow batches. All decisions are driven by a seeded
// Rng, so a given spec reproduces the exact same fault pattern every run.
//
// Specs are parsed from a comma-separated key=value grammar shared by the
// `--fault=` flag and the GP_FAULT environment variable:
//
//   embed_nan=P     corrupt each embedded row with NaN/Inf with prob P
//   prompt_drop=P   drop each selected prompt with prob P (keeps >= 1)
//   prompt_dup=P    duplicate each selected prompt with prob P
//   cache_poison=P  poison a cached pseudo-prompt with prob P per batch
//   file=MODE       corrupt files passed to CorruptFileBytes:
//                   truncate | bitflip | magic
//   slow_every=N    every Nth query batch sleeps...
//   slow_ms=M       ...for M milliseconds (default 5)
//   seed=S          injector RNG seed (default 1337)
//
// Example: --fault=embed_nan=0.2,prompt_drop=0.3,seed=7
//
// Injection sites call through the process-global injector, which is null
// (zero overhead beyond a pointer test) unless explicitly configured.

#ifndef GRAPHPROMPTER_UTIL_FAULT_H_
#define GRAPHPROMPTER_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gp {

enum class FileFaultMode { kNone, kTruncate, kBitFlip, kMagic };

const char* FileFaultModeName(FileFaultMode mode);

struct FaultSpec {
  double embed_nan_prob = 0.0;
  double prompt_drop_prob = 0.0;
  double prompt_dup_prob = 0.0;
  double cache_poison_prob = 0.0;
  FileFaultMode file_mode = FileFaultMode::kNone;
  int slow_every = 0;  // 0 disables slow-batch injection
  int slow_ms = 5;
  uint64_t seed = 1337;

  // True if any fault class is active.
  bool Any() const;
};

// Parses the grammar above. Empty spec parses to an all-disabled FaultSpec.
// Unknown keys and out-of-range probabilities are kInvalidArgument.
StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec);

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }

  // Overwrites a deterministic subset of rows of a row-major (rows x cols)
  // buffer with NaN/Inf values. Returns the number of rows corrupted.
  int CorruptRows(std::vector<float>* data, int rows, int cols);

  // Drops each element of `selected` with prompt_drop_prob (always keeping
  // at least one) and duplicates each survivor with prompt_dup_prob.
  // Returns the number of mutations applied.
  int MutatePromptSet(std::vector<int>* selected);

  // With cache_poison_prob, picks one of `num_entries` cache slots to
  // poison; returns its index, or -1 for no fault this round.
  int PickCacheEntryToPoison(int num_entries);

  // Corrupts the file at `path` per the spec's file mode: truncates it to
  // half, flips one bit mid-file, or stomps the leading magic bytes.
  Status CorruptFileBytes(const std::string& path);

  // Sleeps for slow_ms on every slow_every-th call; returns true when the
  // slow batch fired.
  bool MaybeSlowBatch();

 private:
  FaultSpec spec_;
  Rng rng_;
  int64_t batch_counter_ = 0;
};

// Process-global injector: null until configured. Injection sites treat
// null as "fault injection disabled".
FaultInjector* GlobalFaultInjector();

// Parses `spec` and installs it globally (empty spec uninstalls). When
// `spec` is empty, the GP_FAULT environment variable is consulted first.
Status ConfigureGlobalFaultInjection(const std::string& spec);

// RAII scope for tests: installs an injector on construction, restores the
// previous one on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultSpec& spec);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_FAULT_H_
