// Deterministic fault injection for robustness testing.
//
// A FaultInjector simulates the failure modes a production serving system
// must survive: non-finite embeddings coming out of a numerically damaged
// encoder, prompts dropped or duplicated by a lossy upstream stage,
// poisoned pseudo-prompt cache entries, corrupted checkpoint/graph files,
// and pathologically slow batches. All decisions are driven by a seeded
// Rng, so a given spec reproduces the exact same fault pattern every run.
//
// Specs are parsed from a comma-separated key=value grammar shared by the
// `--fault=` flag and the GP_FAULT environment variable:
//
//   embed_nan=P     corrupt each embedded row with NaN/Inf with prob P
//   prompt_drop=P   drop each selected prompt with prob P (keeps >= 1)
//   prompt_dup=P    duplicate each selected prompt with prob P
//   cache_poison=P  poison a cached pseudo-prompt with prob P per batch
//   file=MODE       corrupt files passed to CorruptFileBytes:
//                   truncate | bitflip | magic
//   slow_every=N    every Nth query batch sleeps...
//   slow_ms=M       ...for M milliseconds (default 5)
//   serve_fail=P    transient per-request serving failure with prob P
//                   (the daemon's retry path; see src/serve)
//   serve_torn=P    tear each outgoing protocol frame with prob P
//                   (chaos clients send a truncated frame and reconnect)
//   serve_stall=P   stall mid-frame with prob P...
//   serve_stall_ms=M  ...for M milliseconds (default 20)
//   seed=S          injector RNG seed (default 1337)
//
// Example: --fault=embed_nan=0.2,prompt_drop=0.3,seed=7
//
// Injection sites call through ActiveFaultInjector(): a thread-local
// override when one is installed (the serving daemon scopes a per-tenant
// injector around each request), otherwise the process-global injector,
// which is null (zero overhead beyond a pointer test) unless explicitly
// configured.

#ifndef GRAPHPROMPTER_UTIL_FAULT_H_
#define GRAPHPROMPTER_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace gp {

enum class FileFaultMode { kNone, kTruncate, kBitFlip, kMagic };

const char* FileFaultModeName(FileFaultMode mode);

struct FaultSpec {
  double embed_nan_prob = 0.0;
  double prompt_drop_prob = 0.0;
  double prompt_dup_prob = 0.0;
  double cache_poison_prob = 0.0;
  FileFaultMode file_mode = FileFaultMode::kNone;
  int slow_every = 0;  // 0 disables slow-batch injection
  int slow_ms = 5;
  // Serving-scoped faults (src/serve): transient request failures, torn
  // protocol frames, and mid-frame client stalls.
  double serve_fail_prob = 0.0;
  double serve_torn_prob = 0.0;
  double serve_stall_prob = 0.0;
  int serve_stall_ms = 20;
  uint64_t seed = 1337;

  // True if any fault class is active.
  bool Any() const;
};

// Parses the grammar above. Empty spec parses to an all-disabled FaultSpec.
// Unknown keys and out-of-range probabilities are kInvalidArgument.
StatusOr<FaultSpec> ParseFaultSpec(const std::string& spec);

class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }

  // Overwrites a deterministic subset of rows of a row-major (rows x cols)
  // buffer with NaN/Inf values. Returns the number of rows corrupted.
  int CorruptRows(std::vector<float>* data, int rows, int cols);

  // Drops each element of `selected` with prompt_drop_prob (always keeping
  // at least one) and duplicates each survivor with prompt_dup_prob.
  // Returns the number of mutations applied.
  int MutatePromptSet(std::vector<int>* selected);

  // With cache_poison_prob, picks one of `num_entries` cache slots to
  // poison; returns its index, or -1 for no fault this round.
  int PickCacheEntryToPoison(int num_entries);

  // Corrupts the file at `path` per the spec's file mode: truncates it to
  // half, flips one bit mid-file, or stomps the leading magic bytes.
  Status CorruptFileBytes(const std::string& path);

  // Sleeps for slow_ms on every slow_every-th call; returns true when the
  // slow batch fired.
  bool MaybeSlowBatch();

  // With serve_fail_prob, reports a transient serving failure the daemon
  // should retry with backoff.
  bool MaybeFailRequest();

  // With serve_torn_prob, returns how many leading bytes of a
  // `frame_bytes`-long outgoing frame a chaos client should send before
  // abandoning it (in [0, frame_bytes)); -1 means send the frame intact.
  int64_t TornFrameBytes(size_t frame_bytes);

  // With serve_stall_prob, returns the number of milliseconds a chaos
  // client should stall mid-frame; 0 means no stall this time. The caller
  // sleeps, so the injector's decisions stay deterministic.
  int MaybeStallMs();

 private:
  FaultSpec spec_;
  Rng rng_;
  int64_t batch_counter_ = 0;
};

// Process-global injector: null until configured. Injection sites treat
// null as "fault injection disabled".
FaultInjector* GlobalFaultInjector();

// The injector injection sites should consult: the calling thread's
// scoped override when one is installed, otherwise the global injector.
// The serving daemon uses the override to give each tenant its own
// deterministic fault stream without cross-tenant interference.
FaultInjector* ActiveFaultInjector();

// RAII thread-local override (non-owning): installs `injector` as the
// calling thread's active injector, restores the previous override on
// destruction. Pass null to suppress the global injector on this thread.
class ScopedThreadFaultInjector {
 public:
  explicit ScopedThreadFaultInjector(FaultInjector* injector);
  ~ScopedThreadFaultInjector();

  ScopedThreadFaultInjector(const ScopedThreadFaultInjector&) = delete;
  ScopedThreadFaultInjector& operator=(const ScopedThreadFaultInjector&) =
      delete;

 private:
  FaultInjector* previous_;
  bool installed_before_ = false;
};

// Parses `spec` and installs it globally (empty spec uninstalls). When
// `spec` is empty, the GP_FAULT environment variable is consulted first.
Status ConfigureGlobalFaultInjection(const std::string& spec);

// RAII scope for tests: installs an injector on construction, restores the
// previous one on destruction.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultSpec& spec);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_UTIL_FAULT_H_
