#include "core/prompt_generator.h"

#include <cmath>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

const char* ReconArchName(ReconArch arch) {
  switch (arch) {
    case ReconArch::kMlp:
      return "MLP";
    case ReconArch::kBilinear:
      return "bilinear";
  }
  return "?";
}

PromptGenerator::PromptGenerator(const PromptGeneratorConfig& config, Rng* rng)
    : config_(config) {
  // The reconstruction network only exists when the stage is enabled
  // (Prodigy's architecture has no reweighting module).
  if (config.use_reconstruction) {
    switch (config.recon_arch) {
      case ReconArch::kMlp:
        recon_mlp_ = std::make_unique<Mlp>(
            std::vector<int>{2 * config.gnn.in_dim, config.recon_hidden, 1},
            rng);
        RegisterModule("recon_mlp", recon_mlp_.get());
        break;
      case ReconArch::kBilinear:
        recon_bilinear_ = std::make_unique<Linear>(
            config.gnn.in_dim, config.gnn.in_dim, rng, /*use_bias=*/false);
        RegisterModule("recon_bilinear", recon_bilinear_.get());
        break;
    }
  }
  encoder_ = std::make_unique<GnnEncoder>(config.gnn, rng);
  RegisterModule("gnn_d", encoder_.get());
}

Subgraph PromptGenerator::SampleForItem(const DatasetBundle& dataset,
                                        int item, Rng* rng) const {
  if (config_.use_random_walk) {
    RandomWalkSampler sampler(&dataset.graph, config_.sampler);
    return dataset.task == TaskType::kNodeClassification
               ? sampler.SampleAroundNode(item, rng)
               : sampler.SampleAroundEdge(item, rng);
  }
  NeighborSampler sampler(&dataset.graph, config_.sampler);
  return dataset.task == TaskType::kNodeClassification
             ? sampler.SampleAroundNode(item, rng)
             : sampler.SampleAroundEdge(item, rng);
}

Subgraph PromptGenerator::SampleForNode(const Graph& graph, int node,
                                        Rng* rng) const {
  if (config_.use_random_walk) {
    RandomWalkSampler sampler(&graph, config_.sampler);
    return sampler.SampleAroundNode(node, rng);
  }
  NeighborSampler sampler(&graph, config_.sampler);
  return sampler.SampleAroundNode(node, rng);
}

Tensor PromptGenerator::EdgeWeightsFor(const Tensor& features,
                                       const std::vector<int>& src,
                                       const std::vector<int>& dst) const {
  // Eq. 2: z_uv = MLP_phi(V(u), V(v), E(u,v)). Node features of the two
  // endpoints are concatenated; the initial edge embedding in our datasets
  // is itself derived from the endpoints, so this input covers both the
  // node- and edge-classification forms.
  Tensor logits;
  if (config_.recon_arch == ReconArch::kMlp) {
    Tensor endpoint_pairs =
        ConcatCols(GatherRows(features, src), GatherRows(features, dst));
    logits = recon_mlp_->Forward(endpoint_pairs);
  } else {
    // Bilinear variant: z_uv = x_u^T W x_v / sqrt(d).
    Tensor projected = recon_bilinear_->Forward(GatherRows(features, src));
    logits = Scale(
        SumCols(Mul(projected, GatherRows(features, dst))),
        1.0f / std::sqrt(static_cast<float>(config_.gnn.in_dim)));
  }
  // Eq. 3: w_uv = sigmoid(z_uv).
  return Sigmoid(logits);
}

Tensor PromptGenerator::ReconstructEdgeWeights(const Graph& graph,
                                               const Subgraph& sg) const {
  if (sg.edge_src.empty()) return Tensor::Zeros(0, 1);
  Tensor features = GatherRows(graph.node_features(), sg.nodes);
  if (!config_.use_reconstruction) {
    // Shared read-only ones column; avoids a fresh allocation per subgraph.
    return CachedOnesColumn(sg.num_edges());
  }
  GP_TRACE_SPAN("generator/reconstruct");
  return EdgeWeightsFor(features, sg.edge_src, sg.edge_dst);
}

Tensor PromptGenerator::EmbedSubgraphs(const Graph& graph,
                                       const std::vector<Subgraph>& subgraphs,
                                       const Tensor& feature_offset) const {
  CHECK(!subgraphs.empty());
  // Pack all subgraphs into one disjoint union.
  std::vector<int> union_nodes;     // original node ids
  std::vector<int> union_src, union_dst;
  std::vector<int> center_rows;     // rows of centers within the union
  std::vector<int> center_segment;  // which subgraph each center belongs to
  int offset = 0;
  for (size_t b = 0; b < subgraphs.size(); ++b) {
    const Subgraph& sg = subgraphs[b];
    CHECK_GT(sg.num_nodes(), 0);
    union_nodes.insert(union_nodes.end(), sg.nodes.begin(), sg.nodes.end());
    for (int e = 0; e < sg.num_edges(); ++e) {
      union_src.push_back(sg.edge_src[e] + offset);
      union_dst.push_back(sg.edge_dst[e] + offset);
    }
    for (int local : sg.center_local) {
      center_rows.push_back(local + offset);
      center_segment.push_back(static_cast<int>(b));
    }
    offset += sg.num_nodes();
  }

  static Counter* embedded = Telemetry().GetCounter("generator/subgraphs");
  embedded->Add(static_cast<int64_t>(subgraphs.size()));

  Tensor features = GatherRows(graph.node_features(), union_nodes);
  if (feature_offset.defined()) {
    features = Add(features, feature_offset);  // broadcast row
  }
  Tensor edge_weight;  // undefined = unit weights
  if (config_.use_reconstruction && !union_src.empty()) {
    GP_TRACE_SPAN("generator/reconstruct");
    edge_weight = EdgeWeightsFor(features, union_src, union_dst);
  }
  Tensor node_embeddings;
  {
    GP_TRACE_SPAN("generator/encode");
    node_embeddings =
        encoder_->Forward(features, union_src, union_dst, edge_weight);
  }

  // Readout: mean of each subgraph's center-node embeddings.
  Tensor centers = GatherRows(node_embeddings, center_rows);
  return SegmentMeanRows(centers, center_segment,
                         static_cast<int>(subgraphs.size()));
}

Tensor PromptGenerator::EmbedItems(const DatasetBundle& dataset,
                                   const std::vector<int>& items,
                                   Rng* rng) const {
  std::vector<Subgraph> subgraphs;
  subgraphs.reserve(items.size());
  {
    GP_TRACE_SPAN("generator/sample");
    for (int item : items) {
      subgraphs.push_back(SampleForItem(dataset, item, rng));
    }
  }
  return EmbedSubgraphs(dataset.graph, subgraphs);
}

}  // namespace gp
