// Stage 2a — pre-trained selection layers (Sec. IV-B1, Eq. 5).
//
// I_p = sigmoid(MLP_theta(G_p)) scores the importance of each candidate
// prompt embedding; the importance re-scales prompt embeddings before the
// task graph (G'_p = G_p * I_p) and contributes the I_p * I_q term of the
// combined selection score (Eq. 7).

#ifndef GRAPHPROMPTER_CORE_SELECTION_LAYER_H_
#define GRAPHPROMPTER_CORE_SELECTION_LAYER_H_

#include <memory>

#include "nn/mlp.h"
#include "nn/module.h"

namespace gp {

struct SelectionLayerConfig {
  int embedding_dim = 64;
  int hidden_dim = 64;  // two-layer MLP (Sec. V-F)
};

class SelectionLayer : public Module {
 public:
  SelectionLayer(const SelectionLayerConfig& config, Rng* rng);

  // Importance of each embedding row: (N x d) -> (N x 1) in (0, 1).
  Tensor Importance(const Tensor& embeddings) const;

  // Convenience: embeddings re-scaled by their importance (G'_p = G_p*I_p).
  Tensor WeightedEmbeddings(const Tensor& embeddings) const;

 private:
  std::unique_ptr<Mlp> mlp_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_SELECTION_LAYER_H_
