#include "core/lfu_cache.h"

namespace gp {

LfuCache::LfuCache(int capacity) : capacity_(capacity) {
  CHECK_GE(capacity, 0);
}

int64_t LfuCache::Insert(CacheEntry entry) {
  if (capacity_ == 0) return -1;
  if (size() >= capacity_) {
    // Evict from the lowest-frequency bucket (front of its FIFO).
    CHECK(!buckets_.empty());
    auto lowest = buckets_.begin();
    const int64_t victim = lowest->members.front();
    lowest->members.pop_front();
    if (lowest->members.empty()) buckets_.erase(lowest);
    nodes_.erase(victim);
  }
  const int64_t id = next_id_++;
  // Frequency-1 bucket is the head iff it exists.
  if (buckets_.empty() || buckets_.front().frequency != 1) {
    buckets_.push_front({1, {}});
  }
  auto bucket = buckets_.begin();
  bucket->members.push_back(id);
  auto position = std::prev(bucket->members.end());
  nodes_[id] = {std::move(entry), bucket, position};
  return id;
}

bool LfuCache::Touch(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  Promote(id);
  return true;
}

bool LfuCache::Erase(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  auto bucket = it->second.bucket;
  bucket->members.erase(it->second.position);
  if (bucket->members.empty()) buckets_.erase(bucket);
  nodes_.erase(it);
  return true;
}

CacheEntry* LfuCache::MutableEntry(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return nullptr;
  return &it->second.entry;
}

void LfuCache::Promote(int64_t id) {
  NodeInfo& info = nodes_.at(id);
  auto bucket = info.bucket;
  const int next_freq = bucket->frequency + 1;
  auto next_bucket = std::next(bucket);
  if (next_bucket == buckets_.end() || next_bucket->frequency != next_freq) {
    next_bucket = buckets_.insert(next_bucket, {next_freq, {}});
  }
  bucket->members.erase(info.position);
  next_bucket->members.push_back(id);
  info.bucket = next_bucket;
  info.position = std::prev(next_bucket->members.end());
  if (bucket->members.empty()) buckets_.erase(bucket);
}

int LfuCache::FrequencyOf(int64_t id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return 0;
  return it->second.bucket->frequency;
}

std::vector<std::pair<int64_t, const CacheEntry*>> LfuCache::Entries() const {
  std::vector<std::pair<int64_t, const CacheEntry*>> out;
  out.reserve(nodes_.size());
  for (const auto& [id, info] : nodes_) {
    out.emplace_back(id, &info.entry);
  }
  return out;
}

void LfuCache::Clear() {
  buckets_.clear();
  nodes_.clear();
}

}  // namespace gp
