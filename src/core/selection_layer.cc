#include "core/selection_layer.h"

#include "obs/trace.h"
#include "tensor/ops.h"

namespace gp {

SelectionLayer::SelectionLayer(const SelectionLayerConfig& config, Rng* rng) {
  mlp_ = std::make_unique<Mlp>(
      std::vector<int>{config.embedding_dim, config.hidden_dim, 1}, rng);
  RegisterModule("selection_mlp", mlp_.get());
}

Tensor SelectionLayer::Importance(const Tensor& embeddings) const {
  GP_TRACE_SPAN("selector/importance");
  return Sigmoid(mlp_->Forward(embeddings));
}

Tensor SelectionLayer::WeightedEmbeddings(const Tensor& embeddings) const {
  return RowScale(embeddings, Importance(embeddings));
}

}  // namespace gp
