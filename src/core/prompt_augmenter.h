// Stage 3 — Prompt Augmenter (Sec. IV-C).
//
// Test-time adaptation: the most confident predicted queries are inserted
// into an LFU cache as pseudo-labelled prompts; cached entries join the
// refined prompt set for subsequent queries (Eq. 9, S-hat' = S-hat ∪ C).
// A cache entry's LFU frequency is bumped whenever it lands in a query's
// top-k similarity set, exploiting the spatial locality of graph sampling.

#ifndef GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_
#define GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_

#include <vector>

#include "core/cache_policy.h"
#include "core/knn_retrieval.h"
#include "core/lfu_cache.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {

struct PromptAugmenterConfig {
  int cache_capacity = 3;  // c — Fig. 5 finds c = 3 optimal
  // Replacement policy; the paper uses LFU, LRU/FIFO are the pluggable
  // alternatives from its Further Discussion.
  CachePolicy policy = CachePolicy::kLfu;
  int top_k_hits = 3;      // similarity hits that bump LFU frequency
  DistanceMetric metric = DistanceMetric::kCosine;
  // Table VII robustness variant: insert random queries instead of the
  // most confident ones.
  bool random_pseudo_labels = false;
  // Minimum softmax confidence required to cache a pseudo-label
  // ("the most confidence probability", Sec. IV-C). The evaluation loop
  // raises this to a ways-relative gate (1.5/m) for confident insertion,
  // keeping low-quality pseudo-labels out in hard many-way episodes.
  float min_confidence = 0.0f;
};

// Stateful online augmenter. One instance per evaluation episode.
class PromptAugmenter {
 public:
  PromptAugmenter(const PromptAugmenterConfig& config, uint64_t seed);

  // The cached online prompts, as (C x d) embeddings plus pseudo-labels.
  // `dim` is needed to shape an empty result.
  struct CachedPrompts {
    Tensor embeddings;        // (C x d); 0 rows when the cache is empty
    std::vector<int> labels;  // pseudo-labels, episode-local
  };
  CachedPrompts GetCachedPrompts(int dim) const;

  // Feeds back one predicted batch: bumps LFU frequencies of cache entries
  // similar to the queries, then inserts up to `max_inserts` (<= m, the
  // paper's |Q-hat| <= m) pseudo-labelled queries.
  void ObserveQueries(const Tensor& query_embeddings,
                      const std::vector<int>& predicted_labels,
                      const std::vector<float>& confidences, int max_inserts);

  const ReplacementCache& cache() const { return *cache_; }
  void Reset() { cache_->Clear(); }

 private:
  PromptAugmenterConfig config_;
  std::unique_ptr<ReplacementCache> cache_;
  Rng rng_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_
