// Stage 3 — Prompt Augmenter (Sec. IV-C).
//
// Test-time adaptation: the most confident predicted queries are inserted
// into an LFU cache as pseudo-labelled prompts; cached entries join the
// refined prompt set for subsequent queries (Eq. 9, S-hat' = S-hat ∪ C).
// A cache entry's LFU frequency is bumped whenever it lands in a query's
// top-k similarity set, exploiting the spatial locality of graph sampling.

#ifndef GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_
#define GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_

#include <cstdint>
#include <vector>

#include "core/cache_policy.h"
#include "core/knn_retrieval.h"
#include "core/lfu_cache.h"
#include "core/prompt_index.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace gp {

struct PromptAugmenterConfig {
  int cache_capacity = 3;  // c — Fig. 5 finds c = 3 optimal
  // Replacement policy; the paper uses LFU, LRU/FIFO are the pluggable
  // alternatives from its Further Discussion.
  CachePolicy policy = CachePolicy::kLfu;
  int top_k_hits = 3;      // similarity hits that bump LFU frequency
  DistanceMetric metric = DistanceMetric::kCosine;
  // Table VII robustness variant: insert random queries instead of the
  // most confident ones.
  bool random_pseudo_labels = false;
  // Minimum softmax confidence required to cache a pseudo-label
  // ("the most confidence probability", Sec. IV-C). The evaluation loop
  // raises this to a ways-relative gate (1.5/m) for confident insertion,
  // keeping low-quality pseudo-labels out in hard many-way episodes.
  float min_confidence = 0.0f;
  // IVF index over the cache (core/prompt_index.h). At the paper's cache
  // sizes (Fig. 5 peaks at c = 3) the auto mode stays exact; a large
  // online cache shards itself once it crosses index.min_points entries.
  PromptIndexOptions index = GlobalIndexOptions();
};

// Stateful online augmenter. One instance per evaluation episode.
class PromptAugmenter {
 public:
  PromptAugmenter(const PromptAugmenterConfig& config, uint64_t seed);

  // The cached online prompts, as (C x d) embeddings plus pseudo-labels.
  // `dim` is needed to shape an empty result.
  struct CachedPrompts {
    Tensor embeddings;        // (C x d); 0 rows when the cache is empty
    std::vector<int> labels;  // pseudo-labels, episode-local
  };
  CachedPrompts GetCachedPrompts(int dim) const;

  // Feeds back one predicted batch: bumps LFU frequencies of cache entries
  // similar to the queries, then inserts up to `max_inserts` (<= m, the
  // paper's |Q-hat| <= m) pseudo-labelled queries. A query with a
  // non-finite embedding or confidence is never cached (Eq. 9's S-hat'
  // must stay clean): it is rejected and counted in health().
  void ObserveQueries(const Tensor& query_embeddings,
                      const std::vector<int>& predicted_labels,
                      const std::vector<float>& confidences, int max_inserts);

  // Scans the cache and evicts entries that are poisoned — non-finite
  // embedding values, a wrong embedding width, or a pseudo-label outside
  // [0, num_classes). Returns the number of entries evicted. Cheap
  // (capacity is small: Fig. 5 peaks at c = 3) and safe to call per batch.
  int EvictPoisoned(int dim, int num_classes);

  // Checks that every cached entry is usable for a (dim)-wide prompt set
  // with labels in [0, num_classes). kFailedPrecondition when the cache is
  // unhealthy; the caller then skips the augmenter stage for the episode
  // instead of crashing in GetCachedPrompts.
  Status ValidateCache(int dim, int num_classes) const;

  // Degradation counters for the augmenter stage.
  struct Health {
    int64_t rejected_nonfinite = 0;       // inserts refused: bad values
    int64_t rejected_low_confidence = 0;  // inserts refused: below gate
    int64_t evicted_poisoned = 0;         // entries removed by EvictPoisoned
  };
  const Health& health() const { return health_; }

  const PromptAugmenterConfig& config() const { return config_; }

  const ReplacementCache& cache() const { return *cache_; }
  // Mutable cache access: the fault-injection path poisons entries through
  // this to exercise EvictPoisoned/ValidateCache.
  ReplacementCache& mutable_cache() { return *cache_; }
  void Reset() {
    cache_->Clear();
    index_.Clear();
  }

  // The retrieval index mirroring the cache contents (exact below the
  // sharding threshold). Exposed for tests and telemetry.
  const PromptIndex& index() const { return index_; }
  // Re-derives the index from the cache after out-of-band cache mutation
  // (mutable_cache(), fault injection). ObserveQueries/EvictPoisoned keep
  // the two in sync on their own.
  void RebuildIndex();

 private:
  PromptAugmenterConfig config_;
  std::unique_ptr<ReplacementCache> cache_;
  PromptIndex index_;
  Rng rng_;
  Health health_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_PROMPT_AUGMENTER_H_
