#include "core/kmeans.h"

#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gp {
namespace {

double SquaredDistance(const Tensor& a, int row_a, const Tensor& b,
                       int row_b) {
  double total = 0.0;
  for (int c = 0; c < a.cols(); ++c) {
    const double d = a.at(row_a, c) - b.at(row_b, c);
    total += d * d;
  }
  return total;
}

}  // namespace

KMeansResult RunKMeans(const Tensor& points, const KMeansConfig& config,
                       Rng* rng) {
  const int n = points.rows();
  const int d = points.cols();
  const int k = config.clusters;
  CHECK_GE(n, k);
  CHECK_GE(k, 1);
  CHECK(rng != nullptr);

  KMeansResult result;
  result.centroids = Tensor::Zeros(k, d);
  result.assignment.assign(n, 0);

  // k-means++ seeding.
  std::vector<int> seeds;
  seeds.push_back(static_cast<int>(rng->UniformInt(n)));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (static_cast<int>(seeds.size()) < k) {
    const int last = seeds.back();
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const double dist = SquaredDistance(points, i, points, last);
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    // Sample proportional to squared distance (fallback: uniform).
    int chosen = -1;
    if (total > 1e-12) {
      double target = rng->UniformDouble() * total;
      for (int i = 0; i < n; ++i) {
        target -= min_dist[i];
        if (target <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    if (chosen < 0) chosen = static_cast<int>(rng->UniformInt(n));
    seeds.push_back(chosen);
  }
  for (int c = 0; c < k; ++c) {
    for (int j = 0; j < d; ++j) {
      result.centroids.at(c, j) = points.at(seeds[c], j);
    }
  }

  // Lloyd iterations.
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    bool changed = false;
    // Assign.
    for (int i = 0; i < n; ++i) {
      int best = 0;
      double best_dist = SquaredDistance(points, i, result.centroids, 0);
      for (int c = 1; c < k; ++c) {
        const double dist = SquaredDistance(points, i, result.centroids, c);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<int> counts(k, 0);
    Tensor sums = Tensor::Zeros(k, d);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      for (int j = 0; j < d; ++j) sums.at(c, j) += points.at(i, j);
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster from the point farthest from its
        // centroid.
        int farthest = 0;
        double far_dist = -1.0;
        for (int i = 0; i < n; ++i) {
          const double dist = SquaredDistance(points, i, result.centroids,
                                              result.assignment[i]);
          if (dist > far_dist) {
            far_dist = dist;
            farthest = i;
          }
        }
        for (int j = 0; j < d; ++j) {
          result.centroids.at(c, j) = points.at(farthest, j);
        }
        changed = true;
        continue;
      }
      for (int j = 0; j < d; ++j) {
        result.centroids.at(c, j) = sums.at(c, j) / counts[c];
      }
    }
    if (!changed) break;
  }

  result.inertia = 0.0;
  for (int i = 0; i < n; ++i) {
    result.inertia +=
        SquaredDistance(points, i, result.centroids, result.assignment[i]);
  }
  return result;
}

}  // namespace gp
