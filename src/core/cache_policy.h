// Alternative cache replacement policies for the Prompt Augmenter.
//
// The paper's Further Discussion notes the LFU cache "can be replaced with
// other caching solutions"; this header provides the common interface plus
// LRU and FIFO policies. The LFU implementation lives in
// core/lfu_cache.h and adapts to this interface via LfuReplacementCache.

#ifndef GRAPHPROMPTER_CORE_CACHE_POLICY_H_
#define GRAPHPROMPTER_CORE_CACHE_POLICY_H_

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/lfu_cache.h"

namespace gp {

enum class CachePolicy { kLfu, kLru, kFifo };

const char* CachePolicyName(CachePolicy policy);

// Common interface of the augmenter's prompt caches. Semantics mirror
// LfuCache: Insert returns a unique id (or -1 at capacity 0); Touch records
// a "use" (a similarity hit); eviction policy differs per implementation.
class ReplacementCache {
 public:
  virtual ~ReplacementCache() = default;

  virtual int capacity() const = 0;
  virtual int size() const = 0;
  bool empty() const { return size() == 0; }

  virtual int64_t Insert(CacheEntry entry) = 0;
  virtual bool Touch(int64_t id) = 0;
  // Removes an entry outright (quarantine of poisoned pseudo-prompts).
  virtual bool Erase(int64_t id) = 0;
  // Mutable payload access; fault-injection and diagnostic hook.
  virtual CacheEntry* MutableEntry(int64_t id) = 0;
  virtual std::vector<std::pair<int64_t, const CacheEntry*>> Entries()
      const = 0;
  virtual void Clear() = 0;
};

// LFU adapter around LfuCache.
class LfuReplacementCache : public ReplacementCache {
 public:
  explicit LfuReplacementCache(int capacity) : cache_(capacity) {}

  int capacity() const override { return cache_.capacity(); }
  int size() const override { return cache_.size(); }
  int64_t Insert(CacheEntry entry) override {
    return cache_.Insert(std::move(entry));
  }
  bool Touch(int64_t id) override { return cache_.Touch(id); }
  bool Erase(int64_t id) override { return cache_.Erase(id); }
  CacheEntry* MutableEntry(int64_t id) override {
    return cache_.MutableEntry(id);
  }
  std::vector<std::pair<int64_t, const CacheEntry*>> Entries()
      const override {
    return cache_.Entries();
  }
  void Clear() override { cache_.Clear(); }

  const LfuCache& lfu() const { return cache_; }

 private:
  LfuCache cache_;
};

// Least-Recently-Used: Touch moves an entry to the back; eviction takes the
// front (least recently inserted-or-touched).
class LruCache : public ReplacementCache {
 public:
  explicit LruCache(int capacity);

  int capacity() const override { return capacity_; }
  int size() const override { return static_cast<int>(nodes_.size()); }
  int64_t Insert(CacheEntry entry) override;
  bool Touch(int64_t id) override;
  bool Erase(int64_t id) override;
  CacheEntry* MutableEntry(int64_t id) override;
  std::vector<std::pair<int64_t, const CacheEntry*>> Entries() const override;
  void Clear() override;

 private:
  struct Node {
    CacheEntry entry;
    std::list<int64_t>::iterator position;
  };
  int capacity_;
  int64_t next_id_ = 0;
  std::list<int64_t> order_;  // front = next eviction victim
  std::unordered_map<int64_t, Node> nodes_;
};

// First-In-First-Out: Touch has no effect on eviction order.
class FifoCache : public ReplacementCache {
 public:
  explicit FifoCache(int capacity);

  int capacity() const override { return capacity_; }
  int size() const override { return static_cast<int>(nodes_.size()); }
  int64_t Insert(CacheEntry entry) override;
  bool Touch(int64_t id) override;
  bool Erase(int64_t id) override;
  CacheEntry* MutableEntry(int64_t id) override;
  std::vector<std::pair<int64_t, const CacheEntry*>> Entries() const override;
  void Clear() override;

 private:
  int capacity_;
  int64_t next_id_ = 0;
  std::list<int64_t> order_;
  std::unordered_map<int64_t, CacheEntry> nodes_;
};

// Factory.
std::unique_ptr<ReplacementCache> MakeCache(CachePolicy policy, int capacity);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_CACHE_POLICY_H_
