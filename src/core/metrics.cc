#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gp {

double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected) {
  CHECK_EQ(predicted.size(), expected.size());
  if (predicted.empty()) return 0.0;
  int correct = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (predicted[i] == expected[i]) ++correct;
  }
  return static_cast<double>(correct) / predicted.size();
}

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double total = 0.0;
  for (double v : values) total += v;
  out.mean = total / values.size();
  double var = 0.0;
  for (double v : values) var += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(var / values.size());
  return out;
}

namespace {

double RowDistance(const Tensor& embeddings, int a, int b) {
  double total = 0.0;
  for (int c = 0; c < embeddings.cols(); ++c) {
    const double d = embeddings.at(a, c) - embeddings.at(b, c);
    total += d * d;
  }
  return std::sqrt(total);
}

}  // namespace

double SilhouetteScore(const Tensor& embeddings,
                       const std::vector<int>& labels,
                       DegradationStats* stats) {
  const int n = embeddings.rows();
  CHECK_EQ(static_cast<size_t>(n), labels.size());
  int num_classes = 0;
  for (int l : labels) num_classes = std::max(num_classes, l + 1);
  if (num_classes < 2 || n < 3) return 0.0;

  std::vector<int> class_size(num_classes, 0);
  for (int l : labels) ++class_size[l];

  double total_s = 0.0;
  int counted = 0;
  int64_t skipped_nonfinite = 0;
  for (int i = 0; i < n; ++i) {
    if (class_size[labels[i]] < 2) continue;  // silhouette undefined
    // Mean distance to every class.
    std::vector<double> mean_dist(num_classes, 0.0);
    for (int j = 0; j < n; ++j) {
      if (j == i) continue;
      mean_dist[labels[j]] += RowDistance(embeddings, i, j);
    }
    for (int c = 0; c < num_classes; ++c) {
      const int denom = (c == labels[i]) ? class_size[c] - 1 : class_size[c];
      if (denom > 0) mean_dist[c] /= denom;
    }
    const double a = mean_dist[labels[i]];
    double b = std::numeric_limits<double>::infinity();
    for (int c = 0; c < num_classes; ++c) {
      if (c != labels[i] && class_size[c] > 0) b = std::min(b, mean_dist[c]);
    }
    // A non-finite a (NaN embedding row) or b (NaN distances, or no other
    // reachable cluster) would poison the whole mean; skip the row and
    // account for it instead of dropping it invisibly.
    if (!std::isfinite(a) || !std::isfinite(b)) {
      ++skipped_nonfinite;
      continue;
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) {
      total_s += (b - a) / denom;
      ++counted;
    }
  }
  if (skipped_nonfinite > 0) {
    if (stats != nullptr) {
      stats->nonfinite_scores_skipped += skipped_nonfinite;
    }
    LOG(WARNING) << "SilhouetteScore: skipped " << skipped_nonfinite << "/"
                 << n << " rows with non-finite scores";
  }
  return counted > 0 ? total_s / counted : 0.0;
}

double IntraInterDistanceRatio(const Tensor& embeddings,
                               const std::vector<int>& labels) {
  const int n = embeddings.rows();
  CHECK_EQ(static_cast<size_t>(n), labels.size());
  double intra = 0.0, inter = 0.0;
  int64_t intra_count = 0, inter_count = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double d = RowDistance(embeddings, i, j);
      if (labels[i] == labels[j]) {
        intra += d;
        ++intra_count;
      } else {
        inter += d;
        ++inter_count;
      }
    }
  }
  if (intra_count == 0 || inter_count == 0 || inter == 0.0) return 0.0;
  return (intra / intra_count) / (inter / inter_count);
}

}  // namespace gp
