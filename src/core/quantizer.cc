#include "core/quantizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace gp {

QuantizerParams FitQuantizer(const float* data, int rows, int dim) {
  QuantizerParams params;
  params.dim = dim;
  params.min.assign(dim, 0.0f);
  params.step.assign(dim, 0.0f);
  if (rows == 0 || dim == 0) return params;

  std::vector<float> lo(dim, std::numeric_limits<float>::infinity());
  std::vector<float> hi(dim, -std::numeric_limits<float>::infinity());
  for (int r = 0; r < rows; ++r) {
    const float* row = data + static_cast<size_t>(r) * dim;
    for (int j = 0; j < dim; ++j) {
      const float v = row[j];
      if (!std::isfinite(v)) continue;
      lo[j] = std::min(lo[j], v);
      hi[j] = std::max(hi[j], v);
    }
  }
  for (int j = 0; j < dim; ++j) {
    if (!(lo[j] <= hi[j])) continue;  // no finite value seen: constant 0
    params.min[j] = lo[j];
    params.step[j] = (hi[j] - lo[j]) / 255.0f;
  }
  return params;
}

void QuantizeRow(const QuantizerParams& params, const float* row,
                 uint8_t* code) {
  const int dim = params.dim;
  for (int j = 0; j < dim; ++j) {
    const float step = params.step[j];
    if (step <= 0.0f || !std::isfinite(row[j])) {
      // Constant dimension (dequantizes to min) or a non-finite value the
      // fit ignored: pin to the low code.
      code[j] = 0;
      continue;
    }
    const float scaled = (row[j] - params.min[j]) / step;
    code[j] = static_cast<uint8_t>(
        std::clamp(std::lround(scaled), 0L, 255L));
  }
}

void DequantizeRow(const QuantizerParams& params, const uint8_t* code,
                   float* out) {
  for (int j = 0; j < params.dim; ++j) {
    out[j] = params.min[j] + params.step[j] * static_cast<float>(code[j]);
  }
}

void QuantizedQueryScratch::Prepare(const QuantizerParams& params,
                                    const float* query, DistanceMetric m) {
  CHECK(params.defined());
  metric = m;
  dim = params.dim;
  scaled.resize(dim);
  switch (m) {
    case DistanceMetric::kCosine: {
      double b = 0.0;
      for (int j = 0; j < dim; ++j) {
        b += static_cast<double>(query[j]) * params.min[j];
        scaled[j] = query[j] * params.step[j];
      }
      bias = static_cast<float>(b);
      query_norm = std::sqrt(SquaredNormRaw(query, dim));
      step = nullptr;
      break;
    }
    case DistanceMetric::kEuclidean:
    case DistanceMetric::kManhattan: {
      for (int j = 0; j < dim; ++j) scaled[j] = query[j] - params.min[j];
      bias = 0.0f;
      query_norm = 0.0;
      step = params.step.data();
      break;
    }
  }
}

float QuantizedQueryScratch::Score(const uint8_t* code, float row_norm) const {
  switch (metric) {
    case DistanceMetric::kCosine: {
      const float dot = bias + QuantizedDotRaw(code, scaled.data(), dim);
      return CosineFromParts(dot, query_norm, row_norm);
    }
    case DistanceMetric::kEuclidean:
      return QuantizedNegL2Raw(code, scaled.data(), step, dim);
    case DistanceMetric::kManhattan:
      return QuantizedNegL1Raw(code, scaled.data(), step, dim);
  }
  return 0.0f;
}

}  // namespace gp
