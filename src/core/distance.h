// Distance metrics and the raw-pointer similarity kernels shared by the
// Prompt Selector (Eq. 6), the Prompt Augmenter cache scan (Eq. 9), and
// the IVF prompt index's centroid routing.
//
// Determinism contract: at SimdLevel::kScalar (GP_SIMD=off) every kernel
// sums its terms in ascending index order with double-precision
// accumulators — exactly the order the original fused
// CosineSimilarity/EuclideanDistance kernels used — so a score computed
// through this header is bitwise identical no matter which call site
// computed it. At SimdLevel::kAvx2 (the default on capable CPUs) the same
// kernels run 4-lane double accumulators reduced in a fixed order: still
// deterministic run-to-run and thread-count-independent, but the lane
// regrouping can differ from scalar in the last ULPs (bounds pinned by
// tests/simd_kernels_test.cc; story in DESIGN.md §10). Dispatch is decided
// once per process via util/cpuid.h, never per call.

#ifndef GRAPHPROMPTER_CORE_DISTANCE_H_
#define GRAPHPROMPTER_CORE_DISTANCE_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/tensor.h"
#include "util/cpuid.h"

namespace gp {

enum class DistanceMetric { kCosine, kEuclidean, kManhattan };

const char* DistanceMetricName(DistanceMetric metric);

// Similarity (higher = closer) between two embedding rows under `metric`.
// Distances are negated so all metrics are "larger is more similar".
float EmbeddingSimilarity(const Tensor& a, int row_a, const Tensor& b,
                          int row_b, DistanceMetric metric);

namespace simd {
// AVX2 kernel variants (core/distance_avx2.cc). Compiled with function
// target attributes so the translation unit stays portable; only reached
// when Avx2Enabled() — i.e. the CPU probe passed and --simd/GP_SIMD did
// not force scalar.
double DotRawAvx2(const float* a, const float* b, int n);
double SquaredNormRawAvx2(const float* a, int n);
double SquaredEuclideanRawAvx2(const float* a, const float* b, int n);
double ManhattanRawAvx2(const float* a, const float* b, int n);
}  // namespace simd

inline double DotRaw(const float* a, const float* b, int n) {
  if (Avx2Enabled()) return simd::DotRawAvx2(a, b, n);
  double dot = 0.0;
  for (int i = 0; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

inline double SquaredNormRaw(const float* a, int n) {
  if (Avx2Enabled()) return simd::SquaredNormRawAvx2(a, n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += static_cast<double>(a[i]) * a[i];
  return total;
}

// Squared L2 distance; shared by the Euclidean similarity kernel and the
// IVF index's nearest-centroid assignment (which ranks by squared
// distance, no sqrt).
inline double SquaredEuclideanRaw(const float* a, const float* b, int n) {
  if (Avx2Enabled()) return simd::SquaredEuclideanRawAvx2(a, b, n);
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

// Combines a dot product and the two operand norms into a cosine score.
//
// The degenerate-norm guard is *relative*: a pair is scored 0 when the
// smaller norm is negligible against the larger (ratio <= 1e-6, i.e. the
// smaller vector's direction carries no reliable float significance at the
// pair's scale) or when the product underflows. A near-zero-norm row —
// e.g. an int8-dequantized all-zeros row whose reconstruction is pure
// quantization noise — therefore scores exactly 0 instead of a
// noise-signed ±O(1) cosine, while a pair of legitimately tiny vectors
// (both norms ~1e-7, ratio ~1) still gets its true cosine, which the old
// absolute `denom < 1e-12` cutoff wrongly zeroed. Regression-tested in
// tests/simd_kernels_test.cc (CosineFromPartsRelativeGuard).
inline float CosineFromParts(double dot, double norm_a, double norm_b) {
  if (std::isnan(norm_a) || std::isnan(norm_b)) {
    // Poisoned norms keep propagating so the degradation ladder sees them.
    return std::numeric_limits<float>::quiet_NaN();
  }
  const double lo = std::min(norm_a, norm_b);
  const double hi = std::max(norm_a, norm_b);
  const double denom = norm_a * norm_b;
  if (lo <= 1e-6 * hi || denom < std::numeric_limits<double>::min()) {
    return 0.0f;
  }
  return static_cast<float>(dot / denom);
}

inline float NegEuclideanRaw(const float* a, const float* b, int n) {
  return -static_cast<float>(std::sqrt(SquaredEuclideanRaw(a, b, n)));
}

inline float NegManhattanRaw(const float* a, const float* b, int n) {
  if (Avx2Enabled()) {
    return -static_cast<float>(simd::ManhattanRawAvx2(a, b, n));
  }
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return -static_cast<float>(total);
}

inline float SimilarityRaw(const float* a, const float* b, int n,
                           DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return CosineFromParts(DotRaw(a, b, n), std::sqrt(SquaredNormRaw(a, n)),
                             std::sqrt(SquaredNormRaw(b, n)));
    case DistanceMetric::kEuclidean:
      return NegEuclideanRaw(a, b, n);
    case DistanceMetric::kManhattan:
      return NegManhattanRaw(a, b, n);
  }
  return 0.0f;
}

// sqrt of each row's squared L2 norm (for cosine scoring): computed once
// per retrieval call instead of once per (prompt, query) pair.
std::vector<double> RowNorms(const Tensor& t);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_DISTANCE_H_
