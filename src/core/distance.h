// Distance metrics and the raw-pointer similarity kernels shared by the
// Prompt Selector (Eq. 6), the Prompt Augmenter cache scan (Eq. 9), and
// the IVF prompt index's centroid routing.
//
// Determinism contract: every kernel sums its terms in ascending index
// order with double-precision accumulators — exactly the order the
// original fused CosineSimilarity/EuclideanDistance kernels used — so a
// score computed through this header is bitwise identical no matter which
// call site computed it.

#ifndef GRAPHPROMPTER_CORE_DISTANCE_H_
#define GRAPHPROMPTER_CORE_DISTANCE_H_

#include <cmath>
#include <vector>

#include "tensor/tensor.h"

namespace gp {

enum class DistanceMetric { kCosine, kEuclidean, kManhattan };

const char* DistanceMetricName(DistanceMetric metric);

// Similarity (higher = closer) between two embedding rows under `metric`.
// Distances are negated so all metrics are "larger is more similar".
float EmbeddingSimilarity(const Tensor& a, int row_a, const Tensor& b,
                          int row_b, DistanceMetric metric);

inline double DotRaw(const float* a, const float* b, int n) {
  double dot = 0.0;
  for (int i = 0; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

inline double SquaredNormRaw(const float* a, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += static_cast<double>(a[i]) * a[i];
  return total;
}

inline float CosineFromParts(double dot, double norm_a, double norm_b) {
  const double denom = norm_a * norm_b;
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

inline float NegEuclideanRaw(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return -static_cast<float>(std::sqrt(total));
}

inline float NegManhattanRaw(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return -static_cast<float>(total);
}

inline float SimilarityRaw(const float* a, const float* b, int n,
                           DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return CosineFromParts(DotRaw(a, b, n), std::sqrt(SquaredNormRaw(a, n)),
                             std::sqrt(SquaredNormRaw(b, n)));
    case DistanceMetric::kEuclidean:
      return NegEuclideanRaw(a, b, n);
    case DistanceMetric::kManhattan:
      return NegManhattanRaw(a, b, n);
  }
  return 0.0f;
}

// sqrt of each row's squared L2 norm (for cosine scoring): computed once
// per retrieval call instead of once per (prompt, query) pair.
std::vector<double> RowNorms(const Tensor& t);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_DISTANCE_H_
