// Observability for graceful degradation (the fault-tolerance ladder).
//
// Every recovery path in the inference pipeline — quarantined non-finite
// prompt embeddings, selector fallbacks, rejected or evicted pseudo-prompt
// cache entries, sanitized queries, non-finite score skips — increments a
// counter here instead of failing silently. EvaluateInContext threads one
// instance through the whole episode loop and returns it in EvalResult, so
// callers can tell a clean run from one that limped through faults.

#ifndef GRAPHPROMPTER_CORE_DEGRADATION_H_
#define GRAPHPROMPTER_CORE_DEGRADATION_H_

#include <cstdint>
#include <string>

namespace gp {

struct DegradationStats {
  // Stage 1 (Prompt Generator) — non-finite embeddings.
  int64_t quarantined_prompts = 0;   // candidate rows removed from S
  int64_t sanitized_queries = 0;     // query rows zeroed (must be predicted)

  // Stage 2 (Prompt Selector) — fallback ladder kNN -> selection-layer-only
  // -> random.
  int64_t selector_knn_only = 0;        // importance term dropped
  int64_t selector_selection_only = 0;  // similarity term dropped
  int64_t selector_random = 0;          // both dropped: random selection
  int64_t deduped_prompts = 0;          // duplicate prompt ids removed
  int64_t missing_class_prompts = 0;    // classes left without any prompt

  // Stage 3 (Prompt Augmenter) — cache hygiene.
  int64_t augmenter_rejected_inserts = 0;  // non-finite insert candidates
  int64_t augmenter_evicted_poisoned = 0;  // poisoned entries evicted
  int64_t augmenter_stage_skips = 0;       // whole stage skipped (unhealthy)

  // Prediction & metrics.
  int64_t prediction_fallbacks = 0;        // non-finite scores -> fallback
  int64_t nonfinite_scores_skipped = 0;    // metrics rows skipped
  int64_t slow_batches = 0;                // injected latency faults seen

  // Sum over every counter: 0 means the run never degraded.
  int64_t TotalEvents() const;

  // Accumulates `other` into this.
  void Merge(const DegradationStats& other);

  // Adds every counter into the process-wide telemetry registry under
  // "degradation/<name>". The struct itself stays the per-run view; the
  // registry accumulates across runs for exporters.
  void PublishToTelemetry() const;

  // One line per non-zero counter ("  quarantined_prompts: 3\n"...);
  // "no degradation events" when clean.
  std::string ToString() const;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_DEGRADATION_H_
