#include "core/task_graph.h"

#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

TaskGraphNet::AttentionLayer::AttentionLayer(int dim, Rng* rng) {
  message = std::make_unique<Linear>(dim + kEdgeFeatDim, dim, rng);
  self = std::make_unique<Linear>(dim, dim, rng);
  RegisterModule("message", message.get());
  RegisterModule("self", self.get());
  attn_src = RegisterParameter("attn_src", Tensor::Xavier(dim, 1, rng));
  attn_dst = RegisterParameter("attn_dst", Tensor::Xavier(dim, 1, rng));
  attn_edge =
      RegisterParameter("attn_edge", Tensor::Xavier(kEdgeFeatDim, 1, rng));
  gate = RegisterParameter("gate", Tensor::Zeros(1, 1));
}

TaskGraphNet::TaskGraphNet(const TaskGraphConfig& config, Rng* rng)
    : config_(config) {
  CHECK_GE(config.num_layers, 1);
  label_init_ = RegisterParameter(
      "label_init",
      Tensor::Randn(1, config.embedding_dim, rng, /*stddev=*/0.1f));
  for (int i = 0; i < config.num_layers; ++i) {
    layers_.push_back(
        std::make_unique<AttentionLayer>(config.embedding_dim, rng));
    RegisterModule("attn" + std::to_string(i), layers_.back().get());
  }
}

TaskGraphOutput TaskGraphNet::Forward(const Tensor& prompt_embeddings,
                                      const std::vector<int>& prompt_labels,
                                      const Tensor& query_embeddings,
                                      int num_classes) const {
  GP_TRACE_SPAN("task_graph/forward");
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  const int dim = config_.embedding_dim;
  CHECK_EQ(prompt_embeddings.cols(), dim);
  CHECK_EQ(query_embeddings.cols(), dim);
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  CHECK_GE(num_classes, 1);

  // Node layout: [prompts | queries | labels].
  const int label_base = num_prompts + num_queries;
  const int total_nodes = label_base + num_classes;

  // Initial features: data-graph embeddings for data nodes. Label nodes
  // start from the mean of their true-class prompts ("label embeddings in
  // the task graph are aggregated from prompts", Sec. IV-B1) plus a shared
  // learnable offset; the attention layers then refine them.
  Tensor label_rows =
      Add(SegmentMeanRows(prompt_embeddings, prompt_labels, num_classes),
          label_init_);
  Tensor h = ConcatRows({prompt_embeddings, query_embeddings, label_rows});

  // Bipartite edges, both directions, with edge attributes.
  std::vector<int> src, dst;
  std::vector<float> edge_feat;  // flattened (E x kEdgeFeatDim)
  auto add_edge = [&](int from, int to, bool is_true, bool is_false,
                      bool is_query, bool reverse) {
    src.push_back(from);
    dst.push_back(to);
    edge_feat.push_back(is_true ? 1.0f : 0.0f);
    edge_feat.push_back(is_false ? 1.0f : 0.0f);
    edge_feat.push_back(is_query ? 1.0f : 0.0f);
    edge_feat.push_back(reverse ? 1.0f : 0.0f);
  };
  for (int p = 0; p < num_prompts; ++p) {
    for (int c = 0; c < num_classes; ++c) {
      const bool is_true = prompt_labels[p] == c;
      add_edge(p, label_base + c, is_true, !is_true, false, false);
      add_edge(label_base + c, p, is_true, !is_true, false, true);
    }
  }
  for (int q = 0; q < num_queries; ++q) {
    for (int c = 0; c < num_classes; ++c) {
      add_edge(num_prompts + q, label_base + c, false, false, true, false);
      add_edge(label_base + c, num_prompts + q, false, false, true, true);
    }
  }
  const int num_edges = static_cast<int>(src.size());
  Tensor efeat =
      Tensor::FromData(num_edges, kEdgeFeatDim, std::move(edge_feat));

  // Attention message passing (GNN_T).
  for (size_t li = 0; li < layers_.size(); ++li) {
    const auto& layer = *layers_[li];
    Tensor h_src = GatherRows(h, src);
    Tensor messages =
        layer.message->Forward(ConcatCols(h_src, efeat));  // (E x d)
    // Attention logits combine source, destination, and edge attributes.
    Tensor logits = LeakyRelu(
        Add(Add(GatherRows(MatMul(h, layer.attn_src), src),
                GatherRows(MatMul(h, layer.attn_dst), dst)),
            MatMul(efeat, layer.attn_edge)),
        config_.leaky_slope);
    Tensor alpha = SegmentSoftmax(logits, dst, total_nodes);
    Tensor aggregated =
        RowScaleScatterAdd(messages, alpha, dst, total_nodes);
    // Residual update: the initial metric structure (queries vs class
    // means) is preserved and the attention learns a correction.
    Tensor update = Add(layer.self->Forward(h), aggregated);
    if (li + 1 < layers_.size()) update = Relu(update);
    h = Add(h, Mul(update, layer.gate));
  }

  TaskGraphOutput out;
  out.query_embeddings = SliceRows(h, num_prompts, num_queries);
  out.label_embeddings = SliceRows(h, label_base, num_classes);
  // Eq. 11: cosine similarity between query and label embeddings, scaled
  // into logits.
  Tensor qn = RowL2Normalize(out.query_embeddings);
  Tensor ln = RowL2Normalize(out.label_embeddings);
  out.query_scores =
      Scale(MatMul(qn, Transpose(ln)), config_.score_temperature);
  return out;
}

}  // namespace gp
