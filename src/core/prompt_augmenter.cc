#include "core/prompt_augmenter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "core/distance.h"
#include "obs/telemetry.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gp {

namespace {

// Raw-pointer similarity between a query row and a cache entry, with the
// query's cosine norm hoisted out of the per-entry loop. Delegates to the
// shared core/distance.h kernels (SIMD-dispatched) so the cache scan and
// the retrieval pipeline share one accumulation order and one degenerate-
// norm rule (CosineFromParts' relative guard).
float EntrySimilarity(const float* qe, double query_norm,
                      const std::vector<float>& entry, DistanceMetric metric) {
  const int n = static_cast<int>(entry.size());
  switch (metric) {
    case DistanceMetric::kCosine:
      return CosineFromParts(DotRaw(qe, entry.data(), n), query_norm,
                             std::sqrt(SquaredNormRaw(entry.data(), n)));
    case DistanceMetric::kEuclidean:
      return NegEuclideanRaw(qe, entry.data(), n);
    case DistanceMetric::kManhattan:
      return NegManhattanRaw(qe, entry.data(), n);
  }
  return 0.0f;
}

}  // namespace

PromptAugmenter::PromptAugmenter(const PromptAugmenterConfig& config,
                                 uint64_t seed)
    : config_(config),
      cache_(MakeCache(config.policy, config.cache_capacity)),
      index_(config.index, config.metric),
      rng_(seed) {}

void PromptAugmenter::RebuildIndex() {
  index_.Clear();
  int dim = 0;
  for (const auto& [id, entry] : cache_->Entries()) {
    const int edim = static_cast<int>(entry->embedding.size());
    if (edim == 0) continue;
    if (dim == 0) dim = edim;
    // A width-mismatched (poisoned) entry can't join the index; it stays
    // scannable until EvictPoisoned removes it from the cache.
    if (edim != dim) continue;
    index_.Insert(id, entry->embedding.data(), edim);
  }
}

PromptAugmenter::CachedPrompts PromptAugmenter::GetCachedPrompts(
    int dim) const {
  CachedPrompts out;
  const auto entries = cache_->Entries();
  out.embeddings = Tensor::Zeros(static_cast<int>(entries.size()), dim);
  float* dst = out.embeddings.mutable_data().data();
  for (size_t i = 0; i < entries.size(); ++i) {
    const CacheEntry& entry = *entries[i].second;
    CHECK_EQ(static_cast<int>(entry.embedding.size()), dim);
    std::copy_n(entry.embedding.data(), dim, dst + i * dim);
    out.labels.push_back(entry.pseudo_label);
  }
  return out;
}

void PromptAugmenter::ObserveQueries(const Tensor& query_embeddings,
                                     const std::vector<int>& predicted_labels,
                                     const std::vector<float>& confidences,
                                     int max_inserts) {
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_queries), predicted_labels.size());
  CHECK_EQ(static_cast<size_t>(num_queries), confidences.size());

  // 1. LFU frequency update: each query "hits" its top-k most similar
  //    cache entries. The per-entry similarity scan runs in parallel
  //    (disjoint writes into `sims`); Touch stays serial in entry order.
  static Counter* hits = Telemetry().GetCounter("augmenter/cache_hits");
  static Counter* misses = Telemetry().GetCounter("augmenter/cache_misses");

  const auto entries = cache_->Entries();
  if (entries.empty()) {
    // Nothing cached yet: every query of this batch is a miss.
    misses->Add(num_queries);
  }
  if (!entries.empty()) {
    const int dim = query_embeddings.cols();
    const float* qdata = query_embeddings.data().data();
    const int num_entries = static_cast<int>(entries.size());
    static Counter* scan_pairs =
        Telemetry().GetCounter("augmenter/scan_pairs");
    // Entry indices to score for the current query. Exact mode scans every
    // entry in Entries() order (the pre-index behaviour, bit for bit); a
    // sharded index narrows the pool to the probed shards' members while
    // preserving that order.
    std::vector<int> pool(num_entries);
    for (int i = 0; i < num_entries; ++i) pool[i] = i;
    std::vector<std::pair<float, int64_t>> sims;
    for (int q = 0; q < num_queries; ++q) {
      const float* qe = qdata + static_cast<size_t>(q) * dim;
      if (index_.ivf()) {
        PromptIndex::ProbeStats stats;
        const std::vector<int64_t> cands =
            index_.Probe(qe, dim, config_.top_k_hits, &stats);
        std::unordered_set<int64_t> in_probe(cands.begin(), cands.end());
        pool.clear();
        for (int i = 0; i < num_entries; ++i) {
          if (in_probe.count(entries[i].first) > 0) pool.push_back(i);
        }
      }
      const int pool_size = static_cast<int>(pool.size());
      scan_pairs->Add(pool_size);
      if (pool_size == 0) continue;
      sims.resize(pool_size);
      double query_norm = 0.0;
      if (config_.metric == DistanceMetric::kCosine) {
        query_norm = std::sqrt(SquaredNormRaw(qe, dim));
      }
      const int64_t grain =
          std::max<int64_t>(1, (int64_t{1} << 14) / std::max(dim, 1));
      ParallelFor(0, pool_size, grain,
                  [&](int64_t first, int64_t last) {
                    for (int64_t i = first; i < last; ++i) {
                      const int e = pool[i];
                      float sim = EntrySimilarity(
                          qe, query_norm, entries[e].second->embedding,
                          config_.metric);
                      // A NaN similarity (poisoned entry or query) would
                      // break the partial_sort's ordering; rank it last.
                      if (!std::isfinite(sim)) {
                        sim = -std::numeric_limits<float>::infinity();
                      }
                      sims[i] = {sim, entries[e].first};
                    }
                  });
      const int k = std::min<int>(config_.top_k_hits, sims.size());
      std::partial_sort(
          sims.begin(), sims.begin() + k, sims.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int i = 0; i < k; ++i) cache_->Touch(sims[i].second);
      hits->Add(k);
    }
  }

  // 2. Insert pseudo-labelled queries: the most confident ones (paper's
  //    default) or random ones (Table VII robustness check).
  std::vector<int> order(num_queries);
  for (int i = 0; i < num_queries; ++i) order[i] = i;
  if (config_.random_pseudo_labels) {
    rng_.Shuffle(&order);
  } else {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return confidences[a] > confidences[b];
    });
  }
  const int inserts = std::min(max_inserts, num_queries);
  for (int i = 0; i < inserts; ++i) {
    const int q = order[i];
    // Insert validation: a pseudo-prompt with non-finite values would be
    // retrieved for every later query of the episode, turning one bad
    // prediction into a poisoned cache. Reject it here and count the event.
    if (!std::isfinite(confidences[q]) || predicted_labels[q] < 0 ||
        !query_embeddings.RowFinite(q)) {
      ++health_.rejected_nonfinite;
      static Counter* c =
          Telemetry().GetCounter("augmenter/rejected_nonfinite");
      c->Add(1);
      continue;
    }
    if (confidences[q] < config_.min_confidence) {
      ++health_.rejected_low_confidence;
      static Counter* c =
          Telemetry().GetCounter("augmenter/rejected_low_confidence");
      c->Add(1);
      continue;
    }
    CacheEntry entry;
    entry.embedding = query_embeddings.Row(q);
    entry.pseudo_label = predicted_labels[q];
    entry.confidence = confidences[q];
    const bool at_capacity =
        cache_->capacity() > 0 && cache_->size() == cache_->capacity();
    const int64_t id = cache_->Insert(std::move(entry));
    if (id >= 0) {
      static Counter* inserted = Telemetry().GetCounter("augmenter/inserts");
      inserted->Add(1);
      if (at_capacity) {
        static Counter* evictions =
            Telemetry().GetCounter("augmenter/evictions");
        evictions->Add(1);
        // The cache evicted a victim it does not report; drop indexed ids
        // that no longer exist before indexing the newcomer.
        std::unordered_set<int64_t> live;
        for (const auto& [eid, e] : cache_->Entries()) live.insert(eid);
        for (int64_t indexed : index_.Ids()) {
          if (live.count(indexed) == 0) index_.Erase(indexed);
        }
      }
      const int dim = query_embeddings.cols();
      index_.Insert(id, query_embeddings.data().data() +
                            static_cast<size_t>(q) * dim,
                    dim);
    }
  }
}

namespace {

bool EntryPoisoned(const CacheEntry& entry, int dim, int num_classes) {
  if (static_cast<int>(entry.embedding.size()) != dim) return true;
  if (entry.pseudo_label < 0 || entry.pseudo_label >= num_classes) {
    return true;
  }
  if (!std::isfinite(entry.confidence)) return true;
  for (float v : entry.embedding) {
    if (!std::isfinite(v)) return true;
  }
  return false;
}

}  // namespace

int PromptAugmenter::EvictPoisoned(int dim, int num_classes) {
  int evicted = 0;
  for (const auto& [id, entry] : cache_->Entries()) {
    if (EntryPoisoned(*entry, dim, num_classes)) {
      cache_->Erase(id);
      index_.Erase(id);
      ++evicted;
    }
  }
  if (evicted > 0) {
    health_.evicted_poisoned += evicted;
    static Counter* c = Telemetry().GetCounter("augmenter/poison_evictions");
    c->Add(evicted);
    LOG(WARNING) << "prompt augmenter: evicted " << evicted
                 << " poisoned cache entr" << (evicted == 1 ? "y" : "ies");
  }
  return evicted;
}

Status PromptAugmenter::ValidateCache(int dim, int num_classes) const {
  for (const auto& [id, entry] : cache_->Entries()) {
    if (EntryPoisoned(*entry, dim, num_classes)) {
      return FailedPreconditionError(
          "prompt cache entry " + std::to_string(id) +
          " is poisoned (dim=" +
          std::to_string(entry->embedding.size()) + ", label=" +
          std::to_string(entry->pseudo_label) + ")");
    }
  }
  return Status::Ok();
}

}  // namespace gp
