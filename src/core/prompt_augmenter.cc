#include "core/prompt_augmenter.h"

#include <algorithm>

#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

PromptAugmenter::PromptAugmenter(const PromptAugmenterConfig& config,
                                 uint64_t seed)
    : config_(config),
      cache_(MakeCache(config.policy, config.cache_capacity)),
      rng_(seed) {}

PromptAugmenter::CachedPrompts PromptAugmenter::GetCachedPrompts(
    int dim) const {
  CachedPrompts out;
  const auto entries = cache_->Entries();
  out.embeddings = Tensor::Zeros(static_cast<int>(entries.size()), dim);
  for (size_t i = 0; i < entries.size(); ++i) {
    const CacheEntry& entry = *entries[i].second;
    CHECK_EQ(static_cast<int>(entry.embedding.size()), dim);
    for (int d = 0; d < dim; ++d) {
      out.embeddings.at(static_cast<int>(i), d) = entry.embedding[d];
    }
    out.labels.push_back(entry.pseudo_label);
  }
  return out;
}

void PromptAugmenter::ObserveQueries(const Tensor& query_embeddings,
                                     const std::vector<int>& predicted_labels,
                                     const std::vector<float>& confidences,
                                     int max_inserts) {
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_queries), predicted_labels.size());
  CHECK_EQ(static_cast<size_t>(num_queries), confidences.size());

  // 1. LFU frequency update: each query "hits" its top-k most similar
  //    cache entries.
  const auto entries = cache_->Entries();
  if (!entries.empty()) {
    for (int q = 0; q < num_queries; ++q) {
      const std::vector<float> qe = query_embeddings.Row(q);
      std::vector<std::pair<float, int64_t>> sims;
      sims.reserve(entries.size());
      for (const auto& [id, entry] : entries) {
        float sim;
        switch (config_.metric) {
          case DistanceMetric::kCosine:
            sim = CosineSimilarity(qe, entry->embedding);
            break;
          case DistanceMetric::kEuclidean:
            sim = -EuclideanDistance(qe, entry->embedding);
            break;
          case DistanceMetric::kManhattan:
            sim = -ManhattanDistance(qe, entry->embedding);
            break;
        }
        sims.emplace_back(sim, id);
      }
      const int k = std::min<int>(config_.top_k_hits, sims.size());
      std::partial_sort(
          sims.begin(), sims.begin() + k, sims.end(),
          [](const auto& a, const auto& b) { return a.first > b.first; });
      for (int i = 0; i < k; ++i) cache_->Touch(sims[i].second);
    }
  }

  // 2. Insert pseudo-labelled queries: the most confident ones (paper's
  //    default) or random ones (Table VII robustness check).
  std::vector<int> order(num_queries);
  for (int i = 0; i < num_queries; ++i) order[i] = i;
  if (config_.random_pseudo_labels) {
    rng_.Shuffle(&order);
  } else {
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return confidences[a] > confidences[b];
    });
  }
  const int inserts = std::min(max_inserts, num_queries);
  for (int i = 0; i < inserts; ++i) {
    const int q = order[i];
    if (confidences[q] < config_.min_confidence) continue;
    CacheEntry entry;
    entry.embedding = query_embeddings.Row(q);
    entry.pseudo_label = predicted_labels[q];
    entry.confidence = confidences[q];
    cache_->Insert(std::move(entry));
  }
}

}  // namespace gp
