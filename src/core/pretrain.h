// Pre-training (Sec. IV-D, Algorithm 1): joint optimisation of the
// generator, selection layer, and task network with the two episodic
// objectives of Prodigy — Neighbor Matching (Eq. 12) and Multi-Task
// (Eq. 13) — summed into the total loss (Eq. 14), optimised with AdamW.

#ifndef GRAPHPROMPTER_CORE_PRETRAIN_H_
#define GRAPHPROMPTER_CORE_PRETRAIN_H_

#include <vector>

#include "core/graph_prompter.h"
#include "data/datasets.h"

namespace gp {

struct PretrainConfig {
  int steps = 400;
  int ways = 5;             // m per episode (paper: 30 at full scale)
  int shots = 3;            // k prompts per class
  int queries_per_task = 4; // n queries per episode (paper: 4)
  float learning_rate = 1e-3f;   // paper: AdamW, lr 1e-3
  float weight_decay = 1e-3f;    // paper: 1e-3
  float grad_clip = 5.0f;
  bool neighbor_matching = true;
  bool multi_task = true;
  int log_every = 50;
  bool verbose = false;
  uint64_t seed = 7;
};

// Logged training trajectory (Fig. 9 plots these curves).
struct PretrainCurves {
  std::vector<int> step;
  std::vector<double> loss;
  std::vector<double> train_accuracy;  // episode query accuracy, percent
};

// Trains `model` in place on `dataset` and returns the loss/accuracy
// trajectory. The dataset's task type decides whether Multi-Task episodes
// classify nodes or edges; Neighbor Matching always operates on nodes.
PretrainCurves Pretrain(GraphPrompterModel* model,
                        const DatasetBundle& dataset,
                        const PretrainConfig& config);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_PRETRAIN_H_
