// Stage 2b — kNN retrieval and query voting (Sec. IV-B2, Eqs. 6-8).
//
// For each query q and candidate prompt p:
//     score(p, q) = sim(G_p, G_q) + I_p * I_q                     (Eq. 7)
// where sim defaults to cosine similarity (Eq. 6; Euclidean and Manhattan
// are supported as the paper notes they are drop-in substitutes). Each
// query votes score(p, q) for its top-k prompts (Eq. 8); the k prompts per
// class with the most votes form the refined prompt set S-hat.

#ifndef GRAPHPROMPTER_CORE_KNN_RETRIEVAL_H_
#define GRAPHPROMPTER_CORE_KNN_RETRIEVAL_H_

#include <vector>

#include "core/distance.h"
#include "core/prompt_index.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {

struct KnnConfig {
  int shots = 3;  // k — prompts kept per class
  DistanceMetric metric = DistanceMetric::kCosine;
  bool use_similarity = true;   // Eq. 7 sim term   (ablation "w/o kNN")
  bool use_importance = true;   // Eq. 7 I_p*I_q    (ablation "w/o selection")
  // IVF retrieval index (core/prompt_index.h). Defaults to the process
  // globals so --index/--nlist/--nprobe and GP_INDEX* configure every
  // retrieval call without threading options through call sites.
  PromptIndexOptions index = GlobalIndexOptions();
};

struct KnnSelection {
  // Indices into the candidate array, grouped per class: k per class.
  std::vector<int> selected;
  // Vote totals per candidate (Eq. 8), for inspection.
  std::vector<double> votes;
  // How many queries placed the candidate in their top-k set; candidates
  // with zero hits always rank below voted ones (scores may be negative
  // under distance metrics, where "no votes" must not look like a high
  // vote total of zero).
  std::vector<int> hit_counts;
};

// Selects prompts.
//   prompt_embeddings: (P x d) candidate data-graph embeddings.
//   prompt_importance: (P x 1) I_p — may be undefined if unused.
//   prompt_labels:     episode-local class of each candidate.
//   query_embeddings:  (Q x d), query_importance: (Q x 1).
// When both score terms are disabled the caller should fall back to random
// selection (Prodigy behaviour) — this function then selects the first k
// per class deterministically.
KnnSelection SelectPrompts(const Tensor& prompt_embeddings,
                           const Tensor& prompt_importance,
                           const std::vector<int>& prompt_labels,
                           const Tensor& query_embeddings,
                           const Tensor& query_importance, int num_classes,
                           const KnnConfig& config);

// How the Prompt Selector retrieves prompts at inference. kKnnVoting is
// the paper's method (Eqs. 6-8); kClustering is the Further-Discussion
// alternative that clusters the queries with k-means and picks, per class,
// the candidates best matching each cluster centroid.
enum class SelectorKind { kKnnVoting, kClustering };

const char* SelectorKindName(SelectorKind kind);

// Clustering-based selection: queries are grouped into `config.shots`
// k-means clusters; for every class, each centroid claims the unclaimed
// class candidate with the highest Eq. 7 score against it. Falls back to
// kNN voting when there are fewer queries than clusters.
KnnSelection SelectPromptsByClustering(const Tensor& prompt_embeddings,
                                       const Tensor& prompt_importance,
                                       const std::vector<int>& prompt_labels,
                                       const Tensor& query_embeddings,
                                       const Tensor& query_importance,
                                       int num_classes,
                                       const KnnConfig& config, Rng* rng);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_KNN_RETRIEVAL_H_
