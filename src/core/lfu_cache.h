// O(1) Least-Frequently-Used cache of pseudo-labelled prompt embeddings,
// after Matani, Shah & Mitra, "An O(1) algorithm for implementing the LFU
// cache eviction scheme" — the paper's reference [51] and the replacement
// policy of the Prompt Augmenter (Sec. IV-C).
//
// The classic O(1) structure: a doubly linked list of frequency buckets,
// each holding the set of entries with that use count. Insertion goes to
// frequency 1; Touch moves an entry to the next bucket; eviction removes an
// arbitrary entry from the lowest-frequency bucket (FIFO within a bucket,
// so the stalest of the least-used goes first).

#ifndef GRAPHPROMPTER_CORE_LFU_CACHE_H_
#define GRAPHPROMPTER_CORE_LFU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace gp {

// A cached online prompt: a data-graph embedding plus its pseudo-label.
struct CacheEntry {
  std::vector<float> embedding;
  int pseudo_label = -1;
  float confidence = 0.0f;
};

// Fixed-capacity LFU cache. Entries are addressed by the id returned from
// Insert(); ids are never reused within one cache instance.
class LfuCache {
 public:
  explicit LfuCache(int capacity);

  int capacity() const { return capacity_; }
  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }

  // Inserts an entry with use count 1, evicting the least frequently used
  // entry if at capacity. Returns the new entry's id, or -1 when
  // capacity == 0.
  int64_t Insert(CacheEntry entry);

  // Increments the use count of `id` (a "cache hit"). Unknown/evicted ids
  // are ignored (returns false).
  bool Touch(int64_t id);

  // Removes `id` outright (used to quarantine poisoned entries). Returns
  // false for unknown/already-evicted ids.
  bool Erase(int64_t id);

  // Mutable payload of `id`, or nullptr if absent. Fault-injection and
  // diagnostic hook; does not affect frequencies.
  CacheEntry* MutableEntry(int64_t id);

  // Current frequency of an entry; 0 if absent.
  int FrequencyOf(int64_t id) const;

  // Snapshot of the current entries (ids and payloads), unspecified order.
  std::vector<std::pair<int64_t, const CacheEntry*>> Entries() const;

  void Clear();

 private:
  // One frequency bucket: its use count and the member ids (FIFO order).
  struct Bucket {
    int frequency;
    std::list<int64_t> members;
  };
  struct NodeInfo {
    CacheEntry entry;
    std::list<Bucket>::iterator bucket;
    std::list<int64_t>::iterator position;  // within bucket->members
  };

  // Moves `id` from its bucket to one with frequency+1 (creating it).
  void Promote(int64_t id);

  int capacity_;
  int64_t next_id_ = 0;
  std::list<Bucket> buckets_;  // ascending frequency
  std::unordered_map<int64_t, NodeInfo> nodes_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_LFU_CACHE_H_
