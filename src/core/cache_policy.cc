#include "core/cache_policy.h"

#include "util/logging.h"

namespace gp {

const char* CachePolicyName(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kLfu:
      return "LFU";
    case CachePolicy::kLru:
      return "LRU";
    case CachePolicy::kFifo:
      return "FIFO";
  }
  return "?";
}

LruCache::LruCache(int capacity) : capacity_(capacity) {
  CHECK_GE(capacity, 0);
}

int64_t LruCache::Insert(CacheEntry entry) {
  if (capacity_ == 0) return -1;
  if (size() >= capacity_) {
    const int64_t victim = order_.front();
    order_.pop_front();
    nodes_.erase(victim);
  }
  const int64_t id = next_id_++;
  order_.push_back(id);
  nodes_[id] = {std::move(entry), std::prev(order_.end())};
  return id;
}

bool LruCache::Touch(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  order_.erase(it->second.position);
  order_.push_back(id);
  it->second.position = std::prev(order_.end());
  return true;
}

bool LruCache::Erase(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  order_.erase(it->second.position);
  nodes_.erase(it);
  return true;
}

CacheEntry* LruCache::MutableEntry(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return nullptr;
  return &it->second.entry;
}

std::vector<std::pair<int64_t, const CacheEntry*>> LruCache::Entries() const {
  std::vector<std::pair<int64_t, const CacheEntry*>> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.emplace_back(id, &node.entry);
  return out;
}

void LruCache::Clear() {
  order_.clear();
  nodes_.clear();
}

FifoCache::FifoCache(int capacity) : capacity_(capacity) {
  CHECK_GE(capacity, 0);
}

int64_t FifoCache::Insert(CacheEntry entry) {
  if (capacity_ == 0) return -1;
  if (size() >= capacity_) {
    const int64_t victim = order_.front();
    order_.pop_front();
    nodes_.erase(victim);
  }
  const int64_t id = next_id_++;
  order_.push_back(id);
  nodes_[id] = std::move(entry);
  return id;
}

bool FifoCache::Touch(int64_t id) { return nodes_.count(id) > 0; }

bool FifoCache::Erase(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return false;
  for (auto pos = order_.begin(); pos != order_.end(); ++pos) {
    if (*pos == id) {
      order_.erase(pos);
      break;
    }
  }
  nodes_.erase(it);
  return true;
}

CacheEntry* FifoCache::MutableEntry(int64_t id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return nullptr;
  return &it->second;
}

std::vector<std::pair<int64_t, const CacheEntry*>> FifoCache::Entries()
    const {
  std::vector<std::pair<int64_t, const CacheEntry*>> out;
  out.reserve(nodes_.size());
  for (const auto& [id, entry] : nodes_) out.emplace_back(id, &entry);
  return out;
}

void FifoCache::Clear() {
  order_.clear();
  nodes_.clear();
}

std::unique_ptr<ReplacementCache> MakeCache(CachePolicy policy,
                                            int capacity) {
  switch (policy) {
    case CachePolicy::kLfu:
      return std::make_unique<LfuReplacementCache>(capacity);
    case CachePolicy::kLru:
      return std::make_unique<LruCache>(capacity);
    case CachePolicy::kFifo:
      return std::make_unique<FifoCache>(capacity);
  }
  return nullptr;
}

}  // namespace gp
