#include "core/prompt_index.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <numeric>

#include "core/kmeans.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gp {

const char* IndexModeName(IndexMode mode) {
  switch (mode) {
    case IndexMode::kExact:
      return "exact";
    case IndexMode::kIvf:
      return "ivf";
    case IndexMode::kAuto:
      return "auto";
  }
  return "?";
}

StatusOr<IndexMode> ParseIndexMode(const std::string& name) {
  if (name == "exact") return IndexMode::kExact;
  if (name == "ivf") return IndexMode::kIvf;
  if (name == "auto") return IndexMode::kAuto;
  return InvalidArgumentError("unknown index mode \"" + name +
                              "\" (expected exact, ivf, or auto)");
}

Status ValidateIndexOptions(const PromptIndexOptions& options) {
  if (options.nlist < 0) {
    return InvalidArgumentError("index: nlist must be >= 0 (0 = auto)");
  }
  if (options.nprobe < 0) {
    return InvalidArgumentError("index: nprobe must be >= 0 (0 = auto)");
  }
  if (options.min_points < 1) {
    return InvalidArgumentError("index: min_points must be >= 1");
  }
  if (options.recall_sample < 0) {
    return InvalidArgumentError("index: recall_sample must be >= 0");
  }
  if (options.rerank < 1) {
    return InvalidArgumentError("index: rerank must be >= 1");
  }
  return Status::Ok();
}

// ------------------------------------------------------- global options

namespace {

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    return static_cast<int>(std::strtol(env, nullptr, 10));
  }
  return fallback;
}

PromptIndexOptions OptionsFromEnv() {
  PromptIndexOptions options;
  if (const char* env = std::getenv("GP_INDEX")) {
    const StatusOr<IndexMode> mode = ParseIndexMode(env);
    if (mode.ok()) {
      options.mode = *mode;
    } else {
      LOG(WARNING) << "ignoring GP_INDEX=" << env << ": "
                   << mode.status().ToString();
    }
  }
  options.nlist = EnvInt("GP_INDEX_NLIST", options.nlist);
  options.nprobe = EnvInt("GP_INDEX_NPROBE", options.nprobe);
  options.min_points = EnvInt("GP_INDEX_MIN_POINTS", options.min_points);
  options.recall_sample =
      EnvInt("GP_INDEX_RECALL_SAMPLE", options.recall_sample);
  options.quantize =
      EnvInt("GP_INDEX_QUANTIZE", options.quantize ? 1 : 0) != 0;
  options.rerank = EnvInt("GP_INDEX_RERANK", options.rerank);
  return options;
}

std::mutex g_index_options_mu;
PromptIndexOptions g_index_options;
bool g_index_options_initialised = false;

}  // namespace

PromptIndexOptions GlobalIndexOptions() {
  std::lock_guard<std::mutex> lock(g_index_options_mu);
  if (!g_index_options_initialised) {
    g_index_options = OptionsFromEnv();
    g_index_options_initialised = true;
  }
  return g_index_options;
}

void SetGlobalIndexOptions(const PromptIndexOptions& options) {
  std::lock_guard<std::mutex> lock(g_index_options_mu);
  g_index_options = options;
  g_index_options_initialised = true;
}

PromptIndexOptions ConfigureIndexFromFlags(const Flags& flags) {
  PromptIndexOptions options = GlobalIndexOptions();
  if (flags.Has("index")) {
    const StatusOr<IndexMode> mode =
        ParseIndexMode(flags.GetString("index", ""));
    CHECK_OK(mode.status());
    options.mode = *mode;
  }
  if (flags.Has("nlist")) {
    options.nlist = static_cast<int>(flags.GetInt("nlist", options.nlist));
  }
  if (flags.Has("nprobe")) {
    options.nprobe = static_cast<int>(flags.GetInt("nprobe", options.nprobe));
  }
  if (flags.Has("index-min-points")) {
    options.min_points = static_cast<int>(
        flags.GetInt("index-min-points", options.min_points));
  }
  if (flags.Has("index-recall-sample")) {
    options.recall_sample = static_cast<int>(
        flags.GetInt("index-recall-sample", options.recall_sample));
  }
  if (flags.Has("quantize")) {
    options.quantize = flags.GetBool("quantize", options.quantize);
  }
  if (flags.Has("rerank")) {
    options.rerank = static_cast<int>(flags.GetInt("rerank", options.rerank));
  }
  CHECK_OK(ValidateIndexOptions(options));
  SetGlobalIndexOptions(options);
  return options;
}

// ------------------------------------------------------------ the index

PromptIndex::PromptIndex(const PromptIndexOptions& options,
                         DistanceMetric metric)
    : options_(options), metric_(metric) {
  CHECK_OK(ValidateIndexOptions(options));
}

int PromptIndex::ResolveNlist(int points) const {
  const int nlist =
      options_.nlist > 0
          ? options_.nlist
          : static_cast<int>(std::lround(std::sqrt(
                static_cast<double>(std::max(points, 0)))));
  return std::clamp(nlist, 1, std::max(points, 1));
}

bool PromptIndex::ShouldShard(int points) const {
  switch (options_.mode) {
    case IndexMode::kExact:
      return false;
    case IndexMode::kAuto:
      if (points < options_.min_points) return false;
      break;
    case IndexMode::kIvf:
      break;
  }
  // Degrade to exact instead of clustering degenerately: a requested shard
  // count at or above the population would leave shards empty or singleton
  // (and RunKMeans CHECKs n >= k), and below 2 vectors per shard the
  // routing work exceeds the scoring it saves.
  if (options_.nlist > 0 && points < options_.nlist) return false;
  const int nlist = ResolveNlist(points);
  return nlist >= 2 && points >= 2 * nlist;
}

void PromptIndex::Build(const Tensor& embeddings) {
  Clear();
  const int points = embeddings.defined() ? embeddings.rows() : 0;
  dim_ = embeddings.defined() ? embeddings.cols() : 0;
  std::vector<int64_t> ids(points);
  std::iota(ids.begin(), ids.end(), int64_t{0});
  if (!ShouldShard(points)) {
    flat_ids_ = ids;
    for (int64_t id : ids) assignment_[id] = -1;
    return;
  }
  BuildShards(embeddings, ids);
}

void PromptIndex::BuildShards(const Tensor& rows,
                              const std::vector<int64_t>& ids) {
  GP_TRACE_SPAN("index/build");
  const int points = static_cast<int>(ids.size());
  const int dim = rows.cols();
  dim_ = dim;

  // Cosine routes by direction, so cluster an L2-normalised copy; the
  // Euclidean/Manhattan metrics cluster the raw vectors.
  Tensor space = rows;
  if (metric_ == DistanceMetric::kCosine) {
    space = rows.Clone();
    float* data = space.mutable_data().data();
    for (int r = 0; r < points; ++r) {
      float* row = data + static_cast<size_t>(r) * dim;
      const double norm = std::sqrt(SquaredNormRaw(row, dim));
      if (norm > 1e-12) {
        for (int c = 0; c < dim; ++c) {
          row[c] = static_cast<float>(row[c] / norm);
        }
      }
    }
  }

  const int nlist = ResolveNlist(points);
  nprobe_ = options_.nprobe > 0 ? std::min(options_.nprobe, nlist)
                                : std::max(1, nlist / 4);

  // Bound the k-means cost: train the centroids on a deterministic sample
  // and only *assign* the full population. Shard quality needs rough
  // cluster structure, not Lloyd convergence.
  Rng rng(options_.seed);
  // 8 training points per shard keeps the serial Lloyd cost (O(sample *
  // nlist * d) per iteration) subquadratic in nlist while the parallel
  // full-population assignment below fixes up the shard memberships.
  const int sample_size = std::min(points, std::max(8 * nlist, 256));
  std::vector<int> train_rows;
  if (sample_size < points) {
    train_rows = rng.SampleWithoutReplacement(points, sample_size);
    std::sort(train_rows.begin(), train_rows.end());
  } else {
    train_rows.resize(points);
    std::iota(train_rows.begin(), train_rows.end(), 0);
  }
  Tensor train = Tensor::Zeros(static_cast<int>(train_rows.size()), dim);
  {
    const float* src = space.data().data();
    float* dst = train.mutable_data().data();
    for (size_t i = 0; i < train_rows.size(); ++i) {
      std::copy_n(src + static_cast<size_t>(train_rows[i]) * dim, dim,
                  dst + i * dim);
    }
  }
  KMeansConfig kmeans;
  kmeans.clusters = nlist;
  kmeans.max_iterations = 5;
  centroids_ = RunKMeans(train, kmeans, &rng).centroids;

  // Assign every vector to its nearest centroid (disjoint writes; fixed
  // chunking keeps the assignment deterministic at any thread count).
  std::vector<int> shard_of(points);
  const float* data = space.data().data();
  const float* cdata = centroids_.data().data();
  const int64_t grain = std::max<int64_t>(
      1, (int64_t{1} << 16) / std::max<int64_t>(
                                 static_cast<int64_t>(nlist) * dim, 1));
  ParallelFor(0, points, grain, [&](int64_t first, int64_t last) {
    for (int64_t i = first; i < last; ++i) {
      const float* v = data + static_cast<size_t>(i) * dim;
      int best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (int c = 0; c < nlist; ++c) {
        const double dist = SquaredEuclideanRaw(
            v, cdata + static_cast<size_t>(c) * dim, dim);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      shard_of[i] = best;
    }
  });

  // Quantized candidate pass: (re)fit the per-dimension affine range over
  // the RAW vectors (cosine's normalised `space` is for clustering only —
  // the candidate pass scores against the raw geometry, like the exact
  // kernels) and encode every member alongside its shard, together with
  // its exact float norm for the approximate-cosine denominator.
  quantizer_ = QuantizerParams();
  shard_codes_.assign(nlist, {});
  shard_norms_.assign(nlist, {});
  const float* raw = rows.data().data();
  if (options_.quantize) {
    quantizer_ = FitQuantizer(raw, points, dim);
  }

  shards_.assign(nlist, {});
  for (int i = 0; i < points; ++i) {
    const int shard = shard_of[i];
    shards_[shard].push_back(ids[i]);
    assignment_[ids[i]] = shard;
    if (options_.quantize) {
      const float* row = raw + static_cast<size_t>(i) * dim;
      std::vector<uint8_t>& codes = shard_codes_[shard];
      codes.resize(codes.size() + dim);
      QuantizeRow(quantizer_, row, codes.data() + codes.size() - dim);
      shard_norms_[shard].push_back(
          static_cast<float>(std::sqrt(SquaredNormRaw(row, dim))));
    }
  }
  // `ids` arrive ascending (static: 0..P-1; rebuild: sorted), so every
  // shard's member list is ascending — a probe's candidate union can be
  // merged and sorted cheaply, and full probes reproduce brute-force order.
  flat_ids_.clear();
  ivf_ = true;
  built_size_ = points;

  static Counter* builds = Telemetry().GetCounter("index/builds");
  builds->Add(1);
  Telemetry().GetGauge("index/nlist")->Set(nlist);
  Telemetry().GetGauge("index/nprobe")->Set(nprobe_);
  if (options_.quantize) {
    static Counter* qbuilds = Telemetry().GetCounter("index/quantized_builds");
    qbuilds->Add(1);
    Telemetry()
        .GetGauge("index/quantized_bytes_per_vector")
        ->Set(static_cast<int64_t>(CandidateBytesPerVector()));
  }
}

size_t PromptIndex::CandidateBytesPerVector() const {
  // id + (codes + stored norm | full float row).
  if (quantized()) {
    return sizeof(int64_t) + static_cast<size_t>(dim_) + sizeof(float);
  }
  return sizeof(int64_t) + static_cast<size_t>(dim_) * sizeof(float);
}

int PromptIndex::NearestShard(const float* vec, int dim) const {
  std::vector<float> normed;
  const float* v = vec;
  if (metric_ == DistanceMetric::kCosine) {
    const double norm = std::sqrt(SquaredNormRaw(vec, dim));
    normed.assign(vec, vec + dim);
    if (norm > 1e-12) {
      for (int c = 0; c < dim; ++c) {
        normed[c] = static_cast<float>(normed[c] / norm);
      }
    }
    v = normed.data();
  }
  const int nlist = centroids_.rows();
  const float* cdata = centroids_.data().data();
  int best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int c = 0; c < nlist; ++c) {
    const double dist =
        SquaredEuclideanRaw(v, cdata + static_cast<size_t>(c) * dim, dim);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

void PromptIndex::Insert(int64_t id, const float* vec, int dim) {
  CHECK_GE(dim, 1);
  if (dim_ == 0) dim_ = dim;
  CHECK_EQ(dim, dim_);
  EraseNoRebuild(id);  // replace semantics; no-op when absent
  vectors_[id].assign(vec, vec + dim);
  if (ivf_) {
    const int shard = NearestShard(vec, dim);
    assignment_[id] = shard;
    auto& members = shards_[shard];
    const auto pos = std::upper_bound(members.begin(), members.end(), id);
    const size_t offset = static_cast<size_t>(pos - members.begin());
    members.insert(pos, id);
    if (quantizer_.defined()) {
      // Encode with the range fitted at the last rebuild (saturating —
      // the next rebuild requantizes); keep the sidecar position-aligned
      // with the member list.
      std::vector<uint8_t> code(dim);
      QuantizeRow(quantizer_, vec, code.data());
      std::vector<uint8_t>& codes = shard_codes_[shard];
      codes.insert(codes.begin() + offset * dim, code.begin(), code.end());
      std::vector<float>& norms = shard_norms_[shard];
      norms.insert(norms.begin() + offset,
                   static_cast<float>(std::sqrt(SquaredNormRaw(vec, dim))));
    }
  } else {
    assignment_[id] = -1;
    flat_ids_.insert(
        std::upper_bound(flat_ids_.begin(), flat_ids_.end(), id), id);
  }
  MaybeRebuildFromStored();
}

bool PromptIndex::Erase(int64_t id) {
  if (!EraseNoRebuild(id)) return false;
  // Shrinking below the sharding threshold degrades back to exact.
  MaybeRebuildFromStored();
  return true;
}

bool PromptIndex::EraseNoRebuild(int64_t id) {
  const auto it = assignment_.find(id);
  if (it == assignment_.end()) return false;
  const int shard = it->second;
  if (shard >= 0) {
    auto& members = shards_[shard];
    const auto pos = std::lower_bound(members.begin(), members.end(), id);
    if (pos != members.end() && *pos == id) {
      const size_t offset = static_cast<size_t>(pos - members.begin());
      members.erase(pos);
      if (quantizer_.defined()) {
        std::vector<uint8_t>& codes = shard_codes_[shard];
        codes.erase(codes.begin() + offset * dim_,
                    codes.begin() + (offset + 1) * dim_);
        std::vector<float>& norms = shard_norms_[shard];
        norms.erase(norms.begin() + offset);
      }
    }
  } else {
    const auto pos =
        std::lower_bound(flat_ids_.begin(), flat_ids_.end(), id);
    if (pos != flat_ids_.end() && *pos == id) flat_ids_.erase(pos);
  }
  assignment_.erase(it);
  vectors_.erase(id);
  return true;
}

std::vector<int64_t> PromptIndex::Ids() const {
  std::vector<int64_t> ids;
  ids.reserve(assignment_.size());
  for (const auto& [id, shard] : assignment_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void PromptIndex::Clear() {
  ivf_ = false;
  nprobe_ = 0;
  built_size_ = 0;
  dim_ = 0;
  centroids_ = Tensor();
  shards_.clear();
  assignment_.clear();
  flat_ids_.clear();
  vectors_.clear();
  quantizer_ = QuantizerParams();
  shard_codes_.clear();
  shard_norms_.clear();
}

void PromptIndex::MaybeRebuildFromStored() {
  const int points = size();
  // Only the dynamic pattern stores vectors; after a static Build there is
  // nothing to re-shard from.
  if (static_cast<int>(vectors_.size()) != points || points == 0) return;
  const bool want = ShouldShard(points);
  if (ivf_ == want && (!ivf_ || points < 2 * built_size_)) return;

  if (!want) {
    // Shrunk below the sharding threshold: fall back to the exact flat set.
    ivf_ = false;
    nprobe_ = 0;
    built_size_ = 0;
    centroids_ = Tensor();
    shards_.clear();
    quantizer_ = QuantizerParams();
    shard_codes_.clear();
    shard_norms_.clear();
    flat_ids_.clear();
    flat_ids_.reserve(points);
    for (auto& [id, shard] : assignment_) {
      flat_ids_.push_back(id);
      shard = -1;
    }
    std::sort(flat_ids_.begin(), flat_ids_.end());
    return;
  }

  std::vector<int64_t> ids;
  ids.reserve(points);
  for (const auto& [id, shard] : assignment_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  Tensor rows = Tensor::Zeros(points, dim_);
  float* dst = rows.mutable_data().data();
  for (int i = 0; i < points; ++i) {
    const std::vector<float>& vec = vectors_.at(ids[i]);
    std::copy_n(vec.data(), dim_, dst + static_cast<size_t>(i) * dim_);
  }
  BuildShards(rows, ids);
}

std::vector<int64_t> PromptIndex::Probe(const float* query, int dim,
                                        int min_candidates,
                                        ProbeStats* stats) const {
  ProbeStats local;
  ProbeStats* st = stats != nullptr ? stats : &local;
  if (!ivf_) {
    st->shards_probed = 0;
    st->exact = true;
    return flat_ids_;
  }
  CHECK_EQ(dim, dim_);

  // Rank shards by query-to-centroid similarity under the retrieval
  // metric. A non-finite similarity (sanitised-to-NaN query slipping
  // through) ranks last instead of corrupting the sort's ordering.
  const int nlist = centroids_.rows();
  const float* cdata = centroids_.data().data();
  std::vector<std::pair<float, int>> ranked(nlist);
  for (int c = 0; c < nlist; ++c) {
    float sim = SimilarityRaw(query, cdata + static_cast<size_t>(c) * dim,
                              dim, metric_);
    if (!std::isfinite(sim)) sim = -std::numeric_limits<float>::infinity();
    ranked[c] = {sim, c};
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const std::pair<float, int>& a, const std::pair<float, int>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });

  if (quantized()) {
    // Int8 candidate pass: rank the probed shards' members by quantized
    // similarity and keep only the best `rerank * min_candidates` for the
    // caller's exact re-rank. Deterministic: (score desc, id asc).
    QuantizedQueryScratch scratch;
    scratch.Prepare(quantizer_, query, metric_);
    std::vector<std::pair<float, int64_t>> scored;
    int probed = 0;
    for (const auto& [sim, c] : ranked) {
      if (probed >= nprobe_ &&
          static_cast<int>(scored.size()) >= min_candidates) {
        break;
      }
      const std::vector<int64_t>& members = shards_[c];
      const uint8_t* codes = shard_codes_[c].data();
      const float* norms = shard_norms_[c].data();
      for (size_t m = 0; m < members.size(); ++m) {
        float score = scratch.Score(codes + m * static_cast<size_t>(dim_),
                                    norms[m]);
        // A non-finite quantized score (NaN-poisoned stored row) must rank
        // last deterministically, like the centroid ranking above.
        if (!std::isfinite(score)) {
          score = -std::numeric_limits<float>::infinity();
        }
        scored.emplace_back(score, members[m]);
      }
      ++probed;
    }
    const int keep = options_.rerank * std::max(1, min_candidates);
    st->shards_probed = probed;
    st->quantized_scored = static_cast<int>(scored.size());
    if (static_cast<int>(scored.size()) > keep) {
      std::partial_sort(scored.begin(), scored.begin() + keep, scored.end(),
                        [](const std::pair<float, int64_t>& a,
                           const std::pair<float, int64_t>& b) {
                          if (a.first != b.first) return a.first > b.first;
                          return a.second < b.second;
                        });
      scored.resize(keep);
    }
    st->quantized_kept = static_cast<int>(scored.size());
    std::vector<int64_t> out;
    out.reserve(scored.size());
    for (const auto& [score, id] : scored) out.push_back(id);
    std::sort(out.begin(), out.end());
    // Even a full probe prunes when quantization dropped candidates; the
    // probe is only "exact" if nothing was cut.
    st->exact = static_cast<int>(out.size()) == size();
    static Counter* qpairs = Telemetry().GetCounter("index/quantized_pairs");
    static Counter* qkept = Telemetry().GetCounter("index/quantized_kept");
    qpairs->Add(st->quantized_scored);
    qkept->Add(st->quantized_kept);
    return out;
  }

  std::vector<int64_t> out;
  int probed = 0;
  for (const auto& [sim, c] : ranked) {
    if (probed >= nprobe_ &&
        static_cast<int>(out.size()) >= min_candidates) {
      break;
    }
    out.insert(out.end(), shards_[c].begin(), shards_[c].end());
    ++probed;
  }
  std::sort(out.begin(), out.end());
  st->shards_probed = probed;
  st->exact = static_cast<int>(out.size()) == size();
  return out;
}

}  // namespace gp
