#include "core/pretrain.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/autograd.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {
namespace {

// One episodic forward pass: embeds prompts and queries (jointly, as one
// packed batch), applies selection-layer weighting, runs the task graph,
// and returns the CE loss plus the number of correctly predicted queries.
struct EpisodeLoss {
  Tensor loss;
  int correct = 0;
  int total = 0;
};

EpisodeLoss ForwardEpisode(const GraphPrompterModel& model,
                           const Graph& graph,
                           const std::vector<Subgraph>& prompt_subgraphs,
                           const std::vector<int>& prompt_labels,
                           const std::vector<Subgraph>& query_subgraphs,
                           const std::vector<int>& query_labels, int ways) {
  // Pack prompts + queries into one generator batch.
  std::vector<Subgraph> all = prompt_subgraphs;
  all.insert(all.end(), query_subgraphs.begin(), query_subgraphs.end());
  Tensor embeddings = model.generator().EmbedSubgraphs(graph, all);
  const int num_prompts = static_cast<int>(prompt_subgraphs.size());
  const int num_queries = static_cast<int>(query_subgraphs.size());
  Tensor prompt_emb = SliceRows(embeddings, 0, num_prompts);
  Tensor query_emb = SliceRows(embeddings, num_prompts, num_queries);

  if (model.config().use_selection_layer) {
    // G'_p = G_p * I_p keeps the selection layer in the training loss.
    prompt_emb = model.selection().WeightedEmbeddings(prompt_emb);
  }

  const TaskGraphOutput out =
      model.task_net().Forward(prompt_emb, prompt_labels, query_emb, ways);
  EpisodeLoss result;
  result.loss = CrossEntropyWithLogits(out.query_scores, query_labels);
  const std::vector<int> pred = ArgmaxRows(out.query_scores);
  for (size_t i = 0; i < query_labels.size(); ++i) {
    if (pred[i] == query_labels[i]) ++result.correct;
  }
  result.total = static_cast<int>(query_labels.size());
  return result;
}

// Builds a Multi-Task episode (Eq. 13): a supervised m-way k-shot task
// over the dataset's own labels, with queries drawn from the train split.
bool BuildMultiTaskEpisode(const GraphPrompterModel& model,
                           const DatasetBundle& dataset,
                           const PretrainConfig& config, Rng* rng,
                           std::vector<Subgraph>* prompts,
                           std::vector<int>* prompt_labels,
                           std::vector<Subgraph>* queries,
                           std::vector<int>* query_labels) {
  EpisodeSampler sampler(&dataset);
  EpisodeConfig episode;
  episode.ways = config.ways;
  episode.candidates_per_class = config.shots;
  episode.num_queries = config.queries_per_task;
  episode.queries_from_test = false;
  auto task_or = sampler.Sample(episode, rng);
  if (!task_or.ok()) return false;
  const FewShotTask& task = *task_or;
  for (const auto& ex : task.candidates) {
    prompts->push_back(model.generator().SampleForItem(dataset, ex.item, rng));
    prompt_labels->push_back(ex.label);
  }
  for (const auto& ex : task.queries) {
    queries->push_back(model.generator().SampleForItem(dataset, ex.item, rng));
    query_labels->push_back(ex.label);
  }
  return true;
}

// Builds a Neighbor Matching episode (Eq. 12): classes are the local
// neighborhoods of m sampled anchor nodes; examples/queries are nodes
// drawn from those neighborhoods.
bool BuildNeighborMatchingEpisode(const GraphPrompterModel& model,
                                  const Graph& graph,
                                  const PretrainConfig& config, Rng* rng,
                                  std::vector<Subgraph>* prompts,
                                  std::vector<int>* prompt_labels,
                                  std::vector<Subgraph>* queries,
                                  std::vector<int>* query_labels) {
  const int needed_neighbors = config.shots + 1;  // k prompts + 1 query
  std::vector<int> anchors;
  // Rejection-sample anchors with enough distinct neighbors.
  for (int attempt = 0; attempt < 50 * config.ways &&
                        static_cast<int>(anchors.size()) < config.ways;
       ++attempt) {
    const int candidate = static_cast<int>(rng->UniformInt(graph.num_nodes()));
    if (graph.Degree(candidate) < needed_neighbors) continue;
    if (std::find(anchors.begin(), anchors.end(), candidate) !=
        anchors.end()) {
      continue;
    }
    anchors.push_back(candidate);
  }
  if (static_cast<int>(anchors.size()) < config.ways) return false;

  for (int label = 0; label < config.ways; ++label) {
    const int anchor = anchors[label];
    // Distinct neighbor sample.
    std::vector<int> unique_neighbors;
    {
      const AdjEntry* adj = graph.NeighborsBegin(anchor);
      const int deg = graph.NeighborsCount(anchor);
      std::vector<int> all(deg);
      for (int i = 0; i < deg; ++i) all[i] = adj[i].neighbor;
      std::sort(all.begin(), all.end());
      all.erase(std::unique(all.begin(), all.end()), all.end());
      rng->Shuffle(&all);
      unique_neighbors = std::move(all);
    }
    if (static_cast<int>(unique_neighbors.size()) < needed_neighbors) {
      return false;
    }
    for (int s = 0; s < config.shots; ++s) {
      prompts->push_back(
          model.generator().SampleForNode(graph, unique_neighbors[s], rng));
      prompt_labels->push_back(label);
    }
    queries->push_back(model.generator().SampleForNode(
        graph, unique_neighbors[config.shots], rng));
    query_labels->push_back(label);
  }
  // Shuffle queries jointly so label order carries no signal.
  std::vector<int> perm(queries->size());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<int>(i);
  rng->Shuffle(&perm);
  std::vector<Subgraph> shuffled_queries;
  std::vector<int> shuffled_labels;
  for (int i : perm) {
    shuffled_queries.push_back((*queries)[i]);
    shuffled_labels.push_back((*query_labels)[i]);
  }
  *queries = std::move(shuffled_queries);
  *query_labels = std::move(shuffled_labels);
  return true;
}

}  // namespace

PretrainCurves Pretrain(GraphPrompterModel* model,
                        const DatasetBundle& dataset,
                        const PretrainConfig& config) {
  CHECK(model != nullptr);
  CHECK(config.neighbor_matching || config.multi_task);
  // Step-to-step forward/backward tensors recycle through the buffer pool
  // for the duration of the run; drained on exit.
  PoolScope pool_scope;
  Rng rng(config.seed);
  AdamW optimizer(model->Parameters(), config.learning_rate,
                  config.weight_decay);

  PretrainCurves curves;
  double window_loss = 0.0;
  int window_correct = 0, window_total = 0, window_steps = 0;

  static Counter* steps_done = Telemetry().GetCounter("pretrain/steps");
  for (int step = 1; step <= config.steps; ++step) {
    GP_TRACE_SPAN("pretrain/step");
    steps_done->Add(1);
    optimizer.ZeroGrad();

    Tensor total_loss;
    int correct = 0, total = 0;

    if (config.multi_task) {
      std::vector<Subgraph> prompts, queries;
      std::vector<int> prompt_labels, query_labels;
      if (BuildMultiTaskEpisode(*model, dataset, config, &rng, &prompts,
                                &prompt_labels, &queries, &query_labels)) {
        EpisodeLoss mt =
            ForwardEpisode(*model, dataset.graph, prompts, prompt_labels,
                           queries, query_labels, config.ways);
        total_loss = mt.loss;
        correct += mt.correct;
        total += mt.total;
      }
    }
    if (config.neighbor_matching) {
      std::vector<Subgraph> prompts, queries;
      std::vector<int> prompt_labels, query_labels;
      if (BuildNeighborMatchingEpisode(*model, dataset.graph, config, &rng,
                                       &prompts, &prompt_labels, &queries,
                                       &query_labels)) {
        EpisodeLoss nm =
            ForwardEpisode(*model, dataset.graph, prompts, prompt_labels,
                           queries, query_labels, config.ways);
        total_loss =
            total_loss.defined() ? Add(total_loss, nm.loss) : nm.loss;
        correct += nm.correct;
        total += nm.total;
      }
    }
    if (!total_loss.defined()) continue;  // no episode could be built

    Backward(total_loss);
    optimizer.ClipGradNorm(config.grad_clip);
    optimizer.Step();

    window_loss += total_loss.item();
    window_correct += correct;
    window_total += total;
    ++window_steps;

    if (step % config.log_every == 0 || step == config.steps) {
      const double mean_loss =
          window_steps > 0 ? window_loss / window_steps : 0.0;
      const double acc = window_total > 0
                             ? 100.0 * window_correct / window_total
                             : 0.0;
      curves.step.push_back(step);
      curves.loss.push_back(mean_loss);
      curves.train_accuracy.push_back(acc);
      if (config.verbose) {
        LOG(INFO) << "pretrain step " << step << " loss=" << mean_loss
                  << " acc=" << acc << "%";
      }
      window_loss = 0.0;
      window_correct = window_total = window_steps = 0;
    }
  }
  return curves;
}

}  // namespace gp
