// Evaluation metrics: accuracy aggregation (mean ± std across trials, as
// reported in the paper's tables) and embedding-cluster quality (the
// quantitative stand-in for the t-SNE plots of Fig. 7).

#ifndef GRAPHPROMPTER_CORE_METRICS_H_
#define GRAPHPROMPTER_CORE_METRICS_H_

#include <vector>

#include "core/degradation.h"
#include "tensor/tensor.h"

namespace gp {

// Fraction of positions where predicted == expected.
double Accuracy(const std::vector<int>& predicted,
                const std::vector<int>& expected);

// Sample mean and (population) standard deviation of a series.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};
MeanStd ComputeMeanStd(const std::vector<double>& values);

// Mean silhouette coefficient of `embeddings` (rows) under `labels`, using
// Euclidean distance. Higher = tighter, better-separated clusters. Returns
// 0 for degenerate inputs (single cluster or singleton clusters only).
// Rows whose scores come out non-finite (NaN embeddings, or no reachable
// other cluster) are skipped with a warning; the skip count is added to
// `stats->nonfinite_scores_skipped` when `stats` is non-null.
double SilhouetteScore(const Tensor& embeddings,
                       const std::vector<int>& labels,
                       DegradationStats* stats = nullptr);

// Ratio of mean intra-class pairwise distance to mean inter-class pairwise
// distance (lower is better).
double IntraInterDistanceRatio(const Tensor& embeddings,
                               const std::vector<int>& labels);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_METRICS_H_
