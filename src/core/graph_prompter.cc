#include "core/graph_prompter.h"

#include <algorithm>
#include <cmath>

#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gp {

GraphPrompterModel::GraphPrompterModel(const GraphPrompterConfig& config)
    : config_(config) {
  Rng rng(config.seed);

  PromptGeneratorConfig gen;
  gen.gnn.arch = config.gnn_arch;
  gen.gnn.in_dim = config.feature_dim;
  gen.gnn.hidden_dim = config.embedding_dim;
  gen.gnn.out_dim = config.embedding_dim;
  gen.gnn.num_layers = config.gnn_layers;
  gen.sampler = config.sampler;
  gen.recon_hidden = config.recon_hidden;
  gen.recon_arch = config.recon_arch;
  gen.use_reconstruction = config.use_reconstruction;
  generator_ = std::make_unique<PromptGenerator>(gen, &rng);
  RegisterModule("generator", generator_.get());

  SelectionLayerConfig sel;
  sel.embedding_dim = config.embedding_dim;
  sel.hidden_dim = config.selection_hidden;
  selection_ = std::make_unique<SelectionLayer>(sel, &rng);
  RegisterModule("selection", selection_.get());

  TaskGraphConfig task;
  task.embedding_dim = config.embedding_dim;
  task.num_layers = config.task_layers;
  task.score_temperature = config.score_temperature;
  task_net_ = std::make_unique<TaskGraphNet>(task, &rng);
  RegisterModule("task_net", task_net_.get());
}

GraphPrompterConfig FullGraphPrompterConfig(int feature_dim, uint64_t seed) {
  GraphPrompterConfig config;
  config.feature_dim = feature_dim;
  config.seed = seed;
  return config;
}

namespace {

// Row-wise max softmax probability of `scores` — prediction confidence.
// Rows are independent, so the batch splits into parallel chunks with
// disjoint writes; chunking is fixed, so results match a serial run.
std::vector<float> SoftmaxConfidence(const Tensor& scores) {
  const int rows = scores.rows();
  const int cols = scores.cols();
  std::vector<float> out(rows);
  const float* data = scores.data().data();
  const int64_t grain =
      std::max<int64_t>(1, (int64_t{1} << 13) / std::max(cols, 1));
  ParallelFor(0, rows, grain, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* row = data + static_cast<size_t>(r) * cols;
      float mx = row[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      float total = 0.0f, best = 0.0f;
      for (int c = 0; c < cols; ++c) {
        const float e = std::exp(row[c] - mx);
        total += e;
        best = std::max(best, e);
      }
      out[r] = best / total;
    }
  });
  return out;
}

}  // namespace

EvalResult EvaluateInContext(const GraphPrompterModel& model,
                             const DatasetBundle& dataset,
                             const EvalConfig& eval_config) {
  const GraphPrompterConfig& mc = model.config();
  CHECK_EQ(mc.feature_dim, dataset.graph.feature_dim());

  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;
  episode.queries_from_test = true;

  double total_query_seconds = 0.0;
  int64_t total_queries = 0;

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    NoGradGuard no_grad;
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    // ---- Stage 1: generate data-graph embeddings for all candidates.
    std::vector<int> candidate_items, candidate_labels;
    for (const auto& ex : task.candidates) {
      candidate_items.push_back(ex.item);
      candidate_labels.push_back(ex.label);
    }
    Tensor candidate_emb =
        model.generator().EmbedItems(dataset, candidate_items, &trial_rng);

    Tensor candidate_importance;  // I_p (Eq. 5)
    if (mc.use_selection_layer) {
      candidate_importance = model.selection().Importance(candidate_emb);
    }

    // ---- Embed queries (timed: this is per-query inference work).
    Stopwatch query_embed_timer;
    std::vector<int> query_items;
    std::vector<int> query_expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      query_expected.push_back(ex.label);
    }
    Tensor query_emb =
        model.generator().EmbedItems(dataset, query_items, &trial_rng);
    Tensor query_importance;
    if (mc.use_selection_layer) {
      query_importance = model.selection().Importance(query_emb);
    }
    total_query_seconds += query_embed_timer.ElapsedSeconds();

    // ---- Stage 2: prompt selection -> S-hat (k per class).
    Stopwatch select_timer;
    std::vector<int> selected;
    if (mc.random_prompt_selection ||
        (!mc.use_knn && !mc.use_selection_layer)) {
      // Prodigy behaviour: k random candidates per class.
      for (int cls = 0; cls < ways; ++cls) {
        std::vector<int> members;
        for (size_t p = 0; p < candidate_labels.size(); ++p) {
          if (candidate_labels[p] == cls) {
            members.push_back(static_cast<int>(p));
          }
        }
        trial_rng.Shuffle(&members);
        const int keep = std::min<int>(eval_config.shots, members.size());
        for (int i = 0; i < keep; ++i) selected.push_back(members[i]);
      }
    } else {
      KnnConfig knn;
      knn.shots = eval_config.shots;
      knn.metric = mc.metric;
      knn.use_similarity = mc.use_knn;
      knn.use_importance = mc.use_selection_layer;
      const KnnSelection selection =
          mc.selector == SelectorKind::kClustering
              ? SelectPromptsByClustering(candidate_emb, candidate_importance,
                                          candidate_labels, query_emb,
                                          query_importance, ways, knn,
                                          &trial_rng)
              : SelectPrompts(candidate_emb, candidate_importance,
                              candidate_labels, query_emb, query_importance,
                              ways, knn);
      selected = selection.selected;
    }

    // Refined prompt set S-hat. Note: the importance-weighted embeddings
    // G'_p = G_p * I_p are a *pretraining* input (Sec. IV-C: "S_I in
    // pretraining or S-hat' in testing"); at test time the selected
    // prompts enter the task graph unscaled, with I_p contributing only
    // to the selection score (Eq. 7).
    Tensor prompt_emb = GatherRows(candidate_emb, selected);
    std::vector<int> prompt_labels;
    for (int p : selected) prompt_labels.push_back(candidate_labels[p]);
    total_query_seconds += select_timer.ElapsedSeconds();

    // ---- Stage 3 + prediction: stream query batches through the task
    // graph with optional cache augmentation (Algorithm 2 lines 9-14).
    PromptAugmenterConfig augmenter_config = mc.augmenter;
    if (!augmenter_config.random_pseudo_labels) {
      // Confidence gate relative to chance (1/ways): only predictions at
      // least 1.5x more confident than chance become pseudo-prompts.
      augmenter_config.min_confidence = std::max(
          augmenter_config.min_confidence, 1.5f / static_cast<float>(ways));
    }
    PromptAugmenter augmenter(augmenter_config, trial_rng.NextUint64());
    std::vector<int> predictions(query_expected.size(), -1);

    Stopwatch predict_timer;
    const int num_queries = static_cast<int>(query_items.size());
    for (int start = 0; start < num_queries;
         start += eval_config.query_batch) {
      const int count =
          std::min(eval_config.query_batch, num_queries - start);
      Tensor batch_emb = SliceRows(query_emb, start, count);

      Tensor step_prompts = prompt_emb;
      std::vector<int> step_labels = prompt_labels;
      if (mc.use_augmenter) {
        const auto cached =
            augmenter.GetCachedPrompts(model.config().embedding_dim);
        if (cached.embeddings.rows() > 0) {
          step_prompts = ConcatRows({step_prompts, cached.embeddings});
          step_labels.insert(step_labels.end(), cached.labels.begin(),
                             cached.labels.end());
        }
      }

      const TaskGraphOutput out =
          model.task_net().Forward(step_prompts, step_labels, batch_emb, ways);
      const std::vector<int> batch_pred = ArgmaxRows(out.query_scores);
      const std::vector<float> confidence =
          SoftmaxConfidence(out.query_scores);
      for (int i = 0; i < count; ++i) {
        predictions[start + i] = batch_pred[i];
      }
      if (mc.use_augmenter) {
        augmenter.ObserveQueries(batch_emb, batch_pred, confidence,
                                 std::min(mc.cache_inserts_per_batch, ways));
      }
    }
    total_query_seconds += predict_timer.ElapsedSeconds();
    total_queries += num_queries;

    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(predictions, query_expected));

    if (eval_config.keep_embeddings && trial == eval_config.trials - 1) {
      result.embeddings = ConcatRows({candidate_emb, query_emb});
      result.embedding_labels = candidate_labels;
      result.embedding_labels.insert(result.embedding_labels.end(),
                                     query_expected.begin(),
                                     query_expected.end());
    }
  }

  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  result.ms_per_query =
      total_queries > 0 ? 1e3 * total_query_seconds / total_queries : 0.0;
  return result;
}

}  // namespace gp
