#include "core/graph_prompter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/autograd.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/stopwatch.h"

namespace gp {

Status Validate(const GraphPrompterConfig& config) {
  auto require = [](bool ok, const std::string& what) {
    return ok ? Status::Ok() : InvalidArgumentError("config: " + what);
  };
  GP_RETURN_IF_ERROR(require(config.feature_dim > 0, "feature_dim must be > 0"));
  GP_RETURN_IF_ERROR(
      require(config.embedding_dim > 0, "embedding_dim must be > 0"));
  GP_RETURN_IF_ERROR(require(config.gnn_layers >= 1, "gnn_layers must be >= 1"));
  GP_RETURN_IF_ERROR(
      require(config.recon_hidden > 0, "recon_hidden must be > 0"));
  GP_RETURN_IF_ERROR(
      require(config.selection_hidden > 0, "selection_hidden must be > 0"));
  GP_RETURN_IF_ERROR(
      require(config.task_layers >= 1, "task_layers must be >= 1"));
  GP_RETURN_IF_ERROR(
      require(std::isfinite(config.score_temperature) &&
                  config.score_temperature > 0.0f,
              "score_temperature must be finite and > 0"));
  GP_RETURN_IF_ERROR(
      require(config.sampler.num_hops >= 1, "sampler.num_hops must be >= 1"));
  GP_RETURN_IF_ERROR(
      require(config.sampler.max_nodes >= 1, "sampler.max_nodes must be >= 1"));
  GP_RETURN_IF_ERROR(
      require(config.sampler.num_walks >= 1, "sampler.num_walks must be >= 1"));
  GP_RETURN_IF_ERROR(require(config.augmenter.cache_capacity >= 0,
                             "augmenter.cache_capacity must be >= 0"));
  GP_RETURN_IF_ERROR(require(config.augmenter.top_k_hits >= 0,
                             "augmenter.top_k_hits must be >= 0"));
  GP_RETURN_IF_ERROR(require(std::isfinite(config.augmenter.min_confidence),
                             "augmenter.min_confidence must be finite"));
  GP_RETURN_IF_ERROR(require(config.cache_inserts_per_batch >= 0,
                             "cache_inserts_per_batch must be >= 0"));
  GP_RETURN_IF_ERROR(ValidateIndexOptions(config.augmenter.index));
  return Status::Ok();
}

GraphPrompterModel::GraphPrompterModel(const GraphPrompterConfig& config)
    : config_(config) {
  CHECK_OK(Validate(config));
  Rng rng(config.seed);

  PromptGeneratorConfig gen;
  gen.gnn.arch = config.gnn_arch;
  gen.gnn.in_dim = config.feature_dim;
  gen.gnn.hidden_dim = config.embedding_dim;
  gen.gnn.out_dim = config.embedding_dim;
  gen.gnn.num_layers = config.gnn_layers;
  gen.sampler = config.sampler;
  gen.recon_hidden = config.recon_hidden;
  gen.recon_arch = config.recon_arch;
  gen.use_reconstruction = config.use_reconstruction;
  generator_ = std::make_unique<PromptGenerator>(gen, &rng);
  RegisterModule("generator", generator_.get());

  SelectionLayerConfig sel;
  sel.embedding_dim = config.embedding_dim;
  sel.hidden_dim = config.selection_hidden;
  selection_ = std::make_unique<SelectionLayer>(sel, &rng);
  RegisterModule("selection", selection_.get());

  TaskGraphConfig task;
  task.embedding_dim = config.embedding_dim;
  task.num_layers = config.task_layers;
  task.score_temperature = config.score_temperature;
  task_net_ = std::make_unique<TaskGraphNet>(task, &rng);
  RegisterModule("task_net", task_net_.get());
}

GraphPrompterConfig FullGraphPrompterConfig(int feature_dim, uint64_t seed) {
  GraphPrompterConfig config;
  config.feature_dim = feature_dim;
  config.seed = seed;
  return config;
}

namespace {

// Row-wise max softmax probability of `scores` — prediction confidence.
// Rows are independent, so the batch splits into parallel chunks with
// disjoint writes; chunking is fixed, so results match a serial run.
std::vector<float> SoftmaxConfidence(const Tensor& scores) {
  const int rows = scores.rows();
  const int cols = scores.cols();
  std::vector<float> out(rows);
  const float* data = scores.data().data();
  const int64_t grain =
      std::max<int64_t>(1, (int64_t{1} << 13) / std::max(cols, 1));
  ParallelFor(0, rows, grain, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* row = data + static_cast<size_t>(r) * cols;
      float mx = row[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      float total = 0.0f, best = 0.0f;
      for (int c = 0; c < cols; ++c) {
        const float e = std::exp(row[c] - mx);
        total += e;
        best = std::max(best, e);
      }
      out[r] = best / total;
    }
  });
  return out;
}

// Indices of rows containing any non-finite value. A read-only scan: on a
// clean run it finds nothing and the pipeline below is byte-for-byte the
// unvalidated one.
std::vector<int> NonFiniteRows(const Tensor& t) {
  std::vector<int> bad;
  for (int r = 0; r < t.rows(); ++r) {
    if (!t.RowFinite(r)) bad.push_back(r);
  }
  return bad;
}

// Zeroes the given rows in place (query sanitization: a query must still be
// predicted, so it degrades to the origin instead of being dropped).
void ZeroRows(Tensor* t, const std::vector<int>& rows) {
  float* data = t->mutable_data().data();
  const int cols = t->cols();
  for (int r : rows) {
    std::fill_n(data + static_cast<size_t>(r) * cols, cols, 0.0f);
  }
}

// Prodigy-style selection: `shots` random candidates per class. Shared by
// the random_prompt_selection config and the last rung of the degradation
// ladder.
std::vector<int> RandomSelection(const std::vector<int>& candidate_labels,
                                 int ways, int shots, Rng* rng) {
  std::vector<int> selected;
  for (int cls = 0; cls < ways; ++cls) {
    std::vector<int> members;
    for (size_t p = 0; p < candidate_labels.size(); ++p) {
      if (candidate_labels[p] == cls) {
        members.push_back(static_cast<int>(p));
      }
    }
    rng->Shuffle(&members);
    const int keep = std::min<int>(shots, members.size());
    for (int i = 0; i < keep; ++i) selected.push_back(members[i]);
  }
  return selected;
}

}  // namespace

EvalResult EvaluateInContext(const GraphPrompterModel& model,
                             const DatasetBundle& dataset,
                             const EvalConfig& eval_config) {
  // Bound the buffer pool to this evaluation: trial-to-trial tensor churn
  // recycles through the pool, and everything is drained (and the alloc/
  // gauges published) when the outermost scope exits.
  PoolScope pool_scope;
  const GraphPrompterConfig& mc = model.config();
  CHECK_EQ(mc.feature_dim, dataset.graph.feature_dim());

  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;
  episode.queries_from_test = true;

  double total_query_seconds = 0.0;
  int64_t total_queries = 0;

  // Deadline discipline: checked only at stage boundaries, so the checks
  // cost one Stopwatch read each and a disabled deadline (the batch-eval
  // default) short-circuits on the first comparison.
  Stopwatch deadline_timer;
  const int64_t deadline_us = eval_config.deadline_us;
  auto past_deadline = [&]() {
    return deadline_us > 0 &&
           deadline_timer.ElapsedMicros() >= deadline_us;
  };

  static Counter* trials_done = Telemetry().GetCounter("eval/trials");
  static Counter* queries_done = Telemetry().GetCounter("eval/queries");

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    if (past_deadline()) {
      result.deadline_expired = true;
      break;
    }
    GP_TRACE_SPAN("eval/trial");
    trials_done->Add(1);
    NoGradGuard no_grad;
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    // ---- Stage 1: generate data-graph embeddings for all candidates.
    std::vector<int> candidate_items, candidate_labels;
    for (const auto& ex : task.candidates) {
      candidate_items.push_back(ex.item);
      candidate_labels.push_back(ex.label);
    }
    Tensor candidate_emb;
    {
      GP_TRACE_SPAN("eval/embed_candidates");
      candidate_emb =
          model.generator().EmbedItems(dataset, candidate_items, &trial_rng);
    }
    if (FaultInjector* inj = ActiveFaultInjector()) {
      inj->CorruptRows(&candidate_emb.mutable_data(), candidate_emb.rows(),
                       candidate_emb.cols());
    }
    if (past_deadline()) {
      result.deadline_expired = true;
      break;
    }

    // Quarantine: a candidate with a non-finite embedding would poison
    // every similarity and importance it touches, so it is removed from
    // the candidate pool. If *every* row is damaged there is nothing left
    // to select from — sanitize to zeros and fall through to the random
    // rung of the ladder instead of returning an empty prompt set.
    bool candidates_degenerate = false;
    if (const std::vector<int> bad = NonFiniteRows(candidate_emb);
        !bad.empty()) {
      if (bad.size() == static_cast<size_t>(candidate_emb.rows())) {
        ZeroRows(&candidate_emb, bad);
        candidates_degenerate = true;
      } else {
        std::vector<int> keep;
        std::vector<int> kept_items, kept_labels;
        size_t next_bad = 0;
        for (int r = 0; r < candidate_emb.rows(); ++r) {
          if (next_bad < bad.size() && bad[next_bad] == r) {
            ++next_bad;
            continue;
          }
          keep.push_back(r);
          kept_items.push_back(candidate_items[r]);
          kept_labels.push_back(candidate_labels[r]);
        }
        candidate_emb = GatherRows(candidate_emb, keep);
        candidate_items = std::move(kept_items);
        candidate_labels = std::move(kept_labels);
      }
      result.degradation.quarantined_prompts += bad.size();
      LOG(WARNING) << "trial " << trial << ": quarantined " << bad.size()
                   << " candidate embedding rows with non-finite values";
    }

    Tensor candidate_importance;  // I_p (Eq. 5)
    if (mc.use_selection_layer) {
      candidate_importance = model.selection().Importance(candidate_emb);
    }

    // ---- Embed queries (timed: this is per-query inference work).
    Stopwatch query_embed_timer;
    std::vector<int> query_items;
    std::vector<int> query_expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      query_expected.push_back(ex.label);
    }
    Tensor query_emb;
    {
      GP_TRACE_SPAN("eval/embed_queries");
      query_emb =
          model.generator().EmbedItems(dataset, query_items, &trial_rng);
    }
    if (FaultInjector* inj = ActiveFaultInjector()) {
      inj->CorruptRows(&query_emb.mutable_data(), query_emb.rows(),
                       query_emb.cols());
    }
    // Unlike candidates, a damaged query cannot be dropped — it still needs
    // a prediction. Sanitize the row to zeros; the task graph then scores
    // it from label-prototype structure alone.
    if (const std::vector<int> bad = NonFiniteRows(query_emb); !bad.empty()) {
      ZeroRows(&query_emb, bad);
      result.degradation.sanitized_queries += bad.size();
      LOG(WARNING) << "trial " << trial << ": sanitized " << bad.size()
                   << " query embedding rows with non-finite values";
    }
    Tensor query_importance;
    if (mc.use_selection_layer) {
      query_importance = model.selection().Importance(query_emb);
    }
    total_query_seconds += query_embed_timer.ElapsedSeconds();

    // ---- Stage 2: prompt selection -> S-hat (k per class), with the
    // degradation ladder kNN -> selection-layer-only -> random. Health
    // checks are read-only; on a clean run the selector sees exactly the
    // configured combination of terms.
    const bool imp_healthy = mc.use_selection_layer &&
                             candidate_importance.AllFinite() &&
                             query_importance.AllFinite();
    const bool sim_healthy = mc.use_knn && !candidates_degenerate;
    Stopwatch select_timer;
    // Explicit span object (not GP_TRACE_SPAN) so it can close right where
    // the selection stage hands off to prediction, mid-scope.
    std::optional<TraceSpan> select_span;
    select_span.emplace("eval/select_prompts");
    std::vector<int> selected;
    if (mc.random_prompt_selection ||
        (!mc.use_knn && !mc.use_selection_layer)) {
      // Prodigy behaviour: k random candidates per class.
      selected = RandomSelection(candidate_labels, ways, eval_config.shots,
                                 &trial_rng);
    } else if (!sim_healthy && !imp_healthy) {
      // Bottom rung: neither the similarity nor the importance term can be
      // trusted; a random per-class pick still yields a usable prompt set.
      selected = RandomSelection(candidate_labels, ways, eval_config.shots,
                                 &trial_rng);
      ++result.degradation.selector_random;
      LOG(WARNING) << "trial " << trial
                   << ": prompt selector degraded to random selection";
    } else {
      KnnConfig knn;
      knn.shots = eval_config.shots;
      knn.metric = mc.metric;
      knn.use_similarity = mc.use_knn && sim_healthy;
      knn.use_importance = mc.use_selection_layer && imp_healthy;
      if (mc.use_selection_layer && !knn.use_importance) {
        ++result.degradation.selector_knn_only;
        LOG(WARNING) << "trial " << trial
                     << ": non-finite importance, selector degraded to "
                        "kNN-only scoring";
      }
      if (mc.use_knn && !knn.use_similarity) {
        ++result.degradation.selector_selection_only;
        LOG(WARNING) << "trial " << trial
                     << ": similarity unusable, selector degraded to "
                        "selection-layer-only scoring";
      }
      const KnnSelection selection =
          mc.selector == SelectorKind::kClustering
              ? SelectPromptsByClustering(candidate_emb, candidate_importance,
                                          candidate_labels, query_emb,
                                          query_importance, ways, knn,
                                          &trial_rng)
              : SelectPrompts(candidate_emb, candidate_importance,
                              candidate_labels, query_emb, query_importance,
                              ways, knn);
      selected = selection.selected;
    }

    // Prompt-set hygiene after optional fault injection: drop duplicate
    // ids (a duplicated prompt would double-weight its class prototype)
    // and account for classes that lost every prompt. SegmentMeanRows
    // tolerates an empty class (prototype = label embedding only), so a
    // missing class degrades accuracy but cannot produce NaN.
    if (FaultInjector* inj = ActiveFaultInjector()) {
      inj->MutatePromptSet(&selected);
    }
    {
      std::vector<char> seen_prompt(candidate_labels.size(), 0);
      std::vector<int> unique;
      for (int p : selected) {
        if (p >= 0 && p < static_cast<int>(candidate_labels.size()) &&
            !seen_prompt[p]) {
          seen_prompt[p] = 1;
          unique.push_back(p);
        }
      }
      if (unique.size() != selected.size()) {
        result.degradation.deduped_prompts += selected.size() - unique.size();
        selected = std::move(unique);
      }
      std::vector<char> class_covered(ways, 0);
      for (int p : selected) class_covered[candidate_labels[p]] = 1;
      for (int cls = 0; cls < ways; ++cls) {
        if (!class_covered[cls]) ++result.degradation.missing_class_prompts;
      }
    }

    // Refined prompt set S-hat. Note: the importance-weighted embeddings
    // G'_p = G_p * I_p are a *pretraining* input (Sec. IV-C: "S_I in
    // pretraining or S-hat' in testing"); at test time the selected
    // prompts enter the task graph unscaled, with I_p contributing only
    // to the selection score (Eq. 7).
    Tensor prompt_emb = GatherRows(candidate_emb, selected);
    std::vector<int> prompt_labels;
    for (int p : selected) prompt_labels.push_back(candidate_labels[p]);
    select_span.reset();
    total_query_seconds += select_timer.ElapsedSeconds();
    if (past_deadline()) {
      result.deadline_expired = true;
      break;
    }

    // ---- Stage 3 + prediction: stream query batches through the task
    // graph with optional cache augmentation (Algorithm 2 lines 9-14).
    PromptAugmenterConfig augmenter_config = mc.augmenter;
    if (!augmenter_config.random_pseudo_labels) {
      // Confidence gate relative to chance (1/ways): only predictions at
      // least 1.5x more confident than chance become pseudo-prompts.
      augmenter_config.min_confidence = std::max(
          augmenter_config.min_confidence, 1.5f / static_cast<float>(ways));
    }
    // A caller-provided augmenter carries its cache (and health counters)
    // across calls; otherwise a fresh per-trial instance is used. The RNG
    // fork happens in both branches so downstream draws stay aligned with
    // the local-augmenter pipeline.
    std::optional<PromptAugmenter> local_augmenter;
    const uint64_t augmenter_seed = trial_rng.NextUint64();
    PromptAugmenter* augmenter = eval_config.shared_augmenter;
    if (augmenter == nullptr) {
      local_augmenter.emplace(augmenter_config, augmenter_seed);
      augmenter = &*local_augmenter;
    }
    // Health counters accumulate for the augmenter's lifetime; with a
    // shared instance that spans calls, so account in deltas from here.
    const PromptAugmenter::Health base_health = augmenter->health();
    const int breaker_capacity = eval_config.shared_augmenter != nullptr
                                     ? augmenter->config().cache_capacity
                                     : augmenter_config.cache_capacity;
    std::vector<int> predictions(query_expected.size(), -1);
    // Circuit breaker: once more entries have been evicted as poisoned than
    // the cache even holds, the pseudo-prompt source is clearly unhealthy —
    // skip the augmenter stage for the rest of the episode (Eq. 9 degrades
    // to S-hat' = S-hat).
    bool augmenter_enabled =
        mc.use_augmenter && !eval_config.disable_augmenter;

    Stopwatch predict_timer;
    GP_TRACE_SPAN("eval/predict");
    const int num_queries = static_cast<int>(query_items.size());
    int predicted_this_trial = 0;
    for (int start = 0; start < num_queries;
         start += eval_config.query_batch) {
      if (past_deadline()) {
        result.deadline_expired = true;
        break;
      }
      const int count =
          std::min(eval_config.query_batch, num_queries - start);
      Tensor batch_emb = SliceRows(query_emb, start, count);

      if (FaultInjector* inj = ActiveFaultInjector()) {
        if (inj->MaybeSlowBatch()) ++result.degradation.slow_batches;
        if (augmenter_enabled) {
          const auto entries = augmenter->cache().Entries();
          const int victim =
              inj->PickCacheEntryToPoison(static_cast<int>(entries.size()));
          if (victim >= 0) {
            CacheEntry* entry =
                augmenter->mutable_cache().MutableEntry(entries[victim].first);
            if (entry != nullptr && !entry->embedding.empty()) {
              entry->embedding[0] =
                  std::numeric_limits<float>::quiet_NaN();
            }
          }
        }
      }

      Tensor step_prompts = prompt_emb;
      std::vector<int> step_labels = prompt_labels;
      if (augmenter_enabled) {
        augmenter->EvictPoisoned(model.config().embedding_dim, ways);
        if (augmenter->health().evicted_poisoned -
                base_health.evicted_poisoned >
            breaker_capacity) {
          augmenter_enabled = false;
          ++result.degradation.augmenter_stage_skips;
          LOG(WARNING) << "trial " << trial
                       << ": prompt cache repeatedly poisoned; augmenter "
                          "stage disabled for the rest of the episode";
        }
      }
      if (augmenter_enabled &&
          augmenter->ValidateCache(model.config().embedding_dim, ways).ok()) {
        const auto cached =
            augmenter->GetCachedPrompts(model.config().embedding_dim);
        if (cached.embeddings.rows() > 0) {
          step_prompts = ConcatRows({step_prompts, cached.embeddings});
          step_labels.insert(step_labels.end(), cached.labels.begin(),
                             cached.labels.end());
        }
      }

      const TaskGraphOutput out =
          model.task_net().Forward(step_prompts, step_labels, batch_emb, ways);
      std::vector<int> batch_pred = ArgmaxRows(out.query_scores);
      std::vector<float> confidence = SoftmaxConfidence(out.query_scores);
      // Prediction fallback: a row of non-finite scores (damaged weights or
      // an injected fault that slipped past earlier rungs) gets a
      // deterministic random vote instead of an argmax over NaN, and its
      // confidence is floored so it can never enter the cache.
      for (int i = 0; i < count; ++i) {
        if (!out.query_scores.RowFinite(i)) {
          batch_pred[i] = static_cast<int>(trial_rng.UniformInt(ways));
          confidence[i] = 0.0f;
          ++result.degradation.prediction_fallbacks;
        }
        predictions[start + i] = batch_pred[i];
      }
      if (augmenter_enabled) {
        augmenter->ObserveQueries(batch_emb, batch_pred, confidence,
                                  std::min(mc.cache_inserts_per_batch, ways));
      }
      predicted_this_trial += count;
    }
    total_query_seconds += predict_timer.ElapsedSeconds();
    total_queries += predicted_this_trial;
    result.degradation.augmenter_rejected_inserts +=
        augmenter->health().rejected_nonfinite -
        base_health.rejected_nonfinite;
    result.degradation.augmenter_evicted_poisoned +=
        augmenter->health().evicted_poisoned - base_health.evicted_poisoned;

    // A deadline mid-trial leaves unpredicted queries; a partial trial's
    // accuracy would be biased, so it is dropped rather than averaged.
    if (result.deadline_expired) break;
    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(predictions, query_expected));

    if (eval_config.keep_embeddings && trial == eval_config.trials - 1) {
      result.embeddings = ConcatRows({candidate_emb, query_emb});
      result.embedding_labels = candidate_labels;
      result.embedding_labels.insert(result.embedding_labels.end(),
                                     query_expected.begin(),
                                     query_expected.end());
    }
  }

  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  result.ms_per_query =
      total_queries > 0 ? 1e3 * total_query_seconds / total_queries : 0.0;
  result.completed_queries = total_queries;
  queries_done->Add(total_queries);
  result.degradation.PublishToTelemetry();
  return result;
}

}  // namespace gp
