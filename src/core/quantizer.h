// Int8 scalar quantization for the IVF candidate pass (DESIGN.md §8).
//
// Per-dimension min/max affine quantization: dimension j of a row x is
// stored as the uint8 code c = round((x[j] - min[j]) / step[j]) with
// step[j] = (max[j] - min[j]) / 255, reconstructing as min[j] + step[j]*c
// with error <= step[j]/2. The quantized codes are used ONLY to rank
// candidates inside PromptIndex::Probe before an exact float re-rank —
// never to produce a returned score — so their float-precision arithmetic
// is an approximation-contract-safe pruning device, exactly like the IVF
// shard routing it composes with.
//
// Asymmetric scoring (float query x uint8 codes) is algebraic, not
// dequantize-then-score: for the dot/cosine family,
//     q . dequant(c) = sum_j q[j]*min[j]  +  sum_j (q[j]*step[j]) * c[j]
// so QuantizedQueryScratch precomputes the bias term and the scaled query
// once per query, leaving a pure int8-to-float dot per candidate (SIMD'd
// in core/distance_avx2.cc). L2/L1 use the residual form
//     r[j] = q[j] - min[j],   d_j = r[j] - step[j]*c[j].

#ifndef GRAPHPROMPTER_CORE_QUANTIZER_H_
#define GRAPHPROMPTER_CORE_QUANTIZER_H_

#include <cstdint>
#include <vector>

#include "core/distance.h"
#include "util/cpuid.h"

namespace gp {

// Per-dimension affine quantization parameters (min/step per dimension).
struct QuantizerParams {
  int dim = 0;
  std::vector<float> min;   // lower bound per dimension
  std::vector<float> step;  // (max - min) / 255 per dimension; 0 = constant

  bool defined() const { return dim > 0; }
};

// Fits params over `rows` vectors (row-major, rows x dim): per-dimension
// min/max over the population. Non-finite values are ignored when fitting
// (a poisoned row must not stretch every other row's range); a dimension
// with no finite values quantizes to a constant 0.
QuantizerParams FitQuantizer(const float* data, int rows, int dim);

// Encodes one row into `code` (dim bytes), clamping to the fitted range —
// vectors inserted after the fit (dynamic index growth) stay valid, just
// saturated until the next rebuild requantizes them.
void QuantizeRow(const QuantizerParams& params, const float* row,
                 uint8_t* code);

// Reconstructs one row (tests and error-bound checks).
void DequantizeRow(const QuantizerParams& params, const uint8_t* code,
                   float* out);

namespace simd {
float QuantizedDotRawAvx2(const uint8_t* code, const float* qs, int n);
float QuantizedNegL2RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n);
float QuantizedNegL1RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n);
}  // namespace simd

inline float QuantizedDotRawScalar(const uint8_t* code, const float* qs,
                                   int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) total += static_cast<float>(code[i]) * qs[i];
  return total;
}

inline float QuantizedNegL2RawScalar(const uint8_t* code, const float* r,
                                     const float* step, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) {
    const float d = r[i] - step[i] * static_cast<float>(code[i]);
    total += d * d;
  }
  return -total;
}

inline float QuantizedNegL1RawScalar(const uint8_t* code, const float* r,
                                     const float* step, int n) {
  float total = 0.0f;
  for (int i = 0; i < n; ++i) {
    total += std::abs(r[i] - step[i] * static_cast<float>(code[i]));
  }
  return -total;
}

// sum_j qs[j] * code[j] — the candidate-dependent half of the asymmetric
// dot product.
inline float QuantizedDotRaw(const uint8_t* code, const float* qs, int n) {
  if (Avx2Enabled()) return simd::QuantizedDotRawAvx2(code, qs, n);
  return QuantizedDotRawScalar(code, qs, n);
}

// -sum_j (r[j] - step[j]*code[j])^2 — negated squared L2 (monotone with
// -sqrt, so fine for ranking).
inline float QuantizedNegL2Raw(const uint8_t* code, const float* r,
                               const float* step, int n) {
  if (Avx2Enabled()) return simd::QuantizedNegL2RawAvx2(code, r, step, n);
  return QuantizedNegL2RawScalar(code, r, step, n);
}

inline float QuantizedNegL1Raw(const uint8_t* code, const float* r,
                               const float* step, int n) {
  if (Avx2Enabled()) return simd::QuantizedNegL1RawAvx2(code, r, step, n);
  return QuantizedNegL1RawScalar(code, r, step, n);
}

// Per-query scratch for scoring many candidates: computed once per
// (query, metric), then Score() is one int8 kernel call per candidate.
struct QuantizedQueryScratch {
  DistanceMetric metric = DistanceMetric::kCosine;
  int dim = 0;
  float bias = 0.0f;           // sum_j q[j]*min[j]        (cosine)
  double query_norm = 0.0;     // ||q||                    (cosine)
  std::vector<float> scaled;   // q[j]*step[j] (cosine) or q[j]-min[j] (L2/L1)
  const float* step = nullptr; // borrowed from the params  (L2/L1)

  void Prepare(const QuantizerParams& params, const float* query,
               DistanceMetric m);

  // Approximate similarity (higher = closer) of one quantized candidate;
  // `row_norm` is the candidate's stored exact float norm (cosine only).
  float Score(const uint8_t* code, float row_norm) const;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_QUANTIZER_H_
