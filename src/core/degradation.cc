#include "core/degradation.h"

#include <utility>
#include <vector>

#include "obs/telemetry.h"

namespace gp {

namespace {

// Name/value view over every counter, shared by Merge/Total/ToString so a
// new counter only needs to be added here once.
std::vector<std::pair<const char*, int64_t DegradationStats::*>> Fields() {
  using S = DegradationStats;
  return {
      {"quarantined_prompts", &S::quarantined_prompts},
      {"sanitized_queries", &S::sanitized_queries},
      {"selector_knn_only", &S::selector_knn_only},
      {"selector_selection_only", &S::selector_selection_only},
      {"selector_random", &S::selector_random},
      {"deduped_prompts", &S::deduped_prompts},
      {"missing_class_prompts", &S::missing_class_prompts},
      {"augmenter_rejected_inserts", &S::augmenter_rejected_inserts},
      {"augmenter_evicted_poisoned", &S::augmenter_evicted_poisoned},
      {"augmenter_stage_skips", &S::augmenter_stage_skips},
      {"prediction_fallbacks", &S::prediction_fallbacks},
      {"nonfinite_scores_skipped", &S::nonfinite_scores_skipped},
      {"slow_batches", &S::slow_batches},
  };
}

}  // namespace

int64_t DegradationStats::TotalEvents() const {
  int64_t total = 0;
  for (const auto& [name, member] : Fields()) total += this->*member;
  return total;
}

void DegradationStats::Merge(const DegradationStats& other) {
  for (const auto& [name, member] : Fields()) {
    this->*member += other.*member;
  }
}

void DegradationStats::PublishToTelemetry() const {
  for (const auto& [name, member] : Fields()) {
    const int64_t value = this->*member;
    if (value == 0) continue;
    Telemetry().GetCounter(std::string("degradation/") + name)->Add(value);
  }
}

std::string DegradationStats::ToString() const {
  std::string out;
  for (const auto& [name, member] : Fields()) {
    const int64_t value = this->*member;
    if (value == 0) continue;
    out += "  ";
    out += name;
    out += ": ";
    out += std::to_string(value);
    out += "\n";
  }
  if (out.empty()) return "no degradation events\n";
  return out;
}

}  // namespace gp
