// k-means clustering (k-means++ initialisation, Lloyd iterations).
//
// Used by the clustering-based prompt selector — the paper's Further
// Discussion proposes replacing kNN retrieval with "other clustering
// methods to dynamically and adaptively select prompts".

#ifndef GRAPHPROMPTER_CORE_KMEANS_H_
#define GRAPHPROMPTER_CORE_KMEANS_H_

#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {

struct KMeansResult {
  Tensor centroids;             // (k x d)
  std::vector<int> assignment;  // cluster index per input row
  double inertia = 0.0;         // sum of squared distances to centroids
};

struct KMeansConfig {
  int clusters = 3;
  int max_iterations = 25;
};

// Clusters the rows of `points` ((n x d), n >= clusters). Deterministic
// given the Rng state. Empty clusters are re-seeded from the farthest
// point.
KMeansResult RunKMeans(const Tensor& points, const KMeansConfig& config,
                       Rng* rng);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_KMEANS_H_
