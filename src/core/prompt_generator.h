// Stage 1 — Prompt Generator (Sec. IV-A).
//
// Contextualises each input (node or edge) by sampling an l-hop subgraph
// with the random-walk procedure (Eq. 1), reconstructs edge weights with a
// jointly-trained MLP + sigmoid (Eqs. 2-3) to suppress task-irrelevant
// structure, and aggregates the re-weighted subgraph with GNN_D into a
// single data-graph embedding G_i (Eq. 4).

#ifndef GRAPHPROMPTER_CORE_PROMPT_GENERATOR_H_
#define GRAPHPROMPTER_CORE_PROMPT_GENERATOR_H_

#include <memory>
#include <vector>

#include "data/datasets.h"
#include "gnn/encoder.h"
#include "graph/sampler.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace gp {

// The network computing the Eq. 2 edge logits. kMlp is the paper's
// MLP_phi; kBilinear (z_uv = x_u^T W x_v / sqrt(d)) is an instance of the
// Further-Discussion note that "the reconstruction layer can be replaced
// with networks other than just MLP".
enum class ReconArch { kMlp, kBilinear };

const char* ReconArchName(ReconArch arch);

struct PromptGeneratorConfig {
  GnnEncoderConfig gnn;        // GNN_D architecture (Fig. 4 swaps this)
  SamplerConfig sampler;       // l-hop / node-cap / walk settings
  int recon_hidden = 64;       // hidden width of MLP_phi (two-layer, Sec. V-F)
  ReconArch recon_arch = ReconArch::kMlp;
  bool use_reconstruction = true;  // ablation "w/o Generator" sets false
  bool use_random_walk = true;     // false = exact BFS neighborhoods
};

// Embeds batches of dataset items into data-graph embeddings. All
// subgraphs of one call are packed into a disjoint union so the GNN and
// the reconstruction MLP run once per batch.
class PromptGenerator : public Module {
 public:
  PromptGenerator(const PromptGeneratorConfig& config, Rng* rng);

  // Samples a data graph for one dataset item (node id or edge id).
  Subgraph SampleForItem(const DatasetBundle& dataset, int item,
                         Rng* rng) const;
  // Samples a data graph around a bare node of `graph` (used by the
  // Neighbor-Matching pretraining task).
  Subgraph SampleForNode(const Graph& graph, int node, Rng* rng) const;

  // Embeds pre-sampled subgraphs of `graph`: returns (B x out_dim).
  // `feature_offset`, when defined, is a (1 x in_dim) row added to every
  // node feature before encoding — the hook used by the prompt-token
  // baseline (ProG) to inject its learnable prompt vector.
  Tensor EmbedSubgraphs(const Graph& graph,
                        const std::vector<Subgraph>& subgraphs,
                        const Tensor& feature_offset = Tensor()) const;

  // Convenience: sample + embed dataset items. (num_items x out_dim).
  Tensor EmbedItems(const DatasetBundle& dataset,
                    const std::vector<int>& items, Rng* rng) const;

  // Reconstructed edge weights for a single subgraph (E x 1); exposes the
  // Eq. 3 weights for inspection/tests. All ones when reconstruction is
  // disabled.
  Tensor ReconstructEdgeWeights(const Graph& graph,
                                const Subgraph& subgraph) const;

  int out_dim() const { return config_.gnn.out_dim; }
  const PromptGeneratorConfig& config() const { return config_; }

 private:
  // Computes Eq. 2-3 weights for a packed edge list over `features`.
  Tensor EdgeWeightsFor(const Tensor& features, const std::vector<int>& src,
                        const std::vector<int>& dst) const;

  PromptGeneratorConfig config_;
  std::unique_ptr<Mlp> recon_mlp_;      // MLP_phi: [x_u || x_v] -> logit
  std::unique_ptr<Linear> recon_bilinear_;  // W of the bilinear variant
  std::unique_ptr<GnnEncoder> encoder_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_PROMPT_GENERATOR_H_
