// Task graph and its attention GNN_T (Sec. III-B "Task Graphs" and Eq. 10).
//
// The task graph is bipartite: data nodes (prompt and query data-graph
// embeddings) on one side, label nodes on the other. Every prompt connects
// to every label node with an edge attribute encoding {true label, false
// label}; query-label edges carry a distinct "query" attribute. An
// attention-based message-passing network (following Prodigy's task-graph
// model) fuses prompts into label embeddings and contextualises queries;
// the prediction is the label whose embedding is most cosine-similar to
// the query embedding (Eq. 11).

#ifndef GRAPHPROMPTER_CORE_TASK_GRAPH_H_
#define GRAPHPROMPTER_CORE_TASK_GRAPH_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace gp {

struct TaskGraphConfig {
  int embedding_dim = 64;
  int num_layers = 2;
  float leaky_slope = 0.2f;
  // Cosine scores are multiplied by this before the softmax/CE loss.
  float score_temperature = 10.0f;
};

struct TaskGraphOutput {
  // (Q x m) scaled cosine similarities — logits for prediction/loss.
  Tensor query_scores;
  // Final embeddings of query and label nodes ((Q x d), (m x d)).
  Tensor query_embeddings;
  Tensor label_embeddings;
};

// The attention network over the task graph.
class TaskGraphNet : public Module {
 public:
  TaskGraphNet(const TaskGraphConfig& config, Rng* rng);

  // prompt_embeddings: (P x d) — the (importance-weighted) prompt set;
  // prompt_labels: episode-local class per prompt (values in [0, m));
  // query_embeddings: (Q x d); num_classes: m.
  TaskGraphOutput Forward(const Tensor& prompt_embeddings,
                          const std::vector<int>& prompt_labels,
                          const Tensor& query_embeddings,
                          int num_classes) const;

  const TaskGraphConfig& config() const { return config_; }

 private:
  // Edge attribute layout (one-hot-ish, 4 dims):
  //   [0] prompt edge with TRUE label   [1] prompt edge with FALSE label
  //   [2] query edge                    [3] direction (0 = data->label).
  static constexpr int kEdgeFeatDim = 4;

  struct AttentionLayer : public Module {
    AttentionLayer(int dim, Rng* rng);
    std::unique_ptr<Linear> message;   // (d + 4) -> d
    std::unique_ptr<Linear> self;      // d -> d
    Tensor attn_src;                   // (d x 1)
    Tensor attn_dst;                   // (d x 1)
    Tensor attn_edge;                  // (4 x 1)
    // ReZero-style residual gate, initialised to zero: the task graph
    // starts as a pure metric classifier over the label-node class means
    // and learns how much attention correction to apply.
    Tensor gate;                       // (1 x 1)
  };

  TaskGraphConfig config_;
  Tensor label_init_;  // learnable shared initial label-node embedding
  std::vector<std::unique_ptr<AttentionLayer>> layers_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_TASK_GRAPH_H_
