// Sharded IVF (inverted-file) index for sublinear prompt retrieval.
//
// The Prompt Selector (Eqs. 6-8) and the Augmenter cache scan (Eq. 9) are
// O(P * Q) brute force: every candidate prompt is scored against every
// query. This index clusters the prompt embeddings into `nlist` centroid
// shards with core/kmeans.cc and routes each query to its `nprobe` most
// similar shards, so only the candidates in those shards are scored —
// sublinear in P once P is large enough to shard.
//
// Approximation contract (see DESIGN.md): the index only prunes which
// candidates are *scored*; every score that is computed uses the exact
// shared kernels from core/distance.h. With nprobe == nlist every shard is
// probed, the candidate pool is the full prompt set in ascending id order,
// and retrieval is bitwise identical to brute force. The index degrades to
// exact search whenever sharding would be degenerate: fewer points than
// requested shards, fewer than 2 * nlist points, auto mode below
// `min_points`, or an explicit --index=exact.
//
// Quantized candidate pass (options.quantize): each IVF shard additionally
// stores int8 per-dimension min/max affine codes of its members
// (core/quantizer.h; requantized on every shard rebuild) plus each
// member's exact float norm. A probe then ranks the probed shards'
// members by the quantized approximate similarity and returns only the
// top `rerank * min_candidates` — the caller's exact float scoring of the
// survivors IS the exact re-rank, so every returned score is still
// computed by the exact kernels; quantization is one more candidate-
// generation filter under the same contract. The trade: with quantize on,
// even a full probe (nprobe == nlist) prunes, so the full-probe bitwise
// guarantee applies only to quantize == false (the default).
//
// Configuration resolution: SetGlobalIndexOptions() (typically via
// ConfigureIndexFromFlags: --index / --nlist / --nprobe /
// --index-min-points / --index-recall-sample / --quantize / --rerank) >
// GP_INDEX, GP_INDEX_NLIST, GP_INDEX_NPROBE, GP_INDEX_MIN_POINTS,
// GP_INDEX_RECALL_SAMPLE, GP_INDEX_QUANTIZE, GP_INDEX_RERANK env >
// built-in defaults.

#ifndef GRAPHPROMPTER_CORE_PROMPT_INDEX_H_
#define GRAPHPROMPTER_CORE_PROMPT_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/distance.h"
#include "core/quantizer.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace gp {

class Flags;

enum class IndexMode {
  kExact,  // always brute force (the pre-index pipeline, bit for bit)
  kIvf,    // shard whenever sharding is non-degenerate
  kAuto,   // exact below min_points vectors, IVF at or above (default)
};

const char* IndexModeName(IndexMode mode);
StatusOr<IndexMode> ParseIndexMode(const std::string& name);

struct PromptIndexOptions {
  IndexMode mode = IndexMode::kAuto;
  int nlist = 0;   // centroid shards; 0 = auto: round(sqrt(P))
  int nprobe = 0;  // shards probed per query; 0 = auto: max(1, nlist / 4)
  // Auto mode stays exact below this many vectors: for small pools the
  // k-means build costs more than it saves and exactness is contractual
  // for the paper-scale episodes (golden_eval_test).
  int min_points = 256;
  // When > 0, every Nth query is additionally scored brute force and the
  // observed top-k overlap is published to the index/recall_hits and
  // index/recall_total counters (write-only telemetry; predictions are
  // unaffected). 0 = off.
  int recall_sample = 0;
  // Int8 candidate pass: rank probed-shard members by quantized
  // similarity and return only the best rerank * min_candidates for exact
  // re-ranking by the caller. Off by default — exactness stays opt-out
  // only, like IVF itself.
  bool quantize = false;
  // Quantized-pass survivors per requested candidate (>= 1). Higher =
  // better recall, more exact re-rank work.
  int rerank = 8;
  uint64_t seed = 0x5eedULL;  // k-means shard seeding (deterministic)
};

Status ValidateIndexOptions(const PromptIndexOptions& options);

// Process-wide defaults, picked up by KnnConfig / PromptAugmenterConfig at
// construction. First read initialises from the GP_INDEX* environment.
PromptIndexOptions GlobalIndexOptions();
void SetGlobalIndexOptions(const PromptIndexOptions& options);

// Applies --index/--nlist/--nprobe/--index-min-points/--index-recall-sample
// on top of the current global options (env fallbacks included), installs
// the result globally, and returns it. Aborts on an unparseable --index.
PromptIndexOptions ConfigureIndexFromFlags(const Flags& flags);

// The index. Two usage patterns:
//   * static  — Build(embeddings) over a (P x d) tensor; ids are the row
//               indices 0..P-1 (the Prompt Selector's candidate pool);
//   * dynamic — Insert/Erase with caller-chosen ids (the Augmenter's
//               pseudo-prompt cache, which mutates per query batch). The
//               index shards itself once it crosses the exact threshold
//               and re-shards when it doubles past the last build.
// Probe() is const and safe to call concurrently from ParallelFor workers.
class PromptIndex {
 public:
  PromptIndex(const PromptIndexOptions& options, DistanceMetric metric);

  // Builds over the rows of `embeddings` (ids 0..P-1), replacing any
  // previous contents. Chooses IVF vs exact per the options; the decision
  // is readable via ivf().
  void Build(const Tensor& embeddings);

  // Dynamic maintenance. Insert keeps a copy of the vector so the index
  // can (re)shard itself; ids must be unique while present.
  void Insert(int64_t id, const float* vec, int dim);
  bool Erase(int64_t id);
  void Clear();

  int size() const { return static_cast<int>(assignment_.size()); }
  // Every indexed id, ascending (for reconciling against an external
  // container that evicts without reporting the victim).
  std::vector<int64_t> Ids() const;
  bool ivf() const { return ivf_; }
  // True when the int8 candidate pass is active (IVF built with
  // options.quantize and the codes exist).
  bool quantized() const { return ivf_ && quantizer_.defined(); }
  // Resolved shard parameters; 0 until an IVF build happened.
  int nlist() const { return ivf_ ? centroids_.rows() : 0; }
  int nprobe() const { return nprobe_; }

  // Bytes the candidate pass reads/stores per indexed vector: codes + the
  // stored float norm + the id when quantized, the full float row + id
  // otherwise. The bench's bytes-per-prompt metric.
  size_t CandidateBytesPerVector() const;

  struct ProbeStats {
    int shards_probed = 0;
    bool exact = false;  // the probe returned the full id set
    // Quantized candidate pass accounting (0 when quantize is off or the
    // probe returned every collected candidate unpruned).
    int quantized_scored = 0;
    int quantized_kept = 0;
  };

  // Candidate ids for `query`, ascending. Exact mode returns every id.
  // IVF mode walks shards in decreasing centroid similarity and stops once
  // at least nprobe shards were consumed AND at least `min_candidates` ids
  // were collected (the small-pool brute-force fallback: a degenerate probe
  // widens itself instead of starving the caller).
  std::vector<int64_t> Probe(const float* query, int dim, int min_candidates,
                             ProbeStats* stats = nullptr) const;

 private:
  bool ShouldShard(int points) const;
  int ResolveNlist(int points) const;
  // Shards `rows` (one id per row) into nlist k-means clusters.
  void BuildShards(const Tensor& rows, const std::vector<int64_t>& ids);
  // Nearest centroid by the k-means geometry (L2; cosine metric clusters
  // on L2-normalised vectors, so the same rule applies to a normalised
  // copy of `vec`).
  int NearestShard(const float* vec, int dim) const;
  // Erase without the shrink-below-threshold rebuild check (Insert's
  // replace step must not re-shard mid-insert).
  bool EraseNoRebuild(int64_t id);
  void MaybeRebuildFromStored();

  PromptIndexOptions options_;
  DistanceMetric metric_;
  int dim_ = 0;

  bool ivf_ = false;
  int nprobe_ = 0;
  int built_size_ = 0;          // vectors present at the last shard build
  Tensor centroids_;            // (nlist x d); normalised space for cosine
  std::vector<std::vector<int64_t>> shards_;  // member ids, ascending
  std::unordered_map<int64_t, int> assignment_;  // id -> shard (-1 = flat)
  std::vector<int64_t> flat_ids_;  // ascending; exact mode's id list
  // Dynamic-mode vector storage (empty after a static Build).
  std::unordered_map<int64_t, std::vector<float>> vectors_;
  // Int8 candidate-pass sidecar, parallel to shards_: per-member codes
  // (member i occupies bytes [i*dim, (i+1)*dim)) and exact float norms.
  // Fitted in BuildShards (so every rebuild requantizes); dynamic inserts
  // quantize against the fitted range, saturating until the next rebuild.
  QuantizerParams quantizer_;
  std::vector<std::vector<uint8_t>> shard_codes_;
  std::vector<std::vector<float>> shard_norms_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_PROMPT_INDEX_H_
