// AVX2 variants of the distance kernels (core/distance.h) and the
// quantized candidate-pass kernels (core/quantizer.h).
//
// Compiled with function-level target attributes — the TU itself builds
// with the portable baseline flags, so including these symbols never makes
// the binary require AVX2. They are only *called* when Avx2Enabled(), i.e.
// the util/cpuid.h probe found AVX2+FMA and --simd/GP_SIMD did not force
// scalar.
//
// Accuracy story (DESIGN.md §10): the float-input kernels convert lanes to
// double and run 4 independent 4-wide double accumulators (16 floats per
// iteration), reduced in a fixed order, with an ascending scalar tail.
// Versus the scalar ascending-index sum this regroups additions, so
// results can differ in the last ULPs; tests/simd_kernels_test.cc pins
// |simd - scalar| <= 1e-10 * (n + 1) * max_term for the double-returning
// kernels. The int8 kernels accumulate in float — they only *rank*
// candidates before an exact re-rank, never produce a returned score.

#include <cmath>
#include <cstdint>

#include "core/distance.h"
#include "core/quantizer.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GP_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define GP_HAVE_AVX2_TARGET 0
#endif

namespace gp {
namespace simd {

#if GP_HAVE_AVX2_TARGET

#define GP_TARGET_AVX2 __attribute__((target("avx2,fma")))

namespace {

// Fixed-order reduction of a 4-lane double accumulator: lanes ascend, so
// the result is a pure function of the lane values (no shuffle-order
// surprises between compilers).
GP_TARGET_AVX2 inline double HSum(__m256d v) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

// Widens the low/high halves of 8 floats to two 4-wide doubles.
GP_TARGET_AVX2 inline __m256d LowPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_castps256_ps128(v));
}
GP_TARGET_AVX2 inline __m256d HighPd(__m256 v) {
  return _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

}  // namespace

GP_TARGET_AVX2
double DotRawAvx2(const float* a, const float* b, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 af0 = _mm256_loadu_ps(a + i);
    const __m256 bf0 = _mm256_loadu_ps(b + i);
    const __m256 af1 = _mm256_loadu_ps(a + i + 8);
    const __m256 bf1 = _mm256_loadu_ps(b + i + 8);
    acc0 = _mm256_fmadd_pd(LowPd(af0), LowPd(bf0), acc0);
    acc1 = _mm256_fmadd_pd(HighPd(af0), HighPd(bf0), acc1);
    acc2 = _mm256_fmadd_pd(LowPd(af1), LowPd(bf1), acc2);
    acc3 = _mm256_fmadd_pd(HighPd(af1), HighPd(bf1), acc3);
  }
  double total =
      HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += static_cast<double>(a[i]) * b[i];
  return total;
}

GP_TARGET_AVX2
double SquaredNormRawAvx2(const float* a, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 af0 = _mm256_loadu_ps(a + i);
    const __m256 af1 = _mm256_loadu_ps(a + i + 8);
    const __m256d l0 = LowPd(af0), h0 = HighPd(af0);
    const __m256d l1 = LowPd(af1), h1 = HighPd(af1);
    acc0 = _mm256_fmadd_pd(l0, l0, acc0);
    acc1 = _mm256_fmadd_pd(h0, h0, acc1);
    acc2 = _mm256_fmadd_pd(l1, l1, acc2);
    acc3 = _mm256_fmadd_pd(h1, h1, acc3);
  }
  double total =
      HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) total += static_cast<double>(a[i]) * a[i];
  return total;
}

GP_TARGET_AVX2
double SquaredEuclideanRawAvx2(const float* a, const float* b, int n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 af0 = _mm256_loadu_ps(a + i);
    const __m256 bf0 = _mm256_loadu_ps(b + i);
    const __m256 af1 = _mm256_loadu_ps(a + i + 8);
    const __m256 bf1 = _mm256_loadu_ps(b + i + 8);
    const __m256d d0 = _mm256_sub_pd(LowPd(af0), LowPd(bf0));
    const __m256d d1 = _mm256_sub_pd(HighPd(af0), HighPd(bf0));
    const __m256d d2 = _mm256_sub_pd(LowPd(af1), LowPd(bf1));
    const __m256d d3 = _mm256_sub_pd(HighPd(af1), HighPd(bf1));
    acc0 = _mm256_fmadd_pd(d0, d0, acc0);
    acc1 = _mm256_fmadd_pd(d1, d1, acc1);
    acc2 = _mm256_fmadd_pd(d2, d2, acc2);
    acc3 = _mm256_fmadd_pd(d3, d3, acc3);
  }
  double total =
      HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

GP_TARGET_AVX2
double ManhattanRawAvx2(const float* a, const float* b, int n) {
  const __m256d abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(
      static_cast<long long>(0x7fffffffffffffffULL)));
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 af0 = _mm256_loadu_ps(a + i);
    const __m256 bf0 = _mm256_loadu_ps(b + i);
    const __m256 af1 = _mm256_loadu_ps(a + i + 8);
    const __m256 bf1 = _mm256_loadu_ps(b + i + 8);
    acc0 = _mm256_add_pd(
        acc0, _mm256_and_pd(_mm256_sub_pd(LowPd(af0), LowPd(bf0)), abs_mask));
    acc1 = _mm256_add_pd(
        acc1, _mm256_and_pd(_mm256_sub_pd(HighPd(af0), HighPd(bf0)), abs_mask));
    acc2 = _mm256_add_pd(
        acc2, _mm256_and_pd(_mm256_sub_pd(LowPd(af1), LowPd(bf1)), abs_mask));
    acc3 = _mm256_add_pd(
        acc3, _mm256_and_pd(_mm256_sub_pd(HighPd(af1), HighPd(bf1)), abs_mask));
  }
  double total =
      HSum(_mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3)));
  for (; i < n; ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return total;
}

// ---- int8 candidate-pass kernels (ranking only; float accumulation) ----

namespace {

// Widens 8 uint8 codes to 8 floats.
GP_TARGET_AVX2 inline __m256 CodesPs(const uint8_t* code) {
  const __m128i raw = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(code));
  return _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(raw));
}

GP_TARGET_AVX2 inline float HSumPs(__m256 v) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  return ((((((lanes[0] + lanes[1]) + lanes[2]) + lanes[3]) + lanes[4]) +
           lanes[5]) +
          lanes[6]) +
         lanes[7];
}

}  // namespace

GP_TARGET_AVX2
float QuantizedDotRawAvx2(const uint8_t* code, const float* qs, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_ps(CodesPs(code + i), _mm256_loadu_ps(qs + i), acc0);
    acc1 = _mm256_fmadd_ps(CodesPs(code + i + 8),
                           _mm256_loadu_ps(qs + i + 8), acc1);
  }
  float total = HSumPs(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) total += static_cast<float>(code[i]) * qs[i];
  return total;
}

GP_TARGET_AVX2
float QuantizedNegL2RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_fnmadd_ps(CodesPs(code + i),
                                       _mm256_loadu_ps(step + i),
                                       _mm256_loadu_ps(r + i));
    const __m256 d1 = _mm256_fnmadd_ps(CodesPs(code + i + 8),
                                       _mm256_loadu_ps(step + i + 8),
                                       _mm256_loadu_ps(r + i + 8));
    acc0 = _mm256_fmadd_ps(d0, d0, acc0);
    acc1 = _mm256_fmadd_ps(d1, d1, acc1);
  }
  float total = HSumPs(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    const float d = r[i] - step[i] * static_cast<float>(code[i]);
    total += d * d;
  }
  return -total;
}

GP_TARGET_AVX2
float QuantizedNegL1RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n) {
  const __m256 abs_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256 d0 = _mm256_fnmadd_ps(CodesPs(code + i),
                                       _mm256_loadu_ps(step + i),
                                       _mm256_loadu_ps(r + i));
    const __m256 d1 = _mm256_fnmadd_ps(CodesPs(code + i + 8),
                                       _mm256_loadu_ps(step + i + 8),
                                       _mm256_loadu_ps(r + i + 8));
    acc0 = _mm256_add_ps(acc0, _mm256_and_ps(d0, abs_mask));
    acc1 = _mm256_add_ps(acc1, _mm256_and_ps(d1, abs_mask));
  }
  float total = HSumPs(_mm256_add_ps(acc0, acc1));
  for (; i < n; ++i) {
    total += std::abs(r[i] - step[i] * static_cast<float>(code[i]));
  }
  return -total;
}

#undef GP_TARGET_AVX2

#else  // !GP_HAVE_AVX2_TARGET

// Non-x86 (or non-GNU) builds still need the symbols to link; they are
// unreachable because DetectedSimdLevel() is kScalar there, so delegate to
// the scalar paths for safety.

double DotRawAvx2(const float* a, const float* b, int n) {
  double dot = 0.0;
  for (int i = 0; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

double SquaredNormRawAvx2(const float* a, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += static_cast<double>(a[i]) * a[i];
  return total;
}

double SquaredEuclideanRawAvx2(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return total;
}

double ManhattanRawAvx2(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return total;
}

float QuantizedDotRawAvx2(const uint8_t* code, const float* qs, int n) {
  return QuantizedDotRawScalar(code, qs, n);
}

float QuantizedNegL2RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n) {
  return QuantizedNegL2RawScalar(code, r, step, n);
}

float QuantizedNegL1RawAvx2(const uint8_t* code, const float* r,
                            const float* step, int n) {
  return QuantizedNegL1RawScalar(code, r, step, n);
}

#endif  // GP_HAVE_AVX2_TARGET

}  // namespace simd
}  // namespace gp
