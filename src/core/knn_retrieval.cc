#include "core/knn_retrieval.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/kmeans.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gp {

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kManhattan:
      return "manhattan";
  }
  return "?";
}

namespace {

// Zero-copy row kernels over raw pointers. Each accumulator sums its terms
// in ascending index order with double precision — exactly the order the
// old fused CosineSimilarity/EuclideanDistance kernels used — so every
// score below is bitwise identical to the pre-vectorized implementation.
inline double DotRaw(const float* a, const float* b, int n) {
  double dot = 0.0;
  for (int i = 0; i < n; ++i) dot += static_cast<double>(a[i]) * b[i];
  return dot;
}

inline double SquaredNormRaw(const float* a, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += static_cast<double>(a[i]) * a[i];
  return total;
}

inline float CosineFromParts(double dot, double norm_a, double norm_b) {
  const double denom = norm_a * norm_b;
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

inline float NegEuclideanRaw(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return -static_cast<float>(std::sqrt(total));
}

inline float NegManhattanRaw(const float* a, const float* b, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return -static_cast<float>(total);
}

inline float SimilarityRaw(const float* a, const float* b, int n,
                           DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return CosineFromParts(DotRaw(a, b, n), std::sqrt(SquaredNormRaw(a, n)),
                             std::sqrt(SquaredNormRaw(b, n)));
    case DistanceMetric::kEuclidean:
      return NegEuclideanRaw(a, b, n);
    case DistanceMetric::kManhattan:
      return NegManhattanRaw(a, b, n);
  }
  return 0.0f;
}

// sqrt of each row's squared L2 norm (for cosine scoring): computed once
// per SelectPrompts call instead of once per (prompt, query) pair.
std::vector<double> RowNorms(const Tensor& t) {
  const int rows = t.rows();
  const int cols = t.cols();
  const float* data = t.data().data();
  std::vector<double> norms(rows);
  for (int r = 0; r < rows; ++r) {
    norms[r] = std::sqrt(SquaredNormRaw(data + static_cast<size_t>(r) * cols,
                                        cols));
  }
  return norms;
}

}  // namespace

float EmbeddingSimilarity(const Tensor& a, int row_a, const Tensor& b,
                          int row_b, DistanceMetric metric) {
  CHECK_EQ(a.cols(), b.cols());
  const int dim = a.cols();
  const float* ra = a.data().data() + static_cast<size_t>(row_a) * dim;
  const float* rb = b.data().data() + static_cast<size_t>(row_b) * dim;
  return SimilarityRaw(ra, rb, dim, metric);
}

KnnSelection SelectPrompts(const Tensor& prompt_embeddings,
                           const Tensor& prompt_importance,
                           const std::vector<int>& prompt_labels,
                           const Tensor& query_embeddings,
                           const Tensor& query_importance, int num_classes,
                           const KnnConfig& config) {
  GP_TRACE_SPAN("selector/knn");
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  CHECK_GE(num_classes, 1);

  static Counter* pairs = Telemetry().GetCounter("selector/scored_pairs");
  pairs->Add(static_cast<int64_t>(num_prompts) * num_queries);

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);

  if ((config.use_similarity || config.use_importance) && num_prompts > 0) {
    const int dim = prompt_embeddings.cols();
    const float* pdata = prompt_embeddings.data().data();
    const float* qdata = query_embeddings.data().data();
    const bool with_importance = config.use_importance &&
                                 prompt_importance.defined() &&
                                 query_importance.defined();
    const float* pimp =
        with_importance ? prompt_importance.data().data() : nullptr;
    const float* qimp =
        with_importance ? query_importance.data().data() : nullptr;

    // Cosine norms are shared across all pairs; hoist them out of the
    // O(P*Q) loop.
    std::vector<double> prompt_norm, query_norm;
    const bool cosine =
        config.use_similarity && config.metric == DistanceMetric::kCosine;
    if (cosine) {
      prompt_norm = RowNorms(prompt_embeddings);
      query_norm = RowNorms(query_embeddings);
    }

    // score(p, q) per Eq. 7, then top-k votes per query (Eq. 8). Queries
    // score independently into per-query top-k lists (parallel); votes
    // merge serially in query order, so totals match a serial run bitwise.
    const int k = std::min(config.shots, num_prompts);
    std::vector<std::vector<std::pair<double, int>>> topk(num_queries);
    const int64_t work_per_query = static_cast<int64_t>(num_prompts) * dim;
    const int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 15) / std::max<int64_t>(
                                                      work_per_query, 1));
    ParallelFor(0, num_queries, grain, [&](int64_t qfirst, int64_t qlast) {
      std::vector<std::pair<double, int>> scored(num_prompts);
      for (int64_t q = qfirst; q < qlast; ++q) {
        const float* qrow = qdata + static_cast<size_t>(q) * dim;
        for (int p = 0; p < num_prompts; ++p) {
          double score = 0.0;
          if (config.use_similarity) {
            const float* prow = pdata + static_cast<size_t>(p) * dim;
            switch (config.metric) {
              case DistanceMetric::kCosine:
                score += CosineFromParts(DotRaw(prow, qrow, dim),
                                         prompt_norm[p], query_norm[q]);
                break;
              case DistanceMetric::kEuclidean:
                score += NegEuclideanRaw(prow, qrow, dim);
                break;
              case DistanceMetric::kManhattan:
                score += NegManhattanRaw(prow, qrow, dim);
                break;
            }
          }
          if (with_importance) {
            score += static_cast<double>(pimp[p]) * qimp[q];
          }
          scored[p] = {score, p};
        }
        // T(q) = the query's top-k prompts by score (Eq. 8); k is the shot
        // count, keeping each query's votes concentrated on its genuinely
        // closest candidates.
        std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                          [](const auto& a, const auto& b) {
                            return a.first > b.first;
                          });
        topk[q].assign(scored.begin(), scored.begin() + k);
      }
    });
    // 1_{p in T(q)} * score(p, q).
    for (int q = 0; q < num_queries; ++q) {
      for (const auto& [score, p] : topk[q]) {
        out.votes[p] += score;
        out.hit_counts[p] += 1;
      }
    }
  }

  // Keep the k most-voted candidates of every class, so the refined set
  // S-hat still covers all m classes with k shots each. Stable tie-break
  // on candidate index keeps the fallback (all-zero votes) deterministic.
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
      const bool voted_a = out.hit_counts[a] > 0;
      const bool voted_b = out.hit_counts[b] > 0;
      if (voted_a != voted_b) return voted_a;
      return out.votes[a] > out.votes[b];
    });
    const int keep = std::min<int>(config.shots, members.size());
    for (int i = 0; i < keep; ++i) out.selected.push_back(members[i]);
  }
  return out;
}

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kKnnVoting:
      return "knn-voting";
    case SelectorKind::kClustering:
      return "kmeans-clustering";
  }
  return "?";
}

KnnSelection SelectPromptsByClustering(
    const Tensor& prompt_embeddings, const Tensor& prompt_importance,
    const std::vector<int>& prompt_labels, const Tensor& query_embeddings,
    const Tensor& query_importance, int num_classes, const KnnConfig& config,
    Rng* rng) {
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  if (num_queries < config.shots ||
      (!config.use_similarity && !config.use_importance)) {
    return SelectPrompts(prompt_embeddings, prompt_importance, prompt_labels,
                         query_embeddings, query_importance, num_classes,
                         config);
  }

  KMeansConfig kmeans;
  kmeans.clusters = config.shots;
  const KMeansResult clusters = RunKMeans(query_embeddings, kmeans, rng);

  // Mean query importance stands in for I_q against a centroid.
  float mean_query_importance = 0.0f;
  if (config.use_importance && query_importance.defined()) {
    for (int q = 0; q < num_queries; ++q) {
      mean_query_importance += query_importance.at(q, 0);
    }
    mean_query_importance /= std::max(num_queries, 1);
  }

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::vector<bool> taken(members.size(), false);
    const int keep = std::min<int>(config.shots, members.size());
    for (int c = 0; c < keep; ++c) {
      // Centroid c claims the best unclaimed class member.
      int best = -1;
      double best_score = 0.0;
      for (size_t mi = 0; mi < members.size(); ++mi) {
        if (taken[mi]) continue;
        const int p = members[mi];
        double score = 0.0;
        if (config.use_similarity) {
          score += EmbeddingSimilarity(prompt_embeddings, p,
                                       clusters.centroids, c, config.metric);
        }
        if (config.use_importance && prompt_importance.defined()) {
          score += static_cast<double>(prompt_importance.at(p, 0)) *
                   mean_query_importance;
        }
        if (best < 0 || score > best_score) {
          best = static_cast<int>(mi);
          best_score = score;
        }
      }
      if (best < 0) break;
      taken[best] = true;
      out.selected.push_back(members[best]);
      out.votes[members[best]] = best_score;
      out.hit_counts[members[best]] = 1;
    }
  }
  return out;
}

}  // namespace gp
