#include "core/knn_retrieval.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/kmeans.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "tensor/ops.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace gp {

KnnSelection SelectPrompts(const Tensor& prompt_embeddings,
                           const Tensor& prompt_importance,
                           const std::vector<int>& prompt_labels,
                           const Tensor& query_embeddings,
                           const Tensor& query_importance, int num_classes,
                           const KnnConfig& config) {
  GP_TRACE_SPAN("selector/knn");
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  CHECK_GE(num_classes, 1);

  static Counter* pairs = Telemetry().GetCounter("selector/scored_pairs");

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);

  if ((config.use_similarity || config.use_importance) && num_prompts > 0) {
    const int dim = prompt_embeddings.cols();
    const float* pdata = prompt_embeddings.data().data();
    const float* qdata = query_embeddings.data().data();
    const bool with_importance = config.use_importance &&
                                 prompt_importance.defined() &&
                                 query_importance.defined();
    const float* pimp =
        with_importance ? prompt_importance.data().data() : nullptr;
    const float* qimp =
        with_importance ? query_importance.data().data() : nullptr;

    // Cosine norms are shared across all pairs; hoist them out of the
    // O(P*Q) loop.
    std::vector<double> prompt_norm, query_norm;
    const bool cosine =
        config.use_similarity && config.metric == DistanceMetric::kCosine;
    if (cosine) {
      prompt_norm = RowNorms(prompt_embeddings);
      query_norm = RowNorms(query_embeddings);
    }

    // Eq. 7 score of candidate p against query q, with the cosine norms
    // hoisted. Scores candidates the same way on both the exact and IVF
    // paths, so pruning changes *which* pairs are scored, never the value.
    auto score_pair = [&](int p, int64_t q, const float* qrow) {
      double score = 0.0;
      if (config.use_similarity) {
        const float* prow = pdata + static_cast<size_t>(p) * dim;
        switch (config.metric) {
          case DistanceMetric::kCosine:
            score += CosineFromParts(DotRaw(prow, qrow, dim), prompt_norm[p],
                                     query_norm[q]);
            break;
          case DistanceMetric::kEuclidean:
            score += NegEuclideanRaw(prow, qrow, dim);
            break;
          case DistanceMetric::kManhattan:
            score += NegManhattanRaw(prow, qrow, dim);
            break;
        }
      }
      if (with_importance) {
        score += static_cast<double>(pimp[p]) * qimp[q];
      }
      return score;
    };

    // IVF sharding only pays off when the similarity term routes queries;
    // importance-only scoring (ablation "w/o kNN") has no geometry to
    // shard, so it stays brute force.
    PromptIndex index(config.index, config.metric);
    if (config.use_similarity) index.Build(prompt_embeddings);
    const bool ivf = index.ivf();

    // score(p, q) per Eq. 7, then top-k votes per query (Eq. 8). Queries
    // score independently into per-query top-k lists (parallel); votes
    // merge serially in query order, so totals match a serial run bitwise.
    // On the IVF path each query scores only its probed candidates, which
    // Probe() returns in ascending id order — with nprobe == nlist that is
    // the full set 0..P-1 and the loop below reproduces the exact path's
    // scored sequence (and therefore its partial_sort result) bitwise.
    const int k = std::min(config.shots, num_prompts);
    std::vector<std::vector<std::pair<double, int>>> topk(num_queries);
    std::vector<int> candidates_scored(ivf ? num_queries : 0, 0);
    std::vector<int> shards_probed(ivf ? num_queries : 0, 0);
    std::vector<int> recall_hits(ivf ? num_queries : 0, 0);
    std::vector<int> recall_total(ivf ? num_queries : 0, 0);
    const int recall_sample = ivf ? config.index.recall_sample : 0;
    const int64_t work_per_query = static_cast<int64_t>(num_prompts) * dim;
    const int64_t grain =
        std::max<int64_t>(1, (int64_t{1} << 15) / std::max<int64_t>(
                                                      work_per_query, 1));
    ParallelFor(0, num_queries, grain, [&](int64_t qfirst, int64_t qlast) {
      std::vector<std::pair<double, int>> scored(num_prompts);
      for (int64_t q = qfirst; q < qlast; ++q) {
        const float* qrow = qdata + static_cast<size_t>(q) * dim;
        if (!ivf) {
          for (int p = 0; p < num_prompts; ++p) {
            scored[p] = {score_pair(p, q, qrow), p};
          }
          // T(q) = the query's top-k prompts by score (Eq. 8); k is the
          // shot count, keeping each query's votes concentrated on its
          // genuinely closest candidates.
          std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                            [](const auto& a, const auto& b) {
                              return a.first > b.first;
                            });
          topk[q].assign(scored.begin(), scored.begin() + k);
          continue;
        }
        PromptIndex::ProbeStats stats;
        const std::vector<int64_t> cands = index.Probe(qrow, dim, k, &stats);
        scored.resize(cands.size());
        for (size_t i = 0; i < cands.size(); ++i) {
          const int p = static_cast<int>(cands[i]);
          scored[i] = {score_pair(p, q, qrow), p};
        }
        const int kq = std::min<int>(k, static_cast<int>(scored.size()));
        std::partial_sort(scored.begin(), scored.begin() + kq, scored.end(),
                          [](const auto& a, const auto& b) {
                            return a.first > b.first;
                          });
        topk[q].assign(scored.begin(), scored.begin() + kq);
        candidates_scored[q] = static_cast<int>(cands.size());
        shards_probed[q] = stats.shards_probed;
        if (recall_sample > 0 && q % recall_sample == 0 && !stats.exact) {
          // Write-only recall probe: brute-force this query's top-k and
          // count how many ids the pruned retrieval kept. Predictions are
          // unaffected.
          std::vector<std::pair<double, int>> full(num_prompts);
          for (int p = 0; p < num_prompts; ++p) {
            full[p] = {score_pair(p, q, qrow), p};
          }
          std::partial_sort(full.begin(), full.begin() + k, full.end(),
                            [](const auto& a, const auto& b) {
                              return a.first > b.first;
                            });
          int hits = 0;
          for (int i = 0; i < k; ++i) {
            const int want = full[i].second;
            for (int j = 0; j < kq; ++j) {
              if (topk[q][j].second == want) {
                ++hits;
                break;
              }
            }
          }
          recall_hits[q] = hits;
          recall_total[q] = k;
        }
      }
    });
    // 1_{p in T(q)} * score(p, q).
    for (int q = 0; q < num_queries; ++q) {
      for (const auto& [score, p] : topk[q]) {
        out.votes[p] += score;
        out.hit_counts[p] += 1;
      }
    }

    if (ivf) {
      // Honest work accounting: the IVF path pays `candidates` full-width
      // scores plus nlist centroid-routing scores per query; both land in
      // selector/scored_pairs so the bench's pair-fraction comparison
      // against brute force (P pairs per query) includes routing overhead.
      int64_t total_candidates = 0, total_shards = 0;
      int64_t total_hits = 0, total_recall = 0;
      for (int q = 0; q < num_queries; ++q) {
        total_candidates += candidates_scored[q];
        total_shards += shards_probed[q];
        total_hits += recall_hits[q];
        total_recall += recall_total[q];
      }
      const int64_t routing =
          static_cast<int64_t>(num_queries) * index.nlist();
      pairs->Add(total_candidates + routing);
      Telemetry().GetCounter("index/probes")->Add(num_queries);
      Telemetry().GetCounter("index/shard_probes")->Add(total_shards);
      Telemetry().GetCounter("index/candidate_pairs")->Add(total_candidates);
      Telemetry().GetCounter("index/routing_pairs")->Add(routing);
      if (total_recall > 0) {
        Telemetry().GetCounter("index/recall_hits")->Add(total_hits);
        Telemetry().GetCounter("index/recall_total")->Add(total_recall);
      }
    } else {
      pairs->Add(static_cast<int64_t>(num_prompts) * num_queries);
    }
  } else {
    pairs->Add(static_cast<int64_t>(num_prompts) * num_queries);
  }

  // Keep the k most-voted candidates of every class, so the refined set
  // S-hat still covers all m classes with k shots each. Stable tie-break
  // on candidate index keeps the fallback (all-zero votes) deterministic.
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
      const bool voted_a = out.hit_counts[a] > 0;
      const bool voted_b = out.hit_counts[b] > 0;
      if (voted_a != voted_b) return voted_a;
      return out.votes[a] > out.votes[b];
    });
    const int keep = std::min<int>(config.shots, members.size());
    for (int i = 0; i < keep; ++i) out.selected.push_back(members[i]);
  }
  return out;
}

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kKnnVoting:
      return "knn-voting";
    case SelectorKind::kClustering:
      return "kmeans-clustering";
  }
  return "?";
}

KnnSelection SelectPromptsByClustering(
    const Tensor& prompt_embeddings, const Tensor& prompt_importance,
    const std::vector<int>& prompt_labels, const Tensor& query_embeddings,
    const Tensor& query_importance, int num_classes, const KnnConfig& config,
    Rng* rng) {
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  if (num_queries < config.shots ||
      (!config.use_similarity && !config.use_importance)) {
    return SelectPrompts(prompt_embeddings, prompt_importance, prompt_labels,
                         query_embeddings, query_importance, num_classes,
                         config);
  }

  KMeansConfig kmeans;
  kmeans.clusters = config.shots;
  const KMeansResult clusters = RunKMeans(query_embeddings, kmeans, rng);

  // Mean query importance stands in for I_q against a centroid.
  float mean_query_importance = 0.0f;
  if (config.use_importance && query_importance.defined()) {
    for (int q = 0; q < num_queries; ++q) {
      mean_query_importance += query_importance.at(q, 0);
    }
    mean_query_importance /= std::max(num_queries, 1);
  }

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::vector<bool> taken(members.size(), false);
    const int keep = std::min<int>(config.shots, members.size());
    for (int c = 0; c < keep; ++c) {
      // Centroid c claims the best unclaimed class member.
      int best = -1;
      double best_score = 0.0;
      for (size_t mi = 0; mi < members.size(); ++mi) {
        if (taken[mi]) continue;
        const int p = members[mi];
        double score = 0.0;
        if (config.use_similarity) {
          score += EmbeddingSimilarity(prompt_embeddings, p,
                                       clusters.centroids, c, config.metric);
        }
        if (config.use_importance && prompt_importance.defined()) {
          score += static_cast<double>(prompt_importance.at(p, 0)) *
                   mean_query_importance;
        }
        if (best < 0 || score > best_score) {
          best = static_cast<int>(mi);
          best_score = score;
        }
      }
      if (best < 0) break;
      taken[best] = true;
      out.selected.push_back(members[best]);
      out.votes[members[best]] = best_score;
      out.hit_counts[members[best]] = 1;
    }
  }
  return out;
}

}  // namespace gp
