#include "core/knn_retrieval.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/kmeans.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kManhattan:
      return "manhattan";
  }
  return "?";
}

float EmbeddingSimilarity(const Tensor& a, int row_a, const Tensor& b,
                          int row_b, DistanceMetric metric) {
  CHECK_EQ(a.cols(), b.cols());
  const std::vector<float> va = a.Row(row_a);
  const std::vector<float> vb = b.Row(row_b);
  switch (metric) {
    case DistanceMetric::kCosine:
      return CosineSimilarity(va, vb);
    case DistanceMetric::kEuclidean:
      return -EuclideanDistance(va, vb);
    case DistanceMetric::kManhattan:
      return -ManhattanDistance(va, vb);
  }
  return 0.0f;
}

KnnSelection SelectPrompts(const Tensor& prompt_embeddings,
                           const Tensor& prompt_importance,
                           const std::vector<int>& prompt_labels,
                           const Tensor& query_embeddings,
                           const Tensor& query_importance, int num_classes,
                           const KnnConfig& config) {
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  CHECK_GE(num_classes, 1);

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);

  if (config.use_similarity || config.use_importance) {
    // score(p, q) per Eq. 7, then top-k votes per query (Eq. 8).
    for (int q = 0; q < num_queries; ++q) {
      std::vector<std::pair<double, int>> scored(num_prompts);
      for (int p = 0; p < num_prompts; ++p) {
        double score = 0.0;
        if (config.use_similarity) {
          score += EmbeddingSimilarity(prompt_embeddings, p,
                                       query_embeddings, q, config.metric);
        }
        if (config.use_importance && prompt_importance.defined() &&
            query_importance.defined()) {
          score += static_cast<double>(prompt_importance.at(p, 0)) *
                   query_importance.at(q, 0);
        }
        scored[p] = {score, p};
      }
      // T(q) = the query's top-k prompts by score (Eq. 8); k is the shot
      // count, keeping each query's votes concentrated on its genuinely
      // closest candidates.
      const int k = std::min(config.shots, num_prompts);
      std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      // 1_{p in T(q)} * score(p, q).
      for (int i = 0; i < k; ++i) {
        out.votes[scored[i].second] += scored[i].first;
        out.hit_counts[scored[i].second] += 1;
      }
    }
  }

  // Keep the k most-voted candidates of every class, so the refined set
  // S-hat still covers all m classes with k shots each. Stable tie-break
  // on candidate index keeps the fallback (all-zero votes) deterministic.
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
      const bool voted_a = out.hit_counts[a] > 0;
      const bool voted_b = out.hit_counts[b] > 0;
      if (voted_a != voted_b) return voted_a;
      return out.votes[a] > out.votes[b];
    });
    const int keep = std::min<int>(config.shots, members.size());
    for (int i = 0; i < keep; ++i) out.selected.push_back(members[i]);
  }
  return out;
}

const char* SelectorKindName(SelectorKind kind) {
  switch (kind) {
    case SelectorKind::kKnnVoting:
      return "knn-voting";
    case SelectorKind::kClustering:
      return "kmeans-clustering";
  }
  return "?";
}

KnnSelection SelectPromptsByClustering(
    const Tensor& prompt_embeddings, const Tensor& prompt_importance,
    const std::vector<int>& prompt_labels, const Tensor& query_embeddings,
    const Tensor& query_importance, int num_classes, const KnnConfig& config,
    Rng* rng) {
  const int num_prompts = prompt_embeddings.rows();
  const int num_queries = query_embeddings.rows();
  CHECK_EQ(static_cast<size_t>(num_prompts), prompt_labels.size());
  if (num_queries < config.shots ||
      (!config.use_similarity && !config.use_importance)) {
    return SelectPrompts(prompt_embeddings, prompt_importance, prompt_labels,
                         query_embeddings, query_importance, num_classes,
                         config);
  }

  KMeansConfig kmeans;
  kmeans.clusters = config.shots;
  const KMeansResult clusters = RunKMeans(query_embeddings, kmeans, rng);

  // Mean query importance stands in for I_q against a centroid.
  float mean_query_importance = 0.0f;
  if (config.use_importance && query_importance.defined()) {
    for (int q = 0; q < num_queries; ++q) {
      mean_query_importance += query_importance.at(q, 0);
    }
    mean_query_importance /= std::max(num_queries, 1);
  }

  KnnSelection out;
  out.votes.assign(num_prompts, 0.0);
  out.hit_counts.assign(num_prompts, 0);
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> members;
    for (int p = 0; p < num_prompts; ++p) {
      if (prompt_labels[p] == cls) members.push_back(p);
    }
    std::vector<bool> taken(members.size(), false);
    const int keep = std::min<int>(config.shots, members.size());
    for (int c = 0; c < keep; ++c) {
      // Centroid c claims the best unclaimed class member.
      int best = -1;
      double best_score = 0.0;
      for (size_t mi = 0; mi < members.size(); ++mi) {
        if (taken[mi]) continue;
        const int p = members[mi];
        double score = 0.0;
        if (config.use_similarity) {
          score += EmbeddingSimilarity(prompt_embeddings, p,
                                       clusters.centroids, c, config.metric);
        }
        if (config.use_importance && prompt_importance.defined()) {
          score += static_cast<double>(prompt_importance.at(p, 0)) *
                   mean_query_importance;
        }
        if (best < 0 || score > best_score) {
          best = static_cast<int>(mi);
          best_score = score;
        }
      }
      if (best < 0) break;
      taken[best] = true;
      out.selected.push_back(members[best]);
      out.votes[members[best]] = best_score;
      out.hit_counts[members[best]] = 1;
    }
  }
  return out;
}

}  // namespace gp
