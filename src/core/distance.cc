#include "core/distance.h"

#include "util/logging.h"

namespace gp {

const char* DistanceMetricName(DistanceMetric metric) {
  switch (metric) {
    case DistanceMetric::kCosine:
      return "cosine";
    case DistanceMetric::kEuclidean:
      return "euclidean";
    case DistanceMetric::kManhattan:
      return "manhattan";
  }
  return "?";
}

float EmbeddingSimilarity(const Tensor& a, int row_a, const Tensor& b,
                          int row_b, DistanceMetric metric) {
  CHECK_EQ(a.cols(), b.cols());
  const int dim = a.cols();
  const float* ra = a.data().data() + static_cast<size_t>(row_a) * dim;
  const float* rb = b.data().data() + static_cast<size_t>(row_b) * dim;
  return SimilarityRaw(ra, rb, dim, metric);
}

std::vector<double> RowNorms(const Tensor& t) {
  const int rows = t.rows();
  const int cols = t.cols();
  const float* data = t.data().data();
  std::vector<double> norms(rows);
  for (int r = 0; r < rows; ++r) {
    norms[r] =
        std::sqrt(SquaredNormRaw(data + static_cast<size_t>(r) * cols, cols));
  }
  return norms;
}

}  // namespace gp
