// GraphPrompter — the end-to-end model (Fig. 2) and its in-context
// evaluation loop (Algorithm 2).
//
// The model owns the three stages:
//   Prompt Generator (subgraph sampling + edge-weight reconstruction + GNN_D)
//   Prompt Selector  (selection layers + kNN retrieval + query voting)
//   Prompt Augmenter (LFU cache of pseudo-labelled test queries)
// plus the task-graph attention network GNN_T. Stage toggles in the config
// express the paper's ablations and the Prodigy baseline.

#ifndef GRAPHPROMPTER_CORE_GRAPH_PROMPTER_H_
#define GRAPHPROMPTER_CORE_GRAPH_PROMPTER_H_

#include <memory>
#include <vector>

#include "core/degradation.h"
#include "core/knn_retrieval.h"
#include "core/metrics.h"
#include "core/prompt_augmenter.h"
#include "core/prompt_generator.h"
#include "core/selection_layer.h"
#include "core/task_graph.h"
#include "data/episode.h"
#include "util/status.h"

namespace gp {

struct GraphPrompterConfig {
  // Architecture.
  int feature_dim = 64;    // input feature dimension (dataset-dependent)
  int embedding_dim = 64;  // data-graph / task-graph embedding size
  GnnArch gnn_arch = GnnArch::kSage;  // GNN_D (Fig. 4 swaps to kGat)
  int gnn_layers = 2;
  int recon_hidden = 64;
  int selection_hidden = 64;
  int task_layers = 2;
  float score_temperature = 10.0f;
  SamplerConfig sampler;  // l-hop (default 1), node cap, walks

  // Stage toggles (full GraphPrompter = all true; Prodigy = all false with
  // random_prompt_selection = true).
  bool use_reconstruction = true;
  bool use_selection_layer = true;
  bool use_knn = true;
  bool use_augmenter = true;
  bool random_prompt_selection = false;

  DistanceMetric metric = DistanceMetric::kCosine;
  // Further-Discussion extension points.
  SelectorKind selector = SelectorKind::kKnnVoting;
  ReconArch recon_arch = ReconArch::kMlp;
  PromptAugmenterConfig augmenter;
  // Pseudo-label prompts inserted into the cache per observed query batch.
  int cache_inserts_per_batch = 1;

  uint64_t seed = 42;
};

// Config invariants: positive dimensions and layer counts, a finite
// positive score temperature, sane sampler caps, and a cache/confidence
// setup the augmenter can actually honor. Checked at the pipeline boundary
// (model construction, examples, benches) so a bad config fails with a
// typed error instead of a crash deep inside a kernel.
Status Validate(const GraphPrompterConfig& config);

// The trainable model (generator + selection layer + task network).
class GraphPrompterModel : public Module {
 public:
  explicit GraphPrompterModel(const GraphPrompterConfig& config);

  const GraphPrompterConfig& config() const { return config_; }
  PromptGenerator& generator() { return *generator_; }
  const PromptGenerator& generator() const { return *generator_; }
  SelectionLayer& selection() { return *selection_; }
  const SelectionLayer& selection() const { return *selection_; }
  TaskGraphNet& task_net() { return *task_net_; }
  const TaskGraphNet& task_net() const { return *task_net_; }

 private:
  GraphPrompterConfig config_;
  std::unique_ptr<PromptGenerator> generator_;
  std::unique_ptr<SelectionLayer> selection_;
  std::unique_ptr<TaskGraphNet> task_net_;
};

// ------------------------------------------------------------ evaluation

struct EvalConfig {
  int ways = 5;                   // m
  int shots = 3;                  // k (paper default 3)
  int candidates_per_class = 10;  // N (paper default 10)
  int num_queries = 100;          // test queries per trial (paper: 500)
  int query_batch = 4;            // queries per task-graph step
  int trials = 5;                 // episodes averaged into mean ± std
  uint64_t seed = 123;
  // When true, keeps the final trial's data-node embeddings for Fig. 7.
  bool keep_embeddings = false;

  // ---- Serving extensions (src/serve). Defaults leave batch evaluation
  // bitwise identical to the pre-serving pipeline.

  // Wall-clock budget for the whole call, in microseconds; 0 disables the
  // deadline. Checked at stage boundaries (trial start, after candidate
  // embedding, after selection, per query batch): on expiry the evaluation
  // stops early, sets EvalResult::deadline_expired, and reports only the
  // trials that finished.
  int64_t deadline_us = 0;
  // Skips the augmenter stage regardless of the model config. The serving
  // circuit breaker uses this as its safe degraded mode while open.
  bool disable_augmenter = false;
  // When set, Stage 3 uses this caller-owned augmenter (and its LFU cache +
  // index) instead of a per-trial instance, so cache state persists across
  // calls — the per-tenant warm cache in the serving daemon. Health
  // accounting is delta-based, so shared state never double-counts. The
  // caller is responsible for thread-safety and for matching ways/dim
  // across calls (ValidateCache evicts mismatched entries otherwise).
  PromptAugmenter* shared_augmenter = nullptr;
};

struct EvalResult {
  MeanStd accuracy_percent;         // over trials
  std::vector<double> trial_accuracy_percent;
  double ms_per_query = 0.0;        // Table VIII timing
  // Populated when EvalConfig::keep_embeddings: prompts'+queries'
  // data-graph embeddings of the final trial with episode labels.
  Tensor embeddings;
  std::vector<int> embedding_labels;
  // How often each graceful-degradation fallback fired across all trials
  // (all zeros on a clean run). See core/degradation.h.
  DegradationStats degradation;
  // True when EvalConfig::deadline_us expired before all trials finished;
  // accuracy then covers only the completed trials (possibly none).
  bool deadline_expired = false;
  // Queries actually predicted (equals trials * num_queries unless the
  // deadline cut the run short).
  int64_t completed_queries = 0;
};

// Runs Algorithm 2: per trial, samples an episode, embeds candidates and
// queries, selects prompts (kNN + selection layer + voting, or random for
// the Prodigy configuration), streams query batches through the task graph
// with optional cache augmentation, and scores accuracy.
//
// Fault tolerance: non-finite candidate embeddings are quarantined and the
// selector degrades along kNN -> selection-layer-only -> random; non-finite
// query embeddings are sanitized; the augmenter evicts poisoned cache
// entries and is skipped entirely when the cache is unhealthy; non-finite
// prediction scores fall back to deterministic per-query votes. Every
// fallback increments EvalResult::degradation. When the process-global
// FaultInjector (util/fault.h) is configured, faults are injected at each
// of these sites; with injection off, results are bitwise identical to the
// unvalidated pipeline.
EvalResult EvaluateInContext(const GraphPrompterModel& model,
                             const DatasetBundle& dataset,
                             const EvalConfig& eval_config);

// Convenience presets.
GraphPrompterConfig FullGraphPrompterConfig(int feature_dim, uint64_t seed);

}  // namespace gp

#endif  // GRAPHPROMPTER_CORE_GRAPH_PROMPTER_H_
