#include "obs/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "obs/json.h"
#include "obs/telemetry.h"

namespace gp {

BenchReporter::BenchReporter(std::string name) : name_(std::move(name)) {}

void BenchReporter::AddConfig(const std::string& key,
                              const std::string& value) {
  config_.push_back({key, value, /*is_string=*/true});
}

void BenchReporter::AddConfig(const std::string& key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  config_.push_back({key, std::isfinite(value) ? buf : "null",
                     /*is_string=*/false});
}

void BenchReporter::AddConfig(const std::string& key, int64_t value) {
  config_.push_back({key, std::to_string(value), /*is_string=*/false});
}

void BenchReporter::AddMetric(const std::string& label, double value,
                              const std::string& unit) {
  metrics_.push_back({label, value, unit});
}

std::string BenchReporter::ToJson() const {
  const TelemetrySnapshot snapshot = Telemetry().Snapshot();
  json::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("benchmark").String(name_);

  w.Key("config").BeginObject();
  for (const ConfigEntry& entry : config_) {
    w.Key(entry.key);
    if (entry.is_string) {
      w.String(entry.value);
    } else {
      // Pre-rendered numeric literal; splice it through the writer's
      // escape-free path by distinguishing int from double text.
      if (entry.value.find_first_of(".eEn") == std::string::npos) {
        w.Int(std::stoll(entry.value));
      } else if (entry.value == "null") {
        w.Null();
      } else {
        w.Double(std::stod(entry.value));
      }
    }
  }
  w.EndObject();

  w.Key("stages").BeginArray();
  for (const StageSample& stage : snapshot.Stages()) {
    w.BeginObject();
    w.Key("name").String(stage.name);
    w.Key("count").Int(stage.count);
    w.Key("total_ms").Double(stage.total_ms);
    w.Key("mean_ms").Double(stage.count > 0 ? stage.total_ms / stage.count
                                            : 0.0);
    w.EndObject();
  }
  w.EndArray();

  w.Key("counters").BeginObject();
  for (const CounterSample& c : snapshot.PlainCounters()) {
    w.Key(c.name).Int(c.value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const GaugeSample& g : snapshot.gauges) {
    w.Key(g.name).Double(g.value);
  }
  w.EndObject();

  w.Key("results").BeginArray();
  for (const Metric& metric : metrics_) {
    w.BeginObject();
    w.Key("label").String(metric.label);
    w.Key("value").Double(metric.value);
    w.Key("unit").String(metric.unit);
    w.EndObject();
  }
  w.EndArray();

  w.EndObject();
  return w.str() + "\n";
}

Status BenchReporter::WriteJson(const std::string& outdir) const {
  const std::string path = outdir + "/BENCH_" + name_ + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return InvalidArgumentError("cannot open for writing: " + path);
  out << ToJson();
  out.close();
  if (!out) return DataLossError("short write: " + path);
  std::printf("wrote %s\n", path.c_str());
  return Status::Ok();
}

}  // namespace gp
