#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/logging.h"

namespace gp {
namespace json {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    // Inside an object a value is only legal right after its key.
    CHECK(pending_key_) << "JsonWriter: value in object without Key()";
    pending_key_ = false;
    return;
  }
  if (!first_.back()) out_ += ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  CHECK(!pending_key_) << "JsonWriter: Key() without value";
  out_ += '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CHECK(!stack_.empty() && stack_.back() == Frame::kArray);
  out_ += ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  CHECK(!stack_.empty() && stack_.back() == Frame::kObject);
  CHECK(!pending_key_);
  if (!first_.back()) out_ += ',';
  first_.back() = false;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

// Recursive-descent parser over a string view, tracking position for error
// messages. Depth is bounded to reject pathological nesting.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    JsonValue root;
    GP_RETURN_IF_ERROR(ParseValue(&root, 0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return root;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      case 't':
        if (!ConsumeLiteral("true")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeLiteral("false")) return Error("bad literal");
        out->type = JsonValue::Type::kBool;
        out->bool_value = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeLiteral("null")) return Error("bad literal");
        out->type = JsonValue::Type::kNull;
        return Status::Ok();
      default: return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      SkipSpace();
      std::string key;
      GP_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' in object");
      JsonValue value;
      GP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->members.emplace_back(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipSpace();
    if (Consume(']')) return Status::Ok();
    while (true) {
      JsonValue value;
      GP_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->elements.push_back(std::move(value));
      SkipSpace();
      if (Consume(']')) return Status::Ok();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (c != '\\') {
        // RFC 8259 §7: unescaped control characters (U+0000..U+001F) are
        // not allowed inside strings; they must use \uXXXX (or \n etc.).
        if (static_cast<unsigned char>(c) < 0x20) {
          return Error("unescaped control character in string");
        }
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Error("bad \\u escape");
          }
          // The exporters only escape control characters; decode the BMP
          // code point as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    // RFC 8259 §6 grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
    // — scanned explicitly rather than delegated to strtod, which also
    // accepts non-JSON spellings like "+1", "01", "1." and ".5".
    const size_t start = pos_;
    const auto digit = [&] {
      return pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]));
    };
    Consume('-');
    if (!digit()) {
      return Error(pos_ == start ? "expected value" : "bad number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!digit()) return Error("bad number");
      while (digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() &&
          (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!digit()) return Error("bad number");
      while (digit()) ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    out->type = JsonValue::Type::kNumber;
    out->number_value = std::strtod(token.c_str(), nullptr);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace json
}  // namespace gp
