#include "obs/export.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/json.h"
#include "obs/trace.h"

namespace gp {
namespace {

Status WriteFileOrError(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return InvalidArgumentError("cannot open for writing: " + path);
  }
  out << body;
  out.close();
  if (!out) return DataLossError("short write: " + path);
  return Status::Ok();
}

void AppendSpansJson(const TelemetrySnapshot& snapshot,
                     json::JsonWriter* w) {
  w->Key("spans").BeginArray();
  for (const StageSample& stage : snapshot.Stages()) {
    w->BeginObject();
    w->Key("name").String(stage.name);
    w->Key("count").Int(stage.count);
    w->Key("total_ms").Double(stage.total_ms);
    w->Key("mean_ms").Double(stage.count > 0 ? stage.total_ms / stage.count
                                             : 0.0);
    w->EndObject();
  }
  w->EndArray();
}

}  // namespace

std::string TelemetrySnapshotToJson(const TelemetrySnapshot& snapshot) {
  json::JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("kind").String("telemetry");

  w.Key("counters").BeginObject();
  for (const CounterSample& c : snapshot.PlainCounters()) {
    w.Key(c.name).Int(c.value);
  }
  w.EndObject();

  w.Key("gauges").BeginObject();
  for (const GaugeSample& g : snapshot.gauges) {
    w.Key(g.name).Double(g.value);
  }
  w.EndObject();

  w.Key("histograms").BeginArray();
  for (const HistogramSample& h : snapshot.histograms) {
    w.BeginObject();
    w.Key("name").String(h.name);
    w.Key("bounds").BeginArray();
    for (double b : h.bounds) w.Double(b);
    w.EndArray();
    w.Key("counts").BeginArray();
    for (int64_t c : h.counts) w.Int(c);
    w.EndArray();
    w.Key("count").Int(h.total_count);
    w.Key("sum").Double(h.sum);
    w.EndObject();
  }
  w.EndArray();

  AppendSpansJson(snapshot, &w);
  w.EndObject();
  return w.str() + "\n";
}

Status WriteTelemetryJson(const TelemetrySnapshot& snapshot,
                          const std::string& path) {
  return WriteFileOrError(path, TelemetrySnapshotToJson(snapshot));
}

Status WriteTelemetryCsv(const TelemetrySnapshot& snapshot,
                         const std::string& path) {
  std::string body = "kind,name,value\n";
  for (const CounterSample& c : snapshot.counters) {
    body += "counter," + c.name + "," + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", g.value);
    body += "gauge," + g.name + "," + buf + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    body += "histogram_count," + h.name + "," +
            std::to_string(h.total_count) + "\n";
  }
  return WriteFileOrError(path, body);
}

std::string ChromeTraceToJson() {
  json::JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : CollectTraceEvents()) {
    w.BeginObject();
    w.Key("name").String(event.name);
    w.Key("ph").String("X");  // complete event: start + duration
    w.Key("ts").Int(event.ts_us);
    w.Key("dur").Int(event.dur_us);
    w.Key("pid").Int(1);
    w.Key("tid").Int(event.tid);
    w.Key("args").BeginObject();
    w.Key("id").Int(static_cast<int64_t>(event.id));
    w.Key("parent").Int(static_cast<int64_t>(event.parent_id));
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("droppedEvents").Int(DroppedTraceEvents());
  w.EndObject();
  return w.str() + "\n";
}

Status WriteChromeTrace(const std::string& path) {
  return WriteFileOrError(path, ChromeTraceToJson());
}

Status WriteTraceCsv(const std::string& path) {
  std::string body = "name,ts_us,dur_us,tid,id,parent_id\n";
  for (const TraceEvent& event : CollectTraceEvents()) {
    body += std::string(event.name) + "," + std::to_string(event.ts_us) +
            "," + std::to_string(event.dur_us) + "," +
            std::to_string(event.tid) + "," + std::to_string(event.id) +
            "," + std::to_string(event.parent_id) + "\n";
  }
  return WriteFileOrError(path, body);
}

std::string TelemetrySummary(const TelemetrySnapshot& snapshot) {
  std::string out = "telemetry summary\n";
  char buf[160];

  const auto stages = snapshot.Stages();
  if (!stages.empty()) {
    out += "  stage timings:\n";
    for (const StageSample& stage : stages) {
      std::snprintf(buf, sizeof(buf),
                    "    %-28s %8lld calls  %10.2f ms total  %8.3f ms/call\n",
                    stage.name.c_str(),
                    static_cast<long long>(stage.count), stage.total_ms,
                    stage.count > 0 ? stage.total_ms / stage.count : 0.0);
      out += buf;
    }
  }

  const int64_t hits = snapshot.CounterValue("augmenter/cache_hits");
  const int64_t misses = snapshot.CounterValue("augmenter/cache_misses");
  if (hits + misses > 0) {
    std::snprintf(buf, sizeof(buf),
                  "  augmenter cache: %lld hits / %lld misses (%.1f%% hit "
                  "rate), %lld inserts, %lld evictions\n",
                  static_cast<long long>(hits),
                  static_cast<long long>(misses),
                  100.0 * static_cast<double>(hits) /
                      static_cast<double>(hits + misses),
                  static_cast<long long>(
                      snapshot.CounterValue("augmenter/inserts")),
                  static_cast<long long>(
                      snapshot.CounterValue("augmenter/evictions")));
    out += buf;
  }

  bool any_degradation = false;
  for (const CounterSample& c : snapshot.counters) {
    if (c.value != 0 && c.name.rfind("degradation/", 0) == 0) {
      if (!any_degradation) {
        out += "  degradation counters:\n";
        any_degradation = true;
      }
      out += "    " + c.name + ": " + std::to_string(c.value) + "\n";
    }
  }
  if (!any_degradation) out += "  degradation: no events\n";

  bool header = false;
  for (const CounterSample& c : snapshot.PlainCounters()) {
    if (c.value == 0 || c.name.rfind("degradation/", 0) == 0 ||
        c.name.rfind("augmenter/", 0) == 0) {
      continue;
    }
    if (!header) {
      out += "  counters:\n";
      header = true;
    }
    out += "    " + c.name + ": " + std::to_string(c.value) + "\n";
  }
  return out;
}

namespace {

std::mutex g_config_mu;
std::string g_telemetry_path;
std::string g_trace_path;

std::string ResolvePath(const std::string& explicit_path,
                        const char* env_var) {
  if (!explicit_path.empty()) return explicit_path;
  if (const char* env = std::getenv(env_var)) return env;
  return "";
}

bool HasCsvExtension(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
}

}  // namespace

void ConfigureObservability(const std::string& telemetry_path,
                            const std::string& trace_path) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_telemetry_path = ResolvePath(telemetry_path, "GP_TELEMETRY");
  g_trace_path = ResolvePath(trace_path, "GP_TRACE");
  if (!g_trace_path.empty()) SetTracingEnabled(true);
}

Status ExportConfiguredObservability() {
  std::string telemetry_path, trace_path;
  {
    std::lock_guard<std::mutex> lock(g_config_mu);
    telemetry_path = g_telemetry_path;
    trace_path = g_trace_path;
  }
  Status first_error;
  if (!telemetry_path.empty()) {
    const TelemetrySnapshot snapshot = Telemetry().Snapshot();
    const Status status = HasCsvExtension(telemetry_path)
                              ? WriteTelemetryCsv(snapshot, telemetry_path)
                              : WriteTelemetryJson(snapshot, telemetry_path);
    if (status.ok()) {
      std::printf("wrote telemetry to %s\n", telemetry_path.c_str());
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  if (!trace_path.empty()) {
    const Status status = HasCsvExtension(trace_path)
                              ? WriteTraceCsv(trace_path)
                              : WriteChromeTrace(trace_path);
    if (status.ok()) {
      std::printf("wrote trace to %s\n", trace_path.c_str());
    } else if (first_error.ok()) {
      first_error = status;
    }
  }
  return first_error;
}

}  // namespace gp
