// Scoped trace spans.
//
//   void SelectPrompts(...) {
//     GP_TRACE_SPAN("selector/knn");
//     ...
//   }
//
// Every span — whether or not event recording is enabled — folds its wall
// time into the telemetry registry as two counters, "span/<name>/count"
// and "span/<name>/total_us", which power the per-stage timing tables in
// bench reports and example summaries. When tracing is enabled
// (SetTracingEnabled, --trace=<path>, or GP_TRACE), each span additionally
// records a TraceEvent (start, duration, thread, parent span) exportable
// as Chrome trace_event JSON (chrome://tracing, Perfetto) or flat CSV via
// obs/export.h.
//
// Spans never feed values back into computation, so enabling tracing
// leaves pipeline results bitwise identical (see DESIGN.md).
//
// Span names must be string literals (their addresses key a lookup cache
// and the recorder stores them unowned).

#ifndef GRAPHPROMPTER_OBS_TRACE_H_
#define GRAPHPROMPTER_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gp {

// Microseconds since process start (steady clock).
int64_t TraceNowMicros();

// Event recording toggle. Span timing aggregation into telemetry counters
// is always on; this only gates the per-event buffer.
bool TracingEnabled();
void SetTracingEnabled(bool enabled);

struct TraceEvent {
  const char* name = "";     // unowned string literal
  int64_t ts_us = 0;         // span start, microseconds since process start
  int64_t dur_us = 0;
  int tid = 0;               // stable per-thread index (main thread first)
  uint64_t id = 0;           // unique per span
  uint64_t parent_id = 0;    // 0 = top-level span on its thread
};

// Copy of the recorded events, sorted by (ts_us, id). Thread-safe.
std::vector<TraceEvent> CollectTraceEvents();

// Number of events dropped after the recording buffer filled (bounded so a
// long traced run cannot exhaust memory).
int64_t DroppedTraceEvents();

// Discards all recorded events (and the dropped-event count).
void ClearTraceEvents();

// RAII span. Use through GP_TRACE_SPAN rather than directly.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  int64_t start_us_;
  uint64_t id_;
  uint64_t parent_id_;
  bool recording_;  // tracing was enabled when the span opened
};

#define GP_TRACE_CONCAT_INNER_(a, b) a##b
#define GP_TRACE_CONCAT_(a, b) GP_TRACE_CONCAT_INNER_(a, b)
#define GP_TRACE_SPAN(name) \
  ::gp::TraceSpan GP_TRACE_CONCAT_(gp_trace_span_, __LINE__)(name)

}  // namespace gp

#endif  // GRAPHPROMPTER_OBS_TRACE_H_
