// Standardized benchmark result export: every bench binary funnels its
// run through a BenchReporter, which writes results/BENCH_<name>.json with
// a stable schema so the benchmark trajectory can accumulate across runs:
//
//   {
//     "schema_version": 1,
//     "benchmark": "<name>",
//     "config":   { "scale": 0.45, "seed": 1, ... },
//     "stages":   [ {"name":"selector/knn","count":N,
//                    "total_ms":T,"mean_ms":M}, ... ],
//     "counters": { "augmenter/cache_hits": 123, ... },
//     "gauges":   { "parallel/threads": 4, ... },
//     "results":  [ {"label":"FB15K_237/ways=5/accuracy",
//                    "value":57.2,"unit":"%"}, ... ]
//   }
//
// "stages" and "counters" are captured from the process-wide telemetry
// registry at WriteJson time, so everything the instrumented pipeline
// recorded during the bench lands in the report automatically; the bench
// itself only adds its config and headline metrics.

#ifndef GRAPHPROMPTER_OBS_BENCH_REPORT_H_
#define GRAPHPROMPTER_OBS_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace gp {

class BenchReporter {
 public:
  explicit BenchReporter(std::string name);

  const std::string& name() const { return name_; }

  // Config entries appear in insertion order.
  void AddConfig(const std::string& key, const std::string& value);
  void AddConfig(const std::string& key, double value);
  void AddConfig(const std::string& key, int64_t value);

  // A headline measurement (accuracy cell, ms/query, ...). `label` should
  // encode the cell coordinates, e.g. "FB15K_237/ways=10/accuracy".
  void AddMetric(const std::string& label, double value,
                 const std::string& unit = "");

  int num_metrics() const { return static_cast<int>(metrics_.size()); }

  // Serializes the report (including a fresh telemetry snapshot).
  std::string ToJson() const;

  // Writes <outdir>/BENCH_<name>.json.
  Status WriteJson(const std::string& outdir) const;

 private:
  struct ConfigEntry {
    std::string key;
    std::string value;  // pre-rendered JSON literal for numbers
    bool is_string;
  };
  struct Metric {
    std::string label;
    double value;
    std::string unit;
  };

  std::string name_;
  std::vector<ConfigEntry> config_;
  std::vector<Metric> metrics_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_OBS_BENCH_REPORT_H_
