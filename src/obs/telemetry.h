// Process-wide telemetry registry: named counters, gauges, and fixed-bucket
// histograms.
//
// Hot-path writes go to per-thread sharded cells — each metric owns
// kTelemetryShards cache-line-aligned atomic slots and a thread always
// writes the slot picked by its (stable) thread index, so concurrent
// increments from ParallelFor workers never contend on one cache line.
// Reads (Snapshot / Value) merge the shards in fixed index order and
// iterate metrics in name order, so two snapshots of the same state are
// identical.
//
// Determinism contract: telemetry is strictly write-only from the compute
// pipeline's point of view — no kernel ever reads a metric to make a
// decision — so enabling or exporting telemetry cannot perturb predictions.
// Counter merges are integer sums (associative and commutative), hence
// exact regardless of which thread incremented what.
//
// Metric handles returned by the registry are valid for the process
// lifetime; Reset() zeroes values but never invalidates handles, so call
// sites may cache them in static locals:
//
//   static Counter* hits = Telemetry().GetCounter("augmenter/cache_hits");
//   hits->Add(1);

#ifndef GRAPHPROMPTER_OBS_TELEMETRY_H_
#define GRAPHPROMPTER_OBS_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gp {

// Shard count: a power of two comfortably above the pool sizes this
// library runs with; threads beyond it wrap around and share (still
// correct, just potentially contended).
inline constexpr int kTelemetryShards = 16;

// Stable small index for the calling thread (assigned on first use,
// wrapped into [0, kTelemetryShards)).
int TelemetryShardIndex();

namespace obs_internal {
struct alignas(64) ShardedI64 {
  std::atomic<int64_t> value{0};
};
struct alignas(64) ShardedF64 {
  std::atomic<double> value{0.0};
};
}  // namespace obs_internal

// Monotonically increasing integer metric.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(int64_t delta = 1) {
    cells_[TelemetryShardIndex()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  // Sum over shards in fixed order.
  int64_t Value() const;

  const std::string& name() const { return name_; }
  void Reset();

 private:
  std::string name_;
  obs_internal::ShardedI64 cells_[kTelemetryShards];
};

// Last-written floating-point level (thread count, dataset scale, ...).
// Gauges are set from configuration code, not from racing hot paths.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  // Monotonic set: keeps the larger of the current and given value even
  // under concurrent publishers (used for high-water marks like
  // alloc/live_peak).
  void SetMax(double value) {
    double current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }
  void Reset() { Set(0.0); }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending upper bounds; a value v
// lands in the first bucket with v <= bound, or the overflow bucket.
// Bucket counts and the running sum are sharded like counters.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }
  // Merged counts, one per bound plus the overflow bucket.
  std::vector<int64_t> BucketCounts() const;
  int64_t TotalCount() const;
  double Sum() const;
  void Reset();

 private:
  std::string name_;
  std::vector<double> bounds_;
  // Flattened (shard x bucket) count cells; shard-major so one thread's
  // buckets share cache lines only with themselves. Heap array because
  // atomics are neither copyable nor movable.
  std::unique_ptr<obs_internal::ShardedI64[]> counts_;
  obs_internal::ShardedF64 sums_[kTelemetryShards];
};

// ---------------------------------------------------------------- snapshot

struct CounterSample {
  std::string name;
  int64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<int64_t> counts;  // bounds.size() + 1 (overflow last)
  int64_t total_count = 0;
  double sum = 0.0;

  // Quantile estimate by linear interpolation inside the bucket holding
  // the q-th ranked observation (q in [0, 1]). The first bucket
  // interpolates from 0; observations in the overflow bucket clamp to the
  // last bound (the estimate is a lower bound there). Returns 0 for an
  // empty histogram. Exact enough for p50/p99 latency extraction when the
  // bounds are log-spaced like LatencyBucketBoundsUs().
  double Quantile(double q) const;
};

// Ascending upper bounds for per-request latency histograms, in
// microseconds: a 1-2-5 decade ladder from 10us to 10s. Wide enough that
// the overflow bucket only sees pathological (multi-second) requests while
// keeping p50/p99 interpolation error within a bucket step.
std::vector<double> LatencyBucketBoundsUs();

// Per-stage aggregate derived from the span counters that GP_TRACE_SPAN
// maintains (see obs/trace.h): "span/<name>/count" and
// "span/<name>/total_us".
struct StageSample {
  std::string name;
  int64_t count = 0;
  double total_ms = 0.0;
};

// A point-in-time copy of the registry, metrics sorted by name. This is
// the unit every exporter consumes.
struct TelemetrySnapshot {
  std::vector<CounterSample> counters;  // includes the span/ counters
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  // Counter value by exact name; 0 when absent.
  int64_t CounterValue(const std::string& name) const;
  const HistogramSample* FindHistogram(const std::string& name) const;

  // The "span/<name>/{count,total_us}" counter pairs folded into stage
  // aggregates, sorted by name.
  std::vector<StageSample> Stages() const;
  // Counters that are not span bookkeeping, i.e. everything Stages() does
  // not already represent.
  std::vector<CounterSample> PlainCounters() const;
};

class TelemetryRegistry {
 public:
  // Returns the existing metric or registers a new one. Never returns
  // null; the handle lives for the process lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  // `bounds` must be ascending; only consulted on first registration.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  TelemetrySnapshot Snapshot() const;

  // Zeroes every metric value. Handles stay valid. Intended for tests and
  // for delta-style reporting between pipeline phases.
  void Reset();

 private:
  mutable std::mutex mu_;
  // std::map keeps name order stable for deterministic snapshots; values
  // are node-stable unique_ptrs so handles survive rehash-free.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

// The process-wide registry (never destroyed, so exit-time logging from
// worker threads stays safe).
TelemetryRegistry& Telemetry();

}  // namespace gp

#endif  // GRAPHPROMPTER_OBS_TELEMETRY_H_
