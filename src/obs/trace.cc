#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>

#include "obs/telemetry.h"

namespace gp {
namespace {

// Bounded event buffer: ~1M spans is far beyond any bench run; past it we
// drop and count rather than grow without limit.
constexpr size_t kMaxTraceEvents = size_t{1} << 20;

std::atomic<bool> g_tracing_enabled{false};
std::atomic<uint64_t> g_next_span_id{1};
std::atomic<int64_t> g_dropped_events{0};

std::mutex g_events_mu;
std::vector<TraceEvent>& Events() {
  static std::vector<TraceEvent>* events = new std::vector<TraceEvent>();
  return *events;
}

// Stable small thread index for trace output (0 = first thread to trace).
int ThisThreadIndex() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// Innermost open span on this thread; parents for nested spans.
std::vector<uint64_t>& SpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

// Aggregation counters per span name, cached by the literal's address so
// repeated spans skip the registry's name lookup.
struct SpanCounters {
  Counter* count;
  Counter* total_us;
};

SpanCounters LookupSpanCounters(const char* name) {
  static std::mutex mu;
  static std::unordered_map<const void*, SpanCounters>* cache =
      new std::unordered_map<const void*, SpanCounters>();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = cache->find(name);
    if (it != cache->end()) return it->second;
  }
  const std::string base = std::string("span/") + name;
  SpanCounters counters{Telemetry().GetCounter(base + "/count"),
                        Telemetry().GetCounter(base + "/total_us")};
  std::lock_guard<std::mutex> lock(mu);
  return cache->emplace(name, counters).first->second;
}

}  // namespace

int64_t TraceNowMicros() {
  static const auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

bool TracingEnabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

void SetTracingEnabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<TraceEvent> CollectTraceEvents() {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(g_events_mu);
    out = Events();
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                               : a.id < b.id;
                   });
  return out;
}

int64_t DroppedTraceEvents() {
  return g_dropped_events.load(std::memory_order_relaxed);
}

void ClearTraceEvents() {
  std::lock_guard<std::mutex> lock(g_events_mu);
  Events().clear();
  g_dropped_events.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : name_(name),
      start_us_(TraceNowMicros()),
      id_(g_next_span_id.fetch_add(1, std::memory_order_relaxed)),
      parent_id_(SpanStack().empty() ? 0 : SpanStack().back()),
      recording_(TracingEnabled()) {
  SpanStack().push_back(id_);
}

TraceSpan::~TraceSpan() {
  SpanStack().pop_back();
  const int64_t dur = TraceNowMicros() - start_us_;

  const SpanCounters counters = LookupSpanCounters(name_);
  counters.count->Add(1);
  counters.total_us->Add(dur);

  if (!recording_) return;
  TraceEvent event;
  event.name = name_;
  event.ts_us = start_us_;
  event.dur_us = dur;
  event.tid = ThisThreadIndex();
  event.id = id_;
  event.parent_id = parent_id_;
  std::lock_guard<std::mutex> lock(g_events_mu);
  if (Events().size() >= kMaxTraceEvents) {
    g_dropped_events.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Events().push_back(event);
}

}  // namespace gp
