#include "obs/telemetry.h"

#include <algorithm>

#include "util/logging.h"

namespace gp {

int TelemetryShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) % kTelemetryShards;
  return shard;
}

int64_t Counter::Value() const {
  int64_t total = 0;
  for (int s = 0; s < kTelemetryShards; ++s) {
    total += cells_[s].value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (int s = 0; s < kTelemetryShards; ++s) {
    cells_[s].value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CHECK_LT(bounds_[i - 1], bounds_[i])
        << "histogram bounds must be strictly ascending: " << name_;
  }
  counts_ = std::make_unique<obs_internal::ShardedI64[]>(
      static_cast<size_t>(kTelemetryShards) * (bounds_.size() + 1));
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; NaN and values above
  // the last bound land in the overflow bucket.
  size_t bucket = bounds_.size();
  for (size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  const size_t shard = static_cast<size_t>(TelemetryShardIndex());
  counts_[shard * (bounds_.size() + 1) + bucket].value.fetch_add(
      1, std::memory_order_relaxed);
  sums_[shard].value.fetch_add(value, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::BucketCounts() const {
  std::vector<int64_t> merged(bounds_.size() + 1, 0);
  for (int s = 0; s < kTelemetryShards; ++s) {
    for (size_t b = 0; b < merged.size(); ++b) {
      merged[b] +=
          counts_[static_cast<size_t>(s) * merged.size() + b].value.load(
              std::memory_order_relaxed);
    }
  }
  return merged;
}

int64_t Histogram::TotalCount() const {
  int64_t total = 0;
  for (int64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  // Merged in fixed shard order so repeated reads of the same state agree.
  double total = 0.0;
  for (int s = 0; s < kTelemetryShards; ++s) {
    total += sums_[s].value.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::Reset() {
  const size_t n = static_cast<size_t>(kTelemetryShards) *
                   (bounds_.size() + 1);
  for (size_t i = 0; i < n; ++i) {
    counts_[i].value.store(0, std::memory_order_relaxed);
  }
  for (int s = 0; s < kTelemetryShards; ++s) {
    sums_[s].value.store(0.0, std::memory_order_relaxed);
  }
}

double HistogramSample::Quantile(double q) const {
  if (total_count <= 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the target observation (1-based, clamped into the population).
  const double rank = std::max(1.0, q * static_cast<double>(total_count));
  int64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    const int64_t in_bucket = counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      if (b >= bounds.size()) {
        // Overflow bucket has no upper bound; clamp to the last edge.
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lo = b == 0 ? 0.0 : bounds[b - 1];
      const double hi = bounds[b];
      const double within =
          (rank - static_cast<double>(cumulative)) / in_bucket;
      return lo + (hi - lo) * within;
    }
    cumulative += in_bucket;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

std::vector<double> LatencyBucketBoundsUs() {
  std::vector<double> bounds;
  // 1-2-5 ladder per decade: 10us, 20us, 50us, ..., 5e6us, 1e7us.
  for (double decade = 10.0; decade < 1e7; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(1e7);
  return bounds;
}

int64_t TelemetrySnapshot::CounterValue(const std::string& name) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramSample* TelemetrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

constexpr char kSpanPrefix[] = "span/";
constexpr char kSpanCountSuffix[] = "/count";
constexpr char kSpanTotalSuffix[] = "/total_us";

bool StripAffixes(const std::string& name, const char* suffix,
                  std::string* stage) {
  const size_t prefix_len = sizeof(kSpanPrefix) - 1;
  const size_t suffix_len = std::char_traits<char>::length(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kSpanPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  *stage = name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  return true;
}

}  // namespace

std::vector<StageSample> TelemetrySnapshot::Stages() const {
  std::map<std::string, StageSample> stages;
  for (const CounterSample& c : counters) {
    std::string stage;
    if (StripAffixes(c.name, kSpanCountSuffix, &stage)) {
      stages[stage].name = stage;
      stages[stage].count = c.value;
    } else if (StripAffixes(c.name, kSpanTotalSuffix, &stage)) {
      stages[stage].name = stage;
      stages[stage].total_ms = static_cast<double>(c.value) / 1e3;
    }
  }
  std::vector<StageSample> out;
  out.reserve(stages.size());
  for (auto& [name, sample] : stages) out.push_back(std::move(sample));
  return out;
}

std::vector<CounterSample> TelemetrySnapshot::PlainCounters() const {
  std::vector<CounterSample> out;
  for (const CounterSample& c : counters) {
    std::string stage;
    if (StripAffixes(c.name, kSpanCountSuffix, &stage) ||
        StripAffixes(c.name, kSpanTotalSuffix, &stage)) {
      continue;
    }
    out.push_back(c);
  }
  return out;
}

Counter* TelemetryRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return slot.get();
}

Gauge* TelemetryRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>(name);
  return slot.get();
}

Histogram* TelemetryRegistry::GetHistogram(const std::string& name,
                                           std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(name, std::move(bounds));
  return slot.get();
}

TelemetrySnapshot TelemetryRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  TelemetrySnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    sample.bounds = histogram->bounds();
    sample.counts = histogram->BucketCounts();
    sample.total_count = 0;
    for (int64_t c : sample.counts) sample.total_count += c;
    sample.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

void TelemetryRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

TelemetryRegistry& Telemetry() {
  // Leaked singleton: worker threads may still bump counters while static
  // destructors run, so the registry must outlive everything.
  static TelemetryRegistry* registry = new TelemetryRegistry();
  return *registry;
}

}  // namespace gp
