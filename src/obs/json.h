// Minimal JSON support for the observability exporters.
//
// JsonWriter emits syntactically valid JSON (objects, arrays, scalars) with
// comma/indent bookkeeping handled by a small state stack; the Parse
// function implements enough of RFC 8259 to round-trip everything the
// exporters write (used by trace_export_test and the telemetry schema
// checker tool). Neither side depends on anything beyond util/status, so
// every layer of the library can link them.

#ifndef GRAPHPROMPTER_OBS_JSON_H_
#define GRAPHPROMPTER_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace gp {
namespace json {

// Escapes `s` for inclusion between JSON double quotes.
std::string Escape(const std::string& s);

// Streaming writer. Calls must form a valid JSON document: a single root
// value, Key() before every value inside an object. Misuse aborts via
// CHECK — the exporters are the only callers and their shapes are static.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Double(double value);  // non-finite values emit null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // The document built so far. Call after the root value is complete.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  enum class Frame { kObject, kArray };
  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;   // parallel to stack_
  bool pending_key_ = false;  // a Key() was emitted, value must follow
};

// Parsed JSON value (tagged union). Object member order is preserved.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kObject, kArray };

  Type type = Type::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject
  std::vector<JsonValue> elements;                         // kArray

  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }
  bool IsNumber() const { return type == Type::kNumber; }
  bool IsString() const { return type == Type::kString; }

  // Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses a complete JSON document. Trailing non-whitespace, unterminated
// strings, etc. are kInvalidArgument.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace json
}  // namespace gp

#endif  // GRAPHPROMPTER_OBS_JSON_H_
