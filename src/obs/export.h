// Exporters for the observability subsystem.
//
// Serialization:
//   WriteTelemetryJson / TelemetrySnapshotToJson — snapshot as JSON
//     (schema: {"schema_version":1,"kind":"telemetry","counters":{...},
//      "gauges":{...},"histograms":[...],"spans":[{name,count,total_ms,
//      mean_ms}]})
//   WriteTelemetryCsv  — flat "kind,name,value" CSV
//   WriteChromeTrace   — recorded spans as Chrome trace_event JSON
//     (open in chrome://tracing or https://ui.perfetto.dev)
//   WriteTraceCsv      — recorded spans as "name,ts_us,dur_us,tid,id,
//     parent_id" CSV
//
// Run plumbing: ConfigureObservability wires the --telemetry=<path> /
// --trace=<path> flags (falling back to the GP_TELEMETRY / GP_TRACE
// environment variables) and ExportConfiguredObservability writes the
// configured files at end of run. TelemetrySummary renders the
// human-readable end-of-run report the examples print.

#ifndef GRAPHPROMPTER_OBS_EXPORT_H_
#define GRAPHPROMPTER_OBS_EXPORT_H_

#include <string>

#include "obs/telemetry.h"
#include "util/status.h"

namespace gp {

std::string TelemetrySnapshotToJson(const TelemetrySnapshot& snapshot);

Status WriteTelemetryJson(const TelemetrySnapshot& snapshot,
                          const std::string& path);
Status WriteTelemetryCsv(const TelemetrySnapshot& snapshot,
                         const std::string& path);

std::string ChromeTraceToJson();
Status WriteChromeTrace(const std::string& path);
Status WriteTraceCsv(const std::string& path);

// Human-readable end-of-run summary: stage timings (from span counters),
// augmenter cache hit rate, degradation counters, and any other non-zero
// counters. Multi-line, ready to print.
std::string TelemetrySummary(const TelemetrySnapshot& snapshot);

// Resolves the telemetry/trace output paths: an explicit argument wins,
// otherwise the GP_TELEMETRY / GP_TRACE environment variables are
// consulted. A non-empty trace path enables event recording immediately.
void ConfigureObservability(const std::string& telemetry_path,
                            const std::string& trace_path);

// Writes the files configured above (no-op when neither is set). A ".csv"
// extension selects the CSV serialization, anything else JSON. Returns the
// first error; partial exports still attempt every configured sink.
Status ExportConfiguredObservability();

}  // namespace gp

#endif  // GRAPHPROMPTER_OBS_EXPORT_H_
