// Size-bucketed, thread-aware buffer pool behind Tensor's storage.
//
// Every tensor op output (and gradient buffer) is a std::vector<float>.
// The episodic inference loop runs thousands of small ops per episode, so
// without recycling each op pays a heap round-trip. The pool keeps freed
// buffers in power-of-two size buckets and hands them back to subsequent
// acquisitions of the same class: a hit costs a couple of pointer moves
// instead of malloc/free.
//
// Structure:
//   * Buckets: capacity class 2^b floats, b in [kMinBucketLog2,
//     kNumBuckets). A request for n floats is served from the smallest
//     class with 2^b >= n; the returned vector has size() == n exactly.
//   * Thread caches: each thread owns a lock-free (thread_local) free list
//     per bucket, capped at kThreadCacheSlots buffers. Acquire and release
//     touch only the calling thread's cache in the common case.
//   * Global overflow: a mutex-protected shared list per bucket (capped at
//     kGlobalSlots) catches thread-cache overflow and serves cross-thread
//     reuse. Buffers released by exiting threads are flushed here, so
//     memory a ParallelFor worker freed is not stranded.
//
// Determinism contract (DESIGN.md §9): a recycled buffer's contents are
// unspecified, and every op fully initialises (writes or zero-fills) each
// element of an acquired buffer before reading it; AcquireZeroedBuffer
// exists for accumulation kernels. Pooling therefore never changes a
// single computed bit — the quickstart golden files pass with the pool on
// or off.
//
// Telemetry: alloc/pool_hits, alloc/pool_misses, alloc/bytes_reused
// counters are bumped inline; the alloc/live_peak gauge (peak bytes held
// by live tensors) is published by PoolScope exits and by
// PoolStatsSnapshot().

#ifndef GRAPHPROMPTER_TENSOR_BUFFER_POOL_H_
#define GRAPHPROMPTER_TENSOR_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gp {

// Aggregate pool statistics (process-wide, monotonic except live/free).
struct BufferPoolStats {
  int64_t hits = 0;          // acquisitions served from a free list
  int64_t misses = 0;        // acquisitions that hit the heap
  int64_t bytes_reused = 0;  // requested bytes served from recycled buffers
  int64_t live_bytes = 0;    // bytes currently owned by live tensors
  int64_t live_peak_bytes = 0;  // high-water mark of live_bytes
  int64_t free_bytes = 0;       // bytes parked in free lists right now
};

// Returns a vector with size() == n whose contents are UNSPECIFIED (stale
// values from a recycled buffer are possible). Callers must write every
// element before reading it.
std::vector<float> AcquireBuffer(size_t n);

// Returns a vector with size() == n and every element == 0.0f.
std::vector<float> AcquireZeroedBuffer(size_t n);

// Returns a buffer to the pool (or frees it when the pool is full or
// disabled). Safe to call with vectors that were never acquired from the
// pool — they are adopted into the matching capacity class. Safe on any
// thread, including threads other than the acquiring one.
void ReleaseBuffer(std::vector<float>&& buf);

// Frees every buffer parked in the calling thread's cache and in the
// global overflow lists. Other threads' caches are left alone (they are
// bounded and flushed to the global lists on thread exit).
void DrainBufferPool();

// Copies alloc/live_peak (and alloc/live_bytes, alloc/free_bytes) into the
// telemetry gauges. Counters are maintained inline and need no publishing.
void PublishPoolTelemetry();

// Point-in-time statistics; also publishes the gauges.
BufferPoolStats PoolStatsSnapshot();

// Testing hook: disables recycling (Acquire always mallocs, Release always
// frees, counters freeze). The default is enabled. Not thread-safe; call
// between parallel regions.
void SetBufferPoolEnabled(bool enabled);
bool BufferPoolEnabled();

// RAII region marker for allocation-heavy phases (eval runs, pretraining).
// Pooling is always active; what the scope adds is a bound on retained
// memory: when the outermost PoolScope on a thread exits, the pool is
// drained (DrainBufferPool) and the alloc/* gauges are published. Scopes
// may nest; only the outermost exit drains.
class PoolScope {
 public:
  PoolScope();
  ~PoolScope();

  PoolScope(const PoolScope&) = delete;
  PoolScope& operator=(const PoolScope&) = delete;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_TENSOR_BUFFER_POOL_H_
