#include "tensor/buffer_pool.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>

#include "obs/telemetry.h"

namespace gp {
namespace {

// Capacity classes 2^4 .. 2^31 floats (64 B .. 8 GiB). Requests above the
// top class, and releases below the bottom one, bypass the pool.
constexpr int kMinBucketLog2 = 4;
constexpr int kNumBuckets = 32;
// Per-thread parked buffers per bucket; small so worker caches stay lean.
constexpr size_t kThreadCacheSlots = 8;
// Shared overflow per bucket; catches cross-thread churn.
constexpr size_t kGlobalSlots = 64;

bool g_pool_enabled = true;

// Smallest b with 2^b >= n (clamped to kMinBucketLog2); -1 when the
// request is too large to pool.
int BucketForRequest(size_t n) {
  int b = kMinBucketLog2;
  while (b < kNumBuckets && (size_t{1} << b) < n) ++b;
  return b < kNumBuckets ? b : -1;
}

// Largest b with 2^b <= capacity; -1 when the buffer is too small for the
// bottom class (serving any request from it could force a realloc).
int BucketForRelease(size_t capacity) {
  if (capacity < (size_t{1} << kMinBucketLog2)) return -1;
  int b = kMinBucketLog2;
  while (b + 1 < kNumBuckets && (size_t{1} << (b + 1)) <= capacity) ++b;
  return b;
}

struct Stats {
  std::atomic<int64_t> hits{0};
  std::atomic<int64_t> misses{0};
  std::atomic<int64_t> bytes_reused{0};
  std::atomic<int64_t> live_bytes{0};
  std::atomic<int64_t> live_peak_bytes{0};
  std::atomic<int64_t> free_bytes{0};
};

Stats& GlobalStats() {
  static Stats* stats = new Stats;
  return *stats;
}

struct GlobalLists {
  std::mutex mu;
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;
};

GlobalLists& Globals() {
  // Leaked so releases from exit-time destructors stay safe.
  static GlobalLists* lists = new GlobalLists;
  return *lists;
}

void RecordLiveDelta(int64_t delta) {
  Stats& stats = GlobalStats();
  // Releases of adopted (never-acquired) buffers can push the counter
  // negative; clamp so the published numbers stay meaningful.
  int64_t live = stats.live_bytes.fetch_add(delta,
                                            std::memory_order_relaxed) +
                 delta;
  if (live < 0) live = 0;
  int64_t peak = stats.live_peak_bytes.load(std::memory_order_relaxed);
  while (live > peak && !stats.live_peak_bytes.compare_exchange_weak(
                            peak, live, std::memory_order_relaxed)) {
  }
}

// Thread cache with an exit flush: buffers a worker thread parked are
// pushed to the global lists when the thread dies, instead of being
// stranded or freed. The `dead` flag is a separate trivially-destructible
// thread_local so releases that happen after the cache's destructor (e.g.
// from static tensors torn down at process exit) fall back to the heap
// instead of touching a destroyed object.
thread_local bool t_cache_dead = false;

struct ThreadCache {
  std::array<std::vector<std::vector<float>>, kNumBuckets> buckets;

  ~ThreadCache() {
    t_cache_dead = true;
    GlobalLists& global = Globals();
    Stats& stats = GlobalStats();
    std::lock_guard<std::mutex> lock(global.mu);
    for (int b = 0; b < kNumBuckets; ++b) {
      for (auto& buf : buckets[b]) {
        if (global.buckets[b].size() < kGlobalSlots) {
          global.buckets[b].push_back(std::move(buf));
        } else {
          stats.free_bytes.fetch_sub(
              static_cast<int64_t>(buf.capacity() * sizeof(float)),
              std::memory_order_relaxed);
        }
      }
      buckets[b].clear();
    }
  }
};

ThreadCache* GetThreadCache() {
  if (t_cache_dead) return nullptr;
  thread_local ThreadCache cache;
  return &cache;
}

struct AllocCounters {
  Counter* hits;
  Counter* misses;
  Counter* bytes_reused;
};

const AllocCounters& Counters() {
  static AllocCounters counters = {
      Telemetry().GetCounter("alloc/pool_hits"),
      Telemetry().GetCounter("alloc/pool_misses"),
      Telemetry().GetCounter("alloc/bytes_reused"),
  };
  return counters;
}

// Pops a recycled buffer of bucket `b`, or returns false.
bool PopFree(int b, std::vector<float>* out) {
  if (ThreadCache* cache = GetThreadCache()) {
    auto& list = cache->buckets[b];
    if (!list.empty()) {
      *out = std::move(list.back());
      list.pop_back();
      return true;
    }
  }
  GlobalLists& global = Globals();
  std::lock_guard<std::mutex> lock(global.mu);
  auto& list = global.buckets[b];
  if (list.empty()) return false;
  *out = std::move(list.back());
  list.pop_back();
  return true;
}

thread_local int t_pool_scope_depth = 0;

}  // namespace

std::vector<float> AcquireBuffer(size_t n) {
  if (n == 0) return {};
  const int b = g_pool_enabled ? BucketForRequest(n) : -1;
  std::vector<float> buf;
  if (b >= 0 && PopFree(b, &buf)) {
    Stats& stats = GlobalStats();
    stats.hits.fetch_add(1, std::memory_order_relaxed);
    stats.bytes_reused.fetch_add(
        static_cast<int64_t>(n * sizeof(float)), std::memory_order_relaxed);
    stats.free_bytes.fetch_sub(
        static_cast<int64_t>(buf.capacity() * sizeof(float)),
        std::memory_order_relaxed);
    Counters().hits->Add(1);
    Counters().bytes_reused->Add(static_cast<int64_t>(n * sizeof(float)));
    // Capacity is >= n by bucket construction, so this never reallocates;
    // elements grown into are value-initialised, the rest keep stale
    // values (contents are unspecified by contract).
    buf.resize(n);
  } else {
    if (g_pool_enabled) {
      GlobalStats().misses.fetch_add(1, std::memory_order_relaxed);
      Counters().misses->Add(1);
    }
    if (b >= 0) buf.reserve(size_t{1} << b);
    buf.resize(n);
  }
  RecordLiveDelta(static_cast<int64_t>(buf.capacity() * sizeof(float)));
  return buf;
}

std::vector<float> AcquireZeroedBuffer(size_t n) {
  std::vector<float> buf = AcquireBuffer(n);
  std::fill(buf.begin(), buf.end(), 0.0f);
  return buf;
}

void ReleaseBuffer(std::vector<float>&& buf) {
  const size_t capacity = buf.capacity();
  if (capacity == 0) return;
  RecordLiveDelta(-static_cast<int64_t>(capacity * sizeof(float)));
  if (!g_pool_enabled) {
    std::vector<float>().swap(buf);
    return;
  }
  const int b = BucketForRelease(capacity);
  if (b < 0) {
    std::vector<float>().swap(buf);
    return;
  }
  Stats& stats = GlobalStats();
  if (ThreadCache* cache = GetThreadCache()) {
    auto& list = cache->buckets[b];
    if (list.size() < kThreadCacheSlots) {
      list.push_back(std::move(buf));
      stats.free_bytes.fetch_add(
          static_cast<int64_t>(capacity * sizeof(float)),
          std::memory_order_relaxed);
      return;
    }
  }
  {
    GlobalLists& global = Globals();
    std::lock_guard<std::mutex> lock(global.mu);
    auto& list = global.buckets[b];
    if (list.size() < kGlobalSlots) {
      list.push_back(std::move(buf));
      stats.free_bytes.fetch_add(
          static_cast<int64_t>(capacity * sizeof(float)),
          std::memory_order_relaxed);
      return;
    }
  }
  std::vector<float>().swap(buf);
}

void DrainBufferPool() {
  Stats& stats = GlobalStats();
  int64_t freed = 0;
  if (ThreadCache* cache = GetThreadCache()) {
    for (auto& list : cache->buckets) {
      for (auto& buf : list) {
        freed += static_cast<int64_t>(buf.capacity() * sizeof(float));
      }
      list.clear();
      list.shrink_to_fit();
    }
  }
  {
    GlobalLists& global = Globals();
    std::lock_guard<std::mutex> lock(global.mu);
    for (auto& list : global.buckets) {
      for (auto& buf : list) {
        freed += static_cast<int64_t>(buf.capacity() * sizeof(float));
      }
      list.clear();
    }
  }
  stats.free_bytes.fetch_sub(freed, std::memory_order_relaxed);
}

void PublishPoolTelemetry() {
  Stats& stats = GlobalStats();
  Telemetry()
      .GetGauge("alloc/live_peak")
      ->SetMax(static_cast<double>(
          stats.live_peak_bytes.load(std::memory_order_relaxed)));
  Telemetry()
      .GetGauge("alloc/live_bytes")
      ->Set(static_cast<double>(
          std::max<int64_t>(0, stats.live_bytes.load(
                                   std::memory_order_relaxed))));
  Telemetry()
      .GetGauge("alloc/free_bytes")
      ->Set(static_cast<double>(
          std::max<int64_t>(0, stats.free_bytes.load(
                                   std::memory_order_relaxed))));
}

BufferPoolStats PoolStatsSnapshot() {
  PublishPoolTelemetry();
  Stats& stats = GlobalStats();
  BufferPoolStats out;
  out.hits = stats.hits.load(std::memory_order_relaxed);
  out.misses = stats.misses.load(std::memory_order_relaxed);
  out.bytes_reused = stats.bytes_reused.load(std::memory_order_relaxed);
  out.live_bytes =
      std::max<int64_t>(0, stats.live_bytes.load(std::memory_order_relaxed));
  out.live_peak_bytes =
      stats.live_peak_bytes.load(std::memory_order_relaxed);
  out.free_bytes =
      std::max<int64_t>(0, stats.free_bytes.load(std::memory_order_relaxed));
  return out;
}

void SetBufferPoolEnabled(bool enabled) {
  if (g_pool_enabled && !enabled) DrainBufferPool();
  g_pool_enabled = enabled;
}

bool BufferPoolEnabled() { return g_pool_enabled; }

PoolScope::PoolScope() { ++t_pool_scope_depth; }

PoolScope::~PoolScope() {
  if (--t_pool_scope_depth == 0) {
    DrainBufferPool();
    PublishPoolTelemetry();
  }
}

}  // namespace gp
