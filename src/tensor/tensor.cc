#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/buffer_pool.h"

namespace gp {

TensorImpl::~TensorImpl() {
  ReleaseBuffer(std::move(data));
  ReleaseBuffer(std::move(grad));
}

void TensorImpl::EnsureGrad() {
  if (grad.size() != data.size()) {
    ReleaseBuffer(std::move(grad));
    grad = AcquireZeroedBuffer(data.size());
  }
}

Tensor Tensor::Zeros(int rows, int cols, bool requires_grad) {
  return Full(rows, cols, 0.0f, requires_grad);
}

Tensor Tensor::Full(int rows, int cols, float value, bool requires_grad) {
  CHECK_GE(rows, 0);
  CHECK_GE(cols, 0);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = AcquireBuffer(static_cast<size_t>(rows) * cols);
  std::fill(impl->data.begin(), impl->data.end(), value);
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::FromData(int rows, int cols, std::vector<float> data,
                        bool requires_grad) {
  CHECK_EQ(static_cast<int64_t>(data.size()),
           static_cast<int64_t>(rows) * cols);
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  impl->data = std::move(data);
  impl->requires_grad = requires_grad;
  return Wrap(std::move(impl));
}

Tensor Tensor::Randn(int rows, int cols, Rng* rng, float stddev,
                     bool requires_grad) {
  CHECK(rng != nullptr);
  Tensor t = Zeros(rows, cols, requires_grad);
  for (auto& v : t.mutable_data()) v = rng->Normal(0.0f, stddev);
  return t;
}

Tensor Tensor::Xavier(int fan_in, int fan_out, Rng* rng, bool requires_grad) {
  CHECK(rng != nullptr);
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  Tensor t = Zeros(fan_in, fan_out, requires_grad);
  for (auto& v : t.mutable_data()) {
    v = (2.0f * rng->UniformFloat() - 1.0f) * limit;
  }
  return t;
}

Tensor Tensor::OneHot(const std::vector<int>& labels, int num_classes) {
  Tensor t = Zeros(static_cast<int>(labels.size()), num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    CHECK_GE(labels[i], 0);
    CHECK_LT(labels[i], num_classes);
    t.at(static_cast<int>(i), labels[i]) = 1.0f;
  }
  return t;
}

void Tensor::ZeroGrad() {
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor Tensor::Detach() const {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows();
  impl->cols = cols();
  impl->data = AcquireBuffer(impl_->data.size());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  impl->requires_grad = false;
  return Wrap(std::move(impl));
}

Tensor Tensor::Clone() const {
  Tensor t = Detach();
  t.set_requires_grad(requires_grad());
  return t;
}

std::vector<float> Tensor::Row(int r) const {
  DCHECK_GE(r, 0);
  DCHECK_LT(r, rows());
  const float* begin = impl_->data.data() + static_cast<size_t>(r) * cols();
  return std::vector<float>(begin, begin + cols());
}

float Tensor::Norm() const {
  double total = 0.0;
  for (float v : impl_->data) total += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(total));
}

bool Tensor::AllFinite() const {
  if (!defined()) return true;
  for (float v : impl_->data) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

bool Tensor::RowFinite(int r) const {
  DCHECK_GE(r, 0);
  DCHECK_LT(r, rows());
  const float* row = impl_->data.data() + static_cast<size_t>(r) * cols();
  for (int c = 0; c < cols(); ++c) {
    if (!std::isfinite(row[c])) return false;
  }
  return true;
}

std::string Tensor::ToString(int max_values) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor(" << rows() << "x" << cols() << ")[";
  const int n = static_cast<int>(std::min<int64_t>(size(), max_values));
  for (int i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << impl_->data[i];
  }
  if (size() > max_values) out << ", ...";
  out << "]";
  return out.str();
}

TensorImplPtr MakeResultImpl(int rows, int cols,
                             std::vector<TensorImplPtr> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->rows = rows;
  impl->cols = cols;
  // `data` is left empty: the only caller (FinishOp in tensor/ops.cc)
  // installs the already-computed, pool-acquired output buffer.
  impl->requires_grad = false;
  for (const auto& parent : parents) {
    if (parent && parent->requires_grad) {
      impl->requires_grad = true;
      break;
    }
  }
  impl->parents = std::move(parents);
  return impl;
}

}  // namespace gp
