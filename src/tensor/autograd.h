// Reverse-mode automatic differentiation over the Tensor graph.

#ifndef GRAPHPROMPTER_TENSOR_AUTOGRAD_H_
#define GRAPHPROMPTER_TENSOR_AUTOGRAD_H_

#include "tensor/tensor.h"

namespace gp {

// Runs backpropagation from `root`, which must be a scalar (1x1) tensor.
// Seeds d(root)/d(root) = 1 and accumulates gradients into every reachable
// tensor. Leaf tensors created with requires_grad keep their .grad(); call
// ZeroGrad() (or optimizer.ZeroGrad()) between steps, since gradients
// accumulate.
void Backward(const Tensor& root);

// Same, but seeds the root gradient with `seed` (must match root's shape).
void BackwardWithSeed(const Tensor& root, const std::vector<float>& seed);

// RAII guard that disables graph construction inside its scope. Ops still
// compute values but record no parents / backward functions; useful for
// inference paths (kNN retrieval, cache updates) where gradients are never
// needed.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

// True when graph construction is enabled (no NoGradGuard active).
bool GradEnabled();

}  // namespace gp

#endif  // GRAPHPROMPTER_TENSOR_AUTOGRAD_H_
