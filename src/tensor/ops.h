// Differentiable tensor operations.
//
// Every function returns a new Tensor. When autograd is enabled (see
// NoGradGuard) and any input requires a gradient, the result records a
// backward function so Backward() can propagate through it.
//
// Broadcasting for binary elementwise ops: the second operand may be
//   - the same shape as the first,
//   - a 1 x C row vector (broadcast down the rows),
//   - an R x 1 column vector (broadcast across the columns), or
//   - a 1 x 1 scalar.

#ifndef GRAPHPROMPTER_TENSOR_OPS_H_
#define GRAPHPROMPTER_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace gp {

// ---------------------------------------------------------------- arithmetic

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
// Elementwise division a / b (same broadcast rules); b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Neg(const Tensor& a);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);

// Matrix product: (R x K) * (K x C) -> (R x C).
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);

// --------------------------------------------------------------- activations

Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
// Natural log; inputs are clamped to >= eps for stability.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);

// Row-wise softmax / log-softmax (numerically stabilised).
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);

// Mean cross-entropy of row-wise logits against integer labels; returns a
// scalar (1x1). Gradient flows to `logits` only.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels);

// ---------------------------------------------------------------- structure

// Concatenates along columns: (R x C1), (R x C2) -> (R x C1+C2).
Tensor ConcatCols(const Tensor& a, const Tensor& b);
// Concatenates along rows; all inputs must share the column count.
Tensor ConcatRows(const std::vector<Tensor>& parts);
// result[i] = a[index[i]]; rows may repeat. Backward scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int>& index);
// result has `num_rows` rows; result[index[i]] += src[i]. Backward gathers.
Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& index,
                      int num_rows);
// Contiguous row slice [start, start+count).
Tensor SliceRows(const Tensor& a, int start, int count);
// Scales row i of `a` by scalar weights[i]; `weights` is R x 1.
Tensor RowScale(const Tensor& a, const Tensor& weights);

// ---------------------------------------------------------------- reductions

Tensor SumAll(const Tensor& a);   // 1 x 1
Tensor MeanAll(const Tensor& a);  // 1 x 1
Tensor SumRows(const Tensor& a);  // 1 x C (sum over rows)
Tensor MeanRows(const Tensor& a);
Tensor SumCols(const Tensor& a);  // R x 1 (sum over columns)

// L2-normalises each row: y_i = x_i / max(||x_i||, eps).
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-8f);

// Inverted dropout: scales surviving activations by 1/(1-p). Identity when
// `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training);

// ------------------------------------------------------------- segment ops

// Softmax over groups of rows: rows i with equal segment[i] form one softmax.
// `a` must be R x 1. Used for graph attention over variable-degree nodes.
Tensor SegmentSoftmax(const Tensor& a, const std::vector<int>& segment,
                      int num_segments);

// Per-segment mean of rows: result[s] = mean over {i : segment[i]==s} of
// src[i]; empty segments yield zero rows.
Tensor SegmentMeanRows(const Tensor& src, const std::vector<int>& segment,
                       int num_segments);

// ------------------------------------------------------- non-grad utilities

// Index of the max entry of each row.
std::vector<int> ArgmaxRows(const Tensor& a);
// Row-wise max value.
std::vector<float> RowMax(const Tensor& a);
// Cosine similarity between two equal-length vectors.
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);
float EuclideanDistance(const std::vector<float>& a,
                        const std::vector<float>& b);
float ManhattanDistance(const std::vector<float>& a,
                        const std::vector<float>& b);

}  // namespace gp

#endif  // GRAPHPROMPTER_TENSOR_OPS_H_
