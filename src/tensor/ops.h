// Differentiable tensor operations.
//
// Every function returns a new Tensor. When autograd is enabled (see
// NoGradGuard) and any input requires a gradient, the result records a
// backward function so Backward() can propagate through it.
//
// Broadcasting for binary elementwise ops: the second operand may be
//   - the same shape as the first,
//   - a 1 x C row vector (broadcast down the rows),
//   - an R x 1 column vector (broadcast across the columns), or
//   - a 1 x 1 scalar.

#ifndef GRAPHPROMPTER_TENSOR_OPS_H_
#define GRAPHPROMPTER_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace gp {

// ---------------------------------------------------------------- arithmetic

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
// Elementwise division a / b (same broadcast rules); b must be nonzero.
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Neg(const Tensor& a);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);

// Matrix product: (R x K) * (K x C) -> (R x C).
Tensor MatMul(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);

// --------------------------------------------------------------- activations

Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float negative_slope = 0.2f);
Tensor Tanh(const Tensor& a);
Tensor Exp(const Tensor& a);
// Natural log; inputs are clamped to >= eps for stability.
Tensor Log(const Tensor& a, float eps = 1e-12f);
Tensor Square(const Tensor& a);

// Row-wise softmax / log-softmax (numerically stabilised).
Tensor Softmax(const Tensor& a);
Tensor LogSoftmax(const Tensor& a);

// Mean cross-entropy of row-wise logits against integer labels; returns a
// scalar (1x1). Gradient flows to `logits` only.
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels);

// ---------------------------------------------------------------- structure

// Concatenates along columns: (R x C1), (R x C2) -> (R x C1+C2).
Tensor ConcatCols(const Tensor& a, const Tensor& b);
// Concatenates along rows; all inputs must share the column count.
Tensor ConcatRows(const std::vector<Tensor>& parts);
// result[i] = a[index[i]]; rows may repeat. Backward scatter-adds.
Tensor GatherRows(const Tensor& a, const std::vector<int>& index);
// result has `num_rows` rows; result[index[i]] += src[i]. Backward gathers.
Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& index,
                      int num_rows);
// Contiguous row slice [start, start+count).
Tensor SliceRows(const Tensor& a, int start, int count);
// Scales row i of `a` by scalar weights[i]; `weights` is R x 1.
Tensor RowScale(const Tensor& a, const Tensor& weights);

// ---------------------------------------------------------------- fused ops
//
// Each fused op computes exactly what the equivalent chain of primitive
// ops computes — same per-element floating-point operations in the same
// order — without materialising the intermediate tensors. DESIGN.md §9
// states the contract: fusion may never change FP summation order, so a
// fused pipeline is bitwise identical to the unfused one.

// Fuses ScatterAddRows(RowScale(GatherRows(x, src), w), dst, num_rows):
// result[dst[e]] += x[src[e]] * w[e], edges in order. `edge_weight` may be
// undefined, meaning unit weights (no multiply is performed, matching the
// unfused chain without the RowScale).
Tensor GatherScaleScatterSum(const Tensor& x, const std::vector<int>& src,
                             const std::vector<int>& dst, int num_rows,
                             const Tensor& edge_weight);

// Fuses the whole weighted-mean message-passing readout
//   Div(ScatterAddRows(RowScale(GatherRows(x, src), w), dst, n),
//       AddScalar(ScatterAddRows(w_or_ones, dst, n), eps))
// used by the GNN convolutions. Undefined `edge_weight` = unit weights
// (and no per-message multiply).
Tensor GatherScaleScatterMean(const Tensor& x, const std::vector<int>& src,
                              const std::vector<int>& dst, int num_rows,
                              const Tensor& edge_weight, float eps);

// Fuses ScatterAddRows(RowScale(src_rows, weights), dst, num_rows) where
// src_rows is already per-edge (no gather): result[dst[e]] += src_rows[e]
// * weights[e].
Tensor RowScaleScatterAdd(const Tensor& src_rows, const Tensor& weights,
                          const std::vector<int>& dst, int num_rows);

// Fuses Relu(Add(MatMul(x, weight), bias)); `bias` (1 x C) may be
// undefined for bias-free layers. Uses the same blocked GEMM kernel as
// MatMul, so the result is bitwise identical to the unfused chain.
Tensor LinearRelu(const Tensor& x, const Tensor& weight, const Tensor& bias);

// Fuses Div(a, AddScalar(b, s)): out = a / (b + s), same broadcast rules
// as Div.
Tensor AddScalarDiv(const Tensor& a, const Tensor& b, float s);

// Thread-cached all-ones column (rows x 1). Callers must treat the result
// as read-only: the same impl is shared until a different row count is
// requested. Replaces per-call Tensor::Full(rows, 1, 1.0f) in hot loops.
Tensor CachedOnesColumn(int rows);

// ---------------------------------------------------------------- reductions

Tensor SumAll(const Tensor& a);   // 1 x 1
Tensor MeanAll(const Tensor& a);  // 1 x 1
Tensor SumRows(const Tensor& a);  // 1 x C (sum over rows)
Tensor MeanRows(const Tensor& a);
Tensor SumCols(const Tensor& a);  // R x 1 (sum over columns)

// L2-normalises each row: y_i = x_i / max(||x_i||, eps).
Tensor RowL2Normalize(const Tensor& a, float eps = 1e-8f);

// Inverted dropout: scales surviving activations by 1/(1-p). Identity when
// `training` is false or p == 0.
Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training);

// ------------------------------------------------------------- segment ops

// Softmax over groups of rows: rows i with equal segment[i] form one softmax.
// `a` must be R x 1. Used for graph attention over variable-degree nodes.
Tensor SegmentSoftmax(const Tensor& a, const std::vector<int>& segment,
                      int num_segments);

// Per-segment mean of rows: result[s] = mean over {i : segment[i]==s} of
// src[i]; empty segments yield zero rows.
Tensor SegmentMeanRows(const Tensor& src, const std::vector<int>& segment,
                       int num_segments);

// ------------------------------------------------------- non-grad utilities

// Index of the max entry of each row.
std::vector<int> ArgmaxRows(const Tensor& a);
// Row-wise max value.
std::vector<float> RowMax(const Tensor& a);
// Cosine similarity between two equal-length vectors.
float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b);
float EuclideanDistance(const std::vector<float>& a,
                        const std::vector<float>& b);
float ManhattanDistance(const std::vector<float>& a,
                        const std::vector<float>& b);

namespace internal {

// Bench/test hook for the cache-blocked GEMM micro-kernel behind MatMul
// and LinearRelu: out += a (rows x inner) * b (inner x cols), accumulating
// each out element in ascending-k order. `skip_zeros` toggles the
// zero-operand skip so bench_micro_ops can quantify its cost on dense
// inputs against its win on one-hot inputs (see README "Memory & kernels").
void GemmAccumulate(const float* a, const float* b, float* out, int rows,
                    int inner, int cols, bool skip_zeros = true);

// AVX2 variant of the blocked GEMM row kernel (tensor/gemm_avx2.cc),
// dispatched behind MatMul/LinearRelu when Avx2Enabled(). The panel update
// vectorizes over the j (output-column) axis only — an elementwise
// mul-then-add per lane, never a cross-lane reduction — and deliberately
// avoids FMA contraction, so each out element still accumulates its
// ascending-k products with scalar-identical rounding: this kernel is
// bitwise identical to the scalar micro-kernel (pinned by
// tests/simd_kernels_test.cc and, transitively, tests/fused_ops_test.cc
// and the golden pins, which hold at any simd level).
void GemmRowsAvx2(const float* a, const float* b, float* out,
                  int64_t row_begin, int64_t row_end, int inner, int cols,
                  bool skip_zeros);

}  // namespace internal

}  // namespace gp

#endif  // GRAPHPROMPTER_TENSOR_OPS_H_
