// AVX2 blocked-GEMM row kernel (declared in tensor/ops.h, dispatched from
// tensor/ops.cc when Avx2Enabled()).
//
// Bitwise-identity contract: this mirrors GemmRows in ops.cc exactly —
// same k-blocking, same ascending-k accumulation per output element. The
// only change is that the innermost panel update
//     panel[j] += av * brow[j]
// runs 8 j-lanes at a time. That axis is elementwise (each panel[j] is an
// independent accumulator), and the update is an explicit mul THEN add —
// compiled without FMA (target("avx2") only), so the intermediate product
// is rounded to float exactly like the scalar expression. Every output
// element therefore sees the identical sequence of IEEE operations and the
// result matches the scalar micro-kernel (and the naive i-k-j loop) bit
// for bit. DESIGN.md §9/§10.

#include <algorithm>
#include <cstdint>

#include "tensor/ops.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GP_HAVE_AVX2_TARGET 1
#include <immintrin.h>
#else
#define GP_HAVE_AVX2_TARGET 0
#endif

namespace gp {
namespace internal {

namespace {
// Must match ops.cc's blocking so the two paths share cache behavior; the
// bitwise contract holds at any tile size regardless.
constexpr int kGemmPanel = 128;
constexpr int kGemmKBlock = 256;
}  // namespace

#if GP_HAVE_AVX2_TARGET

__attribute__((target("avx2")))
void GemmRowsAvx2(const float* a, const float* b, float* out,
                  int64_t row_begin, int64_t row_end, int inner, int cols,
                  bool skip_zeros) {
  alignas(32) float panel[kGemmPanel];
  for (int kk = 0; kk < inner; kk += kGemmKBlock) {
    const int kend = std::min(inner, kk + kGemmKBlock);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + static_cast<size_t>(i) * inner;
      float* orow = out + static_cast<size_t>(i) * cols;
      for (int jj = 0; jj < cols; jj += kGemmPanel) {
        const int width = std::min<int>(kGemmPanel, cols - jj);
        std::copy_n(orow + jj, width, panel);
        for (int k = kk; k < kend; ++k) {
          const float av = arow[k];
          if (skip_zeros && av == 0.0f) continue;
          const float* brow = b + static_cast<size_t>(k) * cols + jj;
          const __m256 vav = _mm256_set1_ps(av);
          int j = 0;
          for (; j + 8 <= width; j += 8) {
            const __m256 prod = _mm256_mul_ps(vav, _mm256_loadu_ps(brow + j));
            _mm256_store_ps(panel + j,
                            _mm256_add_ps(_mm256_load_ps(panel + j), prod));
          }
          for (; j < width; ++j) panel[j] += av * brow[j];
        }
        std::copy_n(panel, width, orow + jj);
      }
    }
  }
}

#else  // !GP_HAVE_AVX2_TARGET

// Unreachable on non-x86 (Avx2Enabled() is always false there), but the
// symbol must exist: plain scalar mirror of GemmRows.
void GemmRowsAvx2(const float* a, const float* b, float* out,
                  int64_t row_begin, int64_t row_end, int inner, int cols,
                  bool skip_zeros) {
  float panel[kGemmPanel];
  for (int kk = 0; kk < inner; kk += kGemmKBlock) {
    const int kend = std::min(inner, kk + kGemmKBlock);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + static_cast<size_t>(i) * inner;
      float* orow = out + static_cast<size_t>(i) * cols;
      for (int jj = 0; jj < cols; jj += kGemmPanel) {
        const int width = std::min<int>(kGemmPanel, cols - jj);
        std::copy_n(orow + jj, width, panel);
        for (int k = kk; k < kend; ++k) {
          const float av = arow[k];
          if (skip_zeros && av == 0.0f) continue;
          const float* brow = b + static_cast<size_t>(k) * cols + jj;
          for (int j = 0; j < width; ++j) panel[j] += av * brow[j];
        }
        std::copy_n(panel, width, orow + jj);
      }
    }
  }
}

#endif  // GP_HAVE_AVX2_TARGET

}  // namespace internal
}  // namespace gp
