#include "tensor/autograd.h"

#include <unordered_set>
#include <vector>

namespace gp {
namespace {

// Grad mode is per-thread: concurrent evaluations (e.g. the serving
// worker pool) each scope their own NoGradGuard without racing.
thread_local bool g_grad_enabled = true;

// Iterative post-order DFS producing a topological order of the autograd
// graph (parents appear before children in `order`).
void TopologicalSort(TensorImpl* root, std::vector<TensorImpl*>* order) {
  std::unordered_set<TensorImpl*> visited;
  // Stack of (node, next-parent-index).
  std::vector<std::pair<TensorImpl*, size_t>> stack;
  stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, next] = stack.back();
    if (next < node->parents.size()) {
      TensorImpl* parent = node->parents[next++].get();
      if (parent != nullptr && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order->push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Backward(const Tensor& root) {
  CHECK_EQ(root.size(), 1);
  BackwardWithSeed(root, {1.0f});
}

void BackwardWithSeed(const Tensor& root, const std::vector<float>& seed) {
  CHECK(root.defined());
  CHECK_EQ(static_cast<int64_t>(seed.size()), root.size());
  std::vector<TensorImpl*> order;
  TopologicalSort(root.raw(), &order);

  root.raw()->EnsureGrad();
  for (size_t i = 0; i < seed.size(); ++i) root.raw()->grad[i] += seed[i];

  // `order` is post-order (parents first); walk it backwards so each node's
  // gradient is complete before it pushes into its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn && !node->grad.empty()) {
      node->backward_fn(*node);
    }
  }
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool GradEnabled() { return g_grad_enabled; }

}  // namespace gp
