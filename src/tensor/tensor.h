// A small dense float32 matrix type with reverse-mode automatic
// differentiation, replacing libtorch for this reproduction.
//
// Tensors are 2-D (rows x cols), stored row-major. A Tensor is a cheap
// value-semantic handle onto a shared TensorImpl node; operations defined in
// tensor/ops.h build a computation graph, and Backward() (tensor/autograd.h)
// propagates gradients to every node with requires_grad set.

#ifndef GRAPHPROMPTER_TENSOR_TENSOR_H_
#define GRAPHPROMPTER_TENSOR_TENSOR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace gp {

struct TensorImpl;
using TensorImplPtr = std::shared_ptr<TensorImpl>;

// The shared node: data, (lazily allocated) gradient, and the autograd edge
// back to its parents. Storage lives behind the buffer pool
// (tensor/buffer_pool.h): the destructor recycles both vectors so op
// outputs freed mid-episode are reused instead of hitting the heap.
struct TensorImpl {
  int rows = 0;
  int cols = 0;
  std::vector<float> data;
  std::vector<float> grad;  // empty until gradients are needed
  bool requires_grad = false;

  // Autograd: parents this value was computed from and the function that
  // accumulates `grad` into the parents' grads.
  std::vector<TensorImplPtr> parents;
  std::function<void(TensorImpl&)> backward_fn;

  TensorImpl() = default;
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;
  ~TensorImpl();  // returns data and grad to the buffer pool

  int64_t Size() const { return static_cast<int64_t>(rows) * cols; }
  void EnsureGrad();  // zeroed, pool-backed allocation on first use
};

// Value-semantic handle to a TensorImpl.
class Tensor {
 public:
  // An empty (null) tensor; defined() is false.
  Tensor() = default;

  // Factory constructors. `requires_grad` marks the tensor as a leaf
  // parameter whose gradient should be retained by Backward().
  static Tensor Zeros(int rows, int cols, bool requires_grad = false);
  static Tensor Full(int rows, int cols, float value,
                     bool requires_grad = false);
  static Tensor FromData(int rows, int cols, std::vector<float> data,
                         bool requires_grad = false);
  // I.i.d. normal entries: mean 0, given stddev.
  static Tensor Randn(int rows, int cols, Rng* rng, float stddev = 1.0f,
                      bool requires_grad = false);
  // Xavier/Glorot-uniform initialisation for weight matrices.
  static Tensor Xavier(int fan_in, int fan_out, Rng* rng,
                       bool requires_grad = false);
  // One-hot rows: result[i][labels[i]] = 1.
  static Tensor OneHot(const std::vector<int>& labels, int num_classes);

  bool defined() const { return impl_ != nullptr; }
  int rows() const { return impl_->rows; }
  int cols() const { return impl_->cols; }
  int64_t size() const { return impl_->Size(); }
  bool requires_grad() const { return impl_->requires_grad; }
  void set_requires_grad(bool value) { impl_->requires_grad = value; }

  // Element access (bounds-checked in debug builds).
  float at(int r, int c) const {
    DCHECK_GE(r, 0);
    DCHECK_LT(r, rows());
    DCHECK_GE(c, 0);
    DCHECK_LT(c, cols());
    return impl_->data[static_cast<size_t>(r) * cols() + c];
  }
  float& at(int r, int c) {
    DCHECK_GE(r, 0);
    DCHECK_LT(r, rows());
    DCHECK_GE(c, 0);
    DCHECK_LT(c, cols());
    return impl_->data[static_cast<size_t>(r) * cols() + c];
  }

  // Scalar value of a 1x1 tensor.
  float item() const {
    CHECK_EQ(size(), 1);
    return impl_->data[0];
  }

  const std::vector<float>& data() const { return impl_->data; }
  std::vector<float>& mutable_data() { return impl_->data; }
  const std::vector<float>& grad() const { return impl_->grad; }
  std::vector<float>& mutable_grad() {
    impl_->EnsureGrad();
    return impl_->grad;
  }

  // Clears this tensor's gradient buffer (keeps allocation).
  void ZeroGrad();

  // Returns a detached copy that shares no autograd history (fresh leaf).
  Tensor Detach() const;

  // Deep copy of values (no autograd history).
  Tensor Clone() const;

  // Extracts row `r` as a std::vector (no autograd).
  std::vector<float> Row(int r) const;

  // Frobenius norm of the values (no autograd).
  float Norm() const;

  // True when every element is finite (no NaN/Inf). An undefined tensor is
  // vacuously finite. Used by the fault-tolerance validation paths.
  bool AllFinite() const;

  // True when every element of row `r` is finite.
  bool RowFinite(int r) const;

  // Debug string "Tensor(RxC)[v0, v1, ...]" (truncated).
  std::string ToString(int max_values = 8) const;

  TensorImplPtr impl() const { return impl_; }
  TensorImpl* raw() const { return impl_.get(); }

  // Wraps an existing impl (used by ops).
  static Tensor Wrap(TensorImplPtr impl) {
    Tensor t;
    t.impl_ = std::move(impl);
    return t;
  }

 private:
  TensorImplPtr impl_;
};

// Creates a result impl for an op with the given parents; requires_grad is
// inherited (true if any parent requires grad). The data buffer is left
// empty — the caller moves the computed output in.
TensorImplPtr MakeResultImpl(int rows, int cols,
                             std::vector<TensorImplPtr> parents);

}  // namespace gp

#endif  // GRAPHPROMPTER_TENSOR_TENSOR_H_
