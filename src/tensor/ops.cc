#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tensor/autograd.h"
#include "tensor/buffer_pool.h"
#include "util/cpuid.h"
#include "util/parallel.h"

namespace gp {
namespace {

// Minimum scalar operations per ParallelFor chunk: small tensors stay on
// the serial path (pool dispatch costs more than the loop), and chunks are
// sized so dispatch overhead amortises. Grain depends only on the op
// shape, never the thread count, so chunking — and with it every result —
// is identical at any pool size.
constexpr int64_t kMinChunkWork = 1 << 15;

// Runs fn(first, last) over [0, count) in fixed chunks carrying at least
// kMinChunkWork scalar ops each (`unit_work` = ops per iteration).
// Ranges under two chunks' worth of work run serially inline.
template <typename Fn>
void ParallelRange(int64_t count, int64_t unit_work, const Fn& fn) {
  unit_work = std::max<int64_t>(unit_work, 1);
  if (count * unit_work < 2 * kMinChunkWork) {
    if (count > 0) fn(int64_t{0}, count);
    return;
  }
  const int64_t grain = std::max<int64_t>(1, kMinChunkWork / unit_work);
  ParallelFor(0, count, grain, fn);
}

// How the second operand of a binary op maps onto the first.
enum class Broadcast { kSame, kRow, kCol, kScalar };

Broadcast BroadcastModeOf(const Tensor& a, const Tensor& b) {
  if (b.rows() == 1 && b.cols() == 1) return Broadcast::kScalar;
  if (b.rows() == a.rows() && b.cols() == a.cols()) return Broadcast::kSame;
  if (b.rows() == 1 && b.cols() == a.cols()) return Broadcast::kRow;
  if (b.cols() == 1 && b.rows() == a.rows()) return Broadcast::kCol;
  LOG(FATAL) << "incompatible shapes for broadcast: " << a.rows() << "x"
             << a.cols() << " vs " << b.rows() << "x" << b.cols();
  return Broadcast::kSame;
}

// Index into the (possibly broadcast) second operand.
inline size_t BIndex(Broadcast mode, int r, int c, int cols) {
  switch (mode) {
    case Broadcast::kSame:
      return static_cast<size_t>(r) * cols + c;
    case Broadcast::kRow:
      return static_cast<size_t>(c);
    case Broadcast::kCol:
      return static_cast<size_t>(r);
    case Broadcast::kScalar:
      return 0;
  }
  return 0;
}

// ------------------------------------------------------------ blocked GEMM
//
// Cache-blocked micro-kernel behind MatMul and LinearRelu: computes
// out[i,:] += A[i,:] * B for rows [row_begin, row_end), tiling the k
// dimension into L2-sized blocks of B rows and the j dimension into a
// small stack-resident accumulator panel that stays in L1/registers.
//
// FP contract (DESIGN.md §9): each out[i][j] accumulates strictly in
// ascending k — kk blocks ascend and k ascends within a block — so the
// result is bitwise identical to the naive i-k-j loop at any tile size.
//
// The `av == 0.0f` skip is deliberate: one-hot/label matrices are a
// first-class workload here (prompt label encodings), and the skip elides
// the whole panel update for zero operands. bench_micro_ops pins its cost
// on dense inputs against its win on one-hot inputs; see README
// "Memory & kernels" for the measured justification.
constexpr int kGemmPanel = 128;    // j-panel width in floats (512 B)
constexpr int kGemmKBlock = 256;   // B rows per k block (panel*block ~ L2)

template <bool kSkipZeros>
void GemmRows(const float* a, const float* b, float* out, int64_t row_begin,
              int64_t row_end, int inner, int cols) {
  float panel[kGemmPanel];
  for (int kk = 0; kk < inner; kk += kGemmKBlock) {
    const int kend = std::min(inner, kk + kGemmKBlock);
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + static_cast<size_t>(i) * inner;
      float* orow = out + static_cast<size_t>(i) * cols;
      for (int jj = 0; jj < cols; jj += kGemmPanel) {
        const int width = std::min<int>(kGemmPanel, cols - jj);
        std::copy_n(orow + jj, width, panel);
        for (int k = kk; k < kend; ++k) {
          const float av = arow[k];
          if (kSkipZeros && av == 0.0f) continue;
          const float* brow = b + static_cast<size_t>(k) * cols + jj;
          for (int j = 0; j < width; ++j) panel[j] += av * brow[j];
        }
        std::copy_n(panel, width, orow + jj);
      }
    }
  }
}

// Routes to the AVX2 panel kernel (tensor/gemm_avx2.cc) when dispatch says
// so; both paths are bitwise identical (see ops.h), so the choice is pure
// throughput.
template <bool kSkipZeros>
inline void GemmRowsDispatch(const float* a, const float* b, float* out,
                             int64_t row_begin, int64_t row_end, int inner,
                             int cols) {
  if (Avx2Enabled()) {
    internal::GemmRowsAvx2(a, b, out, row_begin, row_end, inner, cols,
                           kSkipZeros);
    return;
  }
  GemmRows<kSkipZeros>(a, b, out, row_begin, row_end, inner, cols);
}

// Builds the result tensor; records the backward function only when autograd
// is enabled and some parent needs a gradient.
Tensor FinishOp(int rows, int cols, std::vector<float> data,
                std::vector<TensorImplPtr> parents,
                std::function<void(TensorImpl&)> backward_fn) {
  bool build_graph = GradEnabled();
  if (build_graph) {
    bool any = false;
    for (const auto& p : parents) any = any || (p && p->requires_grad);
    build_graph = any;
  }
  if (!build_graph) {
    return Tensor::FromData(rows, cols, std::move(data));
  }
  TensorImplPtr impl = MakeResultImpl(rows, cols, std::move(parents));
  impl->data = std::move(data);
  impl->backward_fn = std::move(backward_fn);
  return Tensor::Wrap(std::move(impl));
}

inline bool WantsGrad(const TensorImplPtr& p) {
  return p && p->requires_grad;
}

// Accumulates `g` (rows x cols) into `out`, which has the broadcast
// operand's shape, reducing over the broadcast dimension(s). Element order
// is fixed (row-major, rows outer) so the reduction is deterministic.
void ReduceBroadcastInto(const std::vector<float>& g, int rows, int cols,
                         Broadcast mode, float* out) {
  switch (mode) {
    case Broadcast::kSame:
      ParallelRange(static_cast<int64_t>(g.size()), 1,
                    [&](int64_t first, int64_t last) {
                      for (int64_t i = first; i < last; ++i) {
                        out[i] += g[i];
                      }
                    });
      break;
    case Broadcast::kRow:
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          out[c] += g[static_cast<size_t>(r) * cols + c];
        }
      }
      break;
    case Broadcast::kCol:
      for (int r = 0; r < rows; ++r) {
        for (int c = 0; c < cols; ++c) {
          out[r] += g[static_cast<size_t>(r) * cols + c];
        }
      }
      break;
    case Broadcast::kScalar: {
      float total = 0.0f;
      for (float v : g) total += v;
      out[0] += total;
      break;
    }
  }
}

// Adds `g` into the gradient of the broadcast operand `b`.
void ReduceIntoBroadcast(const std::vector<float>& g, int rows, int cols,
                         Broadcast mode, TensorImpl* b) {
  b->EnsureGrad();
  ReduceBroadcastInto(g, rows, cols, mode, b->grad.data());
}

// Generic elementwise unary op: value(v) and derivative expressed with the
// input value x and the output value y.
template <typename ValueFn, typename GradFn>
Tensor UnaryOp(const Tensor& a, ValueFn value_fn, GradFn grad_fn) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* in = a.data().data();
  ParallelRange(static_cast<int64_t>(out.size()), 1,
                [&](int64_t first, int64_t last) {
                  for (int64_t i = first; i < last; ++i) {
                    out[i] = value_fn(in[i]);
                  }
                });
  auto pa = a.impl();
  return FinishOp(rows, cols, std::move(out), {pa},
                  [pa, grad_fn](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    ParallelRange(
                        static_cast<int64_t>(node.grad.size()), 1,
                        [&](int64_t first, int64_t last) {
                          for (int64_t i = first; i < last; ++i) {
                            pa->grad[i] += node.grad[i] *
                                           grad_fn(pa->data[i], node.data[i]);
                          }
                        });
                  });
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  const Broadcast mode = BroadcastModeOf(a, b);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        out[i] = adata[i] + bdata[BIndex(mode, r, c, cols)];
      }
    }
  });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(rows, cols, std::move(out), {pa, pb},
                  [pa, pb, mode, rows, cols](TensorImpl& node) {
                    if (WantsGrad(pa)) {
                      pa->EnsureGrad();
                      ParallelRange(static_cast<int64_t>(node.grad.size()), 1,
                                    [&](int64_t first, int64_t last) {
                                      for (int64_t i = first; i < last; ++i) {
                                        pa->grad[i] += node.grad[i];
                                      }
                                    });
                    }
                    if (WantsGrad(pb)) {
                      ReduceIntoBroadcast(node.grad, rows, cols, mode,
                                          pb.get());
                    }
                  });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  const Broadcast mode = BroadcastModeOf(a, b);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        out[i] = adata[i] - bdata[BIndex(mode, r, c, cols)];
      }
    }
  });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(rows, cols, std::move(out), {pa, pb},
                  [pa, pb, mode, rows, cols](TensorImpl& node) {
                    if (WantsGrad(pa)) {
                      pa->EnsureGrad();
                      ParallelRange(static_cast<int64_t>(node.grad.size()), 1,
                                    [&](int64_t first, int64_t last) {
                                      for (int64_t i = first; i < last; ++i) {
                                        pa->grad[i] += node.grad[i];
                                      }
                                    });
                    }
                    if (WantsGrad(pb)) {
                      std::vector<float> neg = AcquireBuffer(node.grad.size());
                      for (size_t i = 0; i < neg.size(); ++i) {
                        neg[i] = -node.grad[i];
                      }
                      ReduceIntoBroadcast(neg, rows, cols, mode, pb.get());
                      ReleaseBuffer(std::move(neg));
                    }
                  });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  const Broadcast mode = BroadcastModeOf(a, b);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        out[i] = adata[i] * bdata[BIndex(mode, r, c, cols)];
      }
    }
  });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa, pb},
      [pa, pb, mode, rows, cols](TensorImpl& node) {
        if (WantsGrad(pa)) {
          pa->EnsureGrad();
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              for (int c = 0; c < cols; ++c) {
                const size_t i = static_cast<size_t>(r) * cols + c;
                pa->grad[i] +=
                    node.grad[i] * pb->data[BIndex(mode, r, c, cols)];
              }
            }
          });
        }
        if (WantsGrad(pb)) {
          std::vector<float> scaled = AcquireBuffer(node.grad.size());
          ParallelRange(static_cast<int64_t>(scaled.size()), 1,
                        [&](int64_t first, int64_t last) {
                          for (int64_t i = first; i < last; ++i) {
                            scaled[i] = node.grad[i] * pa->data[i];
                          }
                        });
          ReduceIntoBroadcast(scaled, rows, cols, mode, pb.get());
          ReleaseBuffer(std::move(scaled));
        }
      });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  const Broadcast mode = BroadcastModeOf(a, b);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        out[i] = adata[i] / bdata[BIndex(mode, r, c, cols)];
      }
    }
  });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa, pb},
      [pa, pb, mode, rows, cols](TensorImpl& node) {
        if (WantsGrad(pa)) {
          pa->EnsureGrad();
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              for (int c = 0; c < cols; ++c) {
                const size_t i = static_cast<size_t>(r) * cols + c;
                pa->grad[i] +=
                    node.grad[i] / pb->data[BIndex(mode, r, c, cols)];
              }
            }
          });
        }
        if (WantsGrad(pb)) {
          std::vector<float> scaled = AcquireBuffer(node.grad.size());
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              for (int c = 0; c < cols; ++c) {
                const size_t i = static_cast<size_t>(r) * cols + c;
                const float bv = pb->data[BIndex(mode, r, c, cols)];
                scaled[i] = -node.grad[i] * pa->data[i] / (bv * bv);
              }
            }
          });
          ReduceIntoBroadcast(scaled, rows, cols, mode, pb.get());
          ReleaseBuffer(std::move(scaled));
        }
      });
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(
      a, [](float v) { return -v; }, [](float, float) { return -1.0f; });
}

Tensor Scale(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float v) { return v * s; }, [s](float, float) { return s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return UnaryOp(
      a, [s](float v) { return v + s; }, [](float, float) { return 1.0f; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.cols(), b.rows());
  const int rows = a.rows();
  const int inner = a.cols();
  const int cols = b.cols();
  std::vector<float> out = AcquireZeroedBuffer(static_cast<size_t>(rows) * cols);
  // Output rows are disjoint, so row chunks parallelise without changing
  // any result; within a chunk the blocked kernel keeps ascending-k
  // accumulation per element (see GemmRows above).
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, static_cast<int64_t>(inner) * cols,
                [&](int64_t first, int64_t last) {
                  GemmRowsDispatch<true>(adata, bdata, out.data(), first,
                                         last, inner, cols);
                });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa, pb},
      [pa, pb, rows, inner, cols](TensorImpl& node) {
        if (WantsGrad(pa)) {
          // dA = G * B^T — dA rows are disjoint across row chunks.
          pa->EnsureGrad();
          ParallelRange(
              rows, static_cast<int64_t>(inner) * cols,
              [&](int64_t first, int64_t last) {
                for (int i = static_cast<int>(first); i < last; ++i) {
                  const float* grow =
                      node.grad.data() + static_cast<size_t>(i) * cols;
                  float* darow =
                      pa->grad.data() + static_cast<size_t>(i) * inner;
                  for (int k = 0; k < inner; ++k) {
                    const float* brow =
                        pb->data.data() + static_cast<size_t>(k) * cols;
                    float acc = 0.0f;
                    for (int j = 0; j < cols; ++j) acc += grow[j] * brow[j];
                    darow[k] += acc;
                  }
                }
              });
        }
        if (WantsGrad(pb)) {
          // dB = A^T * G, iterated k-outer so each chunk owns a disjoint
          // band of dB rows. Per dB element the accumulation still runs in
          // ascending i, matching the serial i-outer order bit for bit.
          pb->EnsureGrad();
          ParallelRange(
              inner, static_cast<int64_t>(rows) * cols,
              [&](int64_t first, int64_t last) {
                for (int k = static_cast<int>(first); k < last; ++k) {
                  float* dbrow =
                      pb->grad.data() + static_cast<size_t>(k) * cols;
                  for (int i = 0; i < rows; ++i) {
                    const float av =
                        pa->data[static_cast<size_t>(i) * inner + k];
                    if (av == 0.0f) continue;
                    const float* grow =
                        node.grad.data() + static_cast<size_t>(i) * cols;
                    for (int j = 0; j < cols; ++j) dbrow[j] += av * grow[j];
                  }
                }
              });
        }
      });
}

Tensor Transpose(const Tensor& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out[static_cast<size_t>(c) * rows + r] =
          a.data()[static_cast<size_t>(r) * cols + c];
    }
  }
  auto pa = a.impl();
  return FinishOp(cols, rows, std::move(out), {pa},
                  [pa, rows, cols](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (int r = 0; r < rows; ++r) {
                      for (int c = 0; c < cols; ++c) {
                        pa->grad[static_cast<size_t>(r) * cols + c] +=
                            node.grad[static_cast<size_t>(c) * rows + r];
                      }
                    }
                  });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(
      a,
      [](float v) {
        // Split by sign to avoid overflow in exp.
        if (v >= 0.0f) {
          return 1.0f / (1.0f + std::exp(-v));
        }
        const float e = std::exp(v);
        return e / (1.0f + e);
      },
      [](float, float y) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryOp(
      a, [](float v) { return v > 0.0f ? v : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor LeakyRelu(const Tensor& a, float negative_slope) {
  return UnaryOp(
      a,
      [negative_slope](float v) {
        return v > 0.0f ? v : negative_slope * v;
      },
      [negative_slope](float x, float) {
        return x > 0.0f ? 1.0f : negative_slope;
      });
}

Tensor Tanh(const Tensor& a) {
  return UnaryOp(
      a, [](float v) { return std::tanh(v); },
      [](float, float y) { return 1.0f - y * y; });
}

Tensor Exp(const Tensor& a) {
  return UnaryOp(
      a, [](float v) { return std::exp(v); },
      [](float, float y) { return y; });
}

Tensor Log(const Tensor& a, float eps) {
  return UnaryOp(
      a, [eps](float v) { return std::log(std::max(v, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

Tensor Square(const Tensor& a) {
  return UnaryOp(
      a, [](float v) { return v * v; },
      [](float x, float) { return 2.0f * x; });
}

Tensor Softmax(const Tensor& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  ParallelRange(rows, 4 * cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* in = a.data().data() + static_cast<size_t>(r) * cols;
      float* o = out.data() + static_cast<size_t>(r) * cols;
      float mx = in[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      float total = 0.0f;
      for (int c = 0; c < cols; ++c) {
        o[c] = std::exp(in[c] - mx);
        total += o[c];
      }
      for (int c = 0; c < cols; ++c) o[c] /= total;
    }
  });
  auto pa = a.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa}, [pa, rows, cols](TensorImpl& node) {
        if (!WantsGrad(pa)) return;
        pa->EnsureGrad();
        ParallelRange(rows, 4 * cols, [&](int64_t first, int64_t last) {
          for (int r = static_cast<int>(first); r < last; ++r) {
            const float* y = node.data.data() + static_cast<size_t>(r) * cols;
            const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
            float dot = 0.0f;
            for (int c = 0; c < cols; ++c) dot += y[c] * g[c];
            float* da = pa->grad.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) da[c] += y[c] * (g[c] - dot);
          }
        });
      });
}

Tensor LogSoftmax(const Tensor& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  ParallelRange(rows, 4 * cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* in = a.data().data() + static_cast<size_t>(r) * cols;
      float* o = out.data() + static_cast<size_t>(r) * cols;
      float mx = in[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      float total = 0.0f;
      for (int c = 0; c < cols; ++c) total += std::exp(in[c] - mx);
      const float lse = mx + std::log(total);
      for (int c = 0; c < cols; ++c) o[c] = in[c] - lse;
    }
  });
  auto pa = a.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa}, [pa, rows, cols](TensorImpl& node) {
        if (!WantsGrad(pa)) return;
        pa->EnsureGrad();
        ParallelRange(rows, 4 * cols, [&](int64_t first, int64_t last) {
          for (int r = static_cast<int>(first); r < last; ++r) {
            const float* y = node.data.data() + static_cast<size_t>(r) * cols;
            const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
            float gsum = 0.0f;
            for (int c = 0; c < cols; ++c) gsum += g[c];
            float* da = pa->grad.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) {
              da[c] += g[c] - std::exp(y[c]) * gsum;
            }
          }
        });
      });
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int>& labels) {
  CHECK_EQ(static_cast<size_t>(logits.rows()), labels.size());
  const int rows = logits.rows();
  const int cols = logits.cols();
  // Forward: mean of -log softmax(logits)[i, labels[i]]. Per-row terms are
  // computed in parallel; the mean reduces them serially in row order so
  // the result matches the serial build exactly.
  // `probs` is stashed for the backward pass behind a shared_ptr, so it
  // stays a plain vector (pooled buffers must end life in a TensorImpl or
  // an explicit ReleaseBuffer to keep the live-byte accounting exact).
  std::vector<float> probs(logits.data().size());
  std::vector<float> row_loss = AcquireBuffer(rows);
  ParallelRange(rows, 4 * cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* in = logits.data().data() + static_cast<size_t>(r) * cols;
      float* p = probs.data() + static_cast<size_t>(r) * cols;
      float mx = in[0];
      for (int c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
      float total = 0.0f;
      for (int c = 0; c < cols; ++c) {
        p[c] = std::exp(in[c] - mx);
        total += p[c];
      }
      for (int c = 0; c < cols; ++c) p[c] /= total;
      CHECK_GE(labels[r], 0);
      CHECK_LT(labels[r], cols);
      row_loss[r] = std::log(std::max(p[labels[r]], 1e-12f));
    }
  });
  double loss = 0.0;
  for (int r = 0; r < rows; ++r) loss -= row_loss[r];
  loss /= std::max(rows, 1);
  ReleaseBuffer(std::move(row_loss));
  auto pl = logits.impl();
  auto labels_copy = labels;
  auto probs_ptr = std::make_shared<std::vector<float>>(std::move(probs));
  return FinishOp(
      1, 1, {static_cast<float>(loss)}, {pl},
      [pl, labels_copy, probs_ptr, rows, cols](TensorImpl& node) {
        if (!WantsGrad(pl)) return;
        pl->EnsureGrad();
        const float g = node.grad[0] / static_cast<float>(std::max(rows, 1));
        ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
          for (int r = static_cast<int>(first); r < last; ++r) {
            const float* p = probs_ptr->data() + static_cast<size_t>(r) * cols;
            float* d = pl->grad.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) {
              const float target = (c == labels_copy[r]) ? 1.0f : 0.0f;
              d[c] += g * (p[c] - target);
            }
          }
        });
      });
}

Tensor ConcatCols(const Tensor& a, const Tensor& b) {
  CHECK_EQ(a.rows(), b.rows());
  const int rows = a.rows();
  const int ca = a.cols();
  const int cb = b.cols();
  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(rows) * (ca + cb));
  for (int r = 0; r < rows; ++r) {
    std::copy_n(a.data().data() + static_cast<size_t>(r) * ca, ca,
                out.data() + static_cast<size_t>(r) * (ca + cb));
    std::copy_n(b.data().data() + static_cast<size_t>(r) * cb, cb,
                out.data() + static_cast<size_t>(r) * (ca + cb) + ca);
  }
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(
      rows, ca + cb, std::move(out), {pa, pb},
      [pa, pb, rows, ca, cb](TensorImpl& node) {
        if (WantsGrad(pa)) {
          pa->EnsureGrad();
          for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < ca; ++c) {
              pa->grad[static_cast<size_t>(r) * ca + c] +=
                  node.grad[static_cast<size_t>(r) * (ca + cb) + c];
            }
          }
        }
        if (WantsGrad(pb)) {
          pb->EnsureGrad();
          for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cb; ++c) {
              pb->grad[static_cast<size_t>(r) * cb + c] +=
                  node.grad[static_cast<size_t>(r) * (ca + cb) + ca + c];
            }
          }
        }
      });
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  CHECK(!parts.empty());
  const int cols = parts[0].cols();
  int rows = 0;
  for (const auto& p : parts) {
    CHECK_EQ(p.cols(), cols);
    rows += p.rows();
  }
  std::vector<float> out = AcquireBuffer(static_cast<size_t>(rows) * cols);
  std::vector<TensorImplPtr> parents;
  std::vector<int> offsets;
  int offset = 0;
  for (const auto& p : parts) {
    std::copy(p.data().begin(), p.data().end(),
              out.begin() + static_cast<size_t>(offset) * cols);
    parents.push_back(p.impl());
    offsets.push_back(offset);
    offset += p.rows();
  }
  return FinishOp(
      rows, cols, std::move(out), parents,
      [parents, offsets, cols](TensorImpl& node) {
        for (size_t k = 0; k < parents.size(); ++k) {
          const auto& p = parents[k];
          if (!WantsGrad(p)) continue;
          p->EnsureGrad();
          const size_t base = static_cast<size_t>(offsets[k]) * cols;
          for (size_t i = 0; i < p->data.size(); ++i) {
            p->grad[i] += node.grad[base + i];
          }
        }
      });
}

Tensor GatherRows(const Tensor& a, const std::vector<int>& index) {
  const int cols = a.cols();
  const int rows = static_cast<int>(index.size());
  std::vector<float> out = AcquireBuffer(static_cast<size_t>(rows) * cols);
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      DCHECK_GE(index[r], 0);
      DCHECK_LT(index[r], a.rows());
      std::copy_n(a.data().data() + static_cast<size_t>(index[r]) * cols,
                  cols, out.data() + static_cast<size_t>(r) * cols);
    }
  });
  auto pa = a.impl();
  auto index_copy = index;
  return FinishOp(rows, cols, std::move(out), {pa},
                  [pa, index_copy, cols](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (size_t r = 0; r < index_copy.size(); ++r) {
                      const float* g = node.grad.data() + r * cols;
                      float* d = pa->grad.data() +
                                 static_cast<size_t>(index_copy[r]) * cols;
                      for (int c = 0; c < cols; ++c) d[c] += g[c];
                    }
                  });
}

Tensor ScatterAddRows(const Tensor& src, const std::vector<int>& index,
                      int num_rows) {
  CHECK_EQ(static_cast<size_t>(src.rows()), index.size());
  const int cols = src.cols();
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(num_rows) * cols);
  for (int r = 0; r < src.rows(); ++r) {
    DCHECK_GE(index[r], 0);
    DCHECK_LT(index[r], num_rows);
    const float* s = src.data().data() + static_cast<size_t>(r) * cols;
    float* o = out.data() + static_cast<size_t>(index[r]) * cols;
    for (int c = 0; c < cols; ++c) o[c] += s[c];
  }
  auto ps = src.impl();
  auto index_copy = index;
  return FinishOp(num_rows, cols, std::move(out), {ps},
                  [ps, index_copy, cols](TensorImpl& node) {
                    if (!WantsGrad(ps)) return;
                    ps->EnsureGrad();
                    for (size_t r = 0; r < index_copy.size(); ++r) {
                      const float* g = node.grad.data() +
                                       static_cast<size_t>(index_copy[r]) * cols;
                      float* d = ps->grad.data() + r * cols;
                      for (int c = 0; c < cols; ++c) d[c] += g[c];
                    }
                  });
}

Tensor SliceRows(const Tensor& a, int start, int count) {
  CHECK_GE(start, 0);
  CHECK_GE(count, 0);
  CHECK_LE(start + count, a.rows());
  const int cols = a.cols();
  std::vector<float> out =
      AcquireBuffer(static_cast<size_t>(count) * cols);
  std::copy(a.data().begin() + static_cast<size_t>(start) * cols,
            a.data().begin() + static_cast<size_t>(start + count) * cols,
            out.begin());
  auto pa = a.impl();
  return FinishOp(count, cols, std::move(out), {pa},
                  [pa, start, cols](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    const size_t base = static_cast<size_t>(start) * cols;
                    for (size_t i = 0; i < node.grad.size(); ++i) {
                      pa->grad[base + i] += node.grad[i];
                    }
                  });
}

Tensor RowScale(const Tensor& a, const Tensor& weights) {
  CHECK_EQ(weights.rows(), a.rows());
  CHECK_EQ(weights.cols(), 1);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float w = weights.data()[r];
      const float* in = a.data().data() + static_cast<size_t>(r) * cols;
      float* o = out.data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) o[c] = in[c] * w;
    }
  });
  auto pa = a.impl();
  auto pw = weights.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa, pw},
      [pa, pw, rows, cols](TensorImpl& node) {
        if (WantsGrad(pa)) {
          pa->EnsureGrad();
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              const float w = pw->data[r];
              const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
              float* d = pa->grad.data() + static_cast<size_t>(r) * cols;
              for (int c = 0; c < cols; ++c) d[c] += g[c] * w;
            }
          });
        }
        if (WantsGrad(pw)) {
          pw->EnsureGrad();
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
              const float* x = pa->data.data() + static_cast<size_t>(r) * cols;
              float acc = 0.0f;
              for (int c = 0; c < cols; ++c) acc += g[c] * x[c];
              pw->grad[r] += acc;
            }
          });
        }
      });
}

// ---------------------------------------------------------------- fused ops
//
// See ops.h and DESIGN.md §9 for the fusion contract. The helpers below
// perform the same per-element FP operations in the same order as the
// unfused GatherRows → RowScale → ScatterAddRows chains: the intermediate
// per-edge values in those chains are single products (or copies)
// accumulated from zero-initialised buffers, so eliding the intermediates
// changes nothing bit for bit.

namespace {

// out[dst[e]] += x[src[e]] * w[e], edges in ascending order. `src` may be
// null (edge e reads row e of x directly); `w` may be null (unit weights —
// no multiply is performed, matching the unfused chain without its
// RowScale node).
void FusedScatterForward(const float* x, int x_rows, const int* src,
                         const float* w, const int* dst, int num_edges,
                         int num_rows, int cols, float* out) {
  for (int e = 0; e < num_edges; ++e) {
    const int srow = src ? src[e] : e;
    DCHECK_GE(srow, 0);
    DCHECK_LT(srow, x_rows);
    DCHECK_GE(dst[e], 0);
    DCHECK_LT(dst[e], num_rows);
    const float* s = x + static_cast<size_t>(srow) * cols;
    float* o = out + static_cast<size_t>(dst[e]) * cols;
    if (w != nullptr) {
      const float we = w[e];
      for (int c = 0; c < cols; ++c) o[c] += s[c] * we;
    } else {
      for (int c = 0; c < cols; ++c) o[c] += s[c];
    }
  }
}

// Backward core: d_x[src[e]] += g[dst[e]] * w[e] and
// d_w[e] += <g[dst[e]], x[src[e]]>. d_x and d_w are disjoint, and each
// element of either receives its additions in ascending edge order, so the
// per-edge interleaving here matches the two-pass unfused backward
// element for element.
void FusedScatterBackward(const float* g, const float* x, const int* src,
                          const float* w, const int* dst, int num_edges,
                          int cols, float* d_x, float* d_w) {
  for (int e = 0; e < num_edges; ++e) {
    const size_t srow = static_cast<size_t>(src ? src[e] : e) * cols;
    const float* grow = g + static_cast<size_t>(dst[e]) * cols;
    if (d_x != nullptr) {
      float* d = d_x + srow;
      if (w != nullptr) {
        const float we = w[e];
        for (int c = 0; c < cols; ++c) d[c] += grow[c] * we;
      } else {
        for (int c = 0; c < cols; ++c) d[c] += grow[c];
      }
    }
    if (d_w != nullptr) {
      const float* xs = x + srow;
      float acc = 0.0f;
      for (int c = 0; c < cols; ++c) acc += grow[c] * xs[c];
      d_w[e] += acc;
    }
  }
}

}  // namespace

Tensor GatherScaleScatterSum(const Tensor& x, const std::vector<int>& src,
                             const std::vector<int>& dst, int num_rows,
                             const Tensor& edge_weight) {
  CHECK_EQ(src.size(), dst.size());
  const int cols = x.cols();
  const int num_edges = static_cast<int>(src.size());
  const bool weighted = edge_weight.defined();
  if (weighted) {
    CHECK_EQ(edge_weight.rows(), num_edges);
    CHECK_EQ(edge_weight.cols(), 1);
  }
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(num_rows) * cols);
  FusedScatterForward(x.data().data(), x.rows(), src.data(),
                      weighted ? edge_weight.data().data() : nullptr,
                      dst.data(), num_edges, num_rows, cols, out.data());
  auto px = x.impl();
  auto pw = weighted ? edge_weight.impl() : TensorImplPtr();
  auto src_copy = std::make_shared<std::vector<int>>(src);
  auto dst_copy = std::make_shared<std::vector<int>>(dst);
  return FinishOp(
      num_rows, cols, std::move(out), {px, pw},
      [px, pw, src_copy, dst_copy, cols](TensorImpl& node) {
        const bool want_x = WantsGrad(px);
        const bool want_w = WantsGrad(pw);
        if (!want_x && !want_w) return;
        if (want_x) px->EnsureGrad();
        if (want_w) pw->EnsureGrad();
        FusedScatterBackward(node.grad.data(), px->data.data(),
                             src_copy->data(),
                             pw ? pw->data.data() : nullptr, dst_copy->data(),
                             static_cast<int>(src_copy->size()), cols,
                             want_x ? px->grad.data() : nullptr,
                             want_w ? pw->grad.data() : nullptr);
      });
}

Tensor GatherScaleScatterMean(const Tensor& x, const std::vector<int>& src,
                              const std::vector<int>& dst, int num_rows,
                              const Tensor& edge_weight, float eps) {
  CHECK_EQ(src.size(), dst.size());
  const int cols = x.cols();
  const int num_edges = static_cast<int>(src.size());
  const bool weighted = edge_weight.defined();
  if (weighted) {
    CHECK_EQ(edge_weight.rows(), num_edges);
    CHECK_EQ(edge_weight.cols(), 1);
  }
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(num_rows) * cols);
  const float* wd = weighted ? edge_weight.data().data() : nullptr;
  FusedScatterForward(x.data().data(), x.rows(), src.data(), wd, dst.data(),
                      num_edges, num_rows, cols, out.data());
  // Denominator: per-destination weight totals accumulated from zero in
  // edge order, then + eps last — the same order as the unfused
  // AddScalar(ScatterAddRows(w_or_ones, dst, n), eps). Plain vector: it is
  // stashed for backward.
  std::vector<float> denom(static_cast<size_t>(num_rows), 0.0f);
  for (int e = 0; e < num_edges; ++e) {
    denom[dst[e]] += weighted ? wd[e] : 1.0f;
  }
  for (int r = 0; r < num_rows; ++r) denom[r] += eps;
  const bool build_graph =
      GradEnabled() && (x.requires_grad() ||
                        (weighted && edge_weight.requires_grad()));
  // The un-divided sums are the Div numerator; backward needs them, so
  // copy before dividing in place (graph builds only — inference pays
  // nothing).
  std::shared_ptr<std::vector<float>> sums_ptr;
  if (build_graph) {
    sums_ptr = std::make_shared<std::vector<float>>(out.begin(), out.end());
  }
  ParallelRange(num_rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float d = denom[r];
      float* o = out.data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) o[c] = o[c] / d;
    }
  });
  auto px = x.impl();
  auto pw = weighted ? edge_weight.impl() : TensorImplPtr();
  auto src_copy = std::make_shared<std::vector<int>>(src);
  auto dst_copy = std::make_shared<std::vector<int>>(dst);
  auto denom_ptr = std::make_shared<std::vector<float>>(std::move(denom));
  return FinishOp(
      num_rows, cols, std::move(out), {px, pw},
      [px, pw, src_copy, dst_copy, sums_ptr, denom_ptr, num_rows,
       cols](TensorImpl& node) {
        const bool want_x = WantsGrad(px);
        const bool want_w = WantsGrad(pw);
        if (!want_x && !want_w) return;
        const std::vector<float>& denom = *denom_ptr;
        // Div backward, numerator side: d_sums = g / denom (kCol
        // broadcast), landing in the scatter-sum node's (zero-initialised)
        // grad in the unfused graph.
        std::vector<float> d_sums = AcquireBuffer(node.grad.size());
        ParallelRange(num_rows, cols, [&](int64_t first, int64_t last) {
          for (int r = static_cast<int>(first); r < last; ++r) {
            const float d = denom[r];
            const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
            float* o = d_sums.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) o[c] = g[c] / d;
          }
        });
        if (want_w) {
          // Div backward, denominator side, reduced over columns (kCol),
          // then through AddScalar (identity) and the weight-sum scatter.
          // The unfused graph applies this contribution to the edge
          // weights BEFORE the RowScale dot term (reverse-topo order), so
          // it runs first here too.
          const std::vector<float>& sums = *sums_ptr;
          std::vector<float> d_wsum = AcquireZeroedBuffer(num_rows);
          for (int r = 0; r < num_rows; ++r) {
            const float d = denom[r];
            const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
            const float* s = sums.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) {
              d_wsum[r] += -g[c] * s[c] / (d * d);
            }
          }
          pw->EnsureGrad();
          for (size_t e = 0; e < dst_copy->size(); ++e) {
            pw->grad[e] += d_wsum[(*dst_copy)[e]];
          }
          ReleaseBuffer(std::move(d_wsum));
        }
        if (want_x) px->EnsureGrad();
        FusedScatterBackward(d_sums.data(), px->data.data(),
                             src_copy->data(),
                             pw ? pw->data.data() : nullptr, dst_copy->data(),
                             static_cast<int>(src_copy->size()), cols,
                             want_x ? px->grad.data() : nullptr,
                             want_w ? pw->grad.data() : nullptr);
        ReleaseBuffer(std::move(d_sums));
      });
}

Tensor RowScaleScatterAdd(const Tensor& src_rows, const Tensor& weights,
                          const std::vector<int>& dst, int num_rows) {
  CHECK_EQ(static_cast<size_t>(src_rows.rows()), dst.size());
  CHECK_EQ(weights.rows(), src_rows.rows());
  CHECK_EQ(weights.cols(), 1);
  const int cols = src_rows.cols();
  const int num_edges = static_cast<int>(dst.size());
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(num_rows) * cols);
  FusedScatterForward(src_rows.data().data(), src_rows.rows(),
                      /*src=*/nullptr, weights.data().data(), dst.data(),
                      num_edges, num_rows, cols, out.data());
  auto ps = src_rows.impl();
  auto pw = weights.impl();
  auto dst_copy = std::make_shared<std::vector<int>>(dst);
  return FinishOp(
      num_rows, cols, std::move(out), {ps, pw},
      [ps, pw, dst_copy, cols](TensorImpl& node) {
        const bool want_s = WantsGrad(ps);
        const bool want_w = WantsGrad(pw);
        if (!want_s && !want_w) return;
        if (want_s) ps->EnsureGrad();
        if (want_w) pw->EnsureGrad();
        FusedScatterBackward(node.grad.data(), ps->data.data(),
                             /*src=*/nullptr, pw->data.data(),
                             dst_copy->data(),
                             static_cast<int>(dst_copy->size()), cols,
                             want_s ? ps->grad.data() : nullptr,
                             want_w ? pw->grad.data() : nullptr);
      });
}

Tensor LinearRelu(const Tensor& x, const Tensor& weight, const Tensor& bias) {
  CHECK_EQ(x.cols(), weight.rows());
  const int rows = x.rows();
  const int inner = x.cols();
  const int cols = weight.cols();
  const bool use_bias = bias.defined();
  if (use_bias) {
    CHECK_EQ(bias.rows(), 1);
    CHECK_EQ(bias.cols(), cols);
  }
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(rows) * cols);
  const float* xd = x.data().data();
  const float* wd = weight.data().data();
  const float* bd = use_bias ? bias.data().data() : nullptr;
  ParallelRange(rows, static_cast<int64_t>(inner) * cols,
                [&](int64_t first, int64_t last) {
                  GemmRowsDispatch<true>(xd, wd, out.data(), first, last,
                                         inner, cols);
                  // Bias branch hoisted out of the element loop so both
                  // epilogues stay straight-line vectorisable code.
                  for (int64_t i = first; i < last; ++i) {
                    float* o = out.data() + static_cast<size_t>(i) * cols;
                    if (use_bias) {
                      for (int j = 0; j < cols; ++j) {
                        const float z = o[j] + bd[j];
                        o[j] = z > 0.0f ? z : 0.0f;
                      }
                    } else {
                      for (int j = 0; j < cols; ++j) {
                        o[j] = o[j] > 0.0f ? o[j] : 0.0f;
                      }
                    }
                  }
                });
  auto px = x.impl();
  auto pw = weight.impl();
  auto pb = use_bias ? bias.impl() : TensorImplPtr();
  return FinishOp(
      rows, cols, std::move(out), {px, pw, pb},
      [px, pw, pb, rows, inner, cols](TensorImpl& node) {
        const bool want_x = WantsGrad(px);
        const bool want_w = WantsGrad(pw);
        const bool want_b = WantsGrad(pb);
        if (!want_x && !want_w && !want_b) return;
        // Relu mask applied to the incoming grad. y > 0 iff the
        // pre-activation was > 0, and the multiply-by-mask form (not a
        // select) reproduces the unfused Relu backward bit for bit,
        // including NaN/Inf gradient propagation.
        std::vector<float> gm = AcquireBuffer(node.grad.size());
        ParallelRange(static_cast<int64_t>(gm.size()), 1,
                      [&](int64_t first, int64_t last) {
                        for (int64_t i = first; i < last; ++i) {
                          gm[i] = node.grad[i] *
                                  (node.data[i] > 0.0f ? 1.0f : 0.0f);
                        }
                      });
        if (want_b) {
          // Bias reduce runs before the GEMM grads, as in the unfused
          // graph (Add backward precedes MatMul backward).
          pb->EnsureGrad();
          for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
              pb->grad[c] += gm[static_cast<size_t>(r) * cols + c];
            }
          }
        }
        if (want_x) {
          // dX = Gm * W^T — same loops as MatMul backward.
          px->EnsureGrad();
          ParallelRange(
              rows, static_cast<int64_t>(inner) * cols,
              [&](int64_t first, int64_t last) {
                for (int i = static_cast<int>(first); i < last; ++i) {
                  const float* grow =
                      gm.data() + static_cast<size_t>(i) * cols;
                  float* darow =
                      px->grad.data() + static_cast<size_t>(i) * inner;
                  for (int k = 0; k < inner; ++k) {
                    const float* brow =
                        pw->data.data() + static_cast<size_t>(k) * cols;
                    float acc = 0.0f;
                    for (int j = 0; j < cols; ++j) acc += grow[j] * brow[j];
                    darow[k] += acc;
                  }
                }
              });
        }
        if (want_w) {
          // dW = X^T * Gm, k-outer with the zero-operand skip — same loops
          // as MatMul backward.
          pw->EnsureGrad();
          ParallelRange(
              inner, static_cast<int64_t>(rows) * cols,
              [&](int64_t first, int64_t last) {
                for (int k = static_cast<int>(first); k < last; ++k) {
                  float* dwrow =
                      pw->grad.data() + static_cast<size_t>(k) * cols;
                  for (int i = 0; i < rows; ++i) {
                    const float av =
                        px->data[static_cast<size_t>(i) * inner + k];
                    if (av == 0.0f) continue;
                    const float* grow =
                        gm.data() + static_cast<size_t>(i) * cols;
                    for (int j = 0; j < cols; ++j) dwrow[j] += av * grow[j];
                  }
                }
              });
        }
        ReleaseBuffer(std::move(gm));
      });
}

Tensor AddScalarDiv(const Tensor& a, const Tensor& b, float s) {
  const Broadcast mode = BroadcastModeOf(a, b);
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  const float* adata = a.data().data();
  const float* bdata = b.data().data();
  ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      for (int c = 0; c < cols; ++c) {
        const size_t i = static_cast<size_t>(r) * cols + c;
        out[i] = adata[i] / (bdata[BIndex(mode, r, c, cols)] + s);
      }
    }
  });
  auto pa = a.impl();
  auto pb = b.impl();
  return FinishOp(
      rows, cols, std::move(out), {pa, pb},
      [pa, pb, mode, rows, cols, s](TensorImpl& node) {
        if (WantsGrad(pa)) {
          pa->EnsureGrad();
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              for (int c = 0; c < cols; ++c) {
                const size_t i = static_cast<size_t>(r) * cols + c;
                pa->grad[i] += node.grad[i] /
                               (pb->data[BIndex(mode, r, c, cols)] + s);
              }
            }
          });
        }
        if (WantsGrad(pb)) {
          std::vector<float> scaled = AcquireBuffer(node.grad.size());
          ParallelRange(rows, cols, [&](int64_t first, int64_t last) {
            for (int r = static_cast<int>(first); r < last; ++r) {
              for (int c = 0; c < cols; ++c) {
                const size_t i = static_cast<size_t>(r) * cols + c;
                const float bv =
                    pb->data[BIndex(mode, r, c, cols)] + s;
                scaled[i] = -node.grad[i] * pa->data[i] / (bv * bv);
              }
            }
          });
          // In the unfused graph the reduce lands in AddScalar's node grad
          // (zero-initialised) and only the reduced totals flow on into b,
          // so reduce into scratch first to keep per-element add order
          // identical.
          std::vector<float> t_grad = AcquireZeroedBuffer(pb->data.size());
          ReduceBroadcastInto(scaled, rows, cols, mode, t_grad.data());
          ReleaseBuffer(std::move(scaled));
          pb->EnsureGrad();
          for (size_t i = 0; i < pb->grad.size(); ++i) {
            pb->grad[i] += t_grad[i];
          }
          ReleaseBuffer(std::move(t_grad));
        }
      });
}

Tensor CachedOnesColumn(int rows) {
  CHECK_GE(rows, 0);
  // Thread-local so concurrent eval trials never share a mutable impl.
  // Callers treat the tensor as read-only; the cache is replaced only when
  // a different row count is requested.
  thread_local Tensor cache;
  if (!cache.defined() || cache.rows() != rows) {
    cache = Tensor::Full(rows, 1, 1.0f);
  }
  return cache;
}

Tensor SumAll(const Tensor& a) {
  double total = 0.0;
  for (float v : a.data()) total += v;
  auto pa = a.impl();
  return FinishOp(1, 1, {static_cast<float>(total)}, {pa},
                  [pa](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (auto& g : pa->grad) g += node.grad[0];
                  });
}

Tensor MeanAll(const Tensor& a) {
  return Scale(SumAll(a), 1.0f / static_cast<float>(std::max<int64_t>(
                              a.size(), 1)));
}

Tensor SumRows(const Tensor& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireZeroedBuffer(cols);
  for (int r = 0; r < rows; ++r) {
    const float* in = a.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) out[c] += in[c];
  }
  auto pa = a.impl();
  return FinishOp(1, cols, std::move(out), {pa},
                  [pa, rows, cols](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (int r = 0; r < rows; ++r) {
                      float* d = pa->grad.data() + static_cast<size_t>(r) * cols;
                      for (int c = 0; c < cols; ++c) d[c] += node.grad[c];
                    }
                  });
}

Tensor MeanRows(const Tensor& a) {
  return Scale(SumRows(a), 1.0f / static_cast<float>(std::max(a.rows(), 1)));
}

Tensor SumCols(const Tensor& a) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireZeroedBuffer(rows);
  for (int r = 0; r < rows; ++r) {
    const float* in = a.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) out[r] += in[c];
  }
  auto pa = a.impl();
  return FinishOp(rows, 1, std::move(out), {pa},
                  [pa, rows, cols](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (int r = 0; r < rows; ++r) {
                      float* d = pa->grad.data() + static_cast<size_t>(r) * cols;
                      for (int c = 0; c < cols; ++c) d[c] += node.grad[r];
                    }
                  });
}

Tensor RowL2Normalize(const Tensor& a, float eps) {
  const int rows = a.rows();
  const int cols = a.cols();
  std::vector<float> out = AcquireBuffer(a.data().size());
  std::vector<float> norms(rows);
  ParallelRange(rows, 2 * cols, [&](int64_t first, int64_t last) {
    for (int r = static_cast<int>(first); r < last; ++r) {
      const float* in = a.data().data() + static_cast<size_t>(r) * cols;
      double total = 0.0;
      for (int c = 0; c < cols; ++c) {
        total += static_cast<double>(in[c]) * in[c];
      }
      const float norm = std::max(static_cast<float>(std::sqrt(total)), eps);
      norms[r] = norm;
      float* o = out.data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) o[c] = in[c] / norm;
    }
  });
  auto pa = a.impl();
  auto norms_ptr = std::make_shared<std::vector<float>>(std::move(norms));
  return FinishOp(
      rows, cols, std::move(out), {pa},
      [pa, norms_ptr, rows, cols](TensorImpl& node) {
        if (!WantsGrad(pa)) return;
        pa->EnsureGrad();
        ParallelRange(rows, 2 * cols, [&](int64_t first, int64_t last) {
          for (int r = static_cast<int>(first); r < last; ++r) {
            const float* y = node.data.data() + static_cast<size_t>(r) * cols;
            const float* g = node.grad.data() + static_cast<size_t>(r) * cols;
            float dot = 0.0f;
            for (int c = 0; c < cols; ++c) dot += g[c] * y[c];
            const float inv = 1.0f / (*norms_ptr)[r];
            float* d = pa->grad.data() + static_cast<size_t>(r) * cols;
            for (int c = 0; c < cols; ++c) d[c] += (g[c] - dot * y[c]) * inv;
          }
        });
      });
}

Tensor Dropout(const Tensor& a, float p, Rng* rng, bool training) {
  if (!training || p <= 0.0f) return a;
  CHECK(rng != nullptr);
  CHECK_LT(p, 1.0f);
  const float keep = 1.0f - p;
  const float inv_keep = 1.0f / keep;
  std::vector<float> mask(a.data().size());
  std::vector<float> out = AcquireBuffer(a.data().size());
  for (size_t i = 0; i < out.size(); ++i) {
    mask[i] = rng->Bernoulli(keep) ? inv_keep : 0.0f;
    out[i] = a.data()[i] * mask[i];
  }
  auto pa = a.impl();
  auto mask_ptr = std::make_shared<std::vector<float>>(std::move(mask));
  return FinishOp(a.rows(), a.cols(), std::move(out), {pa},
                  [pa, mask_ptr](TensorImpl& node) {
                    if (!WantsGrad(pa)) return;
                    pa->EnsureGrad();
                    for (size_t i = 0; i < node.grad.size(); ++i) {
                      pa->grad[i] += node.grad[i] * (*mask_ptr)[i];
                    }
                  });
}

Tensor SegmentSoftmax(const Tensor& a, const std::vector<int>& segment,
                      int num_segments) {
  CHECK_EQ(a.cols(), 1);
  CHECK_EQ(static_cast<size_t>(a.rows()), segment.size());
  const int rows = a.rows();
  std::vector<float> seg_max(num_segments,
                             -std::numeric_limits<float>::infinity());
  for (int r = 0; r < rows; ++r) {
    DCHECK_GE(segment[r], 0);
    DCHECK_LT(segment[r], num_segments);
    seg_max[segment[r]] = std::max(seg_max[segment[r]], a.data()[r]);
  }
  std::vector<float> out = AcquireBuffer(rows);
  std::vector<float> seg_sum(num_segments, 0.0f);
  for (int r = 0; r < rows; ++r) {
    out[r] = std::exp(a.data()[r] - seg_max[segment[r]]);
    seg_sum[segment[r]] += out[r];
  }
  for (int r = 0; r < rows; ++r) {
    out[r] /= std::max(seg_sum[segment[r]], 1e-12f);
  }
  auto pa = a.impl();
  auto segment_copy = segment;
  return FinishOp(
      rows, 1, std::move(out), {pa},
      [pa, segment_copy, num_segments](TensorImpl& node) {
        if (!WantsGrad(pa)) return;
        pa->EnsureGrad();
        std::vector<float> seg_dot(num_segments, 0.0f);
        for (size_t r = 0; r < segment_copy.size(); ++r) {
          seg_dot[segment_copy[r]] += node.data[r] * node.grad[r];
        }
        for (size_t r = 0; r < segment_copy.size(); ++r) {
          pa->grad[r] +=
              node.data[r] * (node.grad[r] - seg_dot[segment_copy[r]]);
        }
      });
}

Tensor SegmentMeanRows(const Tensor& src, const std::vector<int>& segment,
                       int num_segments) {
  CHECK_EQ(static_cast<size_t>(src.rows()), segment.size());
  const int cols = src.cols();
  std::vector<float> counts(num_segments, 0.0f);
  for (int s : segment) {
    DCHECK_GE(s, 0);
    DCHECK_LT(s, num_segments);
    counts[s] += 1.0f;
  }
  std::vector<float> out =
      AcquireZeroedBuffer(static_cast<size_t>(num_segments) * cols);
  for (int r = 0; r < src.rows(); ++r) {
    const float inv = 1.0f / std::max(counts[segment[r]], 1.0f);
    const float* s = src.data().data() + static_cast<size_t>(r) * cols;
    float* o = out.data() + static_cast<size_t>(segment[r]) * cols;
    for (int c = 0; c < cols; ++c) o[c] += s[c] * inv;
  }
  auto ps = src.impl();
  auto segment_copy = segment;
  auto counts_ptr = std::make_shared<std::vector<float>>(std::move(counts));
  return FinishOp(
      num_segments, cols, std::move(out), {ps},
      [ps, segment_copy, counts_ptr, cols](TensorImpl& node) {
        if (!WantsGrad(ps)) return;
        ps->EnsureGrad();
        for (size_t r = 0; r < segment_copy.size(); ++r) {
          const float inv =
              1.0f / std::max((*counts_ptr)[segment_copy[r]], 1.0f);
          const float* g = node.grad.data() +
                           static_cast<size_t>(segment_copy[r]) * cols;
          float* d = ps->grad.data() + r * cols;
          for (int c = 0; c < cols; ++c) d[c] += g[c] * inv;
        }
      });
}

std::vector<int> ArgmaxRows(const Tensor& a) {
  std::vector<int> out(a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < a.cols(); ++c) {
      if (a.at(r, c) > a.at(r, best)) best = c;
    }
    out[r] = best;
  }
  return out;
}

std::vector<float> RowMax(const Tensor& a) {
  std::vector<float> out(a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    float best = a.at(r, 0);
    for (int c = 1; c < a.cols(); ++c) best = std::max(best, a.at(r, c));
    out[r] = best;
  }
  return out;
}

float CosineSimilarity(const std::vector<float>& a,
                       const std::vector<float>& b) {
  CHECK_EQ(a.size(), b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  if (denom < 1e-12) return 0.0f;
  return static_cast<float>(dot / denom);
}

float EuclideanDistance(const std::vector<float>& a,
                        const std::vector<float>& b) {
  CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return static_cast<float>(std::sqrt(total));
}

float ManhattanDistance(const std::vector<float>& a,
                        const std::vector<float>& b) {
  CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += std::abs(static_cast<double>(a[i]) - b[i]);
  }
  return static_cast<float>(total);
}

namespace internal {

void GemmAccumulate(const float* a, const float* b, float* out, int rows,
                    int inner, int cols, bool skip_zeros) {
  if (skip_zeros) {
    GemmRowsDispatch<true>(a, b, out, 0, rows, inner, cols);
  } else {
    GemmRowsDispatch<false>(a, b, out, 0, rows, inner, cols);
  }
}

}  // namespace internal

}  // namespace gp
