#include "baselines/no_pretrain.h"

#include "baselines/prodigy.h"

namespace gp {

EvalResult EvaluateNoPretrain(const DatasetBundle& dataset,
                              const EvalConfig& eval_config, uint64_t seed) {
  GraphPrompterModel model(ProdigyConfig(dataset.graph.feature_dim(), seed));
  return EvaluateInContext(model, dataset, eval_config);
}

}  // namespace gp
