// NoPretrain baseline (Sec. V-A3): the same architecture as the
// pre-trained models but with randomly initialised weights — the floor the
// in-context methods are measured against.

#ifndef GRAPHPROMPTER_BASELINES_NO_PRETRAIN_H_
#define GRAPHPROMPTER_BASELINES_NO_PRETRAIN_H_

#include <cstdint>

#include "core/graph_prompter.h"

namespace gp {

// Evaluates a freshly initialised (never-trained) Prodigy-architecture
// model on `dataset`.
EvalResult EvaluateNoPretrain(const DatasetBundle& dataset,
                              const EvalConfig& eval_config, uint64_t seed);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_NO_PRETRAIN_H_
