#include "baselines/finetune.h"

#include <algorithm>

#include "nn/linear.h"
#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

EvalResult EvaluateFinetune(const ContrastiveEncoder& encoder,
                            const DatasetBundle& dataset,
                            const EvalConfig& eval_config,
                            const FinetuneConfig& finetune_config) {
  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    // Support set: k random examples per class (frozen embeddings).
    std::vector<int> support_items;
    std::vector<int> support_labels;
    for (int cls = 0; cls < ways; ++cls) {
      std::vector<int> members;
      for (const auto& ex : task.candidates) {
        if (ex.label == cls) members.push_back(ex.item);
      }
      trial_rng.Shuffle(&members);
      const int keep = std::min<int>(eval_config.shots, members.size());
      for (int i = 0; i < keep; ++i) {
        support_items.push_back(members[i]);
        support_labels.push_back(cls);
      }
    }
    Tensor support_emb;
    {
      NoGradGuard no_grad;
      support_emb = encoder.EmbedItems(dataset, support_items, &trial_rng);
    }

    // Train a fresh linear head on the support embeddings.
    Rng head_rng = trial_rng.Fork();
    Linear head(encoder.embedding_dim(), ways, &head_rng);
    Adam optimizer(head.Parameters(), finetune_config.learning_rate, 0.9f,
                   0.999f, 1e-8f, finetune_config.weight_decay);
    for (int step = 0; step < finetune_config.head_steps; ++step) {
      optimizer.ZeroGrad();
      Tensor loss = CrossEntropyWithLogits(head.Forward(support_emb),
                                           support_labels);
      Backward(loss);
      optimizer.Step();
    }

    // Classify the queries.
    NoGradGuard no_grad;
    std::vector<int> query_items, expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      expected.push_back(ex.label);
    }
    Tensor query_emb = encoder.EmbedItems(dataset, query_items, &trial_rng);
    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(ArgmaxRows(head.Forward(query_emb)), expected));
  }
  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  return result;
}

}  // namespace gp
