#include "baselines/contrastive.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {

ContrastiveEncoder::ContrastiveEncoder(int feature_dim, int embedding_dim,
                                       const SamplerConfig& sampler,
                                       uint64_t seed) {
  Rng rng(seed);
  PromptGeneratorConfig config;
  config.gnn.in_dim = feature_dim;
  config.gnn.hidden_dim = embedding_dim;
  config.gnn.out_dim = embedding_dim;
  config.sampler = sampler;
  config.use_reconstruction = false;
  generator_ = std::make_unique<PromptGenerator>(config, &rng);
  RegisterModule("encoder", generator_.get());
}

Tensor ContrastiveEncoder::EmbedItems(const DatasetBundle& dataset,
                                      const std::vector<int>& items, Rng* rng,
                                      const Tensor& feature_offset) const {
  std::vector<Subgraph> subgraphs;
  subgraphs.reserve(items.size());
  for (int item : items) {
    subgraphs.push_back(generator_->SampleForItem(dataset, item, rng));
  }
  return generator_->EmbedSubgraphs(dataset.graph, subgraphs, feature_offset);
}

double PretrainContrastive(ContrastiveEncoder* encoder,
                           const DatasetBundle& dataset,
                           const ContrastivePretrainConfig& config) {
  CHECK(encoder != nullptr);
  Rng rng(config.seed);
  Adam optimizer(encoder->Parameters(), config.learning_rate, 0.9f, 0.999f,
                 1e-8f, config.weight_decay);

  // Pool of train items across all classes.
  std::vector<int> pool;
  for (const auto& items : dataset.train_items_by_class) {
    pool.insert(pool.end(), items.begin(), items.end());
  }
  CHECK_GE(static_cast<int>(pool.size()), config.batch_size);

  double tail_loss = 0.0;
  int tail_count = 0;
  const int tail_start = config.steps - std::max(1, config.steps / 4);

  for (int step = 1; step <= config.steps; ++step) {
    optimizer.ZeroGrad();
    // Batch of random items; two independently sampled subgraph views.
    std::vector<int> batch(config.batch_size);
    for (auto& item : batch) {
      item = pool[rng.UniformInt(pool.size())];
    }
    Tensor z1 = RowL2Normalize(encoder->EmbedItems(dataset, batch, &rng));
    Tensor z2 = RowL2Normalize(encoder->EmbedItems(dataset, batch, &rng));

    // NT-Xent: match each view-1 row to its view-2 counterpart (and
    // symmetrically), against in-batch negatives.
    Tensor logits = Scale(MatMul(z1, Transpose(z2)), 1.0f / config.temperature);
    std::vector<int> diagonal(config.batch_size);
    for (int i = 0; i < config.batch_size; ++i) diagonal[i] = i;
    Tensor loss = Add(CrossEntropyWithLogits(logits, diagonal),
                      CrossEntropyWithLogits(Transpose(logits), diagonal));

    Backward(loss);
    optimizer.ClipGradNorm(config.grad_clip);
    optimizer.Step();

    if (step >= tail_start) {
      tail_loss += loss.item();
      ++tail_count;
    }
  }
  return tail_count > 0 ? tail_loss / tail_count : 0.0;
}

EvalResult EvaluateContrastive(const ContrastiveEncoder& encoder,
                               const DatasetBundle& dataset,
                               const EvalConfig& eval_config) {
  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    NoGradGuard no_grad;
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    // k random support examples per class (random selection, as Prodigy).
    std::vector<int> support_items, support_labels;
    for (int cls = 0; cls < ways; ++cls) {
      std::vector<int> members;
      for (const auto& ex : task.candidates) {
        if (ex.label == cls) members.push_back(ex.item);
      }
      trial_rng.Shuffle(&members);
      const int keep = std::min<int>(eval_config.shots, members.size());
      for (int i = 0; i < keep; ++i) {
        support_items.push_back(members[i]);
        support_labels.push_back(cls);
      }
    }
    Tensor support_emb =
        encoder.EmbedItems(dataset, support_items, &trial_rng);
    // Class centroids.
    Tensor centroids =
        SegmentMeanRows(support_emb, support_labels, ways);

    std::vector<int> query_items, expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      expected.push_back(ex.label);
    }
    Tensor query_emb = encoder.EmbedItems(dataset, query_items, &trial_rng);

    Tensor scores = MatMul(RowL2Normalize(query_emb),
                           Transpose(RowL2Normalize(centroids)));
    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(ArgmaxRows(scores), expected));
  }
  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  return result;
}

}  // namespace gp
