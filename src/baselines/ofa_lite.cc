#include "baselines/ofa_lite.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {
namespace {

// Mean raw feature of `items` per class — the simulated text descriptor.
Tensor DescriptorsFromSupport(const DatasetBundle& dataset,
                              const std::vector<int>& items,
                              const std::vector<int>& labels, int ways) {
  const int dim = dataset.graph.feature_dim();
  Tensor raw = Tensor::Zeros(static_cast<int>(items.size()), dim);
  for (size_t i = 0; i < items.size(); ++i) {
    const auto feat = dataset.ItemRawFeature(items[i]);
    for (int d = 0; d < dim; ++d) raw.at(static_cast<int>(i), d) = feat[d];
  }
  return SegmentMeanRows(raw, labels, ways);
}

}  // namespace

OfaLiteModel::OfaLiteModel(const OfaLiteConfig& config) : config_(config) {
  Rng rng(config.seed);
  encoder_ = std::make_unique<ContrastiveEncoder>(
      config.feature_dim, config.embedding_dim, config.sampler,
      rng.NextUint64());
  RegisterModule("encoder", encoder_.get());
  class_projection_ = std::make_unique<Linear>(config.feature_dim,
                                               config.embedding_dim, &rng);
  RegisterModule("class_projection", class_projection_.get());
}

Tensor OfaLiteModel::ProjectClassNodes(const Tensor& descriptors) const {
  return class_projection_->Forward(descriptors);
}

void PretrainOfaLite(OfaLiteModel* model,
                     const std::vector<const DatasetBundle*>& datasets,
                     const OfaPretrainConfig& config) {
  CHECK(model != nullptr);
  CHECK(!datasets.empty());
  Rng rng(config.seed);
  Adam optimizer(model->Parameters(), config.learning_rate, 0.9f, 0.999f,
                 1e-8f, config.weight_decay);

  EpisodeConfig episode;
  episode.ways = config.ways;
  episode.candidates_per_class = config.shots;
  episode.num_queries = config.queries_per_task;
  episode.queries_from_test = false;

  for (int step = 1; step <= config.steps; ++step) {
    // Round-robin over datasets: the joint training protocol.
    const DatasetBundle& dataset =
        *datasets[step % static_cast<int>(datasets.size())];
    EpisodeSampler sampler(&dataset);
    auto task_or = sampler.Sample(episode, &rng);
    if (!task_or.ok()) continue;
    const FewShotTask& task = *task_or;
    optimizer.ZeroGrad();

    std::vector<int> support_items, support_labels;
    for (const auto& ex : task.candidates) {
      support_items.push_back(ex.item);
      support_labels.push_back(ex.label);
    }
    std::vector<int> query_items, query_labels;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      query_labels.push_back(ex.label);
    }

    Tensor class_nodes = model->ProjectClassNodes(DescriptorsFromSupport(
        dataset, support_items, support_labels, task.ways()));
    Tensor query_emb =
        model->encoder().EmbedItems(dataset, query_items, &rng);
    Tensor scores = Scale(MatMul(RowL2Normalize(query_emb),
                                 Transpose(RowL2Normalize(class_nodes))),
                          model->config().score_temperature);
    Tensor loss = CrossEntropyWithLogits(scores, query_labels);
    Backward(loss);
    optimizer.ClipGradNorm(config.grad_clip);
    optimizer.Step();
  }
}

EvalResult EvaluateOfaLite(const OfaLiteModel& model,
                           const DatasetBundle& dataset,
                           const EvalConfig& eval_config) {
  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    NoGradGuard no_grad;
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    // k support items per class feed the class descriptors.
    std::vector<int> support_items, support_labels;
    for (int cls = 0; cls < ways; ++cls) {
      std::vector<int> members;
      for (const auto& ex : task.candidates) {
        if (ex.label == cls) members.push_back(ex.item);
      }
      trial_rng.Shuffle(&members);
      const int keep = std::min<int>(eval_config.shots, members.size());
      for (int i = 0; i < keep; ++i) {
        support_items.push_back(members[i]);
        support_labels.push_back(cls);
      }
    }
    Tensor class_nodes = model.ProjectClassNodes(DescriptorsFromSupport(
        dataset, support_items, support_labels, ways));

    std::vector<int> query_items, expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      expected.push_back(ex.label);
    }
    Tensor query_emb =
        model.encoder().EmbedItems(dataset, query_items, &trial_rng);
    Tensor scores = MatMul(RowL2Normalize(query_emb),
                           Transpose(RowL2Normalize(class_nodes)));
    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(ArgmaxRows(scores), expected));
  }
  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  return result;
}

}  // namespace gp
