// Contrastive baseline (Sec. V-A3, following You et al. 2020): a GNN
// encoder pre-trained with a self-supervised InfoNCE objective (two
// independently sampled subgraph views of the same item are positives,
// in-batch items are negatives), adapted to in-context learning with a
// hard-coded nearest-class-mean classifier.

#ifndef GRAPHPROMPTER_BASELINES_CONTRASTIVE_H_
#define GRAPHPROMPTER_BASELINES_CONTRASTIVE_H_

#include <memory>

#include "core/graph_prompter.h"
#include "core/prompt_generator.h"

namespace gp {

// A plain subgraph encoder (PromptGenerator without reconstruction).
class ContrastiveEncoder : public Module {
 public:
  ContrastiveEncoder(int feature_dim, int embedding_dim,
                     const SamplerConfig& sampler, uint64_t seed);

  // (num_items x embedding_dim). `feature_offset` (optional (1 x in))
  // supports the prompt-token baseline built on top of this encoder.
  Tensor EmbedItems(const DatasetBundle& dataset,
                    const std::vector<int>& items, Rng* rng,
                    const Tensor& feature_offset = Tensor()) const;

  int embedding_dim() const { return generator_->out_dim(); }
  int feature_dim() const { return generator_->config().gnn.in_dim; }
  PromptGenerator& generator() { return *generator_; }

 private:
  std::unique_ptr<PromptGenerator> generator_;
};

struct ContrastivePretrainConfig {
  int steps = 300;
  int batch_size = 16;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  float temperature = 0.2f;  // InfoNCE temperature
  float grad_clip = 5.0f;
  uint64_t seed = 21;
};

// Self-supervised pretraining; returns the mean loss of the final quarter
// of training (for smoke-testing convergence).
double PretrainContrastive(ContrastiveEncoder* encoder,
                           const DatasetBundle& dataset,
                           const ContrastivePretrainConfig& config);

// In-context evaluation with the nearest-class-mean rule: k random support
// examples per class define class centroids; queries take the label of the
// most cosine-similar centroid.
EvalResult EvaluateContrastive(const ContrastiveEncoder& encoder,
                               const DatasetBundle& dataset,
                               const EvalConfig& eval_config);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_CONTRASTIVE_H_
