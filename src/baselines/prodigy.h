// Prodigy baseline (Huang et al., NeurIPS 2023) — the paper's primary
// comparison. Architecturally identical to GraphPrompter (Prodigy is the
// substrate GraphPrompter extends) but with every prompt-optimization
// stage disabled: subgraphs are used as sampled (no reconstruction),
// prompts are chosen uniformly at random from the candidate set, and no
// test-time augmentation is applied.

#ifndef GRAPHPROMPTER_BASELINES_PRODIGY_H_
#define GRAPHPROMPTER_BASELINES_PRODIGY_H_

#include <cstdint>

#include "core/graph_prompter.h"

namespace gp {

// The Prodigy configuration: all GraphPrompter stages off, random prompt
// selection on.
GraphPrompterConfig ProdigyConfig(int feature_dim, uint64_t seed);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_PRODIGY_H_
