#include "baselines/prog_lite.h"

#include <algorithm>

#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/logging.h"

namespace gp {
namespace {

// Splits an episode's candidates into (k per class) support arrays.
void PickSupport(const FewShotTask& task, int shots, Rng* rng,
                 std::vector<int>* items, std::vector<int>* labels) {
  for (int cls = 0; cls < task.ways(); ++cls) {
    std::vector<int> members;
    for (const auto& ex : task.candidates) {
      if (ex.label == cls) members.push_back(ex.item);
    }
    rng->Shuffle(&members);
    const int keep = std::min<int>(shots, members.size());
    for (int i = 0; i < keep; ++i) {
      items->push_back(members[i]);
      labels->push_back(cls);
    }
  }
}

}  // namespace

ProgLiteModel::ProgLiteModel(const ProgLiteConfig& config) : config_(config) {
  encoder_ = std::make_unique<ContrastiveEncoder>(
      config.feature_dim, config.embedding_dim, config.sampler, config.seed);
  RegisterModule("encoder", encoder_.get());
  prompt_token_ = RegisterParameter(
      "prompt_token", Tensor::Zeros(1, config.feature_dim));
}

Tensor ProgLiteModel::EmbedWithToken(const DatasetBundle& dataset,
                                     const std::vector<int>& items, Rng* rng,
                                     const Tensor& token) const {
  return encoder_->EmbedItems(dataset, items, rng, token);
}

void PretrainProgLite(ProgLiteModel* model, const DatasetBundle& dataset,
                      const ProgPretrainConfig& config) {
  CHECK(model != nullptr);
  Rng rng(config.seed);
  Adam optimizer(model->Parameters(), config.learning_rate, 0.9f, 0.999f,
                 1e-8f, config.weight_decay);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = config.ways;
  episode.candidates_per_class = config.shots;
  episode.num_queries = config.queries_per_task;
  episode.queries_from_test = false;

  for (int step = 1; step <= config.steps; ++step) {
    auto task_or = sampler.Sample(episode, &rng);
    if (!task_or.ok()) continue;
    const FewShotTask& task = *task_or;
    optimizer.ZeroGrad();

    std::vector<int> support_items, support_labels;
    for (const auto& ex : task.candidates) {
      support_items.push_back(ex.item);
      support_labels.push_back(ex.label);
    }
    std::vector<int> query_items, query_labels;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      query_labels.push_back(ex.label);
    }
    Tensor support_emb = model->EmbedWithToken(dataset, support_items, &rng,
                                               model->prompt_token());
    Tensor query_emb = model->EmbedWithToken(dataset, query_items, &rng,
                                             model->prompt_token());
    Tensor prototypes = SegmentMeanRows(support_emb, support_labels,
                                        task.ways());
    Tensor scores = Scale(MatMul(RowL2Normalize(query_emb),
                                 Transpose(RowL2Normalize(prototypes))),
                          model->config().score_temperature);
    Tensor loss = CrossEntropyWithLogits(scores, query_labels);
    Backward(loss);
    optimizer.ClipGradNorm(config.grad_clip);
    optimizer.Step();
  }
}

EvalResult EvaluateProgLite(const ProgLiteModel& model,
                            const DatasetBundle& dataset,
                            const EvalConfig& eval_config,
                            const ProgTuneConfig& tune_config) {
  EvalResult result;
  Rng rng(eval_config.seed);
  EpisodeSampler sampler(&dataset);

  EpisodeConfig episode;
  episode.ways = eval_config.ways;
  episode.candidates_per_class = eval_config.candidates_per_class;
  episode.num_queries = eval_config.num_queries;

  for (int trial = 0; trial < eval_config.trials; ++trial) {
    Rng trial_rng = rng.Fork();
    auto task_or = sampler.Sample(episode, &trial_rng);
    CHECK_OK(task_or.status());
    const FewShotTask& task = *task_or;
    const int ways = task.ways();

    std::vector<int> support_items, support_labels;
    PickSupport(task, eval_config.shots, &trial_rng, &support_items,
                &support_labels);

    // Prompt tuning: only the (copied) token trains; the encoder stays
    // frozen. Loss = support items classified against support prototypes.
    Tensor token = model.prompt_token().Clone();
    token.set_requires_grad(true);
    Adam optimizer({token}, tune_config.learning_rate);
    for (int step = 0; step < tune_config.tune_steps; ++step) {
      optimizer.ZeroGrad();
      Tensor support_emb =
          model.EmbedWithToken(dataset, support_items, &trial_rng, token);
      Tensor prototypes =
          SegmentMeanRows(support_emb, support_labels, ways);
      Tensor scores = Scale(MatMul(RowL2Normalize(support_emb),
                                   Transpose(RowL2Normalize(prototypes))),
                            model.config().score_temperature);
      Tensor loss = CrossEntropyWithLogits(scores, support_labels);
      Backward(loss);
      optimizer.Step();
    }

    NoGradGuard no_grad;
    Tensor support_emb =
        model.EmbedWithToken(dataset, support_items, &trial_rng, token);
    Tensor prototypes = SegmentMeanRows(support_emb, support_labels, ways);
    std::vector<int> query_items, expected;
    for (const auto& ex : task.queries) {
      query_items.push_back(ex.item);
      expected.push_back(ex.label);
    }
    Tensor query_emb =
        model.EmbedWithToken(dataset, query_items, &trial_rng, token);
    Tensor scores = MatMul(RowL2Normalize(query_emb),
                           Transpose(RowL2Normalize(prototypes)));
    result.trial_accuracy_percent.push_back(
        100.0 * Accuracy(ArgmaxRows(scores), expected));
  }
  result.accuracy_percent = ComputeMeanStd(result.trial_accuracy_percent);
  return result;
}

}  // namespace gp
