// One-For-All (OFA) baseline (Liu et al., ICLR 2024), lite reproduction of
// the low-resource joint variant ("OFA-joint-lr", Sec. V-A3).
//
// OFA describes classes with natural-language text encoded by an LLM and
// inserts the resulting class feature nodes into the prompt graph, training
// one model jointly over all datasets. The LLM is simulated by a
// deterministic class descriptor: the mean raw feature of the class's
// support items (what a text encoder of the class name would correlate
// with), passed through a learned projection. Queries are scored by cosine
// similarity between their subgraph embedding and the projected class
// nodes. The few-shot instability the paper reports arises here the same
// way: with k=3 items the descriptor is a noisy estimate of the class.

#ifndef GRAPHPROMPTER_BASELINES_OFA_LITE_H_
#define GRAPHPROMPTER_BASELINES_OFA_LITE_H_

#include <memory>

#include "baselines/contrastive.h"
#include "nn/linear.h"

namespace gp {

struct OfaLiteConfig {
  int feature_dim = 64;
  int embedding_dim = 64;
  SamplerConfig sampler;
  float score_temperature = 10.0f;
  uint64_t seed = 41;
};

class OfaLiteModel : public Module {
 public:
  explicit OfaLiteModel(const OfaLiteConfig& config);

  const OfaLiteConfig& config() const { return config_; }
  ContrastiveEncoder& encoder() { return *encoder_; }
  const ContrastiveEncoder& encoder() const { return *encoder_; }

  // Projects raw class descriptors ((m x feature_dim)) into embedding
  // space ((m x embedding_dim)).
  Tensor ProjectClassNodes(const Tensor& descriptors) const;

 private:
  OfaLiteConfig config_;
  std::unique_ptr<ContrastiveEncoder> encoder_;
  std::unique_ptr<Linear> class_projection_;
};

struct OfaPretrainConfig {
  int steps = 300;
  int ways = 5;
  int shots = 3;
  int queries_per_task = 4;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  float grad_clip = 5.0f;
  uint64_t seed = 42;
};

// Joint pretraining over several datasets (round-robin episodes) — the
// "trains and evaluates a single model using all datasets simultaneously"
// protocol of OFA-joint-lr.
void PretrainOfaLite(OfaLiteModel* model,
                     const std::vector<const DatasetBundle*>& datasets,
                     const OfaPretrainConfig& config);

// Per trial: class descriptors from the k support items per class, queries
// classified by cosine against the projected class nodes.
EvalResult EvaluateOfaLite(const OfaLiteModel& model,
                           const DatasetBundle& dataset,
                           const EvalConfig& eval_config);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_OFA_LITE_H_
