// All-in-One / ProG baseline (Sun et al., KDD 2023), lite reproduction.
//
// ProG is the paper's representative *Prompt Token* method: a learnable
// prompt vector is added to the input features, meta-initialised during
// pretraining and tuned on the episode's support set at test time. The
// paper reports that in few-shot cross-domain settings this tuning is
// data-starved and unstable (large variance, degradation at high way
// counts) — behaviour this reproduction preserves by construction.

#ifndef GRAPHPROMPTER_BASELINES_PROG_LITE_H_
#define GRAPHPROMPTER_BASELINES_PROG_LITE_H_

#include <memory>

#include "baselines/contrastive.h"

namespace gp {

struct ProgLiteConfig {
  int feature_dim = 64;
  int embedding_dim = 64;
  SamplerConfig sampler;
  float score_temperature = 10.0f;
  uint64_t seed = 31;
};

// Encoder + learnable prompt token.
class ProgLiteModel : public Module {
 public:
  explicit ProgLiteModel(const ProgLiteConfig& config);

  const ProgLiteConfig& config() const { return config_; }
  ContrastiveEncoder& encoder() { return *encoder_; }
  const ContrastiveEncoder& encoder() const { return *encoder_; }
  const Tensor& prompt_token() const { return prompt_token_; }

  // Embeds items with the prompt token injected into the node features.
  Tensor EmbedWithToken(const DatasetBundle& dataset,
                        const std::vector<int>& items, Rng* rng,
                        const Tensor& token) const;

 private:
  ProgLiteConfig config_;
  std::unique_ptr<ContrastiveEncoder> encoder_;
  Tensor prompt_token_;  // (1 x feature_dim)
};

struct ProgPretrainConfig {
  int steps = 300;
  int ways = 5;
  int shots = 3;
  int queries_per_task = 4;
  float learning_rate = 1e-3f;
  float weight_decay = 1e-4f;
  float grad_clip = 5.0f;
  uint64_t seed = 32;
};

// Meta-pretraining: episodic prototype classification through the token.
void PretrainProgLite(ProgLiteModel* model, const DatasetBundle& dataset,
                      const ProgPretrainConfig& config);

struct ProgTuneConfig {
  int tune_steps = 20;         // prompt-tuning steps on the support set
  float learning_rate = 5e-2f;
};

// Per trial: copies the meta-trained token, tunes it on the support set
// (prototype CE), then classifies queries by nearest class prototype.
EvalResult EvaluateProgLite(const ProgLiteModel& model,
                            const DatasetBundle& dataset,
                            const EvalConfig& eval_config,
                            const ProgTuneConfig& tune_config);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_PROG_LITE_H_
