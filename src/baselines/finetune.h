// Finetune baseline (Sec. V-A3, following Hu et al. 2020): the
// contrastively pre-trained encoder is frozen and a linear classification
// head is trained on the episode's labelled support examples — the
// "common practice" adaptation that in-context methods aim to beat without
// any gradient updates.

#ifndef GRAPHPROMPTER_BASELINES_FINETUNE_H_
#define GRAPHPROMPTER_BASELINES_FINETUNE_H_

#include "baselines/contrastive.h"

namespace gp {

struct FinetuneConfig {
  int head_steps = 100;          // gradient steps on the linear head
  float learning_rate = 5e-2f;
  float weight_decay = 1e-4f;
};

// Per trial: embeds k support examples per class with the frozen encoder,
// trains a fresh linear head (embedding_dim -> ways) by cross-entropy, and
// classifies the queries with it.
EvalResult EvaluateFinetune(const ContrastiveEncoder& encoder,
                            const DatasetBundle& dataset,
                            const EvalConfig& eval_config,
                            const FinetuneConfig& finetune_config);

}  // namespace gp

#endif  // GRAPHPROMPTER_BASELINES_FINETUNE_H_
