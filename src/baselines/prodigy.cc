#include "baselines/prodigy.h"

namespace gp {

GraphPrompterConfig ProdigyConfig(int feature_dim, uint64_t seed) {
  GraphPrompterConfig config;
  config.feature_dim = feature_dim;
  config.use_reconstruction = false;
  config.use_selection_layer = false;
  config.use_knn = false;
  config.use_augmenter = false;
  config.random_prompt_selection = true;
  config.seed = seed;
  return config;
}

}  // namespace gp
