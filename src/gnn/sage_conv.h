// GraphSAGE convolution (Hamilton et al. 2017) with support for learned
// edge weights — the paper's GNN_D (Eq. 4) aggregates the reconstructed,
// re-weighted data graph with GraphSAGE.

#ifndef GRAPHPROMPTER_GNN_SAGE_CONV_H_
#define GRAPHPROMPTER_GNN_SAGE_CONV_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace gp {

// h_i' = W_self x_i + W_nbr * weighted_mean_{j->i}(w_ij * x_j).
//
// When `edge_weight` is undefined all edges weigh 1 (plain mean
// aggregation). Gradients flow into the edge weights, which is what lets
// the Prompt Generator's reconstruction MLP train jointly with the GNN.
class SageConv : public Module {
 public:
  SageConv(int in_dim, int out_dim, Rng* rng);

  // x: (N x in). src/dst: directed edges j -> i (message flows src to dst).
  // edge_weight: (E x 1) or undefined.
  Tensor Forward(const Tensor& x, const std::vector<int>& src,
                 const std::vector<int>& dst, const Tensor& edge_weight) const;

  int in_dim() const { return self_->in_features(); }
  int out_dim() const { return self_->out_features(); }

 private:
  std::unique_ptr<Linear> self_;
  std::unique_ptr<Linear> neighbor_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GNN_SAGE_CONV_H_
