#include "gnn/sage_conv.h"

#include "tensor/ops.h"

namespace gp {

SageConv::SageConv(int in_dim, int out_dim, Rng* rng) {
  self_ = std::make_unique<Linear>(in_dim, out_dim, rng);
  neighbor_ = std::make_unique<Linear>(in_dim, out_dim, rng,
                                       /*use_bias=*/false);
  RegisterModule("self", self_.get());
  RegisterModule("neighbor", neighbor_.get());
}

Tensor SageConv::Forward(const Tensor& x, const std::vector<int>& src,
                         const std::vector<int>& dst,
                         const Tensor& edge_weight) const {
  CHECK_EQ(src.size(), dst.size());
  const int num_nodes = x.rows();
  Tensor out = self_->Forward(x);
  if (src.empty()) return out;

  if (edge_weight.defined()) {
    CHECK_EQ(edge_weight.rows(), static_cast<int>(src.size()));
    CHECK_EQ(edge_weight.cols(), 1);
  }
  // Weighted mean over incoming messages, in one fused kernel (no
  // per-edge message matrix or ones column is materialised); epsilon
  // guards isolated nodes / all-zero weights.
  Tensor mean =
      GatherScaleScatterMean(x, src, dst, num_nodes, edge_weight, 1e-6f);
  return Add(out, neighbor_->Forward(mean));
}

}  // namespace gp
