#include "gnn/sage_conv.h"

#include "tensor/ops.h"

namespace gp {

SageConv::SageConv(int in_dim, int out_dim, Rng* rng) {
  self_ = std::make_unique<Linear>(in_dim, out_dim, rng);
  neighbor_ = std::make_unique<Linear>(in_dim, out_dim, rng,
                                       /*use_bias=*/false);
  RegisterModule("self", self_.get());
  RegisterModule("neighbor", neighbor_.get());
}

Tensor SageConv::Forward(const Tensor& x, const std::vector<int>& src,
                         const std::vector<int>& dst,
                         const Tensor& edge_weight) const {
  CHECK_EQ(src.size(), dst.size());
  const int num_nodes = x.rows();
  Tensor out = self_->Forward(x);
  if (src.empty()) return out;

  Tensor messages = GatherRows(x, src);
  Tensor weight_sums;
  if (edge_weight.defined()) {
    CHECK_EQ(edge_weight.rows(), static_cast<int>(src.size()));
    CHECK_EQ(edge_weight.cols(), 1);
    messages = RowScale(messages, edge_weight);
    weight_sums = ScatterAddRows(edge_weight, dst, num_nodes);
  } else {
    Tensor ones = Tensor::Full(static_cast<int>(src.size()), 1, 1.0f);
    weight_sums = ScatterAddRows(ones, dst, num_nodes);
  }
  Tensor sums = ScatterAddRows(messages, dst, num_nodes);
  // Weighted mean; epsilon guards isolated nodes / all-zero weights.
  Tensor mean = Div(sums, AddScalar(weight_sums, 1e-6f));
  return Add(out, neighbor_->Forward(mean));
}

}  // namespace gp
