// Graph Attention Network layer (Veličković et al. 2018), single head.
// Used as the alternative Prompt Generator architecture in Fig. 4, where
// GAT's learned attention replaces the reconstruction layer's edge weights.

#ifndef GRAPHPROMPTER_GNN_GAT_CONV_H_
#define GRAPHPROMPTER_GNN_GAT_CONV_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace gp {

// alpha_ij = segment_softmax_i( LeakyReLU(a_src^T Wx_j + a_dst^T Wx_i) )
// h_i'     = Wx_i + sum_j alpha_ij * w_ij * Wx_j
//
// The external `edge_weight` (if defined) multiplies the attention weights,
// so reconstruction and attention compose when both are enabled.
class GatConv : public Module {
 public:
  GatConv(int in_dim, int out_dim, Rng* rng, float negative_slope = 0.2f);

  Tensor Forward(const Tensor& x, const std::vector<int>& src,
                 const std::vector<int>& dst, const Tensor& edge_weight) const;

  int in_dim() const { return linear_->in_features(); }
  int out_dim() const { return linear_->out_features(); }

 private:
  std::unique_ptr<Linear> linear_;
  Tensor attn_src_;  // (out x 1)
  Tensor attn_dst_;  // (out x 1)
  float negative_slope_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GNN_GAT_CONV_H_
