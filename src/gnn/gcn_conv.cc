#include "gnn/gcn_conv.h"

#include <cmath>

#include "tensor/ops.h"

namespace gp {

GcnConv::GcnConv(int in_dim, int out_dim, Rng* rng) {
  linear_ = std::make_unique<Linear>(in_dim, out_dim, rng);
  RegisterModule("linear", linear_.get());
}

Tensor GcnConv::Forward(const Tensor& x, const std::vector<int>& src,
                        const std::vector<int>& dst,
                        const Tensor& edge_weight) const {
  CHECK_EQ(src.size(), dst.size());
  const int num_nodes = x.rows();

  // Degrees (+1 for the implicit self loop); constants w.r.t. autograd.
  std::vector<float> degree(num_nodes, 1.0f);
  for (int d : dst) degree[d] += 1.0f;

  // Self term: x_i / (d_i + 1).
  std::vector<float> self_coeff(num_nodes);
  for (int i = 0; i < num_nodes; ++i) self_coeff[i] = 1.0f / degree[i];
  Tensor agg = RowScale(x, Tensor::FromData(num_nodes, 1, self_coeff));

  if (!src.empty()) {
    const int num_edges = static_cast<int>(src.size());
    std::vector<float> norm(num_edges);
    for (int e = 0; e < num_edges; ++e) {
      norm[e] = 1.0f / std::sqrt(degree[src[e]] * degree[dst[e]]);
    }
    Tensor coeff = Tensor::FromData(num_edges, 1, std::move(norm));
    if (edge_weight.defined()) {
      CHECK_EQ(edge_weight.rows(), num_edges);
      coeff = Mul(edge_weight, coeff);
    }
    agg = Add(agg, GatherScaleScatterSum(x, src, dst, num_nodes, coeff));
  }
  return linear_->Forward(agg);
}

}  // namespace gp
