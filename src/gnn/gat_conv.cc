#include "gnn/gat_conv.h"

#include "tensor/ops.h"

namespace gp {

GatConv::GatConv(int in_dim, int out_dim, Rng* rng, float negative_slope)
    : negative_slope_(negative_slope) {
  linear_ = std::make_unique<Linear>(in_dim, out_dim, rng);
  RegisterModule("linear", linear_.get());
  attn_src_ = RegisterParameter("attn_src", Tensor::Xavier(out_dim, 1, rng));
  attn_dst_ = RegisterParameter("attn_dst", Tensor::Xavier(out_dim, 1, rng));
}

Tensor GatConv::Forward(const Tensor& x, const std::vector<int>& src,
                        const std::vector<int>& dst,
                        const Tensor& edge_weight) const {
  CHECK_EQ(src.size(), dst.size());
  const int num_nodes = x.rows();
  Tensor h = linear_->Forward(x);
  if (src.empty()) return h;

  // Per-node attention scores, then per-edge logits.
  Tensor score_src = MatMul(h, attn_src_);  // (N x 1)
  Tensor score_dst = MatMul(h, attn_dst_);  // (N x 1)
  Tensor logits = LeakyRelu(
      Add(GatherRows(score_src, src), GatherRows(score_dst, dst)),
      negative_slope_);
  // Softmax over each destination node's incoming edges.
  Tensor alpha = SegmentSoftmax(logits, dst, num_nodes);
  if (edge_weight.defined()) {
    CHECK_EQ(edge_weight.rows(), static_cast<int>(src.size()));
    alpha = Mul(alpha, edge_weight);
  }
  return Add(h, GatherScaleScatterSum(h, src, dst, num_nodes, alpha));
}

}  // namespace gp
