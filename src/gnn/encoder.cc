#include "gnn/encoder.h"

#include "tensor/ops.h"

namespace gp {

const char* GnnArchName(GnnArch arch) {
  switch (arch) {
    case GnnArch::kSage:
      return "GraphSAGE";
    case GnnArch::kGcn:
      return "GCN";
    case GnnArch::kGat:
      return "GAT";
  }
  return "?";
}

GnnEncoder::GnnEncoder(const GnnEncoderConfig& config, Rng* rng)
    : config_(config) {
  CHECK_GE(config.num_layers, 1);
  for (int i = 0; i < config.num_layers; ++i) {
    const int in = (i == 0) ? config.in_dim : config.hidden_dim;
    const int out =
        (i == config.num_layers - 1) ? config.out_dim : config.hidden_dim;
    const std::string name = "conv" + std::to_string(i);
    switch (config.arch) {
      case GnnArch::kSage:
        sage_layers_.push_back(std::make_unique<SageConv>(in, out, rng));
        RegisterModule(name, sage_layers_.back().get());
        break;
      case GnnArch::kGcn:
        gcn_layers_.push_back(std::make_unique<GcnConv>(in, out, rng));
        RegisterModule(name, gcn_layers_.back().get());
        break;
      case GnnArch::kGat:
        gat_layers_.push_back(std::make_unique<GatConv>(in, out, rng));
        RegisterModule(name, gat_layers_.back().get());
        break;
    }
  }
}

Tensor GnnEncoder::ApplyLayer(int layer, const Tensor& x,
                              const std::vector<int>& src,
                              const std::vector<int>& dst,
                              const Tensor& edge_weight) const {
  switch (config_.arch) {
    case GnnArch::kSage:
      return sage_layers_[layer]->Forward(x, src, dst, edge_weight);
    case GnnArch::kGcn:
      return gcn_layers_[layer]->Forward(x, src, dst, edge_weight);
    case GnnArch::kGat:
      return gat_layers_[layer]->Forward(x, src, dst, edge_weight);
  }
  return x;
}

Tensor GnnEncoder::Forward(const Tensor& x, const std::vector<int>& src,
                           const std::vector<int>& dst,
                           const Tensor& edge_weight) const {
  Tensor h = x;
  for (int i = 0; i < config_.num_layers; ++i) {
    h = ApplyLayer(i, h, src, dst, edge_weight);
    if (i + 1 < config_.num_layers) h = Relu(h);
  }
  return h;
}

Tensor GnnEncoder::Readout(const Subgraph& subgraph,
                           const Tensor& node_embeddings) const {
  CHECK(!subgraph.center_local.empty());
  Tensor centers = GatherRows(node_embeddings, subgraph.center_local);
  return MeanRows(centers);
}

}  // namespace gp
