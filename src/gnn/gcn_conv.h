// Graph Convolutional Network layer (Kipf & Welling 2017) with
// symmetric-normalised, optionally re-weighted aggregation.

#ifndef GRAPHPROMPTER_GNN_GCN_CONV_H_
#define GRAPHPROMPTER_GNN_GCN_CONV_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace gp {

// h_i' = W * ( x_i/(d_i+1) + sum_{j->i} w_ij * x_j / sqrt((d_i+1)(d_j+1)) ).
class GcnConv : public Module {
 public:
  GcnConv(int in_dim, int out_dim, Rng* rng);

  Tensor Forward(const Tensor& x, const std::vector<int>& src,
                 const std::vector<int>& dst, const Tensor& edge_weight) const;

  int in_dim() const { return linear_->in_features(); }
  int out_dim() const { return linear_->out_features(); }

 private:
  std::unique_ptr<Linear> linear_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GNN_GCN_CONV_H_
