// GnnEncoder: a configurable stack of message-passing layers producing node
// embeddings, plus the subgraph readout that yields the data-graph embedding
// G_i of Eq. 4.

#ifndef GRAPHPROMPTER_GNN_ENCODER_H_
#define GRAPHPROMPTER_GNN_ENCODER_H_

#include <memory>
#include <string>
#include <vector>

#include "gnn/gat_conv.h"
#include "gnn/gcn_conv.h"
#include "gnn/sage_conv.h"
#include "graph/sampler.h"
#include "nn/module.h"

namespace gp {

// Which convolution the encoder stacks (Fig. 4 compares kSage vs kGat).
enum class GnnArch { kSage, kGcn, kGat };

const char* GnnArchName(GnnArch arch);

struct GnnEncoderConfig {
  GnnArch arch = GnnArch::kSage;
  int in_dim = 64;
  int hidden_dim = 64;
  int out_dim = 64;
  int num_layers = 2;
};

// Stacks `num_layers` convolutions with ReLU in between. All layers accept
// an optional (E x 1) edge-weight tensor, through which the Prompt
// Generator's reconstruction gradients flow.
class GnnEncoder : public Module {
 public:
  GnnEncoder(const GnnEncoderConfig& config, Rng* rng);

  // Returns per-node embeddings (N x out_dim).
  Tensor Forward(const Tensor& x, const std::vector<int>& src,
                 const std::vector<int>& dst, const Tensor& edge_weight) const;

  // Readout: mean of the center-node embeddings -> a single (1 x out_dim)
  // subgraph embedding. For node inputs this is the center node; for edge
  // inputs the mean of head and tail.
  Tensor Readout(const Subgraph& subgraph, const Tensor& node_embeddings) const;

  const GnnEncoderConfig& config() const { return config_; }

 private:
  Tensor ApplyLayer(int layer, const Tensor& x, const std::vector<int>& src,
                    const std::vector<int>& dst,
                    const Tensor& edge_weight) const;

  GnnEncoderConfig config_;
  std::vector<std::unique_ptr<SageConv>> sage_layers_;
  std::vector<std::unique_ptr<GcnConv>> gcn_layers_;
  std::vector<std::unique_ptr<GatConv>> gat_layers_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GNN_ENCODER_H_
