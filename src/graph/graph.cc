#include "graph/graph.h"

#include <cmath>
#include <sstream>

namespace gp {

Status Graph::Validate() const {
  if (num_nodes_ < 0) return InvalidArgumentError("negative node count");
  if (num_relations_ < 1) {
    return InvalidArgumentError("graph needs >= 1 relation");
  }
  // CSR structure.
  if (static_cast<int>(offsets_.size()) != num_nodes_ + 1) {
    return InvalidArgumentError("CSR offsets size mismatch");
  }
  if (!offsets_.empty() &&
      (offsets_.front() != 0 ||
       offsets_.back() != static_cast<int>(adjacency_.size()))) {
    return InvalidArgumentError("CSR offsets do not span the adjacency");
  }
  for (size_t v = 1; v < offsets_.size(); ++v) {
    if (offsets_[v] < offsets_[v - 1]) {
      return InvalidArgumentError("CSR offsets not monotone at node " +
                                  std::to_string(v - 1));
    }
  }
  for (const AdjEntry& entry : adjacency_) {
    if (entry.neighbor < 0 || entry.neighbor >= num_nodes_) {
      return InvalidArgumentError("dangling adjacency neighbor " +
                                  std::to_string(entry.neighbor));
    }
    if (entry.relation < 0 || entry.relation >= num_relations_) {
      return InvalidArgumentError("adjacency relation out of range");
    }
    if (entry.edge_id < 0 ||
        entry.edge_id >= static_cast<int>(edges_.size())) {
      return InvalidArgumentError("adjacency edge id out of range");
    }
  }
  // Edge records.
  for (size_t e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    if (edge.src < 0 || edge.src >= num_nodes_ || edge.dst < 0 ||
        edge.dst >= num_nodes_) {
      return InvalidArgumentError("dangling edge " + std::to_string(e) +
                                  " (" + std::to_string(edge.src) + " -> " +
                                  std::to_string(edge.dst) + ")");
    }
    if (edge.relation < 0 || edge.relation >= num_relations_) {
      return InvalidArgumentError("edge relation out of range at edge " +
                                  std::to_string(e));
    }
  }
  // Labels.
  if (static_cast<int>(node_labels_.size()) != num_nodes_) {
    return InvalidArgumentError("node label count mismatch");
  }
  for (size_t v = 0; v < node_labels_.size(); ++v) {
    if (node_labels_[v] < -1 || node_labels_[v] >= num_node_classes_) {
      return InvalidArgumentError("node " + std::to_string(v) +
                                  " label out of range: " +
                                  std::to_string(node_labels_[v]));
    }
  }
  // Features: shape + finiteness (a NaN feature poisons every embedding
  // computed from the node's neighborhood).
  if (node_features_.defined()) {
    if (node_features_.rows() != num_nodes_) {
      return InvalidArgumentError("feature row count mismatch");
    }
    const std::vector<float>& data = node_features_.data();
    for (size_t i = 0; i < data.size(); ++i) {
      if (!std::isfinite(data[i])) {
        return InvalidArgumentError(
            "non-finite node feature at node " +
            std::to_string(i / node_features_.cols()));
      }
    }
  }
  return Status::Ok();
}

std::string Graph::DebugString() const {
  std::ostringstream out;
  out << "Graph(nodes=" << num_nodes_ << ", edges=" << edges_.size()
      << ", relations=" << num_relations_
      << ", node_classes=" << num_node_classes_
      << ", feature_dim=" << feature_dim() << ")";
  return out.str();
}

}  // namespace gp
