#include "graph/graph.h"

#include <sstream>

namespace gp {

std::string Graph::DebugString() const {
  std::ostringstream out;
  out << "Graph(nodes=" << num_nodes_ << ", edges=" << edges_.size()
      << ", relations=" << num_relations_
      << ", node_classes=" << num_node_classes_
      << ", feature_dim=" << feature_dim() << ")";
  return out.str();
}

}  // namespace gp
