#include "graph/graph_io.h"

#include <cstdint>
#include <fstream>

#include "graph/builder.h"

namespace gp {
namespace {

constexpr uint32_t kMagic = 0x47504752;  // "GPGR"

void WriteU32(std::ofstream& out, uint32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void WriteI32(std::ofstream& out, int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool ReadU32(std::ifstream& in, uint32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}
bool ReadI32(std::ifstream& in, int32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return in.good();
}

}  // namespace

Status SaveGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return InternalError("cannot open graph file for writing: " + path);
  }
  WriteU32(out, kMagic);
  WriteI32(out, graph.num_nodes());
  WriteI32(out, graph.num_relations());
  WriteI32(out, graph.feature_dim());
  // Node labels.
  for (int v = 0; v < graph.num_nodes(); ++v) {
    WriteI32(out, graph.node_label(v));
  }
  // Features.
  const auto& features = graph.node_features();
  out.write(reinterpret_cast<const char*>(features.data().data()),
            static_cast<std::streamsize>(features.size() * sizeof(float)));
  // Edges (original records; adjacency is rebuilt on load).
  WriteI32(out, graph.num_edges());
  for (const Edge& e : graph.edges()) {
    WriteI32(out, e.src);
    WriteI32(out, e.dst);
    WriteI32(out, e.relation);
  }
  if (!out.good()) return InternalError("graph write failed: " + path);
  return Status::Ok();
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open graph file: " + path);
  }
  uint32_t magic = 0;
  if (!ReadU32(in, &magic) || magic != kMagic) {
    return InvalidArgumentError("bad graph file magic: " + path);
  }
  int32_t num_nodes = 0, num_relations = 0, feature_dim = 0;
  if (!ReadI32(in, &num_nodes) || !ReadI32(in, &num_relations) ||
      !ReadI32(in, &feature_dim)) {
    return InvalidArgumentError("truncated graph file: " + path);
  }
  if (num_nodes < 0 || num_relations < 1 || feature_dim < 0) {
    return InvalidArgumentError("corrupt graph header: " + path);
  }
  GraphBuilder builder(num_relations);
  for (int v = 0; v < num_nodes; ++v) {
    int32_t label = -1;
    if (!ReadI32(in, &label)) {
      return InvalidArgumentError("truncated node labels: " + path);
    }
    builder.AddNode(label);
  }
  std::vector<float> feature_data(
      static_cast<size_t>(num_nodes) * feature_dim);
  in.read(reinterpret_cast<char*>(feature_data.data()),
          static_cast<std::streamsize>(feature_data.size() * sizeof(float)));
  if (!in.good()) return InvalidArgumentError("truncated features: " + path);
  builder.SetNodeFeatures(
      Tensor::FromData(num_nodes, feature_dim, std::move(feature_data)));
  int32_t num_edges = 0;
  if (!ReadI32(in, &num_edges) || num_edges < 0) {
    return InvalidArgumentError("truncated edge count: " + path);
  }
  for (int e = 0; e < num_edges; ++e) {
    int32_t src = 0, dst = 0, relation = 0;
    if (!ReadI32(in, &src) || !ReadI32(in, &dst) || !ReadI32(in, &relation)) {
      return InvalidArgumentError("truncated edges: " + path);
    }
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes ||
        relation < 0 || relation >= num_relations) {
      return InvalidArgumentError("corrupt edge record: " + path);
    }
    builder.AddEdge(src, dst, relation);
  }
  return builder.Build();
}

}  // namespace gp
