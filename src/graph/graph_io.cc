#include "graph/graph_io.h"

#include <cstdint>

#include "graph/builder.h"
#include "util/checksum.h"

namespace gp {
namespace {

constexpr uint32_t kMagic = 0x47504752;  // "GPGR"
// v1 was the footer-less legacy layout; v2 adds the integrity frame
// (version + CRC32) around the same topology/feature payload.
constexpr uint32_t kVersion = 2;

}  // namespace

Status SaveGraph(const Graph& graph, const std::string& path) {
  PayloadWriter payload;
  payload.WriteI32(graph.num_nodes());
  payload.WriteI32(graph.num_relations());
  payload.WriteI32(graph.feature_dim());
  // Node labels.
  for (int v = 0; v < graph.num_nodes(); ++v) {
    payload.WriteI32(graph.node_label(v));
  }
  // Features.
  const auto& features = graph.node_features();
  payload.WriteBytes(features.data().data(),
                     static_cast<size_t>(features.size()) * sizeof(float));
  // Edges (original records; adjacency is rebuilt on load).
  payload.WriteI32(graph.num_edges());
  for (const Edge& e : graph.edges()) {
    payload.WriteI32(e.src);
    payload.WriteI32(e.dst);
    payload.WriteI32(e.relation);
  }
  return WriteFramedFile(path, kMagic, kVersion, payload.payload());
}

StatusOr<Graph> LoadGraph(const std::string& path) {
  GP_ASSIGN_OR_RETURN(FramedPayload framed,
                      ReadFramedFile(path, kMagic, kVersion, kVersion,
                                     "graph"));
  PayloadReader reader(framed.payload);
  int32_t num_nodes = 0, num_relations = 0, feature_dim = 0;
  if (!reader.ReadI32(&num_nodes) || !reader.ReadI32(&num_relations) ||
      !reader.ReadI32(&feature_dim)) {
    return DataLossError("truncated graph file: " + path);
  }
  if (num_nodes < 0 || num_relations < 1 || feature_dim < 0) {
    return InvalidArgumentError("corrupt graph header: " + path);
  }
  GraphBuilder builder(num_relations);
  for (int v = 0; v < num_nodes; ++v) {
    int32_t label = -1;
    if (!reader.ReadI32(&label)) {
      return DataLossError("truncated node labels: " + path);
    }
    builder.AddNode(label);
  }
  std::vector<float> feature_data(
      static_cast<size_t>(num_nodes) * feature_dim);
  if (!reader.ReadBytes(feature_data.data(),
                        feature_data.size() * sizeof(float))) {
    return DataLossError("truncated features: " + path);
  }
  builder.SetNodeFeatures(
      Tensor::FromData(num_nodes, feature_dim, std::move(feature_data)));
  int32_t num_edges = 0;
  if (!reader.ReadI32(&num_edges) || num_edges < 0) {
    return DataLossError("truncated edge count: " + path);
  }
  for (int e = 0; e < num_edges; ++e) {
    int32_t src = 0, dst = 0, relation = 0;
    if (!reader.ReadI32(&src) || !reader.ReadI32(&dst) ||
        !reader.ReadI32(&relation)) {
      return DataLossError("truncated edges: " + path);
    }
    if (src < 0 || src >= num_nodes || dst < 0 || dst >= num_nodes ||
        relation < 0 || relation >= num_relations) {
      return InvalidArgumentError("corrupt edge record: " + path);
    }
    builder.AddEdge(src, dst, relation);
  }
  Graph graph = builder.Build();
  // Boundary check: everything the CRC cannot see (semantic invariants of
  // the rebuilt CSR structure, feature finiteness) is validated before the
  // graph enters the pipeline.
  GP_RETURN_IF_ERROR(graph.Validate());
  return graph;
}

}  // namespace gp
