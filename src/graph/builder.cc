#include "graph/builder.h"

#include <algorithm>

#include "util/logging.h"

namespace gp {

GraphBuilder::GraphBuilder(int num_relations)
    : num_relations_(num_relations) {
  CHECK_GE(num_relations, 1);
}

int GraphBuilder::AddNode(int label) {
  CHECK(!built_);
  node_labels_.push_back(label);
  return static_cast<int>(node_labels_.size()) - 1;
}

void GraphBuilder::AddEdge(int src, int dst, int relation, bool undirected) {
  CHECK(!built_);
  CHECK_GE(src, 0);
  CHECK_GE(dst, 0);
  CHECK_LT(src, static_cast<int>(node_labels_.size()));
  CHECK_LT(dst, static_cast<int>(node_labels_.size()));
  CHECK_GE(relation, 0);
  CHECK_LT(relation, num_relations_);
  pending_.push_back({src, dst, relation, undirected});
}

void GraphBuilder::SetNodeFeatures(Tensor features) {
  CHECK(!built_);
  CHECK_EQ(features.rows(), static_cast<int>(node_labels_.size()));
  features_ = std::move(features);
}

Graph GraphBuilder::Build() {
  CHECK(!built_);
  built_ = true;
  const int n = static_cast<int>(node_labels_.size());

  Graph graph;
  graph.num_nodes_ = n;
  graph.num_relations_ = num_relations_;
  graph.node_labels_ = std::move(node_labels_);
  if (features_.defined()) {
    graph.node_features_ = std::move(features_);
  } else {
    graph.node_features_ = Tensor::Zeros(n, 1);
  }

  // Count adjacency entries per node (undirected edges contribute twice).
  std::vector<int> degree(n, 0);
  for (const auto& e : pending_) {
    ++degree[e.src];
    if (e.undirected && e.src != e.dst) ++degree[e.dst];
  }
  graph.offsets_.assign(n + 1, 0);
  for (int i = 0; i < n; ++i) graph.offsets_[i + 1] = graph.offsets_[i] + degree[i];
  graph.adjacency_.resize(graph.offsets_[n]);

  std::vector<int> cursor(graph.offsets_.begin(), graph.offsets_.end() - 1);
  graph.edges_.reserve(pending_.size());
  graph.edges_by_relation_.assign(num_relations_, {});
  for (const auto& e : pending_) {
    const int edge_id = static_cast<int>(graph.edges_.size());
    graph.edges_.push_back({e.src, e.dst, e.relation});
    graph.edges_by_relation_[e.relation].push_back(edge_id);
    graph.adjacency_[cursor[e.src]++] = {e.dst, e.relation, edge_id};
    if (e.undirected && e.src != e.dst) {
      graph.adjacency_[cursor[e.dst]++] = {e.src, e.relation, edge_id};
    }
  }

  // Node class index.
  int num_classes = 0;
  for (int label : graph.node_labels_) {
    num_classes = std::max(num_classes, label + 1);
  }
  graph.num_node_classes_ = num_classes;
  graph.nodes_by_class_.assign(num_classes, {});
  for (int v = 0; v < n; ++v) {
    if (graph.node_labels_[v] >= 0) {
      graph.nodes_by_class_[graph.node_labels_[v]].push_back(v);
    }
  }
  return graph;
}

}  // namespace gp
