// In-memory graph storage: CSR adjacency with typed (multi-relational)
// edges, dense node features, and optional node labels. This is the source
// graph "G = (V, E, R)" of the paper (Sec. III).

#ifndef GRAPHPROMPTER_GRAPH_GRAPH_H_
#define GRAPHPROMPTER_GRAPH_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/status.h"

namespace gp {

// One directed edge (u, r, v) of the source graph. For undirected graphs the
// builder inserts the reverse adjacency as well, but `Edge` records keep the
// original orientation (used as edge-classification inputs).
struct Edge {
  int src = -1;
  int dst = -1;
  int relation = 0;
};

// An adjacency entry: neighbor node, relation, and the id of the underlying
// Edge record (shared by both directions of an undirected edge).
struct AdjEntry {
  int neighbor = -1;
  int relation = 0;
  int edge_id = -1;
};

// Immutable multi-relational graph. Construct through GraphBuilder.
class Graph {
 public:
  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  int num_relations() const { return num_relations_; }
  int feature_dim() const {
    return node_features_.defined() ? node_features_.cols() : 0;
  }

  // Out-degree in the CSR structure (counts both directions for undirected).
  int Degree(int node) const {
    return offsets_[node + 1] - offsets_[node];
  }

  // Adjacency list of `node` (begin pointer + count).
  const AdjEntry* NeighborsBegin(int node) const {
    return adjacency_.data() + offsets_[node];
  }
  int NeighborsCount(int node) const { return Degree(node); }

  const Edge& edge(int edge_id) const { return edges_[edge_id]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Node features (num_nodes x feature_dim); not trainable.
  const Tensor& node_features() const { return node_features_; }

  // Per-node class labels (-1 when unlabeled).
  const std::vector<int>& node_labels() const { return node_labels_; }
  int node_label(int node) const { return node_labels_[node]; }

  // Number of distinct node classes (0 when unlabeled).
  int num_node_classes() const { return num_node_classes_; }

  // Nodes of a given class (computed lazily at build time).
  const std::vector<int>& NodesOfClass(int cls) const {
    return nodes_by_class_[cls];
  }

  // Edges of a given relation.
  const std::vector<int>& EdgesOfRelation(int relation) const {
    return edges_by_relation_[relation];
  }

  // Structural integrity check, used at pipeline boundaries (after loading
  // a graph from disk, before evaluation): CSR offsets monotone and
  // consistent with the adjacency payload, no dangling edge endpoints or
  // out-of-range relations/edge ids, labels within [-1, num_node_classes),
  // and node features finite with one row per node. O(V + E + V*d).
  Status Validate() const;

  std::string DebugString() const;

 private:
  friend class GraphBuilder;

  int num_nodes_ = 0;
  int num_relations_ = 1;
  int num_node_classes_ = 0;
  std::vector<int> offsets_;        // CSR offsets, size num_nodes + 1
  std::vector<AdjEntry> adjacency_;  // CSR payload
  std::vector<Edge> edges_;          // original edge records
  Tensor node_features_;
  std::vector<int> node_labels_;
  std::vector<std::vector<int>> nodes_by_class_;
  std::vector<std::vector<int>> edges_by_relation_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GRAPH_GRAPH_H_
