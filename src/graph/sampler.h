// Data-graph construction (Eq. 1): contextualises an input node or edge by
// sampling its l-hop neighborhood from the source graph, either exactly
// (NeighborSampler) or with the paper's random-walk procedure
// (RandomWalkSampler, Sec. IV-A1).

#ifndef GRAPHPROMPTER_GRAPH_SAMPLER_H_
#define GRAPHPROMPTER_GRAPH_SAMPLER_H_

#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace gp {

// A sampled data graph G_i^D in local index space. `nodes[i]` is the source
// graph id of local node i; the input node(s) come first.
struct Subgraph {
  std::vector<int> nodes;         // original node ids, centers first
  std::vector<int> center_local;  // local indices of the input node(s)
  // Induced directed adjacency (both directions of undirected edges).
  std::vector<int> edge_src;
  std::vector<int> edge_dst;
  std::vector<int> edge_rel;
  std::vector<int> edge_ids;      // original Edge record ids

  int num_nodes() const { return static_cast<int>(nodes.size()); }
  int num_edges() const { return static_cast<int>(edge_src.size()); }
};

struct SamplerConfig {
  // l — the neighborhood radius (walk length for the random-walk sampler).
  int num_hops = 1;
  // Hard cap on subgraph size; sampling stops once reached (paper's "preset
  // limit").
  int max_nodes = 30;
  // Number of walk restarts per center node (random-walk sampler only).
  int num_walks = 2;
};

// Exact l-hop BFS neighborhood with a node cap.
class NeighborSampler {
 public:
  NeighborSampler(const Graph* graph, SamplerConfig config);

  // Samples the neighborhood of one node (node classification input).
  Subgraph SampleAroundNode(int node, Rng* rng) const;
  // Samples around both endpoints of an edge (edge classification input).
  Subgraph SampleAroundEdge(int edge_id, Rng* rng) const;
  // General form: centers are included and expanded jointly.
  Subgraph SampleAroundNodes(const std::vector<int>& centers, Rng* rng) const;

 private:
  const Graph* graph_;
  SamplerConfig config_;
};

// The paper's sampler: starting from each center, add its neighbors, take a
// random step, add that node's neighbors (duplicates removed), repeat l
// times; stop early at the node cap.
class RandomWalkSampler {
 public:
  RandomWalkSampler(const Graph* graph, SamplerConfig config);

  Subgraph SampleAroundNode(int node, Rng* rng) const;
  Subgraph SampleAroundEdge(int edge_id, Rng* rng) const;
  Subgraph SampleAroundNodes(const std::vector<int>& centers, Rng* rng) const;

 private:
  const Graph* graph_;
  SamplerConfig config_;
};

// Fills a Subgraph's edge arrays with the induced adjacency among
// `subgraph->nodes` (shared by both samplers; exposed for testing).
void InduceEdges(const Graph& graph, Subgraph* subgraph);

}  // namespace gp

#endif  // GRAPHPROMPTER_GRAPH_SAMPLER_H_
