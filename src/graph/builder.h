// Incremental construction of Graph objects.

#ifndef GRAPHPROMPTER_GRAPH_BUILDER_H_
#define GRAPHPROMPTER_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace gp {

// Accumulates nodes/edges and finalises into an immutable CSR Graph.
class GraphBuilder {
 public:
  // `num_relations` >= 1; relation ids must be in [0, num_relations).
  explicit GraphBuilder(int num_relations = 1);

  // Adds a node and returns its id.
  int AddNode(int label = -1);

  // Adds an edge (u, r, v). When `undirected` (the default), the reverse
  // adjacency is added too — the paper's datasets are treated as undirected
  // for neighborhood sampling while keeping the oriented Edge record.
  void AddEdge(int src, int dst, int relation = 0, bool undirected = true);

  // Sets the dense feature matrix; must have one row per node.
  void SetNodeFeatures(Tensor features);

  // Finalises the CSR structure. The builder must not be reused after.
  Graph Build();

 private:
  int num_relations_;
  std::vector<int> node_labels_;
  struct PendingEdge {
    int src, dst, relation;
    bool undirected;
  };
  std::vector<PendingEdge> pending_;
  Tensor features_;
  bool built_ = false;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_GRAPH_BUILDER_H_
