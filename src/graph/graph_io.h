// Binary (de)serialisation of graphs, so generated datasets can be saved
// once and reloaded across benchmark runs, and users can import their own
// graphs without regenerating.

#ifndef GRAPHPROMPTER_GRAPH_GRAPH_IO_H_
#define GRAPHPROMPTER_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"
#include "util/status.h"

namespace gp {

// Writes `graph` (topology, relations, labels, features) to `path`.
Status SaveGraph(const Graph& graph, const std::string& path);

// Reads a graph previously written by SaveGraph.
StatusOr<Graph> LoadGraph(const std::string& path);

}  // namespace gp

#endif  // GRAPHPROMPTER_GRAPH_GRAPH_IO_H_
