#include "graph/sampler.h"

#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace gp {

void InduceEdges(const Graph& graph, Subgraph* subgraph) {
  std::unordered_map<int, int> local_of;
  local_of.reserve(subgraph->nodes.size());
  for (size_t i = 0; i < subgraph->nodes.size(); ++i) {
    local_of[subgraph->nodes[i]] = static_cast<int>(i);
  }
  for (size_t i = 0; i < subgraph->nodes.size(); ++i) {
    const int u = subgraph->nodes[i];
    const AdjEntry* adj = graph.NeighborsBegin(u);
    const int deg = graph.NeighborsCount(u);
    for (int k = 0; k < deg; ++k) {
      auto it = local_of.find(adj[k].neighbor);
      if (it == local_of.end()) continue;
      subgraph->edge_src.push_back(static_cast<int>(i));
      subgraph->edge_dst.push_back(it->second);
      subgraph->edge_rel.push_back(adj[k].relation);
      subgraph->edge_ids.push_back(adj[k].edge_id);
    }
  }
}

namespace {

// Shared helper: seeds `nodes` with centers and records their local indices.
Subgraph SeedCenters(const std::vector<int>& centers) {
  Subgraph sg;
  std::unordered_set<int> seen;
  for (int c : centers) {
    if (seen.insert(c).second) {
      sg.center_local.push_back(static_cast<int>(sg.nodes.size()));
      sg.nodes.push_back(c);
    } else {
      // Duplicate center (self-loop edge): reuse the existing local index.
      for (size_t i = 0; i < sg.nodes.size(); ++i) {
        if (sg.nodes[i] == c) {
          sg.center_local.push_back(static_cast<int>(i));
          break;
        }
      }
    }
  }
  return sg;
}

}  // namespace

NeighborSampler::NeighborSampler(const Graph* graph, SamplerConfig config)
    : graph_(graph), config_(config) {
  CHECK(graph != nullptr);
  CHECK_GE(config.num_hops, 0);
  CHECK_GE(config.max_nodes, 1);
}

Subgraph NeighborSampler::SampleAroundNode(int node, Rng* rng) const {
  return SampleAroundNodes({node}, rng);
}

Subgraph NeighborSampler::SampleAroundEdge(int edge_id, Rng* rng) const {
  const Edge& e = graph_->edge(edge_id);
  return SampleAroundNodes({e.src, e.dst}, rng);
}

Subgraph NeighborSampler::SampleAroundNodes(const std::vector<int>& centers,
                                            Rng* rng) const {
  Subgraph sg = SeedCenters(centers);
  std::unordered_set<int> seen(sg.nodes.begin(), sg.nodes.end());

  // BFS frontier expansion, hop by hop. When a hop would exceed the node
  // cap, a random subset of that hop's candidates is kept.
  std::vector<int> frontier = sg.nodes;
  for (int hop = 0; hop < config_.num_hops; ++hop) {
    std::vector<int> next;
    for (int u : frontier) {
      const AdjEntry* adj = graph_->NeighborsBegin(u);
      const int deg = graph_->NeighborsCount(u);
      for (int k = 0; k < deg; ++k) {
        const int v = adj[k].neighbor;
        if (seen.insert(v).second) next.push_back(v);
      }
    }
    const int room = config_.max_nodes - static_cast<int>(sg.nodes.size());
    if (room <= 0) break;
    if (static_cast<int>(next.size()) > room) {
      CHECK(rng != nullptr);
      rng->Shuffle(&next);
      next.resize(room);
    }
    sg.nodes.insert(sg.nodes.end(), next.begin(), next.end());
    frontier = std::move(next);
    if (static_cast<int>(sg.nodes.size()) >= config_.max_nodes) break;
  }
  InduceEdges(*graph_, &sg);
  return sg;
}

RandomWalkSampler::RandomWalkSampler(const Graph* graph, SamplerConfig config)
    : graph_(graph), config_(config) {
  CHECK(graph != nullptr);
  CHECK_GE(config.num_hops, 0);
  CHECK_GE(config.max_nodes, 1);
  CHECK_GE(config.num_walks, 1);
}

Subgraph RandomWalkSampler::SampleAroundNode(int node, Rng* rng) const {
  return SampleAroundNodes({node}, rng);
}

Subgraph RandomWalkSampler::SampleAroundEdge(int edge_id, Rng* rng) const {
  const Edge& e = graph_->edge(edge_id);
  return SampleAroundNodes({e.src, e.dst}, rng);
}

Subgraph RandomWalkSampler::SampleAroundNodes(const std::vector<int>& centers,
                                              Rng* rng) const {
  CHECK(rng != nullptr);
  Subgraph sg = SeedCenters(centers);
  std::unordered_set<int> seen(sg.nodes.begin(), sg.nodes.end());

  // Adds the neighbors of `u` (deduplicated) until the cap is hit.
  auto add_neighbors = [&](int u) {
    const AdjEntry* adj = graph_->NeighborsBegin(u);
    const int deg = graph_->NeighborsCount(u);
    for (int k = 0; k < deg; ++k) {
      if (static_cast<int>(sg.nodes.size()) >= config_.max_nodes) return;
      const int v = adj[k].neighbor;
      if (seen.insert(v).second) sg.nodes.push_back(v);
    }
  };

  std::vector<int> starts;
  for (int local : sg.center_local) starts.push_back(sg.nodes[local]);
  for (int start : starts) {
    for (int walk = 0; walk < config_.num_walks; ++walk) {
      int current = start;
      add_neighbors(current);
      // "Randomly choose a direction to move to the next node … repeated l
      // times; terminate if the subgraph reaches the preset limit."
      for (int step = 0; step < config_.num_hops; ++step) {
        if (static_cast<int>(sg.nodes.size()) >= config_.max_nodes) break;
        const int deg = graph_->NeighborsCount(current);
        if (deg == 0) break;
        const AdjEntry* adj = graph_->NeighborsBegin(current);
        current = adj[rng->UniformInt(deg)].neighbor;
        add_neighbors(current);
      }
      if (static_cast<int>(sg.nodes.size()) >= config_.max_nodes) break;
    }
  }
  InduceEdges(*graph_, &sg);
  return sg;
}

}  // namespace gp
