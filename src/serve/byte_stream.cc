#include "serve/byte_stream.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

namespace gp {

FdStream::FdStream(int fd, bool owns_fd, int cancel_fd)
    : fd_(fd), owns_fd_(owns_fd), cancel_fd_(cancel_fd) {}

FdStream::~FdStream() {
  if (owns_fd_ && fd_ >= 0) ::close(fd_);
}

StatusOr<size_t> FdStream::Read(void* out, size_t size) {
  if (size == 0) return size_t{0};
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = fd_;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    nfds_t nfds = 1;
    if (cancel_fd_ >= 0) {
      fds[1].fd = cancel_fd_;
      fds[1].events = POLLIN;
      fds[1].revents = 0;
      nfds = 2;
    }
    const int timeout =
        (stall_timeout_ms_ > 0 && !at_frame_start_) ? stall_timeout_ms_ : -1;
    const int ready = ::poll(fds, nfds, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return DataLossError(std::string("poll failed: ") +
                           ::strerror(errno));
    }
    if (ready == 0) {
      return DeadlineExceededError(
          "stream stalled mid-frame (no bytes within stall timeout)");
    }
    if (nfds == 2 && (fds[1].revents & (POLLIN | POLLHUP)) != 0) {
      return UnavailableError("stream cancelled (server draining)");
    }
    const ssize_t n = ::read(fd_, out, size);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return DataLossError(std::string("read failed: ") + ::strerror(errno));
    }
    if (n > 0) at_frame_start_ = false;
    return static_cast<size_t>(n);
  }
}

Status FdStream::Write(const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, p + written, size - written);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return DataLossError(std::string("write failed: ") +
                           ::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<size_t> StringByteStream::Read(void* out, size_t size) {
  const size_t n = std::min(size, input_.size() - pos_);
  std::memcpy(out, input_.data() + pos_, n);
  pos_ += n;
  return n;
}

Status StringByteStream::Write(const void* data, size_t size) {
  output_.append(static_cast<const char*>(data), size);
  return Status::Ok();
}

}  // namespace gp
