#include "serve/frame.h"

#include <cstring>

#include "util/checksum.h"

namespace gp {

namespace {

constexpr size_t kHeaderBytes = 12;  // magic + type + payload_len
constexpr size_t kFooterBytes = 4;   // crc32

// Reads exactly `size` bytes. Returns the number of bytes actually read
// when the stream ends early (the caller decides whether a short count is
// a clean EOF or a torn frame); propagates stream errors as-is.
StatusOr<size_t> ReadFully(ByteStream* stream, void* out, size_t size) {
  char* p = static_cast<char*>(out);
  size_t total = 0;
  while (total < size) {
    GP_ASSIGN_OR_RETURN(const size_t n,
                        stream->Read(p + total, size - total));
    if (n == 0) break;  // end of stream
    total += n;
  }
  return total;
}

}  // namespace

std::string EncodeFrame(const Frame& frame) {
  PayloadWriter w;
  w.WriteU32(kFrameMagic);
  w.WriteU32(static_cast<uint32_t>(frame.type));
  w.WriteU32(static_cast<uint32_t>(frame.payload.size()));
  w.WriteBytes(frame.payload.data(), frame.payload.size());
  const uint32_t crc = Crc32(w.payload().data(), w.payload().size());
  std::string wire = w.payload();
  wire.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return wire;
}

Status WriteFrame(ByteStream* stream, const Frame& frame) {
  const std::string wire = EncodeFrame(frame);
  return stream->Write(wire.data(), wire.size());
}

StatusOr<Frame> ReadFrame(ByteStream* stream, uint32_t max_frame_bytes) {
  stream->MarkFrameBoundary();
  char header[kHeaderBytes];
  GP_ASSIGN_OR_RETURN(const size_t header_read,
                      ReadFully(stream, header, kHeaderBytes));
  if (header_read == 0) {
    // The stream ended exactly between frames: a polite close.
    return OutOfRangeError("end of stream");
  }
  if (header_read < kHeaderBytes) {
    return DataLossError("torn frame: stream ended mid-header (" +
                         std::to_string(header_read) + " of " +
                         std::to_string(kHeaderBytes) + " header bytes)");
  }

  uint32_t magic = 0, type = 0, payload_len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&type, header + 4, 4);
  std::memcpy(&payload_len, header + 8, 4);
  if (magic != kFrameMagic) {
    return InvalidArgumentError(
        "bad frame magic: stream is not speaking the serving protocol");
  }
  if (payload_len > max_frame_bytes) {
    return InvalidArgumentError(
        "oversized frame: payload of " + std::to_string(payload_len) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte limit");
  }

  Frame frame;
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    GP_ASSIGN_OR_RETURN(
        const size_t payload_read,
        ReadFully(stream, frame.payload.data(), payload_len));
    if (payload_read < payload_len) {
      return DataLossError("torn frame: stream ended mid-payload (" +
                           std::to_string(payload_read) + " of " +
                           std::to_string(payload_len) + " payload bytes)");
    }
  }

  uint32_t wire_crc = 0;
  GP_ASSIGN_OR_RETURN(const size_t crc_read,
                      ReadFully(stream, &wire_crc, kFooterBytes));
  if (crc_read < kFooterBytes) {
    return DataLossError("torn frame: stream ended mid-footer");
  }
  uint32_t crc = Crc32(header, kHeaderBytes);
  crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
  if (crc != wire_crc) {
    return DataLossError("frame checksum mismatch: bytes were corrupted "
                         "in transit");
  }
  return frame;
}

}  // namespace gp
