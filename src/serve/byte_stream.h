// Blocking byte streams the serving frame layer reads from and writes to.
//
// Two implementations: FdStream wraps a file descriptor (socket or pipe)
// with poll-based timeouts and an optional cancellation fd so a draining
// server can interrupt reads that are waiting for a new request, and
// StringByteStream runs entirely in memory for deterministic protocol and
// server tests (pipe mode replays).

#ifndef GRAPHPROMPTER_SERVE_BYTE_STREAM_H_
#define GRAPHPROMPTER_SERVE_BYTE_STREAM_H_

#include <cstddef>
#include <string>

#include "util/status.h"

namespace gp {

class ByteStream {
 public:
  virtual ~ByteStream() = default;

  // Reads up to `size` bytes into `out`. Returns the number of bytes read;
  // 0 means end of stream. Blocks until at least one byte is available.
  // kDeadlineExceeded when a mid-frame stall timeout fires, kUnavailable
  // when a cancellation fd interrupts the wait, kDataLoss on hard I/O
  // errors.
  virtual StatusOr<size_t> Read(void* out, size_t size) = 0;

  // Writes all `size` bytes, blocking as needed.
  virtual Status Write(const void* data, size_t size) = 0;

  // The frame reader calls this before reading a frame: the bytes that
  // follow start a new frame, so an armed stall timeout must not apply to
  // the (possibly long) idle wait for the frame's first byte — only to
  // continuation reads inside the frame. Default: no-op.
  virtual void MarkFrameBoundary() {}
};

// A ByteStream over a file descriptor (not owned unless `owns_fd`).
//
// Timeout discipline: the *first* byte of a read waits indefinitely (an
// idle client is not an error), but once `stall_timeout_ms` is set the
// stream arms the timeout via ArmStallTimeout() for continuation reads —
// a client that stops sending mid-frame must not pin a worker forever.
class FdStream : public ByteStream {
 public:
  // `cancel_fd`: when >= 0, a readable byte on it interrupts any pending
  // Read with kUnavailable ("stream cancelled"). The server's drain path
  // writes to the paired pipe end.
  explicit FdStream(int fd, bool owns_fd = false, int cancel_fd = -1);
  ~FdStream() override;

  FdStream(const FdStream&) = delete;
  FdStream& operator=(const FdStream&) = delete;

  StatusOr<size_t> Read(void* out, size_t size) override;
  Status Write(const void* data, size_t size) override;

  // Bounds how long a mid-frame continuation Read may wait for data;
  // <= 0 disables. The wait for a frame's first byte is never bounded
  // (an idle client is not an error) — see MarkFrameBoundary().
  void ArmStallTimeout(int timeout_ms) { stall_timeout_ms_ = timeout_ms; }

  void MarkFrameBoundary() override { at_frame_start_ = true; }

  int fd() const { return fd_; }

 private:
  int fd_;
  bool owns_fd_;
  int cancel_fd_;
  int stall_timeout_ms_ = 0;
  bool at_frame_start_ = true;
};

// In-memory stream: Read consumes from `input`, Write appends to output().
// Deterministic and single-threaded; the pipe-mode and protocol tests use
// it to replay byte-exact request logs.
class StringByteStream : public ByteStream {
 public:
  explicit StringByteStream(std::string input) : input_(std::move(input)) {}
  StringByteStream() = default;

  StatusOr<size_t> Read(void* out, size_t size) override;
  Status Write(const void* data, size_t size) override;

  const std::string& output() const { return output_; }
  std::string* mutable_output() { return &output_; }

 private:
  std::string input_;
  size_t pos_ = 0;
  std::string output_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_SERVE_BYTE_STREAM_H_
