// Request/response payloads carried inside serving frames (serve/frame.h).
//
// Payloads are flat little-endian structs built with PayloadWriter and
// parsed with the bounds-checked PayloadReader, so truncation surfaces as
// kDataLoss instead of garbage fields. A protocol version leads every
// payload; a mismatch is kFailedPrecondition (the peer speaks a different
// dialect, not a corrupted one).

#ifndef GRAPHPROMPTER_SERVE_PROTOCOL_H_
#define GRAPHPROMPTER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace gp {

inline constexpr uint32_t kProtocolVersion = 1;

// Caps applied when decoding untrusted request fields; a frame that passed
// CRC can still carry absurd values written by a buggy client.
inline constexpr int kMaxWays = 64;
inline constexpr int kMaxQueriesPerRequest = 4096;
inline constexpr size_t kMaxTenantBytes = 256;
inline constexpr size_t kMaxFaultSpecBytes = 1024;

struct EvalRequest {
  std::string tenant;       // isolation key; "" is rejected
  uint64_t request_id = 0;  // echoed back verbatim
  // Remaining wall-clock budget granted by the client, in microseconds;
  // 0 means "use the server default".
  uint64_t deadline_us = 0;
  // Episode shape (EvalConfig subset the client controls).
  int32_t ways = 3;
  int32_t shots = 2;
  int32_t candidates_per_class = 5;
  int32_t num_queries = 8;
  int32_t query_batch = 4;
  int32_t trials = 1;
  uint64_t seed = 1;
  // Chaos hook (tests and soak only): a util/fault.h spec installed as this
  // tenant's injector. Empty for production traffic.
  std::string fault_spec;
};

struct EvalResponse {
  uint64_t request_id = 0;
  // StatusCode of the outcome; kOk carries results, anything else carries
  // only `message`.
  int32_t status_code = 0;
  std::string message;
  double accuracy_mean = 0.0;
  double accuracy_std = 0.0;
  double ms_per_query = 0.0;
  // Degradation events this request charged to the tenant (isolation is
  // asserted on these: a clean tenant must see 0).
  uint64_t degradation_events = 0;
  uint64_t server_latency_us = 0;
  uint32_t retries = 0;
};

std::string EncodeEvalRequest(const EvalRequest& request);
StatusOr<EvalRequest> DecodeEvalRequest(const std::string& payload);

std::string EncodeEvalResponse(const EvalResponse& response);
StatusOr<EvalResponse> DecodeEvalResponse(const std::string& payload);

}  // namespace gp

#endif  // GRAPHPROMPTER_SERVE_PROTOCOL_H_
