// Per-tenant serving state: warm augmenter cache, accumulated degradation
// counters, a deterministic per-tenant fault injector, and a circuit
// breaker that walks the degradation ladder independently of every other
// tenant.
//
// Isolation invariants (asserted by the chaos soak):
//   - Each tenant owns its PromptAugmenter (LFU cache + PromptIndex); no
//     cache entry ever crosses tenants.
//   - Fault injection installed from a request's fault_spec is scoped to
//     that tenant's requests via ScopedThreadFaultInjector; a clean
//     tenant's requests never observe it.
//   - Degradation counters accumulate per tenant; a faulty tenant cannot
//     increment a clean tenant's counters.

#ifndef GRAPHPROMPTER_SERVE_TENANT_H_
#define GRAPHPROMPTER_SERVE_TENANT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/degradation.h"
#include "core/prompt_augmenter.h"
#include "util/fault.h"
#include "util/status.h"

namespace gp {

// Circuit breaker over a tenant's recent request outcomes. Closed passes
// traffic through the full pipeline; after `trip_threshold` consecutive
// degraded requests it opens and the tenant is served in safe mode (the
// augmenter stage disabled, its cache reset). After `cooldown_requests`
// safe-mode requests it half-opens: one probe request runs the full
// pipeline, and its outcome closes the breaker or re-opens it.
struct BreakerConfig {
  int trip_threshold = 3;
  int cooldown_requests = 8;
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

class TenantState {
 public:
  TenantState(std::string name, const PromptAugmenterConfig& augmenter_config,
              const BreakerConfig& breaker_config, uint64_t seed);

  const std::string& name() const { return name_; }

  // The tenant mutex serializes same-tenant requests (the augmenter cache
  // is not internally synchronized); different tenants proceed in
  // parallel. Callers hold it across BeginRequest .. FinishRequest.
  std::mutex& mu() { return mu_; }

  // Installs/updates the tenant's fault injector from a request's spec.
  // An empty spec clears it. kInvalidArgument on a malformed spec.
  Status ConfigureFaults(const std::string& fault_spec);

  // The tenant's injector (null when the tenant is clean). Install with
  // ScopedThreadFaultInjector around the evaluation call.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  // True when this request must run in safe mode (breaker open). Also
  // advances Open -> HalfOpen bookkeeping.
  bool BeginRequestSafeMode();

  // Feeds the request outcome (degradation events charged to the tenant
  // plus whether the request exhausted retries) into the breaker.
  void FinishRequest(int64_t degradation_events, bool exhausted_retries);

  // Accumulated counters, under mu().
  void MergeDegradation(const DegradationStats& stats) {
    degradation_.Merge(stats);
  }
  const DegradationStats& degradation() const { return degradation_; }
  int64_t requests() const { return requests_; }
  int64_t safe_mode_requests() const { return safe_mode_requests_; }
  int64_t breaker_trips() const { return breaker_trips_; }
  BreakerState breaker_state() const { return breaker_state_; }

  PromptAugmenter* augmenter() { return augmenter_.get(); }

 private:
  void TripBreaker();

  std::mutex mu_;
  const std::string name_;
  const BreakerConfig breaker_config_;
  std::unique_ptr<PromptAugmenter> augmenter_;
  std::unique_ptr<FaultInjector> fault_injector_;
  std::string fault_spec_;

  BreakerState breaker_state_ = BreakerState::kClosed;
  int consecutive_degraded_ = 0;
  int cooldown_remaining_ = 0;

  DegradationStats degradation_;
  int64_t requests_ = 0;
  int64_t safe_mode_requests_ = 0;
  int64_t breaker_trips_ = 0;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_SERVE_TENANT_H_
