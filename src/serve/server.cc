#include "serve/server.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <condition_variable>
#include <deque>
#include <functional>
#include <thread>

#include "obs/telemetry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace gp {

// ------------------------------------------------------------ plumbing

struct PromptServer::Connection {
  Connection(int fd, int cancel_fd) : stream(fd, /*owns_fd=*/true, cancel_fd) {}
  FdStream stream;
  std::mutex write_mu;
};

struct PromptServer::WorkItem {
  EvalRequest request;
  std::shared_ptr<Connection> conn;
};

// Mutex+cv bounded MPMC queue. TryPush never blocks: a full queue is the
// admission-control signal, not a place to wait.
class PromptServer::BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  bool TryPush(WorkItem item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  bool Pop(WorkItem* out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<WorkItem> items_;
  bool closed_ = false;
};

PromptServer::PromptServer(const GraphPrompterModel* model,
                           const DatasetBundle* dataset,
                           const ServeConfig& config)
    : model_(model), dataset_(dataset), config_(config) {
  queue_ = std::make_unique<BoundedQueue>(
      static_cast<size_t>(std::max(1, config_.queue_capacity)));
  if (::pipe(drain_pipe_) != 0) {
    LOG(WARNING) << "serve: drain pipe unavailable: " << ::strerror(errno);
    drain_pipe_[0] = drain_pipe_[1] = -1;
  }
}

PromptServer::~PromptServer() {
  if (drain_pipe_[0] >= 0) ::close(drain_pipe_[0]);
  if (drain_pipe_[1] >= 0) ::close(drain_pipe_[1]);
}

void PromptServer::RequestDrain() {
  if (drain_pipe_[1] < 0) return;
  // One byte, never drained by readers: the pipe stays level-readable so
  // every poll()-er (accept loop and all connection reads) sees it.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(drain_pipe_[1], &byte, 1);
}

TenantState* PromptServer::GetOrCreateTenant(const std::string& name) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& slot = tenants_[name];
  if (!slot) {
    // Deterministic per-tenant seed: same config + tenant id, same warm
    // cache behaviour run to run.
    const uint64_t seed =
        config_.seed ^ std::hash<std::string>{}(name) ^ 0x9e3779b97f4a7c15ull;
    slot = std::make_unique<TenantState>(name, config_.augmenter,
                                         config_.breaker, seed);
  }
  return slot.get();
}

std::vector<PromptServer::TenantSnapshot> PromptServer::SnapshotTenants() {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (auto& [name, tenant] : tenants_) {
    std::lock_guard<std::mutex> tenant_lock(tenant->mu());
    TenantSnapshot snap;
    snap.name = name;
    snap.requests = tenant->requests();
    snap.safe_mode_requests = tenant->safe_mode_requests();
    snap.breaker_trips = tenant->breaker_trips();
    snap.degradation_events = tenant->degradation().TotalEvents();
    snap.breaker_state = tenant->breaker_state();
    out.push_back(std::move(snap));
  }
  return out;
}

// ------------------------------------------------------------ handling

EvalResponse PromptServer::Handle(const EvalRequest& request) {
  static Counter* requests = Telemetry().GetCounter("serve/requests");
  static Counter* retries_counter = Telemetry().GetCounter("serve/retries");
  static Counter* deadline_counter =
      Telemetry().GetCounter("serve/deadline_exceeded");
  static Counter* unavailable_counter =
      Telemetry().GetCounter("serve/unavailable");
  static Counter* breaker_counter =
      Telemetry().GetCounter("serve/breaker_trips");
  static Histogram* latency = Telemetry().GetHistogram(
      "serve/latency_us", LatencyBucketBoundsUs());

  Stopwatch sw;
  requests->Add(1);
  EvalResponse resp;
  resp.request_id = request.request_id;

  if (request.ways > dataset_->num_classes) {
    resp.status_code = static_cast<int32_t>(StatusCode::kInvalidArgument);
    resp.message = "request ways " + std::to_string(request.ways) +
                   " exceeds dataset classes (" +
                   std::to_string(dataset_->num_classes) + ")";
    latency->Observe(static_cast<double>(sw.ElapsedMicros()));
    return resp;
  }

  TenantState* tenant = GetOrCreateTenant(request.tenant);
  // Same-tenant requests serialize on the tenant mutex (the warm augmenter
  // cache is single-writer); cross-tenant requests run in parallel.
  std::lock_guard<std::mutex> lock(tenant->mu());

  if (const Status fault_status = tenant->ConfigureFaults(request.fault_spec);
      !fault_status.ok()) {
    resp.status_code = static_cast<int32_t>(fault_status.code());
    resp.message = fault_status.message();
    latency->Observe(static_cast<double>(sw.ElapsedMicros()));
    return resp;
  }

  const bool safe_mode = tenant->BeginRequestSafeMode();
  const int64_t budget = request.deadline_us > 0
                             ? static_cast<int64_t>(request.deadline_us)
                             : config_.default_deadline_us;
  const int64_t trips_before = tenant->breaker_trips();

  // Tenant fault scoping: the tenant's injector — null for a clean tenant —
  // overrides any process-global injector for the duration of the request,
  // so chaos configured for one tenant (or globally) can never leak into
  // another tenant's evaluation.
  ScopedThreadFaultInjector scoped(tenant->fault_injector());

  EvalResult result;
  bool ran = false;
  bool exhausted_retries = false;
  bool out_of_budget = false;
  auto elapsed_us = [&sw]() {
    return static_cast<int64_t>(sw.ElapsedMicros());
  };
  for (int attempt = 0;; ++attempt) {
    const int64_t remaining = budget - elapsed_us();
    if (remaining <= 0) {
      out_of_budget = true;
      break;
    }
    FaultInjector* injector = tenant->fault_injector();
    if (injector != nullptr && injector->MaybeFailRequest()) {
      if (attempt >= config_.max_retries) {
        exhausted_retries = true;
        break;
      }
      ++resp.retries;
      retries_counter->Add(1);
      // Exponential backoff, capped by the remaining budget so a retrying
      // request can never overstay its deadline.
      const int64_t backoff = std::min(
          config_.retry_backoff_us << attempt, budget - elapsed_us());
      if (backoff > 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      }
      continue;
    }

    EvalConfig ec;
    ec.ways = request.ways;
    ec.shots = request.shots;
    ec.candidates_per_class = request.candidates_per_class;
    ec.num_queries = request.num_queries;
    ec.query_batch = request.query_batch;
    ec.trials = request.trials;
    ec.seed = request.seed;
    ec.deadline_us = remaining;
    ec.disable_augmenter = safe_mode;
    ec.shared_augmenter =
        config_.persist_tenant_cache && !safe_mode ? tenant->augmenter()
                                                   : nullptr;
    result = EvaluateInContext(*model_, *dataset_, ec);
    ran = true;
    break;
  }

  int64_t degradation_events = 0;
  if (ran) {
    degradation_events = result.degradation.TotalEvents();
    tenant->MergeDegradation(result.degradation);
  }
  tenant->FinishRequest(degradation_events, exhausted_retries);
  if (tenant->breaker_trips() > trips_before) breaker_counter->Add(1);

  if (exhausted_retries) {
    unavailable_counter->Add(1);
    resp.status_code = static_cast<int32_t>(StatusCode::kUnavailable);
    resp.message = "transient failures exhausted the retry budget";
  } else if (out_of_budget || (ran && result.deadline_expired)) {
    deadline_counter->Add(1);
    resp.status_code = static_cast<int32_t>(StatusCode::kDeadlineExceeded);
    resp.message = "deadline of " + std::to_string(budget) + "us expired";
  } else {
    resp.status_code = static_cast<int32_t>(StatusCode::kOk);
    resp.accuracy_mean = result.accuracy_percent.mean;
    resp.accuracy_std = result.accuracy_percent.std;
    resp.ms_per_query = result.ms_per_query;
  }
  resp.degradation_events = static_cast<uint64_t>(degradation_events);
  resp.server_latency_us = static_cast<uint64_t>(sw.ElapsedMicros());
  latency->Observe(static_cast<double>(sw.ElapsedMicros()));
  return resp;
}

// ------------------------------------------------------------ pipe mode

Status PromptServer::ServePipe(ByteStream* in, ByteStream* out) {
  static Counter* frames_rejected =
      Telemetry().GetCounter("serve/frames_rejected");
  for (;;) {
    auto frame_or = ReadFrame(in, config_.max_frame_bytes);
    if (!frame_or.ok()) {
      if (frame_or.status().code() == StatusCode::kOutOfRange) {
        return Status::Ok();  // clean end of stream
      }
      frames_rejected->Add(1);
      return frame_or.status();
    }
    if (frame_or->type == FrameType::kShutdown) return Status::Ok();
    if (frame_or->type != FrameType::kEvalRequest) {
      frames_rejected->Add(1);
      continue;
    }
    EvalResponse resp;
    auto request_or = DecodeEvalRequest(frame_or->payload);
    if (!request_or.ok()) {
      resp.status_code = static_cast<int32_t>(request_or.status().code());
      resp.message = request_or.status().message();
    } else {
      resp = Handle(*request_or);
    }
    Frame response_frame;
    response_frame.type = FrameType::kEvalResponse;
    response_frame.payload = EncodeEvalResponse(resp);
    GP_RETURN_IF_ERROR(WriteFrame(out, response_frame));
  }
}

// ------------------------------------------------------------ socket mode

Status PromptServer::WriteResponse(ByteStream* stream, std::mutex* write_mu,
                                   const EvalResponse& response) {
  Frame frame;
  frame.type = FrameType::kEvalResponse;
  frame.payload = EncodeEvalResponse(response);
  std::lock_guard<std::mutex> lock(*write_mu);
  return WriteFrame(stream, frame);
}

void PromptServer::WorkerLoop() {
  WorkItem item;
  while (queue_->Pop(&item)) {
    const EvalResponse resp = Handle(item.request);
    const Status write_status =
        WriteResponse(&item.conn->stream, &item.conn->write_mu, resp);
    if (!write_status.ok()) {
      // The client is gone; the work is done and accounted, just undeliverable.
      LOG(WARNING) << "serve: response write failed: "
                   << write_status.ToString();
    }
  }
}

void PromptServer::ConnectionLoop(std::shared_ptr<Connection> conn) {
  static Counter* frames_rejected =
      Telemetry().GetCounter("serve/frames_rejected");
  static Counter* shed = Telemetry().GetCounter("serve/shed");
  conn->stream.ArmStallTimeout(config_.stall_timeout_ms);
  for (;;) {
    auto frame_or = ReadFrame(&conn->stream, config_.max_frame_bytes);
    if (!frame_or.ok()) {
      const StatusCode code = frame_or.status().code();
      if (code != StatusCode::kOutOfRange &&
          code != StatusCode::kUnavailable) {
        // Torn frame, CRC mismatch, bad magic, oversize, or mid-frame
        // stall: reject and close — the stream cannot be resynchronized.
        frames_rejected->Add(1);
        LOG(WARNING) << "serve: rejecting connection: "
                     << frame_or.status().ToString();
      }
      return;
    }
    if (frame_or->type == FrameType::kShutdown) return;
    if (frame_or->type != FrameType::kEvalRequest) {
      frames_rejected->Add(1);
      continue;
    }
    auto request_or = DecodeEvalRequest(frame_or->payload);
    if (!request_or.ok()) {
      EvalResponse resp;
      resp.status_code = static_cast<int32_t>(request_or.status().code());
      resp.message = request_or.status().message();
      (void)WriteResponse(&conn->stream, &conn->write_mu, resp);
      continue;
    }
    WorkItem item;
    item.request = *std::move(request_or);
    item.conn = conn;
    const uint64_t request_id = item.request.request_id;
    if (!queue_->TryPush(std::move(item))) {
      // Admission control: the queue is full, shed immediately instead of
      // buffering unboundedly and blowing every queued deadline.
      shed->Add(1);
      EvalResponse resp;
      resp.request_id = request_id;
      resp.status_code = static_cast<int32_t>(StatusCode::kUnavailable);
      resp.message = "server overloaded: admission queue full";
      (void)WriteResponse(&conn->stream, &conn->write_mu, resp);
    }
  }
}

Status PromptServer::ServeUnixSocket(const std::string& path) {
  if (drain_pipe_[0] < 0) {
    return InternalError("serve: drain pipe unavailable");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  // A worker writing to a connection the client already closed must get
  // EPIPE, not a process-killing signal.
  ::signal(SIGPIPE, SIG_IGN);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return InternalError(std::string("socket failed: ") + ::strerror(errno));
  }
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = ::strerror(errno);
    ::close(listen_fd);
    return InternalError("bind(" + path + ") failed: " + err);
  }
  if (::listen(listen_fd, 64) != 0) {
    const std::string err = ::strerror(errno);
    ::close(listen_fd);
    return InternalError("listen failed: " + err);
  }
  LOG(INFO) << "serve: listening on " << path << " with " << config_.workers
            << " workers";

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(std::max(1, config_.workers)));
  for (int w = 0; w < std::max(1, config_.workers); ++w) {
    workers.emplace_back([this] { WorkerLoop(); });
  }

  std::vector<std::thread> readers;
  for (;;) {
    struct pollfd fds[2];
    fds[0].fd = listen_fd;
    fds[0].events = POLLIN;
    fds[0].revents = 0;
    fds[1].fd = drain_pipe_[0];
    fds[1].events = POLLIN;
    fds[1].revents = 0;
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // drain requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn_fd = ::accept(listen_fd, nullptr, nullptr);
    if (conn_fd < 0) continue;
    auto conn = std::make_shared<Connection>(conn_fd, drain_pipe_[0]);
    readers.emplace_back(
        [this, conn = std::move(conn)] { ConnectionLoop(conn); });
  }

  // Graceful drain: stop accepting, unblock connection readers (their
  // polls see the drain pipe), let the workers finish everything already
  // admitted, then shut the queue down.
  ::close(listen_fd);
  ::unlink(path.c_str());
  for (std::thread& t : readers) t.join();
  queue_->Close();
  for (std::thread& t : workers) t.join();
  LOG(INFO) << "serve: drained, " << readers.size()
            << " connections closed";
  return Status::Ok();
}

}  // namespace gp
