#include "serve/protocol.h"

#include "serve/frame.h"
#include "util/checksum.h"

namespace gp {

namespace {

void WriteLenPrefixed(PayloadWriter* w, const std::string& s) {
  w->WriteU32(static_cast<uint32_t>(s.size()));
  w->WriteBytes(s.data(), s.size());
}

bool ReadLenPrefixed(PayloadReader* r, std::string* out, size_t max_bytes) {
  uint32_t len = 0;
  if (!r->ReadU32(&len)) return false;
  if (len > max_bytes) return false;
  return r->ReadString(out, len);
}

Status Truncated(const char* what) {
  return DataLossError(std::string("truncated ") + what + " payload");
}

}  // namespace

std::string EncodeEvalRequest(const EvalRequest& request) {
  PayloadWriter w;
  w.WriteU32(kProtocolVersion);
  WriteLenPrefixed(&w, request.tenant);
  w.WriteU64(request.request_id);
  w.WriteU64(request.deadline_us);
  w.WriteI32(request.ways);
  w.WriteI32(request.shots);
  w.WriteI32(request.candidates_per_class);
  w.WriteI32(request.num_queries);
  w.WriteI32(request.query_batch);
  w.WriteI32(request.trials);
  w.WriteU64(request.seed);
  WriteLenPrefixed(&w, request.fault_spec);
  return w.payload();
}

StatusOr<EvalRequest> DecodeEvalRequest(const std::string& payload) {
  PayloadReader r(payload);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return Truncated("request");
  if (version != kProtocolVersion) {
    return FailedPreconditionError(
        "request protocol version " + std::to_string(version) +
        " (server speaks " + std::to_string(kProtocolVersion) + ")");
  }
  EvalRequest req;
  if (!ReadLenPrefixed(&r, &req.tenant, kMaxTenantBytes)) {
    return Truncated("request");
  }
  if (!r.ReadU64(&req.request_id) || !r.ReadU64(&req.deadline_us) ||
      !r.ReadI32(&req.ways) || !r.ReadI32(&req.shots) ||
      !r.ReadI32(&req.candidates_per_class) || !r.ReadI32(&req.num_queries) ||
      !r.ReadI32(&req.query_batch) || !r.ReadI32(&req.trials) ||
      !r.ReadU64(&req.seed)) {
    return Truncated("request");
  }
  if (!ReadLenPrefixed(&r, &req.fault_spec, kMaxFaultSpecBytes)) {
    return Truncated("request");
  }
  // Field sanity: a CRC-valid frame can still carry hostile values.
  if (req.tenant.empty()) {
    return InvalidArgumentError("request has an empty tenant id");
  }
  if (req.ways < 2 || req.ways > kMaxWays) {
    return InvalidArgumentError("request ways out of range [2, " +
                                std::to_string(kMaxWays) + "]: " +
                                std::to_string(req.ways));
  }
  if (req.shots < 1 || req.candidates_per_class < 1 || req.trials < 1 ||
      req.query_batch < 1) {
    return InvalidArgumentError(
        "request shots/candidates/trials/query_batch must be >= 1");
  }
  if (req.num_queries < 1 || req.num_queries > kMaxQueriesPerRequest) {
    return InvalidArgumentError(
        "request num_queries out of range [1, " +
        std::to_string(kMaxQueriesPerRequest) + "]: " +
        std::to_string(req.num_queries));
  }
  return req;
}

std::string EncodeEvalResponse(const EvalResponse& response) {
  PayloadWriter w;
  w.WriteU32(kProtocolVersion);
  w.WriteU64(response.request_id);
  w.WriteI32(response.status_code);
  WriteLenPrefixed(&w, response.message);
  w.WriteF64(response.accuracy_mean);
  w.WriteF64(response.accuracy_std);
  w.WriteF64(response.ms_per_query);
  w.WriteU64(response.degradation_events);
  w.WriteU64(response.server_latency_us);
  w.WriteU32(response.retries);
  return w.payload();
}

StatusOr<EvalResponse> DecodeEvalResponse(const std::string& payload) {
  PayloadReader r(payload);
  uint32_t version = 0;
  if (!r.ReadU32(&version)) return Truncated("response");
  if (version != kProtocolVersion) {
    return FailedPreconditionError(
        "response protocol version " + std::to_string(version) +
        " (client speaks " + std::to_string(kProtocolVersion) + ")");
  }
  EvalResponse resp;
  if (!r.ReadU64(&resp.request_id) || !r.ReadI32(&resp.status_code)) {
    return Truncated("response");
  }
  if (!ReadLenPrefixed(&r, &resp.message, kDefaultMaxFrameBytes)) {
    return Truncated("response");
  }
  if (!r.ReadF64(&resp.accuracy_mean) || !r.ReadF64(&resp.accuracy_std) ||
      !r.ReadF64(&resp.ms_per_query) ||
      !r.ReadU64(&resp.degradation_events) ||
      !r.ReadU64(&resp.server_latency_us) || !r.ReadU32(&resp.retries)) {
    return Truncated("response");
  }
  return resp;
}

}  // namespace gp
