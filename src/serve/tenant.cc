#include "serve/tenant.h"

#include "util/logging.h"

namespace gp {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

TenantState::TenantState(std::string name,
                         const PromptAugmenterConfig& augmenter_config,
                         const BreakerConfig& breaker_config, uint64_t seed)
    : name_(std::move(name)),
      breaker_config_(breaker_config),
      augmenter_(std::make_unique<PromptAugmenter>(augmenter_config, seed)) {}

Status TenantState::ConfigureFaults(const std::string& fault_spec) {
  if (fault_spec == fault_spec_) return Status::Ok();
  if (fault_spec.empty()) {
    fault_injector_.reset();
    fault_spec_.clear();
    return Status::Ok();
  }
  GP_ASSIGN_OR_RETURN(const FaultSpec spec, ParseFaultSpec(fault_spec));
  fault_injector_ = std::make_unique<FaultInjector>(spec);
  fault_spec_ = fault_spec;
  return Status::Ok();
}

bool TenantState::BeginRequestSafeMode() {
  ++requests_;
  switch (breaker_state_) {
    case BreakerState::kClosed:
      return false;
    case BreakerState::kOpen:
      ++safe_mode_requests_;
      if (--cooldown_remaining_ <= 0) {
        // The *next* request is the half-open probe; this one still runs
        // safe so the transition is observable in order.
        breaker_state_ = BreakerState::kHalfOpen;
        LOG(INFO) << "tenant " << name_
                  << ": breaker cooled down, half-open (next request probes "
                     "the full pipeline)";
      }
      return true;
    case BreakerState::kHalfOpen:
      // The probe runs the full pipeline.
      return false;
  }
  return false;
}

void TenantState::TripBreaker() {
  breaker_state_ = BreakerState::kOpen;
  cooldown_remaining_ = breaker_config_.cooldown_requests;
  consecutive_degraded_ = 0;
  ++breaker_trips_;
  // A tripped tenant's cache is suspect (poisoned entries drove the trip);
  // reset it so the eventual half-open probe starts from a clean slate.
  augmenter_->Reset();
  LOG(WARNING) << "tenant " << name_
               << ": circuit breaker tripped, serving in safe mode for "
               << cooldown_remaining_ << " requests";
}

void TenantState::FinishRequest(int64_t degradation_events,
                                bool exhausted_retries) {
  const bool degraded = degradation_events > 0 || exhausted_retries;
  switch (breaker_state_) {
    case BreakerState::kClosed:
      if (degraded) {
        if (++consecutive_degraded_ >= breaker_config_.trip_threshold) {
          TripBreaker();
        }
      } else {
        consecutive_degraded_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // Safe-mode outcomes carry no signal about upstream health.
      break;
    case BreakerState::kHalfOpen:
      if (degraded) {
        LOG(WARNING) << "tenant " << name_
                     << ": half-open probe still degraded, re-opening";
        TripBreaker();
      } else {
        breaker_state_ = BreakerState::kClosed;
        consecutive_degraded_ = 0;
        LOG(INFO) << "tenant " << name_
                  << ": half-open probe clean, breaker closed";
      }
      break;
  }
}

}  // namespace gp
