// Length-prefixed, CRC-framed wire protocol for the serving daemon.
//
// Every message travels as
//   [magic u32][type u32][payload_len u32][payload bytes][crc32 u32]
// with the CRC covering the header and payload. The framing layer is the
// daemon's first robustness boundary: a torn, truncated, oversized, or
// corrupted frame is rejected with a typed error and never reaches the
// request parser, let alone kills the process.
//
// Error taxonomy (what the reader returns and what the server does):
//   kOutOfRange        clean end of stream at a frame boundary — the
//                      connection closed politely; not an error.
//   kDataLoss          torn frame (EOF mid-header or mid-payload) or CRC
//                      mismatch — drop the frame, close the connection.
//   kInvalidArgument   bad magic or oversized payload — the stream cannot
//                      be resynchronized; close the connection.
//   kDeadlineExceeded  stall timeout fired mid-frame (FdStream).
//   kUnavailable       read cancelled (server draining).

#ifndef GRAPHPROMPTER_SERVE_FRAME_H_
#define GRAPHPROMPTER_SERVE_FRAME_H_

#include <cstdint>
#include <string>

#include "serve/byte_stream.h"
#include "util/status.h"

namespace gp {

// "GPRC" — distinct from the checkpoint magic so a checkpoint piped at the
// daemon fails fast with kInvalidArgument.
inline constexpr uint32_t kFrameMagic = 0x47505243;

// Frames larger than this are rejected before any payload is read, so a
// corrupted (or hostile) length prefix cannot make the server allocate
// unbounded memory.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1u << 20;  // 1 MiB

enum class FrameType : uint32_t {
  kEvalRequest = 1,
  kEvalResponse = 2,
  // Client-initiated clean shutdown of a pipe-mode session.
  kShutdown = 3,
};

struct Frame {
  FrameType type = FrameType::kEvalRequest;
  std::string payload;
};

// Serializes `frame` into wire bytes (header + payload + CRC footer).
std::string EncodeFrame(const Frame& frame);

// Writes `frame` to `stream`.
Status WriteFrame(ByteStream* stream, const Frame& frame);

// Reads one frame from `stream`, enforcing the taxonomy above.
// `max_frame_bytes` bounds the payload length accepted from the wire.
StatusOr<Frame> ReadFrame(ByteStream* stream,
                          uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace gp

#endif  // GRAPHPROMPTER_SERVE_FRAME_H_
