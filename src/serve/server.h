// The multi-tenant prompt-serving daemon.
//
// A PromptServer wraps a loaded GraphPrompterModel + dataset and answers
// EvaluateInContext requests over the framed protocol (serve/frame.h).
// Two transports:
//   - ServePipe: single-threaded loop over a ByteStream pair. Fully
//     deterministic — the replay tests prove a piped request log produces
//     bitwise-identical results to calling EvaluateInContext directly.
//   - ServeUnixSocket: accept loop + per-connection reader threads + a
//     bounded admission queue drained by worker threads. SIGTERM-style
//     graceful drain via RequestDrain() (signal-safe).
//
// Robustness layers, outermost first:
//   framing     torn/truncated/oversized/corrupt frames are rejected with
//               typed errors (serve/frames_rejected), never a crash
//   admission   a full queue sheds the request immediately with
//               kUnavailable (serve/shed) instead of queueing unboundedly
//   deadlines   every request carries a budget (client value or server
//               default); it is checked before work starts, at retry
//               boundaries, and inside EvaluateInContext at stage
//               boundaries (EvalConfig::deadline_us)
//   retries     transient failures (injected via serve_fail) back off
//               exponentially, capped by the remaining budget
//   breakers    each tenant's circuit breaker (serve/tenant.h) degrades
//               only that tenant to safe mode; fault injection is scoped
//               per tenant, so chaos traffic cannot bleed across tenants

#ifndef GRAPHPROMPTER_SERVE_SERVER_H_
#define GRAPHPROMPTER_SERVE_SERVER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graph_prompter.h"
#include "data/datasets.h"
#include "serve/byte_stream.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/tenant.h"

namespace gp {

struct ServeConfig {
  int workers = 2;
  // Admission queue bound: requests beyond this are shed with
  // kUnavailable rather than queued.
  int queue_capacity = 16;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Budget for requests that do not carry their own deadline.
  int64_t default_deadline_us = 250000;
  // Transient-failure retry discipline: up to max_retries re-attempts with
  // exponential backoff starting at retry_backoff_us, always capped by the
  // request's remaining budget.
  int max_retries = 2;
  int64_t retry_backoff_us = 200;
  // Mid-frame stall bound for socket reads; <= 0 disables.
  int stall_timeout_ms = 2000;
  BreakerConfig breaker;
  PromptAugmenterConfig augmenter;
  // When true (default) each tenant keeps its augmenter cache warm across
  // requests; false falls back to a fresh per-request augmenter.
  bool persist_tenant_cache = true;
  uint64_t seed = 1;
};

class PromptServer {
 public:
  // `model` and `dataset` must outlive the server.
  PromptServer(const GraphPrompterModel* model, const DatasetBundle* dataset,
               const ServeConfig& config);
  ~PromptServer();

  PromptServer(const PromptServer&) = delete;
  PromptServer& operator=(const PromptServer&) = delete;

  // Processes one decoded request synchronously: tenant lookup, breaker,
  // fault scoping, deadline + retry discipline, evaluation, accounting.
  // Never fails — errors become the response's status_code.
  EvalResponse Handle(const EvalRequest& request);

  // Single-threaded serving loop: reads frames from `in`, writes responses
  // to `out`, returns on clean EOF or a kShutdown frame. Frame-level
  // corruption ends the loop with the frame error; request-level problems
  // are answered in-band. Deterministic given deterministic requests.
  Status ServePipe(ByteStream* in, ByteStream* out);

  // Binds `path`, accepts connections, and serves until RequestDrain().
  // Each connection gets a reader thread; requests funnel through the
  // bounded admission queue into the worker pool. Returns after the drain
  // completes: in-flight requests finished, telemetry flushed.
  Status ServeUnixSocket(const std::string& path);

  // Starts a graceful drain. Async-signal-safe (one write to a pipe), so
  // a SIGTERM handler may call it directly.
  void RequestDrain();

  // Point-in-time view of every tenant, for telemetry export and the
  // cross-tenant isolation assertions in tests and the chaos soak.
  struct TenantSnapshot {
    std::string name;
    int64_t requests = 0;
    int64_t safe_mode_requests = 0;
    int64_t breaker_trips = 0;
    int64_t degradation_events = 0;
    BreakerState breaker_state = BreakerState::kClosed;
  };
  std::vector<TenantSnapshot> SnapshotTenants();

  const ServeConfig& config() const { return config_; }

 private:
  struct Connection;
  struct WorkItem;
  class BoundedQueue;

  TenantState* GetOrCreateTenant(const std::string& name);
  void WorkerLoop();
  void ConnectionLoop(std::shared_ptr<Connection> conn);
  static Status WriteResponse(ByteStream* stream, std::mutex* write_mu,
                              const EvalResponse& response);

  const GraphPrompterModel* model_;
  const DatasetBundle* dataset_;
  const ServeConfig config_;

  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;

  std::unique_ptr<BoundedQueue> queue_;
  int drain_pipe_[2] = {-1, -1};
};

}  // namespace gp

#endif  // GRAPHPROMPTER_SERVE_SERVER_H_
