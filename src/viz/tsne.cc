#include "viz/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace gp {
namespace {

// Squared Euclidean distances between all rows.
std::vector<double> PairwiseSquaredDistances(const Tensor& x) {
  const int n = x.rows();
  const int d = x.cols();
  std::vector<double> dist(static_cast<size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double total = 0.0;
      for (int c = 0; c < d; ++c) {
        const double diff = x.at(i, c) - x.at(j, c);
        total += diff * diff;
      }
      dist[static_cast<size_t>(i) * n + j] = total;
      dist[static_cast<size_t>(j) * n + i] = total;
    }
  }
  return dist;
}

// Row-conditional affinities p_{j|i} for a given precision (beta); returns
// the Shannon entropy of the row.
double FillRowAffinities(const std::vector<double>& dist, int n, int row,
                         double beta, std::vector<double>* p_row) {
  double sum = 0.0;
  for (int j = 0; j < n; ++j) {
    if (j == row) {
      (*p_row)[j] = 0.0;
      continue;
    }
    (*p_row)[j] = std::exp(-beta * dist[static_cast<size_t>(row) * n + j]);
    sum += (*p_row)[j];
  }
  if (sum < 1e-300) sum = 1e-300;
  double entropy = 0.0;
  for (int j = 0; j < n; ++j) {
    (*p_row)[j] /= sum;
    if ((*p_row)[j] > 1e-12) entropy -= (*p_row)[j] * std::log((*p_row)[j]);
  }
  return entropy;
}

}  // namespace

Tensor RunTsne(const Tensor& embeddings, const TsneConfig& config) {
  const int n = embeddings.rows();
  CHECK_GE(n, 2);
  const double target_entropy =
      std::log(std::max(2.0, std::min(config.perplexity, (n - 1) / 1.0)));

  const std::vector<double> dist = PairwiseSquaredDistances(embeddings);

  // Binary search each row's precision to match the target perplexity.
  std::vector<double> p(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> row(n);
  for (int i = 0; i < n; ++i) {
    double beta = 1.0, beta_lo = 0.0, beta_hi = 1e12;
    for (int it = 0; it < 60; ++it) {
      const double entropy = FillRowAffinities(dist, n, i, beta, &row);
      if (std::abs(entropy - target_entropy) < 1e-5) break;
      if (entropy > target_entropy) {
        beta_lo = beta;
        beta = (beta_hi >= 1e12) ? beta * 2.0 : 0.5 * (beta + beta_hi);
      } else {
        beta_hi = beta;
        beta = 0.5 * (beta + beta_lo);
      }
    }
    for (int j = 0; j < n; ++j) p[static_cast<size_t>(i) * n + j] = row[j];
  }

  // Symmetrise and normalise.
  double p_total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v = 0.5 * (p[static_cast<size_t>(i) * n + j] +
                              p[static_cast<size_t>(j) * n + i]);
      p[static_cast<size_t>(i) * n + j] = v;
      p[static_cast<size_t>(j) * n + i] = v;
      p_total += 2.0 * v;
    }
  }
  if (p_total < 1e-300) p_total = 1e-300;
  for (auto& v : p) v = std::max(v / p_total, 1e-12);

  // Gradient descent on the 2-D map.
  Rng rng(config.seed);
  std::vector<double> y(static_cast<size_t>(n) * 2);
  for (auto& v : y) v = rng.Normal() * 1e-2;
  std::vector<double> velocity(y.size(), 0.0);
  std::vector<double> q(static_cast<size_t>(n) * n, 0.0);
  std::vector<double> grad(y.size(), 0.0);

  const int exaggeration_until = config.iterations / 4;
  for (int iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < exaggeration_until ? config.exaggeration : 1.0;
    // Student-t affinities q_{ij}.
    double q_total = 0.0;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const double dy0 = y[2 * i] - y[2 * j];
        const double dy1 = y[2 * i + 1] - y[2 * j + 1];
        const double w = 1.0 / (1.0 + dy0 * dy0 + dy1 * dy1);
        q[static_cast<size_t>(i) * n + j] = w;
        q[static_cast<size_t>(j) * n + i] = w;
        q_total += 2.0 * w;
      }
    }
    if (q_total < 1e-300) q_total = 1e-300;

    std::fill(grad.begin(), grad.end(), 0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[static_cast<size_t>(i) * n + j];
        const double qij = std::max(w / q_total, 1e-12);
        const double coeff =
            4.0 * (exaggeration * p[static_cast<size_t>(i) * n + j] - qij) * w;
        grad[2 * i] += coeff * (y[2 * i] - y[2 * j]);
        grad[2 * i + 1] += coeff * (y[2 * i + 1] - y[2 * j + 1]);
      }
    }
    for (size_t k = 0; k < y.size(); ++k) {
      velocity[k] =
          config.momentum * velocity[k] - config.learning_rate * grad[k];
      y[k] += velocity[k];
    }
    // Re-centre.
    double mean0 = 0.0, mean1 = 0.0;
    for (int i = 0; i < n; ++i) {
      mean0 += y[2 * i];
      mean1 += y[2 * i + 1];
    }
    mean0 /= n;
    mean1 /= n;
    for (int i = 0; i < n; ++i) {
      y[2 * i] -= mean0;
      y[2 * i + 1] -= mean1;
    }
  }

  Tensor out = Tensor::Zeros(n, 2);
  for (int i = 0; i < n; ++i) {
    out.at(i, 0) = static_cast<float>(y[2 * i]);
    out.at(i, 1) = static_cast<float>(y[2 * i + 1]);
  }
  return out;
}

}  // namespace gp
