// Exact t-SNE (van der Maaten & Hinton 2008) for the embedding-distribution
// visualisation of Fig. 7. Suitable for the few hundred data-node
// embeddings an episode produces; O(n^2) per iteration.

#ifndef GRAPHPROMPTER_VIZ_TSNE_H_
#define GRAPHPROMPTER_VIZ_TSNE_H_

#include <cstdint>

#include "tensor/tensor.h"

namespace gp {

struct TsneConfig {
  double perplexity = 15.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  // Early exaggeration: P is multiplied by this for the first quarter of
  // the iterations.
  double exaggeration = 4.0;
  uint64_t seed = 9;
};

// Projects `embeddings` (n x d) to 2-D. Returns an (n x 2) tensor.
Tensor RunTsne(const Tensor& embeddings, const TsneConfig& config);

}  // namespace gp

#endif  // GRAPHPROMPTER_VIZ_TSNE_H_
