// Named dataset constructors mirroring the paper's Table II at laptop
// scale, plus the train/test item splits used for few-shot evaluation.
//
// Domains:
//   * node domain  (citation): MagSim (pretrain)  -> ArxivSim (downstream)
//   * edge domain  (KG):       WikiSim (pretrain)  -> ConceptNetSim,
//                              Fb15kSim, NellSim    (downstream)
// Datasets of one domain share a FeatureSpace (semantic basis) but have
// disjoint label vocabularies — the paper's cross-graph transfer setting.

#ifndef GRAPHPROMPTER_DATA_DATASETS_H_
#define GRAPHPROMPTER_DATA_DATASETS_H_

#include <string>
#include <vector>

#include "data/synthetic.h"
#include "graph/graph.h"

namespace gp {

enum class TaskType { kNodeClassification, kEdgeClassification };

const char* TaskTypeName(TaskType task);

// A dataset = graph + task + per-class train/test item splits. Items are
// node ids for node classification and edge ids for edge classification.
struct DatasetBundle {
  std::string name;
  TaskType task = TaskType::kNodeClassification;
  Graph graph;
  int num_classes = 0;
  std::vector<std::vector<int>> train_items_by_class;
  std::vector<std::vector<int>> test_items_by_class;

  // The dataset-level label of `item` (class or relation id).
  int LabelOfItem(int item) const;

  // Raw input feature of an item: the node's feature row, or the mean of
  // the edge's endpoint features.
  std::vector<float> ItemRawFeature(int item) const;

  // Mean raw feature of a class's training items — the stand-in for OFA's
  // text-encoded class descriptions.
  std::vector<float> ClassDescriptor(int cls) const;
};

// Scale multiplies node/edge counts (1.0 = defaults listed in DESIGN.md).
DatasetBundle MakeMagSim(double scale = 1.0, uint64_t seed = 11);
DatasetBundle MakeArxivSim(double scale = 1.0, uint64_t seed = 12);
DatasetBundle MakeWikiSim(double scale = 1.0, uint64_t seed = 13);
DatasetBundle MakeConceptNetSim(double scale = 1.0, uint64_t seed = 14);
DatasetBundle MakeFb15kSim(double scale = 1.0, uint64_t seed = 15);
DatasetBundle MakeNellSim(double scale = 1.0, uint64_t seed = 16);

// Builds the split structure for an already-generated graph. Exposed for
// constructing custom datasets through the public API (see examples/).
DatasetBundle MakeBundleFromGraph(std::string name, TaskType task,
                                  Graph graph, double train_fraction,
                                  uint64_t seed);

}  // namespace gp

#endif  // GRAPHPROMPTER_DATA_DATASETS_H_
