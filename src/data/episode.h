// Few-shot episode construction: m-way tasks with N candidate prompts per
// class and n queries (Sec. III, Definition 2 and Sec. V-A2).

#ifndef GRAPHPROMPTER_DATA_EPISODE_H_
#define GRAPHPROMPTER_DATA_EPISODE_H_

#include <vector>

#include "data/datasets.h"
#include "util/rng.h"
#include "util/status.h"

namespace gp {

// One labelled input of an episode. `item` is a node id or edge id
// (depending on the dataset's task); `label` is the episode-local class in
// [0, ways).
struct ExampleItem {
  int item = -1;
  int label = -1;
};

// An m-way few-shot task: `candidates` holds N examples per class drawn
// from the train split (the candidate prompt set S), `queries` holds test
// items to predict (Q).
struct FewShotTask {
  std::vector<int> class_global;  // dataset class id per episode label
  std::vector<ExampleItem> candidates;
  std::vector<ExampleItem> queries;

  int ways() const { return static_cast<int>(class_global.size()); }

  // Integrity check for an episode entering the inference pipeline:
  // non-empty candidate/query sets, every item id in [0, num_items), every
  // episode label in [0, ways), and at least one candidate per class.
  // `num_items` is the dataset's node or edge count (task-dependent).
  Status Validate(int num_items) const;
};

struct EpisodeConfig {
  int ways = 5;                  // m
  int candidates_per_class = 10;  // N (paper: 10)
  int num_queries = 4;            // n per episode
  // Train-split queries are used during pretraining; test-split at eval.
  bool queries_from_test = true;
};

// Samples episodes from a dataset. Classes with too few items (fewer than
// candidates_per_class train items or no query items) are excluded.
class EpisodeSampler {
 public:
  explicit EpisodeSampler(const DatasetBundle* dataset);

  // Number of classes eligible under `config`.
  int NumEligibleClasses(const EpisodeConfig& config) const;

  // Samples one episode; fails if fewer than `ways` eligible classes.
  StatusOr<FewShotTask> Sample(const EpisodeConfig& config, Rng* rng) const;

 private:
  const DatasetBundle* dataset_;
};

}  // namespace gp

#endif  // GRAPHPROMPTER_DATA_EPISODE_H_
