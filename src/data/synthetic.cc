#include "data/synthetic.h"

#include <cmath>

#include "util/logging.h"

namespace gp {

FeatureSpace::FeatureSpace(int feature_dim, int intrinsic_dim, uint64_t seed)
    : feature_dim_(feature_dim), intrinsic_dim_(intrinsic_dim) {
  CHECK_GT(feature_dim, 0);
  CHECK_GT(intrinsic_dim, 0);
  CHECK_LE(intrinsic_dim, feature_dim);
  Rng rng(seed);
  basis_.resize(intrinsic_dim);
  for (auto& direction : basis_) {
    direction.resize(feature_dim);
    double norm = 0.0;
    for (auto& v : direction) {
      v = rng.Normal();
      norm += static_cast<double>(v) * v;
    }
    // Random Gaussian directions are near-orthogonal in high dimension;
    // normalising each is enough for our purposes.
    const float inv = 1.0f / static_cast<float>(std::sqrt(norm) + 1e-12);
    for (auto& v : direction) v *= inv;
  }
}

std::vector<float> FeatureSpace::SamplePrototype(Rng* rng) const {
  // Coefficients ~ N(0, 1/intrinsic) give prototypes of roughly unit norm.
  const float scale = 1.0f / std::sqrt(static_cast<float>(intrinsic_dim_));
  std::vector<float> proto(feature_dim_, 0.0f);
  for (int k = 0; k < intrinsic_dim_; ++k) {
    const float coeff = rng->Normal() * scale;
    for (int d = 0; d < feature_dim_; ++d) {
      proto[d] += coeff * basis_[k][d];
    }
  }
  return proto;
}

namespace {

// Fills node features: prototype of the node's group + isotropic noise +
// temporal drift. Drift grows linearly with the node id (node ids play the
// role of creation time; group assignment is shuffled so id carries no
// class information), along one random dataset-specific direction.
Tensor MakeFeatures(const std::vector<int>& group_of_node,
                    const std::vector<std::vector<float>>& prototypes,
                    int feature_dim, double feature_noise,
                    double temporal_drift, Rng* rng) {
  const int n = static_cast<int>(group_of_node.size());
  const float noise_scale = static_cast<float>(feature_noise) /
                            std::sqrt(static_cast<float>(feature_dim));
  std::vector<float> drift_direction(feature_dim);
  {
    double norm = 0.0;
    for (auto& v : drift_direction) {
      v = rng->Normal();
      norm += static_cast<double>(v) * v;
    }
    const float inv = static_cast<float>(temporal_drift) /
                      static_cast<float>(std::sqrt(norm) + 1e-12);
    for (auto& v : drift_direction) v *= inv;
  }
  Tensor features = Tensor::Zeros(n, feature_dim);
  for (int v = 0; v < n; ++v) {
    const auto& proto = prototypes[group_of_node[v]];
    const float recency = static_cast<float>(v) / std::max(n - 1, 1);
    for (int d = 0; d < feature_dim; ++d) {
      features.at(v, d) = proto[d] + rng->Normal() * noise_scale +
                          recency * drift_direction[d];
    }
  }
  return features;
}

}  // namespace

Graph MakeNodeClassificationGraph(const NodeGraphConfig& config) {
  CHECK_GT(config.num_nodes, 0);
  CHECK_GT(config.num_classes, 0);
  CHECK_GE(config.num_nodes, config.num_classes);
  Rng rng(config.seed);
  FeatureSpace space(config.feature_dim, config.intrinsic_dim,
                     config.domain_seed);

  // Balanced class assignment, then shuffled.
  std::vector<int> label_of(config.num_nodes);
  for (int v = 0; v < config.num_nodes; ++v) {
    label_of[v] = v % config.num_classes;
  }
  rng.Shuffle(&label_of);

  std::vector<std::vector<float>> prototypes(config.num_classes);
  for (auto& proto : prototypes) proto = space.SamplePrototype(&rng);

  std::vector<std::vector<int>> nodes_of_class(config.num_classes);
  for (int v = 0; v < config.num_nodes; ++v) {
    nodes_of_class[label_of[v]].push_back(v);
  }

  GraphBuilder builder(/*num_relations=*/1);
  for (int v = 0; v < config.num_nodes; ++v) builder.AddNode(label_of[v]);
  builder.SetNodeFeatures(MakeFeatures(label_of, prototypes,
                                       config.feature_dim,
                                       config.feature_noise,
                                       config.temporal_drift, &rng));

  // Structural edges: homophilous with probability `homophily`.
  const int64_t num_struct_edges = static_cast<int64_t>(
      config.num_nodes * config.avg_degree / 2.0);
  for (int64_t e = 0; e < num_struct_edges; ++e) {
    const int u = static_cast<int>(rng.UniformInt(config.num_nodes));
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const auto& peers = nodes_of_class[label_of[u]];
      v = peers[rng.UniformInt(peers.size())];
    } else {
      v = static_cast<int>(rng.UniformInt(config.num_nodes));
    }
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  // Noise edges: uniform pairs, task-irrelevant by construction.
  const int64_t num_noise_edges =
      static_cast<int64_t>(num_struct_edges * config.noise_edge_fraction);
  for (int64_t e = 0; e < num_noise_edges; ++e) {
    const int u = static_cast<int>(rng.UniformInt(config.num_nodes));
    const int v = static_cast<int>(rng.UniformInt(config.num_nodes));
    if (u == v) continue;
    builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph MakeKnowledgeGraph(const KnowledgeGraphConfig& config) {
  CHECK_GT(config.num_nodes, 0);
  CHECK_GT(config.num_relations, 0);
  CHECK_GT(config.num_clusters, 1);
  Rng rng(config.seed);
  FeatureSpace space(config.feature_dim, config.intrinsic_dim,
                     config.domain_seed);

  // Entity clusters.
  std::vector<int> cluster_of(config.num_nodes);
  for (int v = 0; v < config.num_nodes; ++v) {
    cluster_of[v] = v % config.num_clusters;
  }
  rng.Shuffle(&cluster_of);
  std::vector<std::vector<int>> nodes_of_cluster(config.num_clusters);
  for (int v = 0; v < config.num_nodes; ++v) {
    nodes_of_cluster[cluster_of[v]].push_back(v);
  }

  std::vector<std::vector<float>> prototypes(config.num_clusters);
  for (auto& proto : prototypes) proto = space.SamplePrototype(&rng);

  // Assign each relation an ordered cluster pair; distinct pairs while the
  // supply lasts (num_clusters^2 pairs), then reuse with replacement.
  std::vector<std::pair<int, int>> pair_of_relation(config.num_relations);
  {
    std::vector<int> pair_ids(config.num_clusters * config.num_clusters);
    for (size_t i = 0; i < pair_ids.size(); ++i) {
      pair_ids[i] = static_cast<int>(i);
    }
    rng.Shuffle(&pair_ids);
    for (int r = 0; r < config.num_relations; ++r) {
      int pair_id;
      if (r < static_cast<int>(pair_ids.size())) {
        pair_id = pair_ids[r];
      } else {
        pair_id = static_cast<int>(rng.UniformInt(pair_ids.size()));
      }
      pair_of_relation[r] = {pair_id / config.num_clusters,
                             pair_id % config.num_clusters};
    }
  }

  GraphBuilder builder(config.num_relations);
  for (int v = 0; v < config.num_nodes; ++v) builder.AddNode(cluster_of[v]);
  builder.SetNodeFeatures(MakeFeatures(cluster_of, prototypes,
                                       config.feature_dim,
                                       config.feature_noise,
                                       config.temporal_drift, &rng));

  const int64_t num_noise =
      static_cast<int64_t>(config.num_edges * config.noise_edge_fraction);
  const int64_t num_struct = config.num_edges - num_noise;
  for (int64_t e = 0; e < num_struct; ++e) {
    // Round-robin over relations keeps per-relation support balanced, so
    // every relation has enough edges to serve as prompts/queries.
    const int r = static_cast<int>(e % config.num_relations);
    const auto& [ca, cb] = pair_of_relation[r];
    const auto& heads = nodes_of_cluster[ca];
    const auto& tails = nodes_of_cluster[cb];
    if (heads.empty() || tails.empty()) continue;
    const int u = heads[rng.UniformInt(heads.size())];
    const int v = tails[rng.UniformInt(tails.size())];
    if (u == v) continue;
    builder.AddEdge(u, v, r);
  }
  for (int64_t e = 0; e < num_noise; ++e) {
    const int u = static_cast<int>(rng.UniformInt(config.num_nodes));
    const int v = static_cast<int>(rng.UniformInt(config.num_nodes));
    const int r = static_cast<int>(rng.UniformInt(config.num_relations));
    if (u == v) continue;
    builder.AddEdge(u, v, r);
  }
  return builder.Build();
}

}  // namespace gp
