#include "data/episode.h"

#include <algorithm>

#include "util/logging.h"

namespace gp {
namespace {

// A class is usable if it can supply N candidates and at least one query.
bool Eligible(const DatasetBundle& dataset, int cls,
              const EpisodeConfig& config) {
  if (static_cast<int>(dataset.train_items_by_class[cls].size()) <
      config.candidates_per_class) {
    return false;
  }
  const auto& query_pool = config.queries_from_test
                               ? dataset.test_items_by_class[cls]
                               : dataset.train_items_by_class[cls];
  return !query_pool.empty();
}

}  // namespace

EpisodeSampler::EpisodeSampler(const DatasetBundle* dataset)
    : dataset_(dataset) {
  CHECK(dataset != nullptr);
}

int EpisodeSampler::NumEligibleClasses(const EpisodeConfig& config) const {
  int count = 0;
  for (int cls = 0; cls < dataset_->num_classes; ++cls) {
    if (Eligible(*dataset_, cls, config)) ++count;
  }
  return count;
}

StatusOr<FewShotTask> EpisodeSampler::Sample(const EpisodeConfig& config,
                                             Rng* rng) const {
  CHECK(rng != nullptr);
  CHECK_GE(config.ways, 2);
  CHECK_GE(config.candidates_per_class, 1);
  CHECK_GE(config.num_queries, 1);

  std::vector<int> eligible;
  for (int cls = 0; cls < dataset_->num_classes; ++cls) {
    if (Eligible(*dataset_, cls, config)) eligible.push_back(cls);
  }
  if (static_cast<int>(eligible.size()) < config.ways) {
    return InvalidArgumentError(
        "dataset " + dataset_->name + " has only " +
        std::to_string(eligible.size()) + " eligible classes for a " +
        std::to_string(config.ways) + "-way episode");
  }
  rng->Shuffle(&eligible);
  eligible.resize(config.ways);

  FewShotTask task;
  task.class_global = eligible;

  // N candidates per class from the train split.
  for (int label = 0; label < config.ways; ++label) {
    const auto& pool = dataset_->train_items_by_class[eligible[label]];
    const auto picks = rng->SampleWithoutReplacement(
        static_cast<int>(pool.size()), config.candidates_per_class);
    for (int p : picks) task.candidates.push_back({pool[p], label});
  }

  // Queries: round-robin over the episode classes so labels stay balanced,
  // sampling with replacement from each class's query pool.
  for (int q = 0; q < config.num_queries; ++q) {
    const int label = q % config.ways;
    const auto& pool = config.queries_from_test
                           ? dataset_->test_items_by_class[eligible[label]]
                           : dataset_->train_items_by_class[eligible[label]];
    const int pick = static_cast<int>(rng->UniformInt(pool.size()));
    task.queries.push_back({pool[pick], label});
  }
  // Shuffle so query order does not encode the label.
  rng->Shuffle(&task.queries);
  return task;
}

}  // namespace gp
