#include "data/episode.h"

#include <algorithm>

#include "util/logging.h"

namespace gp {
namespace {

// A class is usable if it can supply N candidates and at least one query.
bool Eligible(const DatasetBundle& dataset, int cls,
              const EpisodeConfig& config) {
  if (static_cast<int>(dataset.train_items_by_class[cls].size()) <
      config.candidates_per_class) {
    return false;
  }
  const auto& query_pool = config.queries_from_test
                               ? dataset.test_items_by_class[cls]
                               : dataset.train_items_by_class[cls];
  return !query_pool.empty();
}

}  // namespace

Status FewShotTask::Validate(int num_items) const {
  const int m = ways();
  if (m < 1) return InvalidArgumentError("episode has no classes");
  if (candidates.empty()) {
    return InvalidArgumentError("episode has no candidate prompts");
  }
  if (queries.empty()) return InvalidArgumentError("episode has no queries");
  std::vector<int> per_class(m, 0);
  for (const ExampleItem& ex : candidates) {
    if (ex.item < 0 || ex.item >= num_items) {
      return OutOfRangeError("candidate item id out of range: " +
                             std::to_string(ex.item));
    }
    if (ex.label < 0 || ex.label >= m) {
      return OutOfRangeError("candidate label out of range: " +
                             std::to_string(ex.label));
    }
    ++per_class[ex.label];
  }
  for (int cls = 0; cls < m; ++cls) {
    if (per_class[cls] == 0) {
      return InvalidArgumentError("episode class " + std::to_string(cls) +
                                  " has no candidates");
    }
  }
  for (const ExampleItem& ex : queries) {
    if (ex.item < 0 || ex.item >= num_items) {
      return OutOfRangeError("query item id out of range: " +
                             std::to_string(ex.item));
    }
    if (ex.label < 0 || ex.label >= m) {
      return OutOfRangeError("query label out of range: " +
                             std::to_string(ex.label));
    }
  }
  return Status::Ok();
}

EpisodeSampler::EpisodeSampler(const DatasetBundle* dataset)
    : dataset_(dataset) {
  CHECK(dataset != nullptr);
}

int EpisodeSampler::NumEligibleClasses(const EpisodeConfig& config) const {
  int count = 0;
  for (int cls = 0; cls < dataset_->num_classes; ++cls) {
    if (Eligible(*dataset_, cls, config)) ++count;
  }
  return count;
}

StatusOr<FewShotTask> EpisodeSampler::Sample(const EpisodeConfig& config,
                                             Rng* rng) const {
  CHECK(rng != nullptr);
  CHECK_GE(config.ways, 2);
  CHECK_GE(config.candidates_per_class, 1);
  CHECK_GE(config.num_queries, 1);

  std::vector<int> eligible;
  for (int cls = 0; cls < dataset_->num_classes; ++cls) {
    if (Eligible(*dataset_, cls, config)) eligible.push_back(cls);
  }
  if (static_cast<int>(eligible.size()) < config.ways) {
    return InvalidArgumentError(
        "dataset " + dataset_->name + " has only " +
        std::to_string(eligible.size()) + " eligible classes for a " +
        std::to_string(config.ways) + "-way episode");
  }
  rng->Shuffle(&eligible);
  eligible.resize(config.ways);

  FewShotTask task;
  task.class_global = eligible;

  // N candidates per class from the train split.
  for (int label = 0; label < config.ways; ++label) {
    const auto& pool = dataset_->train_items_by_class[eligible[label]];
    const auto picks = rng->SampleWithoutReplacement(
        static_cast<int>(pool.size()), config.candidates_per_class);
    for (int p : picks) task.candidates.push_back({pool[p], label});
  }

  // Queries: round-robin over the episode classes so labels stay balanced,
  // sampling with replacement from each class's query pool.
  for (int q = 0; q < config.num_queries; ++q) {
    const int label = q % config.ways;
    const auto& pool = config.queries_from_test
                           ? dataset_->test_items_by_class[eligible[label]]
                           : dataset_->train_items_by_class[eligible[label]];
    const int pick = static_cast<int>(rng->UniformInt(pool.size()));
    task.queries.push_back({pool[pick], label});
  }
  // Shuffle so query order does not encode the label.
  rng->Shuffle(&task.queries);
  // Boundary check: a task leaving the sampler must be internally
  // consistent before it reaches the three inference stages.
  const int num_items = dataset_->task == TaskType::kNodeClassification
                            ? dataset_->graph.num_nodes()
                            : dataset_->graph.num_edges();
  GP_RETURN_IF_ERROR(task.Validate(num_items));
  return task;
}

}  // namespace gp
