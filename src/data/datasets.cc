#include "data/datasets.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace gp {

const char* TaskTypeName(TaskType task) {
  switch (task) {
    case TaskType::kNodeClassification:
      return "node-classification";
    case TaskType::kEdgeClassification:
      return "edge-classification";
  }
  return "?";
}

int DatasetBundle::LabelOfItem(int item) const {
  if (task == TaskType::kNodeClassification) {
    return graph.node_label(item);
  }
  return graph.edge(item).relation;
}

std::vector<float> DatasetBundle::ItemRawFeature(int item) const {
  if (task == TaskType::kNodeClassification) {
    return graph.node_features().Row(item);
  }
  const Edge& e = graph.edge(item);
  std::vector<float> head = graph.node_features().Row(e.src);
  const std::vector<float> tail = graph.node_features().Row(e.dst);
  for (size_t i = 0; i < head.size(); ++i) {
    head[i] = 0.5f * (head[i] + tail[i]);
  }
  return head;
}

std::vector<float> DatasetBundle::ClassDescriptor(int cls) const {
  CHECK_GE(cls, 0);
  CHECK_LT(cls, num_classes);
  const auto& items = train_items_by_class[cls];
  std::vector<float> mean(graph.feature_dim(), 0.0f);
  if (items.empty()) return mean;
  for (int item : items) {
    const auto feat = ItemRawFeature(item);
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += feat[i];
  }
  const float inv = 1.0f / static_cast<float>(items.size());
  for (auto& v : mean) v *= inv;
  return mean;
}

DatasetBundle MakeBundleFromGraph(std::string name, TaskType task,
                                  Graph graph, double train_fraction,
                                  uint64_t seed) {
  CHECK_GT(train_fraction, 0.0);
  CHECK_LT(train_fraction, 1.0);
  DatasetBundle bundle;
  bundle.name = std::move(name);
  bundle.task = task;
  const int num_classes = task == TaskType::kNodeClassification
                              ? graph.num_node_classes()
                              : graph.num_relations();
  bundle.num_classes = num_classes;
  bundle.train_items_by_class.assign(num_classes, {});
  bundle.test_items_by_class.assign(num_classes, {});

  // Temporal split: items are ordered by recency (node id as creation
  // time; edges by the mean of their endpoint ids) and the earliest
  // fraction becomes the train split — mirroring the temporal train/test
  // partitions of the real datasets, and exposing the feature drift the
  // Prompt Augmenter adapts to at test time. Ties are broken by a seeded
  // shuffle.
  Rng rng(seed);
  auto recency_of = [&](int item) {
    if (task == TaskType::kNodeClassification) return 2 * item;
    const Edge& e = graph.edge(item);
    return e.src + e.dst;
  };
  for (int cls = 0; cls < num_classes; ++cls) {
    std::vector<int> items = task == TaskType::kNodeClassification
                                 ? graph.NodesOfClass(cls)
                                 : graph.EdgesOfRelation(cls);
    rng.Shuffle(&items);
    std::stable_sort(items.begin(), items.end(), [&](int a, int b) {
      return recency_of(a) < recency_of(b);
    });
    const int train_count = std::max(
        1, static_cast<int>(std::floor(items.size() * train_fraction)));
    for (size_t i = 0; i < items.size(); ++i) {
      if (static_cast<int>(i) < train_count) {
        bundle.train_items_by_class[cls].push_back(items[i]);
      } else {
        bundle.test_items_by_class[cls].push_back(items[i]);
      }
    }
  }
  bundle.graph = std::move(graph);
  return bundle;
}

namespace {

// One FeatureSpace seed per domain (see header).
constexpr uint64_t kNodeDomainSeed = 7001;
constexpr uint64_t kEdgeDomainSeed = 7002;

int Scaled(double scale, int base) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

DatasetBundle MakeMagSim(double scale, uint64_t seed) {
  NodeGraphConfig config;
  config.num_nodes = Scaled(scale, 4000);
  config.num_classes = 40;
  config.avg_degree = 10.0;
  config.seed = seed;
  config.domain_seed = kNodeDomainSeed;
  return MakeBundleFromGraph("MAG240M-sim", TaskType::kNodeClassification,
                             MakeNodeClassificationGraph(config), 0.6, seed);
}

DatasetBundle MakeArxivSim(double scale, uint64_t seed) {
  NodeGraphConfig config;
  config.num_nodes = Scaled(scale, 2400);
  config.num_classes = 40;  // Table II: arXiv has 40 paper categories.
  config.avg_degree = 9.0;
  config.seed = seed;
  config.domain_seed = kNodeDomainSeed;
  return MakeBundleFromGraph("arXiv-sim", TaskType::kNodeClassification,
                             MakeNodeClassificationGraph(config), 0.6, seed);
}

DatasetBundle MakeWikiSim(double scale, uint64_t seed) {
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 4000);
  config.num_relations = 120;
  config.num_clusters = 18;
  config.num_edges = Scaled(scale, 18000);
  config.seed = seed;
  config.domain_seed = kEdgeDomainSeed;
  return MakeBundleFromGraph("Wiki-sim", TaskType::kEdgeClassification,
                             MakeKnowledgeGraph(config), 0.6, seed);
}

DatasetBundle MakeConceptNetSim(double scale, uint64_t seed) {
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 1500);
  config.num_relations = 14;  // Table II: ConceptNet has 14 relation types.
  config.num_clusters = 8;
  config.num_edges = Scaled(scale, 6000);
  config.seed = seed;
  config.domain_seed = kEdgeDomainSeed;
  return MakeBundleFromGraph("ConceptNet-sim", TaskType::kEdgeClassification,
                             MakeKnowledgeGraph(config), 0.6, seed);
}

DatasetBundle MakeFb15kSim(double scale, uint64_t seed) {
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 2500);
  config.num_relations = 200;  // Table II: FB15K-237 has 200 classes.
  config.num_clusters = 16;
  config.num_edges = Scaled(scale, 16000);
  config.seed = seed;
  config.domain_seed = kEdgeDomainSeed;
  return MakeBundleFromGraph("FB15K-237-sim", TaskType::kEdgeClassification,
                             MakeKnowledgeGraph(config), 0.6, seed);
}

DatasetBundle MakeNellSim(double scale, uint64_t seed) {
  KnowledgeGraphConfig config;
  config.num_nodes = Scaled(scale, 3000);
  config.num_relations = 291;  // Table II: NELL has 291 classes.
  config.num_clusters = 18;
  config.num_edges = Scaled(scale, 20000);
  config.seed = seed;
  config.domain_seed = kEdgeDomainSeed;
  return MakeBundleFromGraph("NELL-sim", TaskType::kEdgeClassification,
                             MakeKnowledgeGraph(config), 0.6, seed);
}

}  // namespace gp
