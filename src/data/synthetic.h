// Synthetic graph generators standing in for the paper's datasets
// (MAG240M, Wiki, arXiv, ConceptNet, FB15K-237, NELL — Table II).
//
// Design (see DESIGN.md "Substitutions"): the evaluation measures how well
// prompt strategies transfer a pre-trained model to graphs with *disjoint
// label vocabularies*, as a function of the number of classes, shots, and
// hops. We therefore generate planted-structure graphs where
//
//  * every class/relation has a prototype living in a low-dimensional
//    "semantic subspace" shared across all datasets of one domain, so a
//    model pre-trained on one dataset is meaningfully (but imperfectly)
//    transferable to the others — prototypes crowd as the class count
//    grows, reproducing the paper's accuracy-vs-ways decline;
//  * node-classification graphs are homophilous SBMs (citation-style);
//  * knowledge graphs tie each relation to an ordered pair of entity
//    clusters, so a relation is predictable from its endpoints' context;
//  * a configurable fraction of edges is pure noise, giving the Prompt
//    Generator's reconstruction layer task-irrelevant structure to filter.

#ifndef GRAPHPROMPTER_DATA_SYNTHETIC_H_
#define GRAPHPROMPTER_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "graph/builder.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace gp {

// The shared semantic space of one domain. All datasets constructed with
// the same FeatureSpace seed embed their class prototypes through the same
// intrinsic basis, which is what makes cross-dataset in-context transfer
// possible at all (mirroring the shared "paper/entity semantics" of the
// real datasets).
class FeatureSpace {
 public:
  FeatureSpace(int feature_dim, int intrinsic_dim, uint64_t seed);

  int feature_dim() const { return feature_dim_; }
  int intrinsic_dim() const { return intrinsic_dim_; }

  // Draws a fresh class prototype (unit-ish norm) in feature space.
  std::vector<float> SamplePrototype(Rng* rng) const;

 private:
  int feature_dim_;
  int intrinsic_dim_;
  // basis_[k] is the k-th intrinsic direction in feature space.
  std::vector<std::vector<float>> basis_;
};

struct NodeGraphConfig {
  int num_nodes = 2000;
  int num_classes = 20;
  int feature_dim = 64;
  int intrinsic_dim = 8;
  double avg_degree = 8.0;
  // Probability that an edge connects two same-class nodes.
  double homophily = 0.75;
  // Fraction of additional edges wired uniformly at random (task noise).
  double noise_edge_fraction = 0.2;
  // Per-coordinate feature noise scale (relative to unit prototypes).
  double feature_noise = 4.0;
  // Temporal drift: node v's features shift by (v / num_nodes) * drift
  // along a dataset-specific direction, mimicking the distribution shift
  // between early (train) and late (test) items of real temporal splits —
  // the gap the Prompt Augmenter's test-time adaptation corrects.
  double temporal_drift = 1.5;
  uint64_t seed = 1;
  uint64_t domain_seed = 101;  // FeatureSpace seed (shared per domain)
};

// Homophilous SBM with class-conditioned Gaussian features; node labels in
// [0, num_classes). Single relation type.
Graph MakeNodeClassificationGraph(const NodeGraphConfig& config);

struct KnowledgeGraphConfig {
  int num_nodes = 3000;
  int num_relations = 100;
  int num_clusters = 16;
  int num_edges = 12000;
  int feature_dim = 64;
  int intrinsic_dim = 8;
  // Fraction of edges whose endpoints/relation are uniform noise.
  double noise_edge_fraction = 0.15;
  double feature_noise = 1.0;
  // See NodeGraphConfig::temporal_drift.
  double temporal_drift = 1.5;
  uint64_t seed = 2;
  uint64_t domain_seed = 202;
};

// Multi-relational graph: entities belong to clusters (cluster prototype +
// noise features); each relation r links a fixed ordered cluster pair
// (a_r, b_r), pairs assigned distinctly while possible. Edge labels are
// relation ids. Node labels record the cluster (useful for diagnostics).
Graph MakeKnowledgeGraph(const KnowledgeGraphConfig& config);

}  // namespace gp

#endif  // GRAPHPROMPTER_DATA_SYNTHETIC_H_
