// Serving benchmark + chaos soak for the multi-tenant daemon (src/serve).
//
// Two phases over a unix-socket PromptServer:
//   clean  N concurrent clean tenants measure throughput and client-side
//          latency quantiles (serve/clean/{rps,p50_us,p99_us}).
//   chaos  the same tenant mix plus one chaotic tenant injecting corrupted
//          embeddings, transient request failures, and torn frames with
//          mid-stream reconnects. The soak asserts the robustness
//          contract: zero crashes, zero deadline violations for clean
//          tenants, and zero cross-tenant degradation bleed.
//
//   ./bench/bench_serving [--tenants=4] [--serve-requests=10000]
//                         [--clean-requests=2000] [--workers=2]
//
// --serve-requests is the chaos-phase total across all tenants (the soak
// default of 10000 exercises the breaker through many trip/recover
// cycles); --clean-requests sizes the latency-measurement phase. Writes
// results/BENCH_serving.json, which tools/check_serving gates in
// scripts/check.sh.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "bench_common.h"
#include "serve/byte_stream.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/fault.h"

namespace gp {
namespace {

struct ServingOptions {
  int tenants = 4;
  int chaos_requests = 10000;  // total across all tenants (>= soak floor)
  int clean_requests = 2000;   // total across all tenants
  int workers = 2;
};

struct PhaseStats {
  std::vector<double> latency_us;  // clean-tenant request latencies
  int64_t ok = 0;
  int64_t shed = 0;
  int64_t deadline_violations = 0;  // clean tenants only
  int64_t crashes = 0;              // protocol/transport hard failures
  int64_t torn_frames_sent = 0;
  double elapsed_s = 0.0;
};

double Quantile(std::vector<double>* sorted_inout, double q) {
  if (sorted_inout->empty()) return 0.0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  const double pos = q * static_cast<double>(sorted_inout->size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted_inout->size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return (*sorted_inout)[lo] * (1.0 - frac) + (*sorted_inout)[hi] * frac;
}

int ConnectClient(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 200; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return fd;
    }
    ::usleep(5000);
  }
  ::close(fd);
  return -1;
}

// One tenant's client loop: sends `requests` framed EvalRequests and reads
// the replies, recording latency (clean tenants) and outcome counters. A
// chaotic tenant additionally tears frames mid-stream and reconnects —
// the server must shrug that off without disturbing anyone else.
void RunClient(const std::string& socket_path, const std::string& tenant,
               bool chaotic, int requests, uint64_t seed,
               std::mutex* stats_mu, PhaseStats* stats) {
  FaultSpec torn_spec;
  torn_spec.serve_torn_prob = chaotic ? 0.25 : 0.0;
  torn_spec.seed = seed;
  FaultInjector torn(torn_spec);

  std::vector<double> latencies;
  int64_t ok = 0, shed = 0, deadline = 0, crashes = 0, torn_sent = 0;

  int fd = ConnectClient(socket_path);
  if (fd < 0) {
    std::lock_guard<std::mutex> lock(*stats_mu);
    ++stats->crashes;
    return;
  }
  auto stream = std::make_unique<FdStream>(fd, /*owns_fd=*/true);

  for (int r = 0; r < requests; ++r) {
    EvalRequest req;
    req.tenant = tenant;
    req.request_id = seed * 1000000 + static_cast<uint64_t>(r);
    req.ways = 3;
    req.shots = 2;
    req.candidates_per_class = 4;
    req.num_queries = 4;
    req.query_batch = 2;
    req.trials = 1;
    req.seed = req.request_id + 1;
    if (chaotic) {
      req.fault_spec = "embed_nan=0.4,serve_fail=0.15,seed=" +
                       std::to_string(seed + 31);
    } else {
      // Clean traffic carries a generous explicit budget; the soak gate
      // requires zero deadline violations for these tenants.
      req.deadline_us = 10'000'000;
    }
    Frame frame;
    frame.type = FrameType::kEvalRequest;
    frame.payload = EncodeEvalRequest(req);
    const std::string wire = EncodeFrame(frame);

    const int64_t torn_bytes = torn.TornFrameBytes(wire.size());
    if (torn_bytes >= 0) {
      (void)stream->Write(wire.data(), static_cast<size_t>(torn_bytes));
      ++torn_sent;
      const int new_fd = ConnectClient(socket_path);
      if (new_fd < 0) {
        ++crashes;
        break;
      }
      stream = std::make_unique<FdStream>(new_fd, /*owns_fd=*/true);
      --r;  // retry on the fresh connection
      continue;
    }

    Stopwatch sw;
    if (!stream->Write(wire.data(), wire.size()).ok()) {
      ++crashes;
      break;
    }
    auto reply = ReadFrame(stream.get());
    if (!reply.ok()) {
      ++crashes;
      break;
    }
    auto resp = DecodeEvalResponse(reply->payload);
    if (!resp.ok() || resp->request_id != req.request_id) {
      ++crashes;
      break;
    }
    const double us = sw.ElapsedMicros();
    const auto code = static_cast<StatusCode>(resp->status_code);
    if (code == StatusCode::kOk) {
      ++ok;
      if (!chaotic) latencies.push_back(us);
    } else if (code == StatusCode::kUnavailable) {
      // Shed by admission control or retry exhaustion — allowed for any
      // tenant under load; not a contract violation.
      ++shed;
    } else if (code == StatusCode::kDeadlineExceeded) {
      if (!chaotic) ++deadline;
    } else if (!chaotic) {
      // Clean traffic must never see any other error.
      ++crashes;
    }
  }

  std::lock_guard<std::mutex> lock(*stats_mu);
  stats->latency_us.insert(stats->latency_us.end(), latencies.begin(),
                           latencies.end());
  stats->ok += ok;
  stats->shed += shed;
  stats->deadline_violations += deadline;
  stats->crashes += crashes;
  stats->torn_frames_sent += torn_sent;
}

// Runs one phase against a fresh server (fresh tenants, so the
// cross-tenant accounting starts from zero) and returns its stats plus
// the final per-tenant snapshot.
PhaseStats RunPhase(const GraphPrompterModel& model,
                    const DatasetBundle& dataset, const ServingOptions& opt,
                    bool chaos, uint64_t seed,
                    std::vector<PromptServer::TenantSnapshot>* snapshot) {
  ServeConfig sc;
  sc.workers = opt.workers;
  sc.queue_capacity = std::max(16, opt.tenants * 4);
  sc.default_deadline_us = 5'000'000;
  sc.breaker.trip_threshold = 3;
  sc.breaker.cooldown_requests = 8;
  PromptServer server(&model, &dataset, sc);

  const std::string path =
      "/tmp/gp_bench_serving_" + std::to_string(::getpid()) +
      (chaos ? "_chaos" : "_clean") + ".sock";
  ::unlink(path.c_str());

  std::atomic<bool> server_failed{false};
  std::thread server_thread([&] {
    const Status status = server.ServeUnixSocket(path);
    if (!status.ok()) {
      std::fprintf(stderr, "bench_serving: server error: %s\n",
                   status.ToString().c_str());
      server_failed.store(true);
    }
  });

  const int total = chaos ? opt.chaos_requests : opt.clean_requests;
  const int per_tenant = std::max(1, total / opt.tenants);

  PhaseStats stats;
  std::mutex stats_mu;
  Stopwatch phase_timer;
  std::vector<std::thread> clients;
  for (int t = 0; t < opt.tenants; ++t) {
    const bool chaotic = chaos && t == opt.tenants - 1;
    clients.emplace_back(RunClient, path, "tenant-" + std::to_string(t),
                         chaotic, per_tenant, seed + static_cast<uint64_t>(t),
                         &stats_mu, &stats);
  }
  for (std::thread& c : clients) c.join();
  stats.elapsed_s = phase_timer.ElapsedSeconds();

  server.RequestDrain();
  server_thread.join();
  *snapshot = server.SnapshotTenants();
  if (server_failed.load()) ++stats.crashes;
  ::unlink(path.c_str());
  return stats;
}

void Run(const bench::Env& env, const ServingOptions& opt,
         BenchReporter* report) {
  DatasetBundle dataset = MakeArxivSim(env.scale, env.seed + 1);
  GraphPrompterConfig config =
      FullGraphPrompterConfig(dataset.graph.feature_dim(), env.seed + 2);
  // Keep per-request work small so the soak covers many requests (and many
  // breaker trip/recover cycles) rather than a few slow evaluations.
  config.embedding_dim = 24;
  config.sampler.max_nodes = 12;
  CHECK_OK(Validate(config));
  auto model = bench::MakePretrained(config, dataset, env);

  report->AddConfig("tenants", static_cast<int64_t>(opt.tenants));
  report->AddConfig("serve_requests", static_cast<int64_t>(opt.chaos_requests));
  report->AddConfig("clean_requests", static_cast<int64_t>(opt.clean_requests));
  report->AddConfig("workers", static_cast<int64_t>(opt.workers));

  // ---- Phase 1: clean throughput / latency -------------------------------
  std::vector<PromptServer::TenantSnapshot> clean_snapshot;
  PhaseStats clean = RunPhase(*model, dataset, opt, /*chaos=*/false,
                              env.seed + 100, &clean_snapshot);
  const double clean_rps =
      clean.elapsed_s > 0 ? static_cast<double>(clean.ok) / clean.elapsed_s
                          : 0.0;
  const double p50 = Quantile(&clean.latency_us, 0.50);
  const double p99 = Quantile(&clean.latency_us, 0.99);
  report->AddMetric("serve/clean/rps", clean_rps, "req/s");
  report->AddMetric("serve/clean/p50_us", p50, "us");
  report->AddMetric("serve/clean/p99_us", p99, "us");
  report->AddMetric("serve/clean/ok", static_cast<double>(clean.ok), "req");
  report->AddMetric("serve/clean/shed", static_cast<double>(clean.shed),
                    "req");

  // ---- Phase 2: chaos soak ----------------------------------------------
  std::vector<PromptServer::TenantSnapshot> chaos_snapshot;
  PhaseStats chaos = RunPhase(*model, dataset, opt, /*chaos=*/true,
                              env.seed + 200, &chaos_snapshot);
  const double chaos_rps =
      chaos.elapsed_s > 0 ? static_cast<double>(chaos.ok) / chaos.elapsed_s
                          : 0.0;

  // Cross-tenant bleed: degradation or breaker trips charged to any tenant
  // other than the chaotic one ("tenant-<last>").
  const std::string chaos_tenant =
      "tenant-" + std::to_string(opt.tenants - 1);
  int64_t bleed = 0;
  int64_t chaos_tenant_degradation = 0;
  int64_t chaos_tenant_trips = 0;
  for (const auto& t : chaos_snapshot) {
    if (t.name == chaos_tenant) {
      chaos_tenant_degradation = t.degradation_events;
      chaos_tenant_trips = t.breaker_trips;
    } else {
      bleed += t.degradation_events + t.breaker_trips;
    }
  }

  report->AddMetric("serve/chaos/rps", chaos_rps, "req/s");
  report->AddMetric("serve/chaos/ok", static_cast<double>(chaos.ok), "req");
  report->AddMetric("serve/chaos/shed", static_cast<double>(chaos.shed),
                    "req");
  report->AddMetric("serve/chaos/torn_frames_sent",
                    static_cast<double>(chaos.torn_frames_sent), "frames");
  report->AddMetric("serve/chaos/faulty_tenant_degradation_events",
                    static_cast<double>(chaos_tenant_degradation), "events");
  report->AddMetric("serve/chaos/faulty_tenant_breaker_trips",
                    static_cast<double>(chaos_tenant_trips), "trips");
  // The three gates tools/check_serving requires to be exactly zero:
  report->AddMetric("serve/chaos/cross_tenant_degradation_events",
                    static_cast<double>(bleed), "events");
  report->AddMetric("serve/chaos/crashes",
                    static_cast<double>(clean.crashes + chaos.crashes),
                    "crashes");
  report->AddMetric("serve/chaos/clean_tenant_deadline_violations",
                    static_cast<double>(chaos.deadline_violations +
                                        clean.deadline_violations),
                    "req");

  TablePrinter table({"phase", "ok", "shed", "rps", "p50 us", "p99 us"});
  table.AddRow({"clean", std::to_string(clean.ok), std::to_string(clean.shed),
                TablePrinter::Num(clean_rps), TablePrinter::Num(p50),
                TablePrinter::Num(p99)});
  table.AddRow({"chaos", std::to_string(chaos.ok), std::to_string(chaos.shed),
                TablePrinter::Num(chaos_rps), "-", "-"});
  std::printf("\nServing throughput, %d tenants (%s):\n", opt.tenants,
              dataset.name.c_str());
  table.Print();
  bench::WriteCsvOrWarn(table, env.outdir + "/serving.csv");

  std::printf(
      "\nChaos soak: %lld ok, %lld shed, %lld torn frames; faulty tenant "
      "degradation=%lld trips=%lld; cross-tenant bleed=%lld crashes=%lld "
      "clean deadline violations=%lld\n",
      static_cast<long long>(chaos.ok), static_cast<long long>(chaos.shed),
      static_cast<long long>(chaos.torn_frames_sent),
      static_cast<long long>(chaos_tenant_degradation),
      static_cast<long long>(chaos_tenant_trips),
      static_cast<long long>(bleed),
      static_cast<long long>(clean.crashes + chaos.crashes),
      static_cast<long long>(chaos.deadline_violations +
                             clean.deadline_violations));
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  gp::ServingOptions opt;
  opt.tenants = static_cast<int>(flags.GetInt("tenants", opt.tenants));
  opt.chaos_requests =
      static_cast<int>(flags.GetInt("serve-requests", opt.chaos_requests));
  opt.clean_requests =
      static_cast<int>(flags.GetInt("clean-requests", opt.clean_requests));
  opt.workers = static_cast<int>(flags.GetInt("workers", opt.workers));
  if (opt.tenants < 2) opt.tenants = 2;

  const gp::bench::Env env = gp::bench::ParseEnv(argc, argv);
  gp::BenchReporter report("serving");
  report.AddConfig("scale", env.scale);
  report.AddConfig("pretrain_steps",
                   static_cast<int64_t>(env.pretrain_steps));
  report.AddConfig("seed", static_cast<int64_t>(env.seed));

  gp::Run(env, opt, &report);

  const gp::Status status = report.WriteJson(env.outdir);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  const gp::Status obs_status = gp::ExportConfiguredObservability();
  if (!obs_status.ok()) {
    std::fprintf(stderr, "warning: %s\n", obs_status.ToString().c_str());
  }
  return 0;
}
