// Table V: generalisation to many classes — FB15K-237 and NELL with ways
// in {50, 60, 80, 100}, 3-shot. This is the regime motivating the Prompt
// Augmenter: the pre-training episodes use far fewer classes than the
// downstream task. Methods: Prodigy, ProG, GraphPrompter.

#include "bench_common.h"

#include "baselines/prog_lite.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Table V: many-way generalisation (3-shot) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);

  auto ours = MakePretrained(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2), wiki,
      env);
  auto prodigy = MakePretrained(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2), wiki, env);

  ProgLiteConfig prog_config;
  prog_config.feature_dim = wiki.graph.feature_dim();
  prog_config.seed = env.seed + 3;
  ProgLiteModel prog(prog_config);
  ProgPretrainConfig ppre;
  ppre.steps = env.pretrain_steps;
  ppre.seed = env.seed + 4;
  PretrainProgLite(&prog, wiki, ppre);
  std::printf("  [pretrained ProG prompt token]\n");

  TablePrinter table(
      {"Dataset", "Classes", "Prodigy", "ProG", "GraphPrompter"});
  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 5));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 6));
  for (const auto& dataset : datasets) {
    for (int ways : {50, 60, 80, 100}) {
      const EvalConfig eval = DefaultEval(env, ways);
      const auto r_prodigy = EvaluateInContext(*prodigy, dataset, eval);
      const auto r_prog =
          EvaluateProgLite(prog, dataset, eval, ProgTuneConfig{});
      const auto r_ours = EvaluateInContext(*ours, dataset, eval);
      table.AddRow({dataset.name, std::to_string(ways),
                    Cell(r_prodigy.accuracy_percent),
                    Cell(r_prog.accuracy_percent),
                    Cell(r_ours.accuracy_percent)});
      std::printf("  %s ways=%d done (ours %.2f%%, prodigy %.2f%%)\n",
                  dataset.name.c_str(), ways, r_ours.accuracy_percent.mean,
                  r_prodigy.accuracy_percent.mean);
      const std::string cell =
          dataset.name + "/ways=" + std::to_string(ways);
      report->AddMetric(cell + "/graphprompter",
                        r_ours.accuracy_percent.mean, "%");
      report->AddMetric(cell + "/prodigy", r_prodigy.accuracy_percent.mean,
                        "%");
    }
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/table5_manyways.csv");

  std::printf(
      "\nPaper reference (Table V, GraphPrompter vs Prodigy):\n"
      "  FB15K 50/60/80/100: 62.74/53.95/42.96/28.03 vs"
      " 55.34/49.54/37.06/27.39\n"
      "  NELL  50/60/80/100: 66.36/61.16/53.73/35.95 vs"
      " 56.72/50.25/40.64/28.47\n"
      "Expected shape: ours > Prodigy > ProG; decline as ways grow; margin\n"
      "from the augmenter persists into the many-way regime.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("table5_manyways", argc, argv, gp::bench::Run);
}
