// Table IV: in-context relation classification on ConceptNet (4-way),
// FB15K-237 and NELL (ways in {5, 10, 20, 40}), 3-shot prompts. Models are
// pre-trained on the Wiki-style KG, whose node and relation vocabulary is
// disjoint from every downstream KG.

#include "bench_common.h"

#include "baselines/contrastive.h"
#include "baselines/finetune.h"
#include "baselines/no_pretrain.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Table IV: KG edge classification (3-shot) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  std::printf("pretrain: %s\n", wiki.graph.DebugString().c_str());

  auto ours = MakePretrained(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2), wiki,
      env);
  auto prodigy = MakePretrained(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2), wiki, env);

  ContrastiveEncoder contrastive(wiki.graph.feature_dim(), 64,
                                 SamplerConfig{}, env.seed + 3);
  ContrastivePretrainConfig cpre;
  cpre.steps = env.pretrain_steps;
  cpre.seed = env.seed + 4;
  PretrainContrastive(&contrastive, wiki, cpre);
  std::printf("  [pretrained contrastive encoder]\n");

  TablePrinter table({"Dataset", "Classes", "NoPretrain", "Contrastive",
                      "Finetune", "Prodigy", "GraphPrompter"});

  struct Setting {
    DatasetBundle dataset;
    std::vector<int> ways;
  };
  std::vector<Setting> settings;
  settings.push_back({MakeConceptNetSim(env.scale, env.seed + 5), {4}});
  settings.push_back(
      {MakeFb15kSim(env.scale, env.seed + 6), {5, 10, 20, 40}});
  settings.push_back(
      {MakeNellSim(env.scale, env.seed + 7), {5, 10, 20, 40}});

  for (const auto& [dataset, way_list] : settings) {
    for (int ways : way_list) {
      const EvalConfig eval = DefaultEval(env, ways);
      const auto r_nopre = EvaluateNoPretrain(dataset, eval, env.seed + 9);
      const auto r_contrast = EvaluateContrastive(contrastive, dataset, eval);
      const auto r_finetune =
          EvaluateFinetune(contrastive, dataset, eval, FinetuneConfig{});
      const auto r_prodigy = EvaluateInContext(*prodigy, dataset, eval);
      const auto r_ours = EvaluateInContext(*ours, dataset, eval);
      table.AddRow({dataset.name, std::to_string(ways),
                    Cell(r_nopre.accuracy_percent),
                    Cell(r_contrast.accuracy_percent),
                    Cell(r_finetune.accuracy_percent),
                    Cell(r_prodigy.accuracy_percent),
                    Cell(r_ours.accuracy_percent)});
      std::printf("  %s ways=%d done (ours %.2f%%, prodigy %.2f%%)\n",
                  dataset.name.c_str(), ways, r_ours.accuracy_percent.mean,
                  r_prodigy.accuracy_percent.mean);
      const std::string cell =
          dataset.name + "/ways=" + std::to_string(ways);
      report->AddMetric(cell + "/graphprompter",
                        r_ours.accuracy_percent.mean, "%");
      report->AddMetric(cell + "/prodigy", r_prodigy.accuracy_percent.mean,
                        "%");
    }
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/table4_kg.csv");

  std::printf(
      "\nPaper reference (Table IV, GraphPrompter vs Prodigy):\n"
      "  ConceptNet 4-way: 58.46 vs 53.97\n"
      "  FB15K-237  5/10/20/40: 99.65/89.52/83.78/66.94 vs"
      " 88.02/81.10/72.04/59.58\n"
      "  NELL       5/10/20/40: 93.34/87.47/81.46/75.74 vs"
      " 87.02/81.06/72.66/60.02\n"
      "Expected shape: ours > Prodigy everywhere; monotone decline in ways.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("table4_kg", argc, argv, gp::bench::Run);
}
