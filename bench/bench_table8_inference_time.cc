// Table VIII: inference time per query (ms) on FB15K-237 and NELL with
// 10/20/40 classes — Prodigy vs GraphPrompter. Uses google-benchmark for
// the timing loop. The paper reports GraphPrompter costing ~2-3x Prodigy
// per query (N-candidate retrieval + 2k prompts in the task graph).
//
// Measured per iteration: embed one query's data graph, run the task graph
// over the already-selected prompts (plus cached pseudo-prompts for
// GraphPrompter), and update the cache.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cinttypes>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp::bench {
namespace {

// Everything an inference step needs, prepared once per (method, ways).
struct EpisodeContext {
  std::unique_ptr<GraphPrompterModel> model;
  DatasetBundle dataset;
  FewShotTask task;
  Tensor prompt_emb;                 // refined prompt set S-hat
  std::vector<int> prompt_labels;
  std::unique_ptr<PromptAugmenter> augmenter;
  std::vector<int> query_pool;       // item ids to cycle through
  int ways = 0;
  Rng rng{12345};
};

// Globals keyed by (is_ours, ways); built lazily so each combination
// pretrains exactly once even though benchmarks re-enter.
EpisodeContext* GetContext(bool is_ours, int ways, const Env& env) {
  static std::map<std::pair<bool, int>, std::unique_ptr<EpisodeContext>>
      contexts;
  auto key = std::make_pair(is_ours, ways);
  auto it = contexts.find(key);
  if (it != contexts.end()) return it->second.get();

  auto ctx = std::make_unique<EpisodeContext>();
  ctx->ways = ways;
  static DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  ctx->dataset = MakeFb15kSim(env.scale, env.seed + 3);

  GraphPrompterConfig config =
      is_ours ? FullGraphPrompterConfig(wiki.graph.feature_dim(),
                                        env.seed + 2)
              : ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2);
  ctx->model = MakePretrained(config, wiki, env);

  // Build one episode and run the selection stage once (its cost is
  // amortised over all of an episode's queries in Algorithm 2).
  NoGradGuard no_grad;
  EpisodeSampler sampler(&ctx->dataset);
  EpisodeConfig episode;
  episode.ways = ways;
  episode.candidates_per_class = 10;
  episode.num_queries = 16;
  auto task_or = sampler.Sample(episode, &ctx->rng);
  CHECK_OK(task_or.status());
  ctx->task = *task_or;

  std::vector<int> cand_items, cand_labels;
  for (const auto& ex : ctx->task.candidates) {
    cand_items.push_back(ex.item);
    cand_labels.push_back(ex.label);
  }
  Tensor cand_emb =
      ctx->model->generator().EmbedItems(ctx->dataset, cand_items, &ctx->rng);
  std::vector<int> query_items;
  for (const auto& ex : ctx->task.queries) query_items.push_back(ex.item);
  Tensor query_emb =
      ctx->model->generator().EmbedItems(ctx->dataset, query_items, &ctx->rng);

  std::vector<int> selected;
  if (is_ours) {
    Tensor cand_imp = ctx->model->selection().Importance(cand_emb);
    Tensor query_imp = ctx->model->selection().Importance(query_emb);
    KnnConfig knn;
    knn.shots = 3;
    const auto sel = SelectPrompts(cand_emb, cand_imp, cand_labels,
                                   query_emb, query_imp, ways, knn);
    selected = sel.selected;
    cand_emb = RowScale(cand_emb, cand_imp);
  } else {
    for (int cls = 0; cls < ways; ++cls) {
      int kept = 0;
      for (size_t p = 0; p < cand_labels.size() && kept < 3; ++p) {
        if (cand_labels[p] == cls) {
          selected.push_back(static_cast<int>(p));
          ++kept;
        }
      }
    }
  }
  ctx->prompt_emb = GatherRows(cand_emb, selected);
  for (int p : selected) ctx->prompt_labels.push_back(cand_labels[p]);

  ctx->augmenter = std::make_unique<PromptAugmenter>(
      ctx->model->config().augmenter, env.seed + 99);
  for (const auto& ex : ctx->task.queries) ctx->query_pool.push_back(ex.item);

  contexts[key] = std::move(ctx);
  return contexts[key].get();
}

Env* g_env = nullptr;

// One iteration = one query through the full inference path.
void BM_InferencePerQuery(benchmark::State& state) {
  const bool is_ours = state.range(0) == 1;
  const int ways = static_cast<int>(state.range(1));
  EpisodeContext* ctx = GetContext(is_ours, ways, *g_env);
  NoGradGuard no_grad;
  size_t cursor = 0;
  for (auto _ : state) {
    const int item = ctx->query_pool[cursor++ % ctx->query_pool.size()];
    Tensor query_emb =
        ctx->model->generator().EmbedItems(ctx->dataset, {item}, &ctx->rng);

    Tensor prompts = ctx->prompt_emb;
    std::vector<int> labels = ctx->prompt_labels;
    if (is_ours) {
      const auto cached = ctx->augmenter->GetCachedPrompts(
          ctx->model->config().embedding_dim);
      if (cached.embeddings.rows() > 0) {
        prompts = ConcatRows({prompts, cached.embeddings});
        labels.insert(labels.end(), cached.labels.begin(),
                      cached.labels.end());
      }
    }
    const auto out = ctx->model->task_net().Forward(prompts, labels,
                                                    query_emb, ctx->ways);
    const auto pred = ArgmaxRows(out.query_scores);
    benchmark::DoNotOptimize(pred);
    if (is_ours) {
      ctx->augmenter->ObserveQueries(query_emb, pred, {0.9f}, 1);
    }
  }
  state.counters["ms_per_query"] = benchmark::Counter(
      1e3 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}

// One per-config measurement, captured from the google-benchmark run so
// the results can be written as CSV + JSON for perf-trajectory tracking.
struct CapturedRun {
  std::string method;
  int ways = 0;
  double ms_per_query = 0.0;
  int64_t iterations = 0;
};

// Forwards to the console reporter for the usual human-readable output
// while recording each run's adjusted per-iteration wall time.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      const std::string name = run.benchmark_name();
      CapturedRun captured;
      captured.method = name.find("GraphPrompter") != std::string::npos
                            ? "GraphPrompter"
                            : "Prodigy";
      const size_t ways_pos = name.find("ways:");
      if (ways_pos != std::string::npos) {
        captured.ways = std::atoi(name.c_str() + ways_pos + 5);
      }
      captured.ms_per_query = run.GetAdjustedRealTime();  // kMillisecond unit
      captured.iterations = run.iterations;
      results.push_back(captured);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<CapturedRun> results;
};

void WriteResults(const std::vector<CapturedRun>& results, const Env& env) {
  TablePrinter table({"method", "ways", "ms_per_query", "iterations",
                      "threads"});
  BenchReporter report("table8_inference_time");
  report.AddConfig("scale", env.scale);
  report.AddConfig("seed", static_cast<int64_t>(env.seed));
  report.AddConfig("threads", static_cast<int64_t>(env.threads));
  for (const CapturedRun& run : results) {
    table.AddRow({run.method, std::to_string(run.ways),
                  TablePrinter::Num(run.ms_per_query, 4),
                  std::to_string(run.iterations),
                  std::to_string(env.threads)});
    const std::string cell =
        run.method + "/ways=" + std::to_string(run.ways);
    report.AddMetric(cell + "/ms_per_query", run.ms_per_query, "ms");
    report.AddMetric(cell + "/iterations",
                     static_cast<double>(run.iterations), "iters");
  }
  WriteCsvOrWarn(table, env.outdir + "/table8_inference_time.csv");
  const Status status = report.WriteJson(env.outdir);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
}

}  // namespace
}  // namespace gp::bench

int main(int argc, char** argv) {
  gp::bench::Env env = gp::bench::ParseEnv(argc, argv);
  env.pretrain_steps = std::min(env.pretrain_steps, 150);  // timing only
  gp::bench::g_env = &env;

  for (int ours : {0, 1}) {
    for (int ways : {10, 20, 40}) {
      std::string name = std::string("BM_InferencePerQuery/") +
                         (ours ? "GraphPrompter" : "Prodigy") + "/ways:" +
                         std::to_string(ways);
      benchmark::RegisterBenchmark(name.c_str(),
                                   gp::bench::BM_InferencePerQuery)
          ->Args({ours, ways})
          ->Unit(benchmark::kMillisecond)
          ->MinTime(0.5);
    }
  }
  // Our own flags (--scale etc.) are not google-benchmark flags; pass a
  // bare argv so Initialize does not reject them.
  int bench_argc = 1;
  benchmark::Initialize(&bench_argc, argv);
  gp::bench::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  gp::bench::WriteResults(reporter.results, env);
  const gp::Status obs_status = gp::ExportConfiguredObservability();
  if (!obs_status.ok()) {
    std::fprintf(stderr, "warning: %s\n", obs_status.ToString().c_str());
  }

  std::printf(
      "\nPaper reference (Table VIII, FB15K-237 / NELL, ms per query):\n"
      "  Prodigy       10: 34/26   20: 68/42   40: 106/82\n"
      "  GraphPrompter 10: 90/80   20: 150/120 40: 280/240\n"
      "Expected shape: GraphPrompter costs ~2-3x Prodigy per query, growing\n"
      "with the class count. Absolute values differ (CPU vs A100 setup).\n");
  return 0;
}
