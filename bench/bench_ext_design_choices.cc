// Extension ablations beyond the paper's figures — the pluggable design
// choices its Further Discussion calls out:
//   * retrieval distance metric     (cosine / Euclidean / Manhattan, Eq. 6)
//   * prompt selector               (kNN voting vs k-means clustering)
//   * reconstruction network        (MLP vs bilinear, Eq. 2)
//   * augmenter cache policy        (LFU vs LRU vs FIFO)
// Evaluated on FB15K-237-sim, 3-shot, 10-way and 20-way.

#include "bench_common.h"

#include "nn/serialize.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Extension: design-choice ablations ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  DatasetBundle fb = MakeFb15kSim(env.scale, env.seed + 3);

  const GraphPrompterConfig base =
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);
  auto trained = MakePretrained(base, wiki, env);
  const std::string ckpt = env.outdir + "/ext_model.ckpt";
  CHECK_OK(SaveModule(*trained, ckpt));

  // Inference-only variants share the trained weights; the bilinear
  // reconstruction changes the architecture and trains its own model.
  struct Variant {
    std::string group;
    std::string name;
    GraphPrompterConfig config;
    bool retrain;
  };
  std::vector<Variant> variants;
  variants.push_back({"metric", "cosine (paper)", base, false});
  {
    GraphPrompterConfig c = base;
    c.metric = DistanceMetric::kEuclidean;
    variants.push_back({"metric", "euclidean", c, false});
    c.metric = DistanceMetric::kManhattan;
    variants.push_back({"metric", "manhattan", c, false});
  }
  {
    GraphPrompterConfig c = base;
    c.selector = SelectorKind::kClustering;
    variants.push_back({"selector", "kmeans-clustering", c, false});
  }
  {
    GraphPrompterConfig c = base;
    c.recon_arch = ReconArch::kBilinear;
    variants.push_back({"reconstruction", "bilinear", c, true});
  }
  {
    GraphPrompterConfig c = base;
    c.augmenter.policy = CachePolicy::kLru;
    variants.push_back({"cache", "LRU", c, false});
    c.augmenter.policy = CachePolicy::kFifo;
    variants.push_back({"cache", "FIFO", c, false});
  }

  TablePrinter table({"group", "variant", "10-way acc %", "20-way acc %"});
  for (const auto& variant : variants) {
    std::unique_ptr<GraphPrompterModel> model;
    if (variant.retrain) {
      model = MakePretrained(variant.config, wiki, env);
    } else {
      model = std::make_unique<GraphPrompterModel>(variant.config);
      CHECK_OK(LoadModule(model.get(), ckpt));
    }
    std::vector<std::string> row = {variant.group, variant.name};
    for (int ways : {10, 20}) {
      const EvalConfig eval = DefaultEval(env, ways);
      const auto result = EvaluateInContext(*model, fb, eval);
      row.push_back(Cell(result.accuracy_percent));
      report->AddMetric(variant.group + "/" + variant.name + "/ways=" +
                            std::to_string(ways),
                        result.accuracy_percent.mean, "%");
    }
    table.AddRow(row);
    std::printf("  %s/%s done\n", variant.group.c_str(),
                variant.name.c_str());
  }
  std::printf("\nMeasured (this reproduction, FB15K-237-sim):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/ext_design_choices.csv");

  std::printf(
      "\nExpectation (paper Further Discussion): the framework is robust to\n"
      "these substitutions — metric and cache-policy variants land within a\n"
      "few points of the defaults; the kNN-voting selector and MLP\n"
      "reconstruction are the reference configuration.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("ext_design_choices", argc, argv,
                              gp::bench::Run);
}
