// Shared scaffolding for the benchmark harnesses (one binary per paper
// table/figure). Every bench accepts:
//   --scale=F     dataset scale multiplier        (default 0.45)
//   --steps=N     pretraining steps               (default 250)
//   --trials=N    episodes averaged per cell      (default 3)
//   --queries=N   test queries per episode        (default 50; paper 500)
//   --seed=N      master seed                     (default 1)
//   --threads=N   worker threads for parallel kernels
//                 (default GP_NUM_THREADS env, else hardware concurrency;
//                 results are bitwise identical at any thread count)
//   --outdir=DIR  CSV output directory            (default "results")
//   --telemetry=PATH  write a telemetry snapshot (JSON, or CSV by
//                 extension) at exit; GP_TELEMETRY env is the fallback
//   --trace=PATH  record trace spans and write Chrome trace JSON (or CSV
//                 by extension) at exit; GP_TRACE env is the fallback
//   --index=MODE  retrieval index: exact | ivf | auto (default auto), with
//                 --nlist/--nprobe/--index-min-points/--index-recall-sample/
//                 --quantize/--rerank refinements; GP_INDEX* env vars are
//                 the fallbacks
//   --simd=LEVEL  distance/GEMM kernels: auto | avx2 | off (default auto;
//                 GP_SIMD env is the fallback — see DESIGN.md §10)
// Results are printed as paper-style tables and written as CSV. Every
// binary additionally writes <outdir>/BENCH_<name>.json (schema in
// obs/bench_report.h): config, per-stage span timings, telemetry
// counters, and its headline accuracy metrics.

#ifndef GRAPHPROMPTER_BENCH_BENCH_COMMON_H_
#define GRAPHPROMPTER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>

#include "baselines/prodigy.h"
#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "obs/bench_report.h"
#include "obs/export.h"
#include "util/cpuid.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace gp {
namespace bench {

struct Env {
  double scale = 0.45;
  int pretrain_steps = 250;
  int trials = 3;
  int queries = 50;
  uint64_t seed = 1;
  int threads = 0;  // resolved to the actual pool size by ParseEnv
  std::string outdir = "results";
  std::string telemetry_path;  // empty = GP_TELEMETRY env, else disabled
  std::string trace_path;      // empty = GP_TRACE env, else disabled
  PromptIndexOptions index;    // resolved flag/env index options
  SimdLevel simd = SimdLevel::kScalar;  // resolved --simd/GP_SIMD level
};

inline Env ParseEnv(int argc, char** argv) {
  Flags flags(argc, argv);
  Env env;
  env.scale = flags.GetDouble("scale", env.scale);
  env.pretrain_steps =
      static_cast<int>(flags.GetInt("steps", env.pretrain_steps));
  env.trials = static_cast<int>(flags.GetInt("trials", env.trials));
  env.queries = static_cast<int>(flags.GetInt("queries", env.queries));
  env.seed = static_cast<uint64_t>(
      flags.GetInt("seed", static_cast<int64_t>(env.seed)));
  const int threads = static_cast<int>(flags.GetInt("threads", 0));
  if (threads > 0) SetNumThreads(threads);
  env.threads = NumThreads();
  env.outdir = flags.GetString("outdir", env.outdir);
  std::filesystem::create_directories(env.outdir);
  env.telemetry_path = flags.GetString("telemetry", env.telemetry_path);
  env.trace_path = flags.GetString("trace", env.trace_path);
  env.index = ConfigureIndexFromFlags(flags);
  env.simd = ConfigureSimdFromFlags(flags);
  ConfigureObservability(env.telemetry_path, env.trace_path);
  return env;
}

// Standard main() body for a bench binary: parses flags, runs `run` with a
// reporter, then writes <outdir>/BENCH_<name>.json plus any configured
// telemetry/trace exports. Keeps every binary's export path identical.
inline int BenchMain(const std::string& name, int argc, char** argv,
                     void (*run)(const Env&, BenchReporter*)) {
  const Env env = ParseEnv(argc, argv);
  BenchReporter report(name);
  report.AddConfig("scale", env.scale);
  report.AddConfig("pretrain_steps", static_cast<int64_t>(env.pretrain_steps));
  report.AddConfig("trials", static_cast<int64_t>(env.trials));
  report.AddConfig("queries", static_cast<int64_t>(env.queries));
  report.AddConfig("seed", static_cast<int64_t>(env.seed));
  report.AddConfig("threads", static_cast<int64_t>(env.threads));
  report.AddConfig("index_mode", std::string(IndexModeName(env.index.mode)));
  report.AddConfig("index_nlist", static_cast<int64_t>(env.index.nlist));
  report.AddConfig("index_nprobe", static_cast<int64_t>(env.index.nprobe));
  report.AddConfig("index_quantize", static_cast<int64_t>(env.index.quantize));
  report.AddConfig("simd", std::string(SimdLevelName(env.simd)));
  run(env, &report);
  const Status status = report.WriteJson(env.outdir);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  const Status obs_status = ExportConfiguredObservability();
  if (!obs_status.ok()) {
    std::fprintf(stderr, "warning: %s\n", obs_status.ToString().c_str());
  }
  return 0;
}

inline PretrainConfig DefaultPretrain(const Env& env) {
  PretrainConfig config;
  config.steps = env.pretrain_steps;
  config.ways = 5;
  config.shots = 3;
  config.queries_per_task = 4;
  config.seed = env.seed + 1000;
  return config;
}

// Builds and pre-trains a model with the given config on `dataset`.
inline std::unique_ptr<GraphPrompterModel> MakePretrained(
    const GraphPrompterConfig& config, const DatasetBundle& dataset,
    const Env& env) {
  auto model = std::make_unique<GraphPrompterModel>(config);
  Stopwatch timer;
  Pretrain(model.get(), dataset, DefaultPretrain(env));
  std::printf("  [pretrained %s-config model on %s in %.1fs]\n",
              config.random_prompt_selection ? "prodigy" : "graphprompter",
              dataset.name.c_str(), timer.ElapsedSeconds());
  return model;
}

inline EvalConfig DefaultEval(const Env& env, int ways, int shots = 3) {
  EvalConfig eval;
  eval.ways = ways;
  eval.shots = shots;
  eval.candidates_per_class = 10;  // N = 10 (Sec. V-A2)
  eval.num_queries = env.queries;
  eval.trials = env.trials;
  eval.seed = env.seed + 77 * ways + shots;
  return eval;
}

inline std::string Cell(const MeanStd& ms) {
  return TablePrinter::MeanStd(ms.mean, ms.std);
}

inline void WriteCsvOrWarn(const TablePrinter& table,
                           const std::string& path) {
  const Status status = table.WriteCsv(path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

inline void WriteCsvOrWarn(const SeriesWriter& series,
                           const std::string& path) {
  const Status status = series.WriteCsv(path);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  } else {
    std::printf("wrote %s\n", path.c_str());
  }
}

}  // namespace bench
}  // namespace gp

#endif  // GRAPHPROMPTER_BENCH_BENCH_COMMON_H_
