// Fault-recovery benchmark: runs in-context evaluation under a ladder of
// injected fault regimes and reports accuracy alongside the degradation
// counters, demonstrating that every injected fault is either recovered
// (a counter increments) or surfaced as a typed Status — never a crash or
// a NaN accuracy. Also exercises the checkpoint integrity frame against
// file-level corruption.
//
//   ./bench/bench_fault_recovery [--scale=0.45] [--steps=250]
//                                [--fault=embed_nan=0.3,seed=7]
//
// When --fault (or GP_FAULT) is set, its spec is appended to the regime
// table as an extra row.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "nn/serialize.h"
#include "util/fault.h"

namespace gp {
namespace {

struct Regime {
  const char* name;
  const char* spec;  // empty = no injection (baseline)
};

int64_t RunRegimes(const bench::Env& env, const std::string& extra_spec,
                   BenchReporter* report) {
  DatasetBundle pretrain_ds = MakeMagSim(env.scale, env.seed);
  DatasetBundle eval_ds = MakeArxivSim(env.scale, env.seed + 1);

  GraphPrompterConfig config =
      FullGraphPrompterConfig(pretrain_ds.graph.feature_dim(), env.seed + 2);
  CHECK_OK(Validate(config));
  CHECK_OK(pretrain_ds.graph.Validate());
  CHECK_OK(eval_ds.graph.Validate());
  auto model = bench::MakePretrained(config, pretrain_ds, env);

  std::vector<Regime> regimes = {
      {"clean", ""},
      {"embed_nan 10%", "embed_nan=0.1,seed=7"},
      {"embed_nan 50%", "embed_nan=0.5,seed=7"},
      {"prompt drop 30%", "prompt_drop=0.3,seed=7"},
      {"prompt dup 30%", "prompt_dup=0.3,seed=7"},
      {"cache poison", "cache_poison=0.5,seed=7"},
      {"slow batches", "slow_every=4,slow_ms=2,seed=7"},
      {"everything", "embed_nan=0.2,prompt_drop=0.2,prompt_dup=0.2,"
                     "cache_poison=0.3,slow_every=8,slow_ms=1,seed=7"},
  };
  if (!extra_spec.empty()) {
    regimes.push_back({"--fault", extra_spec.c_str()});
  }

  const EvalConfig eval = bench::DefaultEval(env, /*ways=*/5);
  TablePrinter table(
      {"fault regime", "accuracy %", "±std", "degradation events"});
  int64_t clean_events = -1;

  for (const Regime& regime : regimes) {
    auto spec_or = ParseFaultSpec(regime.spec);
    CHECK_OK(spec_or.status());
    EvalResult result;
    {
      ScopedFaultInjection scoped(*spec_or);
      result = EvaluateInContext(*model, eval_ds, eval);
    }
    // The robustness contract: accuracy is always finite, and any injected
    // fault shows up in the counters.
    CHECK(std::isfinite(result.accuracy_percent.mean));
    const int64_t events = result.degradation.TotalEvents();
    if (clean_events < 0) clean_events = events;
    table.AddRow({regime.name,
                  TablePrinter::Num(result.accuracy_percent.mean),
                  TablePrinter::Num(result.accuracy_percent.std),
                  std::to_string(events)});
    std::string key = regime.name;
    for (auto& ch : key) {
      if (ch == ' ') ch = '_';
    }
    report->AddMetric(key + "/accuracy", result.accuracy_percent.mean, "%");
    report->AddMetric(key + "/degradation_events",
                      static_cast<double>(events), "events");
    if (events > 0) {
      std::printf("  [%s]\n%s", regime.name,
                  result.degradation.ToString().c_str());
    }
  }

  std::printf("\nGraceful degradation under injected faults (%s, 5-way):\n",
              eval_ds.name.c_str());
  table.Print();
  bench::WriteCsvOrWarn(table, env.outdir + "/fault_recovery.csv");
  return clean_events;
}

void RunCheckpointCorruption(const bench::Env& env) {
  GraphPrompterConfig config = FullGraphPrompterConfig(32, env.seed + 3);
  config.embedding_dim = 16;
  GraphPrompterModel model(config);
  const std::string path = env.outdir + "/fault_recovery_ckpt.bin";

  std::printf("\nCheckpoint integrity under file corruption:\n");
  for (FileFaultMode mode : {FileFaultMode::kTruncate, FileFaultMode::kBitFlip,
                             FileFaultMode::kMagic}) {
    CHECK_OK(SaveModule(model, path));
    FaultSpec spec;
    spec.file_mode = mode;
    spec.seed = env.seed;
    CHECK_OK(FaultInjector(spec).CorruptFileBytes(path));
    GraphPrompterModel restored(config);
    const Status status = LoadModule(&restored, path);
    CHECK(!status.ok());  // corruption must never load silently
    std::printf("  %-9s -> %s\n", FileFaultModeName(mode),
                status.ToString().c_str());
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  const std::string extra_spec = flags.GetString("fault", "");
  const gp::bench::Env env = gp::bench::ParseEnv(argc, argv);

  // Hand-rolled BenchMain: this bench owns an extra --fault flag and an
  // invariant check between its two stages.
  gp::BenchReporter report("fault_recovery");
  report.AddConfig("scale", env.scale);
  report.AddConfig("pretrain_steps", static_cast<int64_t>(env.pretrain_steps));
  report.AddConfig("seed", static_cast<int64_t>(env.seed));
  if (!extra_spec.empty()) report.AddConfig("fault", extra_spec);

  const int64_t clean_events = gp::RunRegimes(env, extra_spec, &report);
  CHECK_EQ(clean_events, 0);  // the clean baseline must never degrade
  gp::RunCheckpointCorruption(env);

  const gp::Status status = report.WriteJson(env.outdir);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  const gp::Status obs_status = gp::ExportConfiguredObservability();
  if (!obs_status.ok()) {
    std::fprintf(stderr, "warning: %s\n", obs_status.ToString().c_str());
  }

  std::printf(
      "\nEvery fault regime finished with finite accuracy; recoverable\n"
      "faults incremented degradation counters and file corruption was\n"
      "rejected with typed errors.\n");
  return 0;
}
