// Fig. 9: pre-training loss and train-accuracy curves on the Wiki-style
// graph, GraphPrompter vs Prodigy. The paper's claim: the reconstruction
// and selection layers add negligible training cost — both models converge
// comparably.

#include "bench_common.h"

#include <algorithm>

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 9: pretraining curves on Wiki ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);

  PretrainConfig pretrain = DefaultPretrain(env);
  pretrain.log_every = std::max(1, pretrain.steps / 20);

  GraphPrompterModel ours(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2));
  Stopwatch ours_timer;
  const auto ours_curves = Pretrain(&ours, wiki, pretrain);
  const double ours_seconds = ours_timer.ElapsedSeconds();

  GraphPrompterModel prodigy(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2));
  Stopwatch prodigy_timer;
  const auto prodigy_curves = Pretrain(&prodigy, wiki, pretrain);
  const double prodigy_seconds = prodigy_timer.ElapsedSeconds();

  TablePrinter table({"step", "loss (Prodigy)", "loss (ours)",
                      "train acc % (Prodigy)", "train acc % (ours)"});
  SeriesWriter series("step", {"loss_prodigy", "loss_ours", "acc_prodigy",
                               "acc_ours"});
  for (size_t i = 0; i < ours_curves.step.size(); ++i) {
    table.AddRow({std::to_string(ours_curves.step[i]),
                  TablePrinter::Num(prodigy_curves.loss[i], 3),
                  TablePrinter::Num(ours_curves.loss[i], 3),
                  TablePrinter::Num(prodigy_curves.train_accuracy[i], 1),
                  TablePrinter::Num(ours_curves.train_accuracy[i], 1)});
    series.AddPoint(ours_curves.step[i],
                    {prodigy_curves.loss[i], ours_curves.loss[i],
                     prodigy_curves.train_accuracy[i],
                     ours_curves.train_accuracy[i]});
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/fig9_training_curves.csv");

  report->AddMetric("pretrain_seconds/graphprompter", ours_seconds, "s");
  report->AddMetric("pretrain_seconds/prodigy", prodigy_seconds, "s");
  if (!ours_curves.loss.empty()) {
    report->AddMetric("final_loss/graphprompter", ours_curves.loss.back());
    report->AddMetric("final_loss/prodigy", prodigy_curves.loss.back());
    report->AddMetric("final_train_acc/graphprompter",
                      ours_curves.train_accuracy.back(), "%");
    report->AddMetric("final_train_acc/prodigy",
                      prodigy_curves.train_accuracy.back(), "%");
  }

  std::printf(
      "\nWall-clock for %d steps: ours %.1fs, Prodigy %.1fs (%.0f%%"
      " overhead)\n",
      pretrain.steps, ours_seconds, prodigy_seconds,
      100.0 * (ours_seconds - prodigy_seconds) /
          std::max(prodigy_seconds, 1e-9));
  std::printf(
      "\nPaper reference (Fig. 9): both models show comparable convergence\n"
      "speed and accuracy; the extra two-layer MLPs cost little compared to\n"
      "the GNN itself.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig9_training_curves", argc, argv,
                              gp::bench::Run);
}
