// Fig. 3: ablation study on FB15K-237 and NELL, 3-shot, ways from 5 to 40.
// Variants: full GraphPrompter, w/o Generator (no edge-weight
// reconstruction), w/o kNN retrieval, w/o selection layer, w/o Augmenter,
// plus the Prodigy baseline (everything off).

#include "bench_common.h"

namespace gp::bench {

namespace {

struct Variant {
  std::string name;
  GraphPrompterConfig config;
  bool needs_own_weights;  // trained components differ -> retrain
};

std::vector<Variant> MakeVariants(const GraphPrompterConfig& base) {
  std::vector<Variant> variants;
  variants.push_back({"full", base, false});
  {
    GraphPrompterConfig c = base;
    c.use_reconstruction = false;  // architecture changes -> retrain
    variants.push_back({"w/o Generator", c, true});
  }
  {
    GraphPrompterConfig c = base;
    c.use_knn = false;  // inference-only change
    variants.push_back({"w/o kNN", c, false});
  }
  {
    GraphPrompterConfig c = base;
    c.use_selection_layer = false;  // affects training too -> retrain
    variants.push_back({"w/o SelectLayer", c, true});
  }
  {
    GraphPrompterConfig c = base;
    c.use_augmenter = false;  // inference-only change
    variants.push_back({"w/o Augmenter", c, false});
  }
  return variants;
}

}  // namespace

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 3: ablation study (3-shot, ways 5..40) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  const GraphPrompterConfig base =
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);

  auto full_model = MakePretrained(base, wiki, env);
  auto prodigy = MakePretrained(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2), wiki, env);

  const auto variants = MakeVariants(base);
  // Pre-train the variants whose training differs from the full model.
  std::vector<std::unique_ptr<GraphPrompterModel>> models;
  for (const auto& variant : variants) {
    if (variant.needs_own_weights) {
      models.push_back(MakePretrained(variant.config, wiki, env));
    } else {
      // Same weights as full; different inference configuration.
      auto model = std::make_unique<GraphPrompterModel>(variant.config);
      for (size_t i = 0; i < model->Parameters().size(); ++i) {
        model->Parameters()[i].mutable_data() =
            full_model->Parameters()[i].data();
      }
      models.push_back(std::move(model));
    }
  }

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 3));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 4));

  for (const auto& dataset : datasets) {
    std::vector<std::string> header = {"ways"};
    for (const auto& v : variants) header.push_back(v.name);
    header.push_back("Prodigy");
    TablePrinter table(header);
    SeriesWriter series("ways", [&] {
      std::vector<std::string> names;
      for (const auto& v : variants) names.push_back(v.name);
      names.push_back("Prodigy");
      return names;
    }());
    for (int ways : {5, 10, 20, 40}) {
      const EvalConfig eval = DefaultEval(env, ways);
      std::vector<std::string> row = {std::to_string(ways)};
      std::vector<double> ys;
      for (size_t i = 0; i < variants.size(); ++i) {
        const auto result = EvaluateInContext(*models[i], dataset, eval);
        row.push_back(Cell(result.accuracy_percent));
        ys.push_back(result.accuracy_percent.mean);
        report->AddMetric(dataset.name + "/ways=" + std::to_string(ways) +
                              "/" + variants[i].name,
                          result.accuracy_percent.mean, "%");
      }
      const auto r_prodigy = EvaluateInContext(*prodigy, dataset, eval);
      row.push_back(Cell(r_prodigy.accuracy_percent));
      ys.push_back(r_prodigy.accuracy_percent.mean);
      report->AddMetric(dataset.name + "/ways=" + std::to_string(ways) +
                            "/Prodigy",
                        r_prodigy.accuracy_percent.mean, "%");
      table.AddRow(row);
      series.AddPoint(ways, ys);
      std::printf("  %s ways=%d done\n", dataset.name.c_str(), ways);
    }
    std::printf("\n%s:\n", dataset.name.c_str());
    table.Print();
    const std::string tag =
        dataset.name.find("FB") != std::string::npos ? "fb" : "nell";
    WriteCsvOrWarn(series, env.outdir + "/fig3_ablation_" + tag + ".csv");
  }

  std::printf(
      "\nPaper reference (Fig. 3): every removed component costs accuracy;\n"
      "w/o kNN is closest to full (~1%% above baseline); all variants stay\n"
      "above Prodigy; gaps persist across ways 5..40.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig3_ablation", argc, argv, gp::bench::Run);
}
