// Fig. 6: accuracy vs the number of in-context examples (shots) on
// FB15K-237, NELL, arXiv, and ConceptNet — Prodigy vs GraphPrompter. The
// paper observes a rise-then-fall: more prompts help up to a point, then
// extra prompt graphs inject noise the task graph cannot aggregate.

#include "bench_common.h"

#include <algorithm>
#include <cctype>

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 6: shots sweep (5-way) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  DatasetBundle mag = MakeMagSim(env.scale, env.seed + 1);

  auto ours_edge = MakePretrained(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2), wiki,
      env);
  auto prodigy_edge = MakePretrained(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2), wiki, env);
  GraphPrompterConfig node_config =
      FullGraphPrompterConfig(mag.graph.feature_dim(), env.seed + 3);
  node_config.use_augmenter = false;  // augmenter is the edge-task setting
  auto ours_node = MakePretrained(node_config, mag, env);
  auto prodigy_node = MakePretrained(
      ProdigyConfig(mag.graph.feature_dim(), env.seed + 3), mag, env);

  struct Setting {
    DatasetBundle dataset;
    GraphPrompterModel* ours;
    GraphPrompterModel* prodigy;
  };
  std::vector<Setting> settings;
  settings.push_back({MakeFb15kSim(env.scale, env.seed + 4),
                      ours_edge.get(), prodigy_edge.get()});
  settings.push_back({MakeNellSim(env.scale, env.seed + 5), ours_edge.get(),
                      prodigy_edge.get()});
  settings.push_back({MakeArxivSim(env.scale, env.seed + 6),
                      ours_node.get(), prodigy_node.get()});
  settings.push_back({MakeConceptNetSim(env.scale, env.seed + 7),
                      ours_edge.get(), prodigy_edge.get()});

  // The scaled-down datasets supply ~15-25 train items per class, so the
  // sweep tops out at 10 shots (the paper's real datasets go to 50).
  const std::vector<int> shot_list = {1, 2, 3, 5, 10};
  for (const auto& setting : settings) {
    TablePrinter table({"shots", "Prodigy", "GraphPrompter"});
    SeriesWriter series("shots", {"prodigy", "graphprompter"});
    for (int shots : shot_list) {
      EvalConfig eval = DefaultEval(env, 5, shots);
      // Enough candidates to select `shots` per class from (N >= k).
      eval.candidates_per_class = std::max(10, shots + 2);
      const auto r_prodigy =
          EvaluateInContext(*setting.prodigy, setting.dataset, eval);
      const auto r_ours =
          EvaluateInContext(*setting.ours, setting.dataset, eval);
      table.AddRow({std::to_string(shots), Cell(r_prodigy.accuracy_percent),
                    Cell(r_ours.accuracy_percent)});
      series.AddPoint(shots, {r_prodigy.accuracy_percent.mean,
                              r_ours.accuracy_percent.mean});
      const std::string cell =
          setting.dataset.name + "/shots=" + std::to_string(shots);
      report->AddMetric(cell + "/graphprompter",
                        r_ours.accuracy_percent.mean, "%");
      report->AddMetric(cell + "/prodigy", r_prodigy.accuracy_percent.mean,
                        "%");
    }
    std::printf("\n%s (5-way):\n", setting.dataset.name.c_str());
    table.Print();
    std::string tag = setting.dataset.name;
    for (auto& ch : tag) {
      if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
    }
    WriteCsvOrWarn(series, env.outdir + "/fig6_shots_" + tag + ".csv");
  }

  std::printf(
      "\nPaper reference (Fig. 6): both methods first improve then degrade\n"
      "with more shots; GraphPrompter stays above Prodigy at every k, and\n"
      "Prodigy drops sharply past ~10 shots on arXiv.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig6_shots", argc, argv, gp::bench::Run);
}
