// Prompt-index scaling study: brute-force kNN retrieval vs the sharded IVF
// index over growing candidate pools. For each pool size it reports scored
// candidate pairs (from the selector/scored_pairs counter, so IVF pays for
// its centroid routing too), retrieval wall time, measured recall@k (via
// the index/recall_* sampling counters), and the overlap of the final
// per-class selections against brute force.
//
// A second, steady-state study compares exact-IVF against the int8
// quantized candidate pass (--quantize) on a long-lived index: build once,
// then probe + exact re-rank per query. For P in {1k, 10k, 100k} (up to
// 1M with GP_BENCH_MAX_PROMPTS=1000000) it reports QPS, recall@k against
// brute force, and candidate-pass bytes per prompt.
//
// Acceptance gates printed as verdict lines:
//   * at P = 10000 the IVF path must score < 50% of the brute-force pairs
//     while keeping recall@k >= 0.95;
//   * at P = 100000 quantized-IVF must reach >= 2x the QPS of exact-IVF
//     at recall@k >= 0.95 and <= 0.3x the candidate bytes per prompt.
//
//   ./bench_index_scaling [--queries=N] [--seed=N] [--outdir=DIR] [--simd=L]
// Writes <outdir>/index_scaling.csv, <outdir>/index_scaling_quantized.csv,
// and <outdir>/BENCH_index_scaling.json.

#include "bench_common.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "core/knn_retrieval.h"
#include "obs/telemetry.h"

namespace gp::bench {
namespace {

// Mixture-of-Gaussians embeddings (cluster centers well separated from the
// intra-cluster noise): the nearest-neighbor structure IVF sharding is
// built to exploit, unlike iid noise which has none.
Tensor MixtureEmbeddings(int rows, int dim, int clusters, uint64_t seed) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn(clusters, dim, &rng, 4.0f);
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) {
    const int c = r % clusters;
    for (int j = 0; j < dim; ++j) {
      out.at(r, j) = centers.at(c, j) + rng.Normal(0.0f, 0.5f);
    }
  }
  return out;
}

int64_t CounterValue(const char* name) {
  return Telemetry().GetCounter(name)->Value();
}

// Exact top-k (score desc, id asc) over a candidate subset: the caller's
// re-rank step, and (over all ids) the brute-force recall reference.
std::vector<int64_t> ExactTopK(const Tensor& prompts, const float* query,
                               const std::vector<int64_t>& candidates, int k,
                               DistanceMetric metric) {
  const int dim = prompts.cols();
  std::vector<std::pair<float, int64_t>> scored;
  scored.reserve(candidates.size());
  for (const int64_t id : candidates) {
    const float* row = prompts.data().data() + static_cast<size_t>(id) * dim;
    scored.emplace_back(SimilarityRaw(query, row, dim, metric), id);
  }
  const int kk = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int64_t> out;
  out.reserve(kk);
  for (int i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

struct SteadyStateResult {
  double build_ms = 0.0;
  double qps = 0.0;
  double recall = 0.0;
  size_t bytes_per_prompt = 0;
};

// Long-lived-index regime: build once, then per query probe + exact
// re-rank of the returned candidates. `want` is the brute-force top-k per
// query for the recall measurement (scored outside the timed loop).
SteadyStateResult SteadyState(const PromptIndexOptions& options,
                              DistanceMetric metric, const Tensor& prompts,
                              const Tensor& queries, int k,
                              const std::vector<std::vector<int64_t>>& want) {
  SteadyStateResult result;
  const int dim = prompts.cols();
  PromptIndex index(options, metric);
  Stopwatch build_timer;
  index.Build(prompts);
  result.build_ms = build_timer.ElapsedSeconds() * 1e3;
  result.bytes_per_prompt = index.CandidateBytesPerVector();

  int hit = 0, total = 0;
  Stopwatch timer;
  for (int q = 0; q < queries.rows(); ++q) {
    const float* qrow = queries.data().data() + static_cast<size_t>(q) * dim;
    const std::vector<int64_t> cands = index.Probe(qrow, dim, k);
    const std::vector<int64_t> got = ExactTopK(prompts, qrow, cands, k, metric);
    const std::set<int64_t> got_set(got.begin(), got.end());
    for (const int64_t id : want[q]) hit += static_cast<int>(got_set.count(id));
    total += static_cast<int>(want[q].size());
  }
  const double seconds = timer.ElapsedSeconds();
  result.qps = seconds > 0.0 ? queries.rows() / seconds : 0.0;
  result.recall = total > 0 ? static_cast<double>(hit) / total : 1.0;
  return result;
}

}  // namespace

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== index scaling: brute force vs sharded IVF ===\n");
  const int dim = 64, clusters = 32, classes = 10, shots = 10;
  const std::vector<int> sizes = {1000, 2500, 5000, 10000};
  const int num_queries = env.queries;

  TablePrinter table({"prompts", "pairs exact", "pairs ivf", "pair frac",
                      "recall@k", "overlap", "exact ms", "ivf ms",
                      "build ms", "probe ms"});
  SeriesWriter series("prompts", {"pair_fraction", "recall", "overlap",
                                  "speedup", "probe_speedup"});
  bool verdict_pass = false;
  for (const int num_prompts : sizes) {
    Tensor prompts =
        MixtureEmbeddings(num_prompts, dim, clusters, env.seed + 1);
    Tensor queries =
        MixtureEmbeddings(num_queries, dim, clusters, env.seed + 2);
    Rng rng(env.seed + 3);
    Tensor pimp = Tensor::Randn(num_prompts, 1, &rng, 0.1f);
    Tensor qimp = Tensor::Randn(num_queries, 1, &rng, 0.1f);
    std::vector<int> labels(num_prompts);
    for (int p = 0; p < num_prompts; ++p) labels[p] = p % classes;

    KnnConfig exact;
    exact.shots = shots;
    exact.index.mode = IndexMode::kExact;
    KnnConfig ivf = exact;
    ivf.index.mode = IndexMode::kIvf;
    ivf.index.nlist = 0;   // auto: round(sqrt(P))
    ivf.index.nprobe = 0;  // auto: max(1, nlist / 4)
    ivf.index.min_points = 1;

    const int64_t pairs_before_exact = CounterValue("selector/scored_pairs");
    Stopwatch exact_timer;
    const KnnSelection want = SelectPrompts(prompts, pimp, labels, queries,
                                            qimp, classes, exact);
    const double exact_ms = exact_timer.ElapsedSeconds() * 1e3;
    const int64_t pairs_exact =
        CounterValue("selector/scored_pairs") - pairs_before_exact;

    const int64_t pairs_before_ivf = CounterValue("selector/scored_pairs");
    Stopwatch ivf_timer;
    const KnnSelection got = SelectPrompts(prompts, pimp, labels, queries,
                                           qimp, classes, ivf);
    const double ivf_ms = ivf_timer.ElapsedSeconds() * 1e3;
    const int64_t pairs_ivf =
        CounterValue("selector/scored_pairs") - pairs_before_ivf;

    // Recall measurement runs separately: the per-query brute-force rescore
    // behind index/recall_* is write-only telemetry, but it costs O(P) per
    // query and would swamp the IVF timing if sampled in the timed run.
    KnnConfig measured = ivf;
    measured.index.recall_sample = 1;  // every query
    const int64_t hits_before = CounterValue("index/recall_hits");
    const int64_t total_before = CounterValue("index/recall_total");
    SelectPrompts(prompts, pimp, labels, queries, qimp, classes, measured);
    const int64_t recall_hits = CounterValue("index/recall_hits") - hits_before;
    const int64_t recall_total =
        CounterValue("index/recall_total") - total_before;

    const double pair_fraction =
        static_cast<double>(pairs_ivf) / static_cast<double>(pairs_exact);
    const double recall =
        recall_total > 0
            ? static_cast<double>(recall_hits) / recall_total
            : 1.0;
    // Steady-state split: a long-lived index (the Augmenter's usage) pays
    // Build once and amortizes it over every later batch, so the per-batch
    // cost is the probe+score loop alone.
    PromptIndex index(ivf.index, exact.metric);
    Stopwatch build_timer;
    index.Build(prompts);
    const double build_ms = build_timer.ElapsedSeconds() * 1e3;
    Stopwatch probe_timer;
    int64_t probe_checksum = 0;
    for (int q = 0; q < num_queries; ++q) {
      const float* qrow =
          queries.data().data() + static_cast<size_t>(q) * dim;
      const std::vector<int64_t> cands = index.Probe(qrow, dim, shots);
      std::vector<std::pair<float, int64_t>> scored;
      scored.reserve(cands.size());
      for (int64_t p : cands) {
        scored.emplace_back(EmbeddingSimilarity(prompts, static_cast<int>(p),
                                                queries, q, exact.metric),
                            p);
      }
      const int kk = std::min<int>(shots, static_cast<int>(scored.size()));
      std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      for (int i = 0; i < kk; ++i) probe_checksum += scored[i].second;
    }
    const double probe_ms = probe_timer.ElapsedSeconds() * 1e3;

    const std::set<int> want_set(want.selected.begin(), want.selected.end());
    int overlap_hits = 0;
    for (int p : got.selected) overlap_hits += want_set.count(p);
    const double overlap = want.selected.empty()
                               ? 1.0
                               : static_cast<double>(overlap_hits) /
                                     static_cast<double>(want.selected.size());
    const double speedup = ivf_ms > 0.0 ? exact_ms / ivf_ms : 0.0;
    const double probe_speedup = probe_ms > 0.0 ? exact_ms / probe_ms : 0.0;

    table.AddRow({std::to_string(num_prompts), std::to_string(pairs_exact),
                  std::to_string(pairs_ivf),
                  TablePrinter::Num(pair_fraction, 3),
                  TablePrinter::Num(recall, 3), TablePrinter::Num(overlap, 3),
                  TablePrinter::Num(exact_ms, 1), TablePrinter::Num(ivf_ms, 1),
                  TablePrinter::Num(build_ms, 1),
                  TablePrinter::Num(probe_ms, 1)});
    series.AddPoint(num_prompts, {pair_fraction, recall, overlap, speedup,
                                  probe_speedup});
    const std::string label = "P=" + std::to_string(num_prompts);
    report->AddMetric(label + "/pair_fraction", pair_fraction, "ratio");
    report->AddMetric(label + "/recall_at_k", recall, "ratio");
    report->AddMetric(label + "/selection_overlap", overlap, "ratio");
    report->AddMetric(label + "/exact_ms", exact_ms, "ms");
    report->AddMetric(label + "/ivf_ms", ivf_ms, "ms");
    report->AddMetric(label + "/build_ms", build_ms, "ms");
    report->AddMetric(label + "/probe_ms", probe_ms, "ms");
    std::printf("  P=%-6d pairs %.1f%%  recall %.3f  overlap %.3f  "
                "%.1fms -> %.1fms (build %.1f + probe %.1f, checksum %ld)\n",
                num_prompts, 100.0 * pair_fraction, recall, overlap, exact_ms,
                ivf_ms, build_ms, probe_ms,
                static_cast<long>(probe_checksum));
    if (num_prompts == 10000) {
      verdict_pass = pair_fraction < 0.5 && recall >= 0.95;
      report->AddMetric("verdict_pass", verdict_pass ? 1.0 : 0.0, "bool");
    }
  }

  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/index_scaling.csv");
  std::printf(
      "\nverdict (P=10000): %s — IVF must score < 50%% of brute-force "
      "pairs at recall@k >= 0.95\n",
      verdict_pass ? "PASS" : "FAIL");

  // ---- steady-state: exact-IVF vs int8-quantized candidate pass ----------
  std::printf("\n=== steady state: exact-IVF vs quantized-IVF ===\n");
  const int k = shots;
  int64_t max_prompts = 100000;
  if (const char* env_max = std::getenv("GP_BENCH_MAX_PROMPTS")) {
    max_prompts = std::max<int64_t>(1000, std::atoll(env_max));
  }
  std::vector<int> steady_sizes;
  for (int64_t p = 1000; p <= max_prompts; p *= 10) {
    steady_sizes.push_back(static_cast<int>(p));
  }

  TablePrinter qtable({"prompts", "build ms (e/q)", "qps exact", "qps quant",
                       "qps ratio", "recall exact", "recall quant",
                       "bytes/prompt (e/q)", "bytes ratio"});
  SeriesWriter qseries("prompts",
                       {"qps_exact_ivf", "qps_quantized", "qps_ratio",
                        "recall_exact_ivf", "recall_quantized", "bytes_ratio"});
  bool quantized_verdict_pass = false;
  bool quantized_verdict_seen = false;
  for (const int num_prompts : steady_sizes) {
    Tensor prompts =
        MixtureEmbeddings(num_prompts, dim, clusters, env.seed + 11);
    Tensor queries =
        MixtureEmbeddings(num_queries, dim, clusters, env.seed + 12);
    const DistanceMetric metric = DistanceMetric::kCosine;

    // Brute-force top-k per query: the shared recall reference.
    std::vector<int64_t> all_ids(num_prompts);
    for (int i = 0; i < num_prompts; ++i) all_ids[i] = i;
    std::vector<std::vector<int64_t>> want(num_queries);
    for (int q = 0; q < num_queries; ++q) {
      const float* qrow =
          queries.data().data() + static_cast<size_t>(q) * dim;
      want[q] = ExactTopK(prompts, qrow, all_ids, k, metric);
    }

    PromptIndexOptions exact_ivf;
    exact_ivf.mode = IndexMode::kIvf;
    exact_ivf.min_points = 1;
    PromptIndexOptions quant_ivf = exact_ivf;
    quant_ivf.quantize = true;

    const SteadyStateResult e =
        SteadyState(exact_ivf, metric, prompts, queries, k, want);
    const SteadyStateResult z =
        SteadyState(quant_ivf, metric, prompts, queries, k, want);
    const double qps_ratio = e.qps > 0.0 ? z.qps / e.qps : 0.0;
    const double bytes_ratio =
        e.bytes_per_prompt > 0
            ? static_cast<double>(z.bytes_per_prompt) / e.bytes_per_prompt
            : 0.0;

    qtable.AddRow(
        {std::to_string(num_prompts),
         TablePrinter::Num(e.build_ms, 1) + "/" +
             TablePrinter::Num(z.build_ms, 1),
         TablePrinter::Num(e.qps, 0), TablePrinter::Num(z.qps, 0),
         TablePrinter::Num(qps_ratio, 2), TablePrinter::Num(e.recall, 3),
         TablePrinter::Num(z.recall, 3),
         std::to_string(e.bytes_per_prompt) + "/" +
             std::to_string(z.bytes_per_prompt),
         TablePrinter::Num(bytes_ratio, 3)});
    qseries.AddPoint(num_prompts, {e.qps, z.qps, qps_ratio, e.recall,
                                   z.recall, bytes_ratio});
    const std::string label = "P=" + std::to_string(num_prompts);
    report->AddMetric(label + "/qps_exact_ivf", e.qps, "qps");
    report->AddMetric(label + "/qps_quantized", z.qps, "qps");
    report->AddMetric(label + "/qps_ratio", qps_ratio, "ratio");
    report->AddMetric(label + "/recall_exact_ivf", e.recall, "ratio");
    report->AddMetric(label + "/recall_quantized", z.recall, "ratio");
    report->AddMetric(label + "/bytes_per_prompt_exact",
                      static_cast<double>(e.bytes_per_prompt), "bytes");
    report->AddMetric(label + "/bytes_per_prompt_quantized",
                      static_cast<double>(z.bytes_per_prompt), "bytes");
    report->AddMetric(label + "/bytes_ratio", bytes_ratio, "ratio");
    std::printf("  P=%-7d qps %.0f -> %.0f (%.2fx)  recall %.3f -> %.3f  "
                "bytes/prompt %zu -> %zu (%.3fx)\n",
                num_prompts, e.qps, z.qps, qps_ratio, e.recall, z.recall,
                e.bytes_per_prompt, z.bytes_per_prompt, bytes_ratio);
    if (num_prompts == 100000) {
      quantized_verdict_seen = true;
      quantized_verdict_pass =
          qps_ratio >= 2.0 && z.recall >= 0.95 && bytes_ratio <= 0.3;
      report->AddMetric("quantized_verdict_pass",
                        quantized_verdict_pass ? 1.0 : 0.0, "bool");
    }
  }

  std::printf("\nMeasured (steady state, this reproduction):\n");
  qtable.Print();
  WriteCsvOrWarn(qseries, env.outdir + "/index_scaling_quantized.csv");
  if (quantized_verdict_seen) {
    std::printf(
        "\nverdict (P=100000): %s — quantized-IVF must reach >= 2x exact-IVF "
        "QPS at recall@k >= 0.95 and <= 0.3x candidate bytes per prompt\n",
        quantized_verdict_pass ? "PASS" : "FAIL");
  } else {
    std::printf(
        "\nverdict (P=100000): SKIPPED — raise GP_BENCH_MAX_PROMPTS to "
        ">= 100000 to evaluate the quantized gate\n");
  }
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("index_scaling", argc, argv, gp::bench::Run);
}
