// Prompt-index scaling study: brute-force kNN retrieval vs the sharded IVF
// index over growing candidate pools. For each pool size it reports scored
// candidate pairs (from the selector/scored_pairs counter, so IVF pays for
// its centroid routing too), retrieval wall time, measured recall@k (via
// the index/recall_* sampling counters), and the overlap of the final
// per-class selections against brute force.
//
// Acceptance gate printed as the verdict line: at P = 10000 the IVF path
// must score < 50% of the brute-force pairs while keeping recall@k >= 0.95.
//
//   ./bench_index_scaling [--queries=N] [--seed=N] [--outdir=DIR]
// Writes <outdir>/index_scaling.csv and <outdir>/BENCH_index_scaling.json.

#include "bench_common.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/knn_retrieval.h"
#include "obs/telemetry.h"

namespace gp::bench {
namespace {

// Mixture-of-Gaussians embeddings (cluster centers well separated from the
// intra-cluster noise): the nearest-neighbor structure IVF sharding is
// built to exploit, unlike iid noise which has none.
Tensor MixtureEmbeddings(int rows, int dim, int clusters, uint64_t seed) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn(clusters, dim, &rng, 4.0f);
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) {
    const int c = r % clusters;
    for (int j = 0; j < dim; ++j) {
      out.at(r, j) = centers.at(c, j) + rng.Normal(0.0f, 0.5f);
    }
  }
  return out;
}

int64_t CounterValue(const char* name) {
  return Telemetry().GetCounter(name)->Value();
}

}  // namespace

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== index scaling: brute force vs sharded IVF ===\n");
  const int dim = 64, clusters = 32, classes = 10, shots = 10;
  const std::vector<int> sizes = {1000, 2500, 5000, 10000};
  const int num_queries = env.queries;

  TablePrinter table({"prompts", "pairs exact", "pairs ivf", "pair frac",
                      "recall@k", "overlap", "exact ms", "ivf ms",
                      "build ms", "probe ms"});
  SeriesWriter series("prompts", {"pair_fraction", "recall", "overlap",
                                  "speedup", "probe_speedup"});
  bool verdict_pass = false;
  for (const int num_prompts : sizes) {
    Tensor prompts =
        MixtureEmbeddings(num_prompts, dim, clusters, env.seed + 1);
    Tensor queries =
        MixtureEmbeddings(num_queries, dim, clusters, env.seed + 2);
    Rng rng(env.seed + 3);
    Tensor pimp = Tensor::Randn(num_prompts, 1, &rng, 0.1f);
    Tensor qimp = Tensor::Randn(num_queries, 1, &rng, 0.1f);
    std::vector<int> labels(num_prompts);
    for (int p = 0; p < num_prompts; ++p) labels[p] = p % classes;

    KnnConfig exact;
    exact.shots = shots;
    exact.index.mode = IndexMode::kExact;
    KnnConfig ivf = exact;
    ivf.index.mode = IndexMode::kIvf;
    ivf.index.nlist = 0;   // auto: round(sqrt(P))
    ivf.index.nprobe = 0;  // auto: max(1, nlist / 4)
    ivf.index.min_points = 1;

    const int64_t pairs_before_exact = CounterValue("selector/scored_pairs");
    Stopwatch exact_timer;
    const KnnSelection want = SelectPrompts(prompts, pimp, labels, queries,
                                            qimp, classes, exact);
    const double exact_ms = exact_timer.ElapsedSeconds() * 1e3;
    const int64_t pairs_exact =
        CounterValue("selector/scored_pairs") - pairs_before_exact;

    const int64_t pairs_before_ivf = CounterValue("selector/scored_pairs");
    Stopwatch ivf_timer;
    const KnnSelection got = SelectPrompts(prompts, pimp, labels, queries,
                                           qimp, classes, ivf);
    const double ivf_ms = ivf_timer.ElapsedSeconds() * 1e3;
    const int64_t pairs_ivf =
        CounterValue("selector/scored_pairs") - pairs_before_ivf;

    // Recall measurement runs separately: the per-query brute-force rescore
    // behind index/recall_* is write-only telemetry, but it costs O(P) per
    // query and would swamp the IVF timing if sampled in the timed run.
    KnnConfig measured = ivf;
    measured.index.recall_sample = 1;  // every query
    const int64_t hits_before = CounterValue("index/recall_hits");
    const int64_t total_before = CounterValue("index/recall_total");
    SelectPrompts(prompts, pimp, labels, queries, qimp, classes, measured);
    const int64_t recall_hits = CounterValue("index/recall_hits") - hits_before;
    const int64_t recall_total =
        CounterValue("index/recall_total") - total_before;

    const double pair_fraction =
        static_cast<double>(pairs_ivf) / static_cast<double>(pairs_exact);
    const double recall =
        recall_total > 0
            ? static_cast<double>(recall_hits) / recall_total
            : 1.0;
    // Steady-state split: a long-lived index (the Augmenter's usage) pays
    // Build once and amortizes it over every later batch, so the per-batch
    // cost is the probe+score loop alone.
    PromptIndex index(ivf.index, exact.metric);
    Stopwatch build_timer;
    index.Build(prompts);
    const double build_ms = build_timer.ElapsedSeconds() * 1e3;
    Stopwatch probe_timer;
    int64_t probe_checksum = 0;
    for (int q = 0; q < num_queries; ++q) {
      const float* qrow =
          queries.data().data() + static_cast<size_t>(q) * dim;
      const std::vector<int64_t> cands = index.Probe(qrow, dim, shots);
      std::vector<std::pair<float, int64_t>> scored;
      scored.reserve(cands.size());
      for (int64_t p : cands) {
        scored.emplace_back(EmbeddingSimilarity(prompts, static_cast<int>(p),
                                                queries, q, exact.metric),
                            p);
      }
      const int kk = std::min<int>(shots, static_cast<int>(scored.size()));
      std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                        [](const auto& a, const auto& b) {
                          return a.first > b.first;
                        });
      for (int i = 0; i < kk; ++i) probe_checksum += scored[i].second;
    }
    const double probe_ms = probe_timer.ElapsedSeconds() * 1e3;

    const std::set<int> want_set(want.selected.begin(), want.selected.end());
    int overlap_hits = 0;
    for (int p : got.selected) overlap_hits += want_set.count(p);
    const double overlap = want.selected.empty()
                               ? 1.0
                               : static_cast<double>(overlap_hits) /
                                     static_cast<double>(want.selected.size());
    const double speedup = ivf_ms > 0.0 ? exact_ms / ivf_ms : 0.0;
    const double probe_speedup = probe_ms > 0.0 ? exact_ms / probe_ms : 0.0;

    table.AddRow({std::to_string(num_prompts), std::to_string(pairs_exact),
                  std::to_string(pairs_ivf),
                  TablePrinter::Num(pair_fraction, 3),
                  TablePrinter::Num(recall, 3), TablePrinter::Num(overlap, 3),
                  TablePrinter::Num(exact_ms, 1), TablePrinter::Num(ivf_ms, 1),
                  TablePrinter::Num(build_ms, 1),
                  TablePrinter::Num(probe_ms, 1)});
    series.AddPoint(num_prompts, {pair_fraction, recall, overlap, speedup,
                                  probe_speedup});
    const std::string label = "P=" + std::to_string(num_prompts);
    report->AddMetric(label + "/pair_fraction", pair_fraction, "ratio");
    report->AddMetric(label + "/recall_at_k", recall, "ratio");
    report->AddMetric(label + "/selection_overlap", overlap, "ratio");
    report->AddMetric(label + "/exact_ms", exact_ms, "ms");
    report->AddMetric(label + "/ivf_ms", ivf_ms, "ms");
    report->AddMetric(label + "/build_ms", build_ms, "ms");
    report->AddMetric(label + "/probe_ms", probe_ms, "ms");
    std::printf("  P=%-6d pairs %.1f%%  recall %.3f  overlap %.3f  "
                "%.1fms -> %.1fms (build %.1f + probe %.1f, checksum %ld)\n",
                num_prompts, 100.0 * pair_fraction, recall, overlap, exact_ms,
                ivf_ms, build_ms, probe_ms,
                static_cast<long>(probe_checksum));
    if (num_prompts == 10000) {
      verdict_pass = pair_fraction < 0.5 && recall >= 0.95;
      report->AddMetric("verdict_pass", verdict_pass ? 1.0 : 0.0, "bool");
    }
  }

  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/index_scaling.csv");
  std::printf(
      "\nverdict (P=10000): %s — IVF must score < 50%% of brute-force "
      "pairs at recall@k >= 0.95\n",
      verdict_pass ? "PASS" : "FAIL");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("index_scaling", argc, argv, gp::bench::Run);
}
