// Microbenchmarks of the core primitives the GraphPrompter pipeline is
// built from: dense matmul, gather/scatter message passing, random-walk
// sampling, kNN scoring, LFU cache operations, and the task-graph forward
// pass. Useful for tracking performance regressions in the substrate.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/knn_retrieval.h"
#include "obs/export.h"
#include "core/lfu_cache.h"
#include "core/task_graph.h"
#include "data/datasets.h"
#include "graph/sampler.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn(n, n, &rng);
  Tensor b = Tensor::Randn(n, n, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherScatter(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor x = Tensor::Randn(1000, 64, &rng);
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = static_cast<int>(rng.UniformInt(1000));
    dst[e] = static_cast<int>(rng.UniformInt(1000));
  }
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor out = ScatterAddRows(GatherRows(x, src), dst, 1000);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GatherScatter)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Tensor a = Tensor::Randn(n, n, &rng, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::Randn(n, n, &rng, 1.0f, /*requires_grad=*/true);
    Backward(SumAll(MatMul(a, b)));
    benchmark::DoNotOptimize(a.raw());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64)->Arg(128);

void BM_RandomWalkSampling(benchmark::State& state) {
  static DatasetBundle ds = MakeFb15kSim(0.5, 7);
  SamplerConfig config;
  config.num_hops = static_cast<int>(state.range(0));
  config.max_nodes = 30;
  RandomWalkSampler sampler(&ds.graph, config);
  Rng rng(4);
  for (auto _ : state) {
    const int node = static_cast<int>(rng.UniformInt(ds.graph.num_nodes()));
    Subgraph sg = sampler.SampleAroundNode(node, &rng);
    benchmark::DoNotOptimize(sg.nodes.data());
  }
}
BENCHMARK(BM_RandomWalkSampling)->Arg(1)->Arg(2)->Arg(3);

void BM_KnnSelection(benchmark::State& state) {
  const int ways = static_cast<int>(state.range(0));
  const int candidates = ways * 10;
  Rng rng(5);
  Tensor prompts = Tensor::Randn(candidates, 64, &rng);
  Tensor queries = Tensor::Randn(32, 64, &rng);
  Tensor prompt_imp = Tensor::Randn(candidates, 1, &rng);
  Tensor query_imp = Tensor::Randn(32, 1, &rng);
  std::vector<int> labels(candidates);
  for (int i = 0; i < candidates; ++i) labels[i] = i % ways;
  KnnConfig config;
  config.shots = 3;
  for (auto _ : state) {
    const auto sel = SelectPrompts(prompts, prompt_imp, labels, queries,
                                   query_imp, ways, config);
    benchmark::DoNotOptimize(sel.selected.data());
  }
}
BENCHMARK(BM_KnnSelection)->Arg(5)->Arg(20)->Arg(40);

void BM_LfuCache(benchmark::State& state) {
  LfuCache cache(3);
  Rng rng(6);
  std::vector<int64_t> ids;
  for (auto _ : state) {
    CacheEntry entry;
    entry.embedding = {1.0f, 2.0f};
    entry.pseudo_label = 1;
    const int64_t id = cache.Insert(std::move(entry));
    ids.push_back(id);
    cache.Touch(ids[rng.UniformInt(ids.size())]);
    benchmark::DoNotOptimize(cache.size());
  }
}
BENCHMARK(BM_LfuCache);

void BM_TaskGraphForward(benchmark::State& state) {
  const int ways = static_cast<int>(state.range(0));
  Rng rng(7);
  TaskGraphConfig config;
  TaskGraphNet net(config, &rng);
  Tensor prompts = Tensor::Randn(ways * 3, 64, &rng);
  std::vector<int> labels(ways * 3);
  for (int i = 0; i < ways * 3; ++i) labels[i] = i / 3;
  Tensor queries = Tensor::Randn(4, 64, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    const auto out = net.Forward(prompts, labels, queries, ways);
    benchmark::DoNotOptimize(out.query_scores.raw());
  }
}
BENCHMARK(BM_TaskGraphForward)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

}  // namespace
}  // namespace gp

// Expanded BENCHMARK_MAIN so observability export (GP_TELEMETRY / GP_TRACE
// env vars; google-benchmark owns the command line here) runs at exit.
int main(int argc, char** argv) {
  gp::ConfigureObservability("", "");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const gp::Status status = gp::ExportConfiguredObservability();
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  return 0;
}
