// Microbenchmarks of the core primitives the GraphPrompter pipeline is
// built from: dense matmul, gather/scatter message passing, random-walk
// sampling, kNN scoring, LFU cache operations, and the task-graph forward
// pass. Useful for tracking performance regressions in the substrate.
//
// Beyond the google-benchmark cases, the binary always runs a headline
// section that times the fused kernels (GatherScaleScatterMean,
// LinearRelu) against the primitive-op chains they replaced, measures the
// `av == 0` skip branch of the blocked GEMM on dense vs one-hot inputs,
// and reports the buffer-pool hit rate on a training-step workload. The
// headline numbers are written to <outdir>/BENCH_micro_ops.json so the
// fused-kernel and allocator gains stay pinned in the perf trajectory.
//
// Flags (in addition to google-benchmark's own --benchmark_* flags):
//   --outdir=DIR        report directory (default "results")
//   --headline_reps=N   repetitions per headline measurement (default 15)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/knn_retrieval.h"
#include "core/lfu_cache.h"
#include "core/task_graph.h"
#include "data/datasets.h"
#include "graph/sampler.h"
#include "nn/mlp.h"
#include "obs/bench_report.h"
#include "obs/export.h"
#include "tensor/autograd.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "util/flags.h"
#include "util/stopwatch.h"

namespace gp {
namespace {

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::Randn(n, n, &rng);
  Tensor b = Tensor::Randn(n, n, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor c = MatMul(a, b);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_GatherScatter(benchmark::State& state) {
  const int edges = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor x = Tensor::Randn(1000, 64, &rng);
  std::vector<int> src(edges), dst(edges);
  for (int e = 0; e < edges; ++e) {
    src[e] = static_cast<int>(rng.UniformInt(1000));
    dst[e] = static_cast<int>(rng.UniformInt(1000));
  }
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor out = ScatterAddRows(GatherRows(x, src), dst, 1000);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_GatherScatter)->Arg(1000)->Arg(10000)->Arg(50000);

// The fused weighted-mean aggregation (SAGE readout) against the
// primitive chain it replaced; both weighted so the comparison covers the
// RowScale elision too.
struct EdgeFixture {
  int nodes = 0;
  Tensor x;
  Tensor w;
  std::vector<int> src, dst;

  EdgeFixture(int nodes_in, int edges, int dim, uint64_t seed)
      : nodes(nodes_in) {
    Rng rng(seed);
    x = Tensor::Randn(nodes, dim, &rng);
    w = Tensor::Randn(edges, 1, &rng);
    for (auto& v : w.mutable_data()) v = v * v + 0.1f;  // positive weights
    src.resize(edges);
    dst.resize(edges);
    for (int e = 0; e < edges; ++e) {
      src[e] = static_cast<int>(rng.UniformInt(nodes));
      dst[e] = static_cast<int>(rng.UniformInt(nodes));
    }
  }
};

Tensor UnfusedMeanChain(const EdgeFixture& f) {
  Tensor messages = RowScale(GatherRows(f.x, f.src), f.w);
  Tensor sums = ScatterAddRows(messages, f.dst, f.nodes);
  Tensor wsum = ScatterAddRows(f.w, f.dst, f.nodes);
  return Div(sums, AddScalar(wsum, 1e-6f));
}

Tensor FusedMeanChain(const EdgeFixture& f) {
  return GatherScaleScatterMean(f.x, f.src, f.dst, f.nodes, f.w, 1e-6f);
}

void BM_MeanAggregate(benchmark::State& state) {
  const bool fused = state.range(0) == 1;
  const int edges = static_cast<int>(state.range(1));
  EdgeFixture f(1000, edges, 64, 11);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor out = fused ? FusedMeanChain(f) : UnfusedMeanChain(f);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_MeanAggregate)
    ->ArgNames({"fused", "edges"})
    ->Args({0, 10000})
    ->Args({1, 10000})
    ->Args({0, 50000})
    ->Args({1, 50000});

// The fused linear+relu hidden-layer kernel against MatMul/Add/Relu.
void BM_LinearRelu(benchmark::State& state) {
  const bool fused = state.range(0) == 1;
  const int n = static_cast<int>(state.range(1));
  Rng rng(13);
  Tensor x = Tensor::Randn(n, n, &rng);
  Tensor weight = Tensor::Randn(n, n, &rng);
  Tensor bias = Tensor::Randn(1, n, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    Tensor out = fused ? LinearRelu(x, weight, bias)
                       : Relu(Add(MatMul(x, weight), bias));
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_LinearRelu)
    ->ArgNames({"fused", "n"})
    ->Args({0, 128})
    ->Args({1, 128})
    ->Args({0, 256})
    ->Args({1, 256});

// The `av == 0.0f` skip branch in the GEMM micro-kernel: near-free on
// dense inputs, and a large win on the one-hot label matrices the task
// graph multiplies (see internal::GemmAccumulate in tensor/ops.h).
void BM_GemmAccumulate(benchmark::State& state) {
  const bool one_hot = state.range(0) == 1;
  const bool skip = state.range(1) == 1;
  const int n = 256;
  Rng rng(17);
  Tensor a = Tensor::Randn(n, n, &rng);
  if (one_hot) {
    auto& data = a.mutable_data();
    std::fill(data.begin(), data.end(), 0.0f);
    for (int i = 0; i < n; ++i) {
      data[static_cast<size_t>(i) * n + rng.UniformInt(n)] = 1.0f;
    }
  }
  Tensor b = Tensor::Randn(n, n, &rng);
  std::vector<float> out(static_cast<size_t>(n) * n);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    internal::GemmAccumulate(a.data().data(), b.data().data(), out.data(), n, n, n, skip);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmAccumulate)
    ->ArgNames({"one_hot", "skip"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({1, 1});

void BM_MatMulBackward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  for (auto _ : state) {
    Tensor a = Tensor::Randn(n, n, &rng, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::Randn(n, n, &rng, 1.0f, /*requires_grad=*/true);
    Backward(SumAll(MatMul(a, b)));
    benchmark::DoNotOptimize(a.raw());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64)->Arg(128);

// A training-style step (MLP forward + backward) with the buffer pool on
// vs off: the op graph churns dozens of same-shaped tensors per step, so
// recycled storage is the difference between malloc traffic and reuse.
void BM_TrainStepPool(benchmark::State& state) {
  const bool pooled = state.range(0) == 1;
  Rng rng(19);
  Mlp mlp({128, 256, 256, 64}, &rng);
  Tensor x = Tensor::Randn(64, 128, &rng);
  SetBufferPoolEnabled(pooled);
  {
    PoolScope scope;
    for (auto _ : state) {
      Backward(SumAll(mlp.Forward(x)));
      mlp.ZeroGrad();
      benchmark::DoNotOptimize(x.raw());
    }
  }
  SetBufferPoolEnabled(true);
}
BENCHMARK(BM_TrainStepPool)->ArgNames({"pool"})->Arg(0)->Arg(1);

void BM_RandomWalkSampling(benchmark::State& state) {
  static DatasetBundle ds = MakeFb15kSim(0.5, 7);
  SamplerConfig config;
  config.num_hops = static_cast<int>(state.range(0));
  config.max_nodes = 30;
  RandomWalkSampler sampler(&ds.graph, config);
  Rng rng(4);
  for (auto _ : state) {
    const int node = static_cast<int>(rng.UniformInt(ds.graph.num_nodes()));
    Subgraph sg = sampler.SampleAroundNode(node, &rng);
    benchmark::DoNotOptimize(sg.nodes.data());
  }
}
BENCHMARK(BM_RandomWalkSampling)->Arg(1)->Arg(2)->Arg(3);

void BM_KnnSelection(benchmark::State& state) {
  const int ways = static_cast<int>(state.range(0));
  const int candidates = ways * 10;
  Rng rng(5);
  Tensor prompts = Tensor::Randn(candidates, 64, &rng);
  Tensor queries = Tensor::Randn(32, 64, &rng);
  Tensor prompt_imp = Tensor::Randn(candidates, 1, &rng);
  Tensor query_imp = Tensor::Randn(32, 1, &rng);
  std::vector<int> labels(candidates);
  for (int i = 0; i < candidates; ++i) labels[i] = i % ways;
  KnnConfig config;
  config.shots = 3;
  for (auto _ : state) {
    const auto sel = SelectPrompts(prompts, prompt_imp, labels, queries,
                                   query_imp, ways, config);
    benchmark::DoNotOptimize(sel.selected.data());
  }
}
BENCHMARK(BM_KnnSelection)->Arg(5)->Arg(20)->Arg(40);

void BM_LfuCache(benchmark::State& state) {
  LfuCache cache(3);
  Rng rng(6);
  std::vector<int64_t> ids;
  for (auto _ : state) {
    CacheEntry entry;
    entry.embedding = {1.0f, 2.0f};
    entry.pseudo_label = 1;
    const int64_t id = cache.Insert(std::move(entry));
    ids.push_back(id);
    cache.Touch(ids[rng.UniformInt(ids.size())]);
    benchmark::DoNotOptimize(cache.size());
  }
}
BENCHMARK(BM_LfuCache);

void BM_TaskGraphForward(benchmark::State& state) {
  const int ways = static_cast<int>(state.range(0));
  Rng rng(7);
  TaskGraphConfig config;
  TaskGraphNet net(config, &rng);
  Tensor prompts = Tensor::Randn(ways * 3, 64, &rng);
  std::vector<int> labels(ways * 3);
  for (int i = 0; i < ways * 3; ++i) labels[i] = i / 3;
  Tensor queries = Tensor::Randn(4, 64, &rng);
  NoGradGuard no_grad;
  for (auto _ : state) {
    const auto out = net.Forward(prompts, labels, queries, ways);
    benchmark::DoNotOptimize(out.query_scores.raw());
  }
}
BENCHMARK(BM_TaskGraphForward)->Arg(5)->Arg(10)->Arg(20)->Arg(40);

// ---------------------------------------------------------------------------
// Headline section: the numbers the perf trajectory tracks. Median-of-N
// wall time keeps single-run noise out of the committed baselines.

double MedianMs(int reps, const std::function<void()>& fn) {
  fn();  // warm up: pool caches, lazy pools, page faults
  std::vector<double> times_ms;
  times_ms.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    Stopwatch timer;
    fn();
    times_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  std::sort(times_ms.begin(), times_ms.end());
  return times_ms[times_ms.size() / 2];
}

double ReductionPct(double before_ms, double after_ms) {
  return before_ms > 0.0 ? 100.0 * (before_ms - after_ms) / before_ms : 0.0;
}

void RunHeadline(const std::string& outdir, int reps) {
  BenchReporter report("micro_ops");
  report.AddConfig("headline_reps", static_cast<int64_t>(reps));
  report.AddConfig("nodes", static_cast<int64_t>(2000));
  report.AddConfig("edges", static_cast<int64_t>(40000));
  report.AddConfig("dim", static_cast<int64_t>(64));
  std::printf("\n=== headline: fused kernels & buffer pool ===\n");

  PoolScope scope;

  // Fused message-passing chain (the SAGE weighted-mean readout).
  EdgeFixture f(2000, 40000, 64, 23);
  const double mean_unfused = MedianMs(reps, [&] {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(UnfusedMeanChain(f));
  });
  const double mean_fused = MedianMs(reps, [&] {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(FusedMeanChain(f));
  });
  report.AddMetric("mean_chain/unfused_ms", mean_unfused, "ms");
  report.AddMetric("mean_chain/fused_ms", mean_fused, "ms");
  report.AddMetric("mean_chain/reduction_pct",
                   ReductionPct(mean_unfused, mean_fused), "%");
  std::printf("mean aggregation   unfused %.3f ms  fused %.3f ms  (-%.1f%%)\n",
              mean_unfused, mean_fused,
              ReductionPct(mean_unfused, mean_fused));

  // Fused hidden-layer kernel.
  Rng rng(29);
  Tensor lx = Tensor::Randn(256, 128, &rng);
  Tensor lw = Tensor::Randn(128, 128, &rng);
  Tensor lb = Tensor::Randn(1, 128, &rng);
  const double lin_unfused = MedianMs(reps, [&] {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(Relu(Add(MatMul(lx, lw), lb)));
  });
  const double lin_fused = MedianMs(reps, [&] {
    NoGradGuard no_grad;
    benchmark::DoNotOptimize(LinearRelu(lx, lw, lb));
  });
  report.AddMetric("linear_relu/unfused_ms", lin_unfused, "ms");
  report.AddMetric("linear_relu/fused_ms", lin_fused, "ms");
  report.AddMetric("linear_relu/reduction_pct",
                   ReductionPct(lin_unfused, lin_fused), "%");
  std::printf("linear+relu        unfused %.3f ms  fused %.3f ms  (-%.1f%%)\n",
              lin_unfused, lin_fused, ReductionPct(lin_unfused, lin_fused));

  // GEMM skip branch: dense cost vs one-hot payoff.
  const int n = 256;
  Tensor dense = Tensor::Randn(n, n, &rng);
  Tensor onehot = Tensor::Zeros(n, n);
  for (int i = 0; i < n; ++i) {
    onehot.mutable_data()[static_cast<size_t>(i) * n + rng.UniformInt(n)] =
        1.0f;
  }
  Tensor rhs = Tensor::Randn(n, n, &rng);
  std::vector<float> acc(static_cast<size_t>(n) * n);
  auto gemm = [&](const Tensor& a, bool skip) {
    std::fill(acc.begin(), acc.end(), 0.0f);
    internal::GemmAccumulate(a.data().data(), rhs.data().data(), acc.data(), n, n, n, skip);
    benchmark::DoNotOptimize(acc.data());
  };
  const double dense_noskip = MedianMs(reps, [&] { gemm(dense, false); });
  const double dense_skip = MedianMs(reps, [&] { gemm(dense, true); });
  const double onehot_noskip = MedianMs(reps, [&] { gemm(onehot, false); });
  const double onehot_skip = MedianMs(reps, [&] { gemm(onehot, true); });
  report.AddMetric("gemm_skip/dense_noskip_ms", dense_noskip, "ms");
  report.AddMetric("gemm_skip/dense_skip_ms", dense_skip, "ms");
  report.AddMetric("gemm_skip/onehot_noskip_ms", onehot_noskip, "ms");
  report.AddMetric("gemm_skip/onehot_skip_ms", onehot_skip, "ms");
  report.AddMetric("gemm_skip/onehot_speedup",
                   onehot_skip > 0.0 ? onehot_noskip / onehot_skip : 0.0,
                   "x");
  std::printf(
      "gemm skip branch   dense %.3f -> %.3f ms, one-hot %.3f -> %.3f ms "
      "(%.1fx)\n",
      dense_noskip, dense_skip, onehot_noskip, onehot_skip,
      onehot_skip > 0.0 ? onehot_noskip / onehot_skip : 0.0);

  // Buffer pool: hit rate and step time on a training-style workload.
  Rng mlp_rng(31);
  Mlp mlp({128, 256, 256, 64}, &mlp_rng);
  Tensor tx = Tensor::Randn(64, 128, &mlp_rng);
  auto train_step = [&] {
    Backward(SumAll(mlp.Forward(tx)));
    mlp.ZeroGrad();
  };
  train_step();  // warm the pool before counting
  const BufferPoolStats before = PoolStatsSnapshot();
  const double pooled_ms = MedianMs(reps, train_step);
  const BufferPoolStats after = PoolStatsSnapshot();
  const int64_t hits = after.hits - before.hits;
  const int64_t misses = after.misses - before.misses;
  const double hit_rate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  SetBufferPoolEnabled(false);
  const double unpooled_ms = MedianMs(reps, train_step);
  SetBufferPoolEnabled(true);
  report.AddMetric("pool/train_step_unpooled_ms", unpooled_ms, "ms");
  report.AddMetric("pool/train_step_pooled_ms", pooled_ms, "ms");
  report.AddMetric("pool/train_step_reduction_pct",
                   ReductionPct(unpooled_ms, pooled_ms), "%");
  report.AddMetric("pool/hit_rate", hit_rate, "");
  std::printf(
      "buffer pool        off %.3f ms  on %.3f ms  (-%.1f%%), hit rate "
      "%.3f\n",
      unpooled_ms, pooled_ms, ReductionPct(unpooled_ms, pooled_ms),
      hit_rate);

  const Status status = report.WriteJson(outdir);
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  } else {
    std::printf("wrote %s/BENCH_micro_ops.json\n", outdir.c_str());
  }
}

}  // namespace
}  // namespace gp

// Expanded BENCHMARK_MAIN so the headline report and observability export
// (GP_TELEMETRY / GP_TRACE env vars) run at exit. Our own flags are
// stripped before google-benchmark sees the command line.
int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  const std::string outdir = flags.GetString("outdir", "results");
  const int reps =
      static_cast<int>(flags.GetInt("headline_reps", 15));
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (i == 0 || arg.rfind("--benchmark", 0) == 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());

  gp::ConfigureObservability("", "");
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  gp::RunHeadline(outdir, reps);
  const gp::Status status = gp::ExportConfiguredObservability();
  if (!status.ok()) {
    std::fprintf(stderr, "warning: %s\n", status.ToString().c_str());
  }
  return 0;
}
