// Table VII: robustness to pseudo-label quality — the Prompt Augmenter's
// cache is filled with *randomly selected* queries (instead of the most
// confident ones) under five different seeds, on FB15K-237 and NELL at 20
// ways. The paper reports a ~2% drop vs confident pseudo-labels while
// remaining above the Prodigy baseline.

#include "bench_common.h"

#include "nn/serialize.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Table VII: random pseudo-label robustness (20-way) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  const GraphPrompterConfig base =
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);
  auto ours = MakePretrained(base, wiki, env);
  const std::string ckpt = env.outdir + "/table7_model.ckpt";
  CHECK_OK(SaveModule(*ours, ckpt));

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 3));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 4));

  const std::vector<int> random_seeds = {10, 30, 50, 70, 90};
  TablePrinter table({"Dataset", "seed 10", "seed 30", "seed 50", "seed 70",
                      "seed 90", "Avg ±std", "confident (ref)"});
  for (const auto& dataset : datasets) {
    std::vector<std::string> row = {dataset.name};
    std::vector<double> accs;
    for (int rseed : random_seeds) {
      GraphPrompterConfig config = base;
      config.augmenter.random_pseudo_labels = true;
      config.augmenter.min_confidence = 0.0f;  // truly random insertion
      config.seed = env.seed + 2;  // same weights
      GraphPrompterModel model(config);
      CHECK_OK(LoadModule(&model, ckpt));
      EvalConfig eval = DefaultEval(env, 20);
      eval.seed = static_cast<uint64_t>(rseed);
      const auto result = EvaluateInContext(model, dataset, eval);
      accs.push_back(result.accuracy_percent.mean);
      row.push_back(TablePrinter::Num(result.accuracy_percent.mean));
      std::printf("  %s seed=%d: %.2f%%\n", dataset.name.c_str(), rseed,
                  result.accuracy_percent.mean);
    }
    const MeanStd agg = ComputeMeanStd(accs);
    row.push_back(TablePrinter::MeanStd(agg.mean, agg.std));
    report->AddMetric(dataset.name + "/random_pseudo_labels", agg.mean, "%");
    // Confident pseudo-labels, same episodes (averaged over the seeds).
    std::vector<double> confident_accs;
    for (int rseed : random_seeds) {
      EvalConfig eval = DefaultEval(env, 20);
      eval.seed = static_cast<uint64_t>(rseed);
      confident_accs.push_back(
          EvaluateInContext(*ours, dataset, eval).accuracy_percent.mean);
    }
    row.push_back(
        TablePrinter::Num(ComputeMeanStd(confident_accs).mean));
    report->AddMetric(dataset.name + "/confident_pseudo_labels",
                      ComputeMeanStd(confident_accs).mean, "%");
    table.AddRow(row);
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/table7_pseudolabel.csv");

  std::printf(
      "\nPaper reference (Table VII): FB15K 80.66 ±1.21, NELL 79.33 ±1.53\n"
      "with random pseudo-labels — about 2%% below the confident-label\n"
      "configuration but still above the Prodigy baseline.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("table7_pseudolabel", argc, argv,
                              gp::bench::Run);
}
