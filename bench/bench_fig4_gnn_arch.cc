// Fig. 4: Prompt Generator GNN architecture comparison — GraphSAGE (with
// the reconstruction layer) vs GAT (whose attention plays the reweighting
// role) on FB15K-237 and NELL. The paper finds the GraphSAGE-based
// generator better, attributing it to scalability on large pre-training
// graphs.

#include "bench_common.h"

#include <map>

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 4: generator GNN architecture (3-shot) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);

  GraphPrompterConfig sage_config =
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);
  GraphPrompterConfig gat_config = sage_config;
  gat_config.gnn_arch = GnnArch::kGat;
  gat_config.use_reconstruction = false;  // GAT's attention reweights edges

  auto sage = MakePretrained(sage_config, wiki, env);
  auto gat = MakePretrained(gat_config, wiki, env);

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 3));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 4));

  TablePrinter table({"Dataset", "ways", "GraphSAGE generator",
                      "GAT generator"});
  SeriesWriter series("ways",
                      {"fb_sage", "fb_gat", "nell_sage", "nell_gat"});
  std::map<int, std::vector<double>> points;
  for (const auto& dataset : datasets) {
    for (int ways : {5, 10, 20, 40}) {
      const EvalConfig eval = DefaultEval(env, ways);
      const auto r_sage = EvaluateInContext(*sage, dataset, eval);
      const auto r_gat = EvaluateInContext(*gat, dataset, eval);
      table.AddRow({dataset.name, std::to_string(ways),
                    Cell(r_sage.accuracy_percent),
                    Cell(r_gat.accuracy_percent)});
      points[ways].push_back(r_sage.accuracy_percent.mean);
      points[ways].push_back(r_gat.accuracy_percent.mean);
      const std::string cell =
          dataset.name + "/ways=" + std::to_string(ways);
      report->AddMetric(cell + "/sage", r_sage.accuracy_percent.mean, "%");
      report->AddMetric(cell + "/gat", r_gat.accuracy_percent.mean, "%");
      std::printf("  %s ways=%d done (sage %.2f%%, gat %.2f%%)\n",
                  dataset.name.c_str(), ways, r_sage.accuracy_percent.mean,
                  r_gat.accuracy_percent.mean);
    }
  }
  for (const auto& [ways, ys] : points) series.AddPoint(ways, ys);
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/fig4_gnn_arch.csv");

  std::printf(
      "\nPaper reference (Fig. 4): the GraphSAGE-based generator outperforms\n"
      "the GAT-based one on both datasets across way counts.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig4_gnn_arch", argc, argv, gp::bench::Run);
}
