// Fig. 7: distribution of data-node embeddings (prompts + queries) under
// Prodigy vs GraphPrompter, 5-way, sweeping shots. The paper shows t-SNE
// plots where GraphPrompter's embeddings cluster more tightly by label.
// This bench (a) quantifies that with silhouette scores and intra/inter
// distance ratios and (b) dumps 2-D t-SNE coordinates to CSV for plotting.

#include "bench_common.h"

#include <algorithm>
#include <fstream>

#include "core/metrics.h"
#include "viz/tsne.h"

namespace gp::bench {

namespace {

void DumpTsne(const Tensor& embeddings, const std::vector<int>& labels,
              const std::string& path) {
  TsneConfig config;
  config.iterations = 300;
  const Tensor coords = RunTsne(embeddings, config);
  std::ofstream out(path);
  out << "x,y,label\n";
  for (int i = 0; i < coords.rows(); ++i) {
    out << coords.at(i, 0) << "," << coords.at(i, 1) << "," << labels[i]
        << "\n";
  }
}

}  // namespace

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 7: embedding distributions (5-way) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  auto ours = MakePretrained(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2), wiki,
      env);
  auto prodigy = MakePretrained(
      ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2), wiki, env);

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeNellSim(env.scale, env.seed + 3));
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 4));

  TablePrinter table({"Dataset", "shots", "silhouette (Prodigy)",
                      "silhouette (ours)", "intra/inter (Prodigy)",
                      "intra/inter (ours)"});
  for (const auto& dataset : datasets) {
    for (int shots : {3, 5, 10}) {
      EvalConfig eval = DefaultEval(env, 5, shots);
      eval.candidates_per_class = std::max(10, shots + 2);
      eval.trials = 1;
      eval.keep_embeddings = true;
      const auto r_ours = EvaluateInContext(*ours, dataset, eval);
      const auto r_prodigy = EvaluateInContext(*prodigy, dataset, eval);

      const double sil_ours =
          SilhouetteScore(r_ours.embeddings, r_ours.embedding_labels);
      const double sil_prodigy =
          SilhouetteScore(r_prodigy.embeddings, r_prodigy.embedding_labels);
      const double ratio_ours = IntraInterDistanceRatio(
          r_ours.embeddings, r_ours.embedding_labels);
      const double ratio_prodigy = IntraInterDistanceRatio(
          r_prodigy.embeddings, r_prodigy.embedding_labels);
      table.AddRow({dataset.name, std::to_string(shots),
                    TablePrinter::Num(sil_prodigy, 3),
                    TablePrinter::Num(sil_ours, 3),
                    TablePrinter::Num(ratio_prodigy, 3),
                    TablePrinter::Num(ratio_ours, 3)});

      const std::string cell =
          dataset.name + "/shots=" + std::to_string(shots);
      report->AddMetric(cell + "/silhouette_ours", sil_ours);
      report->AddMetric(cell + "/silhouette_prodigy", sil_prodigy);

      std::string tag = dataset.name.substr(0, 4) + "_k" +
                        std::to_string(shots);
      DumpTsne(r_ours.embeddings, r_ours.embedding_labels,
               env.outdir + "/fig7_tsne_ours_" + tag + ".csv");
      DumpTsne(r_prodigy.embeddings, r_prodigy.embedding_labels,
               env.outdir + "/fig7_tsne_prodigy_" + tag + ".csv");
      std::printf("  %s shots=%d done (sil ours %.3f vs prodigy %.3f)\n",
                  dataset.name.c_str(), shots, sil_ours, sil_prodigy);
    }
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/fig7_cluster_quality.csv");
  std::printf(
      "\nPaper reference (Fig. 7): GraphPrompter's data-node embeddings\n"
      "form tighter per-label clusters than Prodigy's at equal shots\n"
      "(here: higher silhouette, lower intra/inter ratio). t-SNE\n"
      "coordinates were written next to this table for plotting.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig7_embeddings", argc, argv, gp::bench::Run);
}
