// Table VI: comparison against OFA (One-For-All, low-resource joint
// variant) under the same random category selection — arXiv with ways in
// {3, 5, 10, 20} and FB15K-237 with ways in {5, 10, 20, 40}.

#include "bench_common.h"

#include "baselines/ofa_lite.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Table VI: OFA vs GraphPrompter (3-shot) ===\n");

  // Node domain.
  DatasetBundle mag = MakeMagSim(env.scale, env.seed);
  DatasetBundle arxiv = MakeArxivSim(env.scale, env.seed + 1);
  // Edge domain.
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed + 2);
  DatasetBundle fb = MakeFb15kSim(env.scale, env.seed + 3);

  GraphPrompterConfig node_config =
      FullGraphPrompterConfig(mag.graph.feature_dim(), env.seed + 4);
  node_config.use_augmenter = false;  // augmenter is the edge-task setting
  auto ours_node = MakePretrained(node_config, mag, env);
  auto ours_edge = MakePretrained(
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 4), wiki,
      env);

  // OFA-joint-lr: one model trained jointly across datasets.
  OfaLiteConfig ofa_config;
  ofa_config.feature_dim = mag.graph.feature_dim();
  ofa_config.seed = env.seed + 5;
  OfaLiteModel ofa(ofa_config);
  OfaPretrainConfig opre;
  opre.steps = env.pretrain_steps;
  opre.seed = env.seed + 6;
  PretrainOfaLite(&ofa, {&mag, &wiki}, opre);
  std::printf("  [jointly pretrained OFA-lite on %s + %s]\n",
              mag.name.c_str(), wiki.name.c_str());

  TablePrinter table({"Dataset", "Classes", "OFA", "GraphPrompter"});
  for (int ways : {3, 5, 10, 20}) {
    const EvalConfig eval = DefaultEval(env, ways);
    const auto r_ofa = EvaluateOfaLite(ofa, arxiv, eval);
    const auto r_ours = EvaluateInContext(*ours_node, arxiv, eval);
    table.AddRow({arxiv.name, std::to_string(ways),
                  Cell(r_ofa.accuracy_percent),
                  Cell(r_ours.accuracy_percent)});
    const std::string cell = arxiv.name + "/ways=" + std::to_string(ways);
    report->AddMetric(cell + "/graphprompter", r_ours.accuracy_percent.mean,
                      "%");
    report->AddMetric(cell + "/ofa", r_ofa.accuracy_percent.mean, "%");
    std::printf("  %s ways=%d done\n", arxiv.name.c_str(), ways);
  }
  for (int ways : {5, 10, 20, 40}) {
    const EvalConfig eval = DefaultEval(env, ways);
    const auto r_ofa = EvaluateOfaLite(ofa, fb, eval);
    const auto r_ours = EvaluateInContext(*ours_edge, fb, eval);
    table.AddRow({fb.name, std::to_string(ways),
                  Cell(r_ofa.accuracy_percent),
                  Cell(r_ours.accuracy_percent)});
    const std::string cell = fb.name + "/ways=" + std::to_string(ways);
    report->AddMetric(cell + "/graphprompter", r_ours.accuracy_percent.mean,
                      "%");
    report->AddMetric(cell + "/ofa", r_ofa.accuracy_percent.mean, "%");
    std::printf("  %s ways=%d done\n", fb.name.c_str(), ways);
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(table, env.outdir + "/table6_ofa.csv");

  std::printf(
      "\nPaper reference (Table VI, GraphPrompter vs OFA):\n"
      "  arXiv 3/5/10/20: 78.57/68.85/54.53/40.74 vs 46.16/32.73/19.8/12.03\n"
      "  FB15K 5/10/20/40: 99.65/89.52/83.78/66.94 vs"
      " 75.43/65.67/55.56/45.17\n"
      "Expected shape: GraphPrompter beats OFA everywhere, with OFA showing\n"
      "larger variance (few-shot class descriptors are noisy).\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("table6_ofa", argc, argv, gp::bench::Run);
}
