// Table III: in-context accuracy (%) for arXiv paper-category
// classification, 3-shot prompts, sweeping ways in {3, 5, 10, 20, 40}.
// The model is pre-trained on the MAG-style citation graph and applied
// in-context to the arXiv-style graph (different structure, different
// label vocabulary). Methods: NoPretrain, Contrastive, Finetune, Prodigy,
// ProG, GraphPrompter.

#include "bench_common.h"

#include "baselines/contrastive.h"
#include "baselines/finetune.h"
#include "baselines/no_pretrain.h"
#include "baselines/prog_lite.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Table III: arXiv node classification (3-shot) ===\n");
  DatasetBundle mag = MakeMagSim(env.scale, env.seed);
  DatasetBundle arxiv = MakeArxivSim(env.scale, env.seed + 1);
  std::printf("pretrain: %s\neval:     %s\n", mag.graph.DebugString().c_str(),
              arxiv.graph.DebugString().c_str());

  // --- pretrained models ---------------------------------------------
  // The paper applies the Prompt Augmenter in the edge-classification
  // experiments; the node-task pipeline runs generator + selector only.
  GraphPrompterConfig ours_config =
      FullGraphPrompterConfig(mag.graph.feature_dim(), env.seed + 2);
  ours_config.use_augmenter = false;
  auto ours = bench::MakePretrained(ours_config, mag, env);
  auto prodigy = bench::MakePretrained(
      ProdigyConfig(mag.graph.feature_dim(), env.seed + 2), mag, env);

  ContrastiveEncoder contrastive(mag.graph.feature_dim(), 64, SamplerConfig{},
                                 env.seed + 3);
  ContrastivePretrainConfig cpre;
  cpre.steps = env.pretrain_steps;
  cpre.seed = env.seed + 4;
  PretrainContrastive(&contrastive, mag, cpre);
  std::printf("  [pretrained contrastive encoder]\n");

  ProgLiteConfig prog_config;
  prog_config.feature_dim = mag.graph.feature_dim();
  prog_config.seed = env.seed + 5;
  ProgLiteModel prog(prog_config);
  ProgPretrainConfig ppre;
  ppre.steps = env.pretrain_steps;
  ppre.seed = env.seed + 6;
  PretrainProgLite(&prog, mag, ppre);
  std::printf("  [pretrained ProG prompt token]\n");

  // --- sweep ----------------------------------------------------------
  TablePrinter table({"Classes", "NoPretrain", "Contrastive", "Finetune",
                      "Prodigy", "ProG", "GraphPrompter"});
  for (int ways : {3, 5, 10, 20, 40}) {
    const EvalConfig eval = bench::DefaultEval(env, ways);
    const auto r_nopre = EvaluateNoPretrain(arxiv, eval, env.seed + 9);
    const auto r_contrast = EvaluateContrastive(contrastive, arxiv, eval);
    const auto r_finetune =
        EvaluateFinetune(contrastive, arxiv, eval, FinetuneConfig{});
    const auto r_prodigy = EvaluateInContext(*prodigy, arxiv, eval);
    const auto r_prog = EvaluateProgLite(prog, arxiv, eval, ProgTuneConfig{});
    const auto r_ours = EvaluateInContext(*ours, arxiv, eval);
    table.AddRow({std::to_string(ways),
                  bench::Cell(r_nopre.accuracy_percent),
                  bench::Cell(r_contrast.accuracy_percent),
                  bench::Cell(r_finetune.accuracy_percent),
                  bench::Cell(r_prodigy.accuracy_percent),
                  bench::Cell(r_prog.accuracy_percent),
                  bench::Cell(r_ours.accuracy_percent)});
    std::printf("  ways=%d done (ours %.2f%%, prodigy %.2f%%)\n", ways,
                r_ours.accuracy_percent.mean, r_prodigy.accuracy_percent.mean);
    const std::string cell = "ways=" + std::to_string(ways);
    report->AddMetric(cell + "/graphprompter", r_ours.accuracy_percent.mean,
                      "%");
    report->AddMetric(cell + "/prodigy", r_prodigy.accuracy_percent.mean,
                      "%");
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  bench::WriteCsvOrWarn(table, env.outdir + "/table3_arxiv.csv");

  std::printf(
      "\nPaper reference (Table III, GraphPrompter vs Prodigy):\n"
      "  ways  3: 78.57 vs 73.09 | 5: 68.85 vs 61.52 | 10: 54.53 vs 46.74\n"
      "  ways 20: 40.74 vs 34.41 | 40: 29.47 vs 25.13\n"
      "Expected shape: GraphPrompter > Prodigy > Finetune >= Contrastive\n"
      ">> NoPretrain at every way count; accuracy decreases with ways.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("table3_arxiv", argc, argv, gp::bench::Run);
}
