// Fig. 5: Prompt Augmenter cache-size analysis — accuracy as a function of
// cache capacity c in {1..10} on FB15K-237 and NELL. The paper finds
// performance peaks around c = 3 and declines beyond it as noisy
// pseudo-labels outweigh their benefit.

#include "bench_common.h"

#include "nn/serialize.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 5: cache size sweep (3-shot, 20-way) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);
  const GraphPrompterConfig base =
      FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);
  auto trained = MakePretrained(base, wiki, env);
  const std::string ckpt = env.outdir + "/fig5_model.ckpt";
  CHECK_OK(SaveModule(*trained, ckpt));

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 3));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 4));

  TablePrinter table({"cache size", "FB15K-237", "NELL"});
  SeriesWriter series("cache_size", {"fb", "nell"});
  for (int cache = 1; cache <= 10; ++cache) {
    std::vector<std::string> row = {std::to_string(cache)};
    std::vector<double> ys;
    for (const auto& dataset : datasets) {
      GraphPrompterConfig config = base;
      config.augmenter.cache_capacity = cache;
      GraphPrompterModel model(config);
      CHECK_OK(LoadModule(&model, ckpt));  // identical weights
      const EvalConfig eval = DefaultEval(env, 20);
      const auto result = EvaluateInContext(model, dataset, eval);
      row.push_back(Cell(result.accuracy_percent));
      ys.push_back(result.accuracy_percent.mean);
      report->AddMetric(dataset.name + "/cache=" + std::to_string(cache),
                        result.accuracy_percent.mean, "%");
    }
    table.AddRow(row);
    series.AddPoint(cache, ys);
    std::printf("  cache=%d done (fb %.2f%%, nell %.2f%%)\n", cache, ys[0],
                ys[1]);
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/fig5_cache_size.csv");

  std::printf(
      "\nPaper reference (Fig. 5): accuracy peaks near c = 3 and degrades\n"
      "for larger caches (extra pseudo-label noise outweighs the benefit).\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig5_cache_size", argc, argv, gp::bench::Run);
}
