// Fig. 8: multi-hop analysis — 1/2/3-hop data graphs on FB15K-237 and
// NELL, GraphPrompter vs Prodigy. Performance declines as subgraphs grow
// (longer logical chains are harder for the GNN to compress), but
// GraphPrompter stays above the baseline at every hop count.

#include "bench_common.h"

namespace gp::bench {

void Run(const Env& env, BenchReporter* report) {
  std::printf("=== Fig. 8: multi-hop subgraphs (3-shot, 10-way) ===\n");
  DatasetBundle wiki = MakeWikiSim(env.scale, env.seed);

  std::vector<DatasetBundle> datasets;
  datasets.push_back(MakeFb15kSim(env.scale, env.seed + 3));
  datasets.push_back(MakeNellSim(env.scale, env.seed + 4));

  TablePrinter table({"Dataset", "hops", "Prodigy", "GraphPrompter"});
  SeriesWriter series("hops",
                      {"fb_prodigy", "fb_ours", "nell_prodigy", "nell_ours"});
  std::vector<std::vector<double>> points(4);
  for (int hops = 1; hops <= 3; ++hops) {
    // Hop count changes sampling during *training* too: retrain per l.
    GraphPrompterConfig ours_config =
        FullGraphPrompterConfig(wiki.graph.feature_dim(), env.seed + 2);
    ours_config.sampler.num_hops = hops;
    ours_config.sampler.max_nodes = 20 + 15 * hops;
    GraphPrompterConfig prodigy_config =
        ProdigyConfig(wiki.graph.feature_dim(), env.seed + 2);
    prodigy_config.sampler = ours_config.sampler;
    auto ours = MakePretrained(ours_config, wiki, env);
    auto prodigy = MakePretrained(prodigy_config, wiki, env);

    std::vector<double> row_vals;
    for (size_t d = 0; d < datasets.size(); ++d) {
      const EvalConfig eval = DefaultEval(env, 10);
      const auto r_prodigy = EvaluateInContext(*prodigy, datasets[d], eval);
      const auto r_ours = EvaluateInContext(*ours, datasets[d], eval);
      table.AddRow({datasets[d].name, std::to_string(hops),
                    Cell(r_prodigy.accuracy_percent),
                    Cell(r_ours.accuracy_percent)});
      row_vals.push_back(r_prodigy.accuracy_percent.mean);
      row_vals.push_back(r_ours.accuracy_percent.mean);
      const std::string cell =
          datasets[d].name + "/hops=" + std::to_string(hops);
      report->AddMetric(cell + "/graphprompter",
                        r_ours.accuracy_percent.mean, "%");
      report->AddMetric(cell + "/prodigy", r_prodigy.accuracy_percent.mean,
                        "%");
      std::printf("  %s hops=%d done (ours %.2f%%, prodigy %.2f%%)\n",
                  datasets[d].name.c_str(), hops,
                  r_ours.accuracy_percent.mean,
                  r_prodigy.accuracy_percent.mean);
    }
    series.AddPoint(hops, row_vals);
  }
  std::printf("\nMeasured (this reproduction):\n");
  table.Print();
  WriteCsvOrWarn(series, env.outdir + "/fig8_multihop.csv");

  std::printf(
      "\nPaper reference (Fig. 8): accuracy declines as hop count grows on\n"
      "both datasets; GraphPrompter > Prodigy at every hop count.\n");
}

}  // namespace gp::bench

int main(int argc, char** argv) {
  return gp::bench::BenchMain("fig8_multihop", argc, argv, gp::bench::Run);
}
