#include "util/status.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace gp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad ways");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ways");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad ways");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DeadlineExceededError("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, AccessingErrorValueDies) {
  StatusOr<int> v = InternalError("boom");
  EXPECT_DEATH(v.value(), "boom");
}

Status FailsThenPropagates(bool fail) {
  auto inner = [&]() -> Status {
    if (fail) return InvalidArgumentError("inner");
    return Status::Ok();
  };
  GP_RETURN_IF_ERROR(inner());
  return InternalError("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInternal);
}

TEST(StatusTest, DataLossErrorCodeAndName) {
  Status s = DataLossError("corrupt checkpoint");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: corrupt checkpoint");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
}

TEST(StatusTest, StatusMovePreservesError) {
  Status s = NotFoundError("gone");
  Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kNotFound);
  EXPECT_EQ(moved.message(), "gone");
}

TEST(StatusOrTest, MovedFromStatusOrTransfersOwnership) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  StatusOr<std::vector<int>> moved = std::move(v);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved->size(), 3u);
}

StatusOr<int> ParsePositive(int v) {
  if (v <= 0) return InvalidArgumentError("not positive");
  return v;
}

StatusOr<int> DoubleViaAssignOrReturn(int v) {
  GP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  return parsed * 2;
}

TEST(StatusOrTest, AssignOrReturnUnwrapsValue) {
  auto result = DoubleViaAssignOrReturn(21);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, AssignOrReturnPropagatesError) {
  auto result = DoubleViaAssignOrReturn(-1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.status().message(), "not positive");
}

StatusOr<std::unique_ptr<int>> MakeBox(bool fail) {
  if (fail) return InternalError("no box");
  return std::make_unique<int>(9);
}

StatusOr<int> UnwrapBox(bool fail) {
  GP_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(fail));
  return *box;
}

TEST(StatusOrTest, AssignOrReturnHandlesMoveOnlyTypes) {
  auto ok = UnwrapBox(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 9);
  EXPECT_EQ(UnwrapBox(true).status().code(), StatusCode::kInternal);
}

Status TwoAssignsInOneFunction() {
  // Distinct hidden temporaries per expansion (line-based names): two
  // GP_ASSIGN_OR_RETURN uses in one scope must not collide.
  GP_ASSIGN_OR_RETURN(int a, ParsePositive(1));
  GP_ASSIGN_OR_RETURN(int b, ParsePositive(2));
  return a + b == 3 ? Status::Ok() : InternalError("bad sum");
}

TEST(StatusOrTest, AssignOrReturnComposesInOneScope) {
  EXPECT_TRUE(TwoAssignsInOneFunction().ok());
}

}  // namespace
}  // namespace gp
