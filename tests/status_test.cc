#include "util/status.h"

#include <gtest/gtest.h>

namespace gp {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad ways");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad ways");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad ways");
}

TEST(StatusTest, AllConstructorsSetDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOrTest, AccessingErrorValueDies) {
  StatusOr<int> v = InternalError("boom");
  EXPECT_DEATH(v.value(), "boom");
}

Status FailsThenPropagates(bool fail) {
  auto inner = [&]() -> Status {
    if (fail) return InvalidArgumentError("inner");
    return Status::Ok();
  };
  GP_RETURN_IF_ERROR(inner());
  return InternalError("reached end");
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(FailsThenPropagates(true).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(FailsThenPropagates(false).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace gp
