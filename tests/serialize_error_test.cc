// Error-path coverage for the integrity-framed binary formats: a corrupted
// checkpoint or graph dump must surface as a typed Status (kDataLoss,
// kInvalidArgument, kFailedPrecondition), never as silently garbage data.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "core/graph_prompter.h"
#include "data/synthetic.h"
#include "graph/graph_io.h"
#include "nn/serialize.h"
#include "util/checksum.h"
#include "util/fault.h"

namespace gp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
}

GraphPrompterConfig TinyConfig() {
  GraphPrompterConfig config = FullGraphPrompterConfig(8, 1);
  config.embedding_dim = 8;
  config.recon_hidden = 8;
  config.selection_hidden = 8;
  return config;
}

// Saves a valid checkpoint for `model` and returns its path.
std::string SaveCheckpoint(const GraphPrompterModel& model,
                           const char* name) {
  const std::string path = TempPath(name);
  EXPECT_TRUE(SaveModule(model, path).ok());
  return path;
}

TEST(CheckpointErrorTest, RoundTripStillWorks) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "ok_ckpt.bin");
  GraphPrompterModel restored(TinyConfig());
  EXPECT_TRUE(LoadModule(&restored, path).ok());
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, TruncatedFileIsDataLoss) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "trunc_ckpt.bin");

  FaultSpec spec;
  spec.file_mode = FileFaultMode::kTruncate;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());

  GraphPrompterModel restored(TinyConfig());
  const Status status = LoadModule(&restored, path);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, TornMidHeaderIsDataLoss) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "torn_header_ckpt.bin");

  // Cut the file inside the 8-byte magic+version header — fewer bytes than
  // the minimal frame (header + CRC footer) can ever occupy. The loader
  // must identify the torn frame before touching any field.
  const std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 12u);
  for (const size_t keep : {size_t{1}, size_t{5}, size_t{11}}) {
    WriteFile(path, contents.substr(0, keep));
    GraphPrompterModel restored(TinyConfig());
    const Status status = LoadModule(&restored, path);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "torn at " << keep << " bytes: " << status.ToString();
    EXPECT_NE(status.message().find("truncated"), std::string::npos)
        << status.ToString();
  }
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, TornMidPayloadIsDataLoss) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "torn_payload_ckpt.bin");

  // Cut the file mid-payload: the header survives, so the tear is caught
  // by the CRC footer (the trailing 4 bytes now hold payload data).
  const std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 40u);
  for (const size_t keep : {size_t{16}, contents.size() / 2,
                            contents.size() - 1}) {
    WriteFile(path, contents.substr(0, keep));
    GraphPrompterModel restored(TinyConfig());
    const Status status = LoadModule(&restored, path);
    EXPECT_EQ(status.code(), StatusCode::kDataLoss)
        << "torn at " << keep << " bytes: " << status.ToString();
  }
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, FlippedBitIsDataLoss) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "flip_ckpt.bin");

  // Flip one bit in the middle of the payload; the CRC footer catches it.
  std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 20u);
  contents[contents.size() / 2] ^= 0x10;
  WriteFile(path, contents);

  GraphPrompterModel restored(TinyConfig());
  const Status status = LoadModule(&restored, path);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, WrongMagicIsInvalidArgument) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "magic_ckpt.bin");

  FaultSpec spec;
  spec.file_mode = FileFaultMode::kMagic;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());

  GraphPrompterModel restored(TinyConfig());
  const Status status = LoadModule(&restored, path);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, WrongVersionIsFailedPrecondition) {
  GraphPrompterModel model(TinyConfig());
  const std::string path = SaveCheckpoint(model, "version_ckpt.bin");

  // Re-frame the same payload under a future format version; the CRC is
  // valid, so the version gate is what rejects it.
  std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 12u);
  uint32_t magic = 0;
  std::memcpy(&magic, contents.data(), sizeof(magic));
  const std::string payload =
      contents.substr(8, contents.size() - 12);  // strip header + footer
  ASSERT_TRUE(WriteFramedFile(path, magic, /*version=*/99, payload).ok());

  GraphPrompterModel restored(TinyConfig());
  const Status status = LoadModule(&restored, path);
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(CheckpointErrorTest, MissingFileIsNotFound) {
  GraphPrompterModel restored(TinyConfig());
  EXPECT_EQ(LoadModule(&restored, "/does/not/exist.ckpt").code(),
            StatusCode::kNotFound);
}

TEST(GraphErrorTest, TruncatedFileIsDataLoss) {
  NodeGraphConfig config;
  config.num_nodes = 40;
  config.num_classes = 4;
  Graph graph = MakeNodeClassificationGraph(config);
  const std::string path = TempPath("trunc_graph.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());

  FaultSpec spec;
  spec.file_mode = FileFaultMode::kTruncate;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());

  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(GraphErrorTest, FlippedBitIsDataLoss) {
  NodeGraphConfig config;
  config.num_nodes = 40;
  config.num_classes = 4;
  Graph graph = MakeNodeClassificationGraph(config);
  const std::string path = TempPath("flip_graph.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());

  std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 20u);
  contents[contents.size() / 3] ^= 0x04;
  WriteFile(path, contents);

  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(GraphErrorTest, WrongMagicIsInvalidArgument) {
  NodeGraphConfig config;
  config.num_nodes = 40;
  config.num_classes = 4;
  Graph graph = MakeNodeClassificationGraph(config);
  const std::string path = TempPath("magic_graph.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());

  FaultSpec spec;
  spec.file_mode = FileFaultMode::kMagic;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());

  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphErrorTest, WrongVersionIsFailedPrecondition) {
  NodeGraphConfig config;
  config.num_nodes = 40;
  config.num_classes = 4;
  Graph graph = MakeNodeClassificationGraph(config);
  const std::string path = TempPath("version_graph.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());

  std::string contents = ReadFile(path);
  ASSERT_GT(contents.size(), 12u);
  uint32_t magic = 0;
  std::memcpy(&magic, contents.data(), sizeof(magic));
  const std::string payload = contents.substr(8, contents.size() - 12);
  ASSERT_TRUE(WriteFramedFile(path, magic, /*version=*/77, payload).ok());

  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

TEST(ChecksumTest, Crc32KnownVectorAndChaining) {
  // Standard test vector: CRC-32("123456789") = 0xcbf43926.
  const char* digits = "123456789";
  EXPECT_EQ(Crc32(digits, 9), 0xcbf43926u);
  // Incremental computation matches one-shot.
  const uint32_t partial = Crc32(digits, 4);
  EXPECT_EQ(Crc32(digits + 4, 5, partial), 0xcbf43926u);
}

TEST(ChecksumTest, FramedFileRoundTrip) {
  const std::string path = TempPath("frame_roundtrip.bin");
  const std::string payload = "hello framed world";
  ASSERT_TRUE(WriteFramedFile(path, 0x41424344, 3, payload).ok());
  auto framed = ReadFramedFile(path, 0x41424344, 1, 5, "test");
  ASSERT_TRUE(framed.ok());
  EXPECT_EQ(framed->version, 3u);
  EXPECT_EQ(framed->payload, payload);
  std::remove(path.c_str());
}

TEST(ChecksumTest, PayloadReaderBoundsChecks) {
  PayloadWriter writer;
  writer.WriteU32(7);
  writer.WriteI32(-3);
  PayloadReader reader(writer.payload());
  uint32_t u = 0;
  int32_t i = 0;
  EXPECT_TRUE(reader.ReadU32(&u));
  EXPECT_EQ(u, 7u);
  EXPECT_TRUE(reader.ReadI32(&i));
  EXPECT_EQ(i, -3);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.ReadU32(&u));  // exhausted: refuses, not garbage
}

}  // namespace
}  // namespace gp
