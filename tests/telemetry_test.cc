// Unit tests for the telemetry registry: counters, gauges, fixed-bucket
// histograms, snapshots, and the span-counter stage folding.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace gp {
namespace {

class TelemetryTest : public ::testing::Test {
 protected:
  // The registry is process-global; start each test from zeroed values.
  void SetUp() override { Telemetry().Reset(); }
};

TEST_F(TelemetryTest, CounterAddAndValue) {
  Counter* c = Telemetry().GetCounter("test/counter");
  EXPECT_EQ(c->Value(), 0);
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->Value(), 42);
}

TEST_F(TelemetryTest, SameNameReturnsSameHandle) {
  Counter* a = Telemetry().GetCounter("test/handle");
  Counter* b = Telemetry().GetCounter("test/handle");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3);
}

TEST_F(TelemetryTest, ResetZeroesButKeepsHandles) {
  Counter* c = Telemetry().GetCounter("test/reset");
  Gauge* g = Telemetry().GetGauge("test/reset_gauge");
  c->Add(5);
  g->Set(2.5);
  Telemetry().Reset();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(g->Value(), 0.0);
  c->Add(1);  // handle still valid after Reset
  EXPECT_EQ(Telemetry().GetCounter("test/reset")->Value(), 1);
}

TEST_F(TelemetryTest, GaugeStoresLastValue) {
  Gauge* g = Telemetry().GetGauge("test/gauge");
  g->Set(1.0);
  g->Set(-3.5);
  EXPECT_EQ(g->Value(), -3.5);
}

TEST_F(TelemetryTest, HistogramBucketsAndOverflow) {
  Histogram* h =
      Telemetry().GetHistogram("test/hist", {1.0, 10.0, 100.0});
  h->Observe(0.5);    // bucket 0 (v <= 1)
  h->Observe(1.0);    // bucket 0 (boundary inclusive)
  h->Observe(7.0);    // bucket 1
  h->Observe(50.0);   // bucket 2
  h->Observe(1000.0); // overflow
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2);
  EXPECT_EQ(counts[1], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[3], 1);
  EXPECT_EQ(h->TotalCount(), 5);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.5 + 1.0 + 7.0 + 50.0 + 1000.0);
}

TEST_F(TelemetryTest, QuantileInterpolatesWithinBucket) {
  // 100 observations spread uniformly over (0, 100]; bucket edges every 10.
  Histogram* h = Telemetry().GetHistogram(
      "test/quantile",
      {10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0});
  for (int i = 1; i <= 100; ++i) h->Observe(static_cast<double>(i));

  TelemetrySnapshot snapshot = Telemetry().Snapshot();
  const HistogramSample* sample = snapshot.FindHistogram("test/quantile");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->total_count, 100);
  // Each bucket holds 10 observations, so the q-th quantile of the
  // uniform population lands within one interpolation step of 100q.
  EXPECT_NEAR(sample->Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(sample->Quantile(0.9), 90.0, 1.0);
  EXPECT_NEAR(sample->Quantile(0.99), 99.0, 1.0);
  // Extremes clamp into the population instead of extrapolating.
  EXPECT_GT(sample->Quantile(0.0), 0.0);
  EXPECT_LE(sample->Quantile(1.0), 100.0);
}

TEST_F(TelemetryTest, QuantileEdgeCases) {
  Histogram* h = Telemetry().GetHistogram("test/quantile_edge", {1.0, 2.0});
  TelemetrySnapshot empty = Telemetry().Snapshot();
  const HistogramSample* sample = empty.FindHistogram("test/quantile_edge");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->Quantile(0.5), 0.0);  // empty histogram

  // All mass in the overflow bucket clamps to the last bound.
  h->Observe(100.0);
  h->Observe(200.0);
  TelemetrySnapshot overflow = Telemetry().Snapshot();
  sample = overflow.FindHistogram("test/quantile_edge");
  ASSERT_NE(sample, nullptr);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(sample->Quantile(0.99), 2.0);
}

TEST_F(TelemetryTest, LatencyBucketBoundsAreAscending) {
  const std::vector<double> bounds = LatencyBucketBoundsUs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_DOUBLE_EQ(bounds.front(), 10.0);    // 10us floor
  EXPECT_DOUBLE_EQ(bounds.back(), 1e7);      // 10s ceiling
  // Registry accepts them (strictly ascending is CHECKed on registration).
  Histogram* h = Telemetry().GetHistogram("test/latency_us", bounds);
  h->Observe(1234.0);
  EXPECT_EQ(h->TotalCount(), 1);
}

TEST_F(TelemetryTest, HistogramReset) {
  Histogram* h = Telemetry().GetHistogram("test/hist_reset", {1.0});
  h->Observe(0.5);
  h->Observe(2.0);
  h->Reset();
  EXPECT_EQ(h->TotalCount(), 0);
  EXPECT_EQ(h->Sum(), 0.0);
  const std::vector<int64_t> counts = h->BucketCounts();
  for (int64_t c : counts) EXPECT_EQ(c, 0);
}

TEST_F(TelemetryTest, SnapshotIsSortedAndDeterministic) {
  Telemetry().GetCounter("test/zz")->Add(1);
  Telemetry().GetCounter("test/aa")->Add(2);
  Telemetry().GetGauge("test/g")->Set(4.0);
  const TelemetrySnapshot s1 = Telemetry().Snapshot();
  const TelemetrySnapshot s2 = Telemetry().Snapshot();
  ASSERT_EQ(s1.counters.size(), s2.counters.size());
  for (size_t i = 0; i + 1 < s1.counters.size(); ++i) {
    EXPECT_LT(s1.counters[i].name, s1.counters[i + 1].name);
  }
  for (size_t i = 0; i < s1.counters.size(); ++i) {
    EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
    EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
  }
  EXPECT_EQ(s1.CounterValue("test/aa"), 2);
  EXPECT_EQ(s1.CounterValue("test/zz"), 1);
  EXPECT_EQ(s1.CounterValue("test/absent"), 0);
}

TEST_F(TelemetryTest, SnapshotFindHistogram) {
  Histogram* h = Telemetry().GetHistogram("test/snap_hist", {2.0});
  h->Observe(1.0);
  const TelemetrySnapshot snap = Telemetry().Snapshot();
  const HistogramSample* sample = snap.FindHistogram("test/snap_hist");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->total_count, 1);
  ASSERT_EQ(sample->counts.size(), 2u);
  EXPECT_EQ(sample->counts[0], 1);
  EXPECT_EQ(snap.FindHistogram("test/absent"), nullptr);
}

TEST_F(TelemetryTest, StagesFoldSpanCounters) {
  // Spans aggregate into span/<name>/{count,total_us} even with event
  // recording disabled.
  SetTracingEnabled(false);
  { GP_TRACE_SPAN("stagetest/work"); }
  { GP_TRACE_SPAN("stagetest/work"); }
  const TelemetrySnapshot snap = Telemetry().Snapshot();
  EXPECT_EQ(snap.CounterValue("span/stagetest/work/count"), 2);

  const std::vector<StageSample> stages = snap.Stages();
  bool found = false;
  for (const StageSample& stage : stages) {
    if (stage.name == "stagetest/work") {
      found = true;
      EXPECT_EQ(stage.count, 2);
      EXPECT_GE(stage.total_ms, 0.0);
    }
  }
  EXPECT_TRUE(found);

  // PlainCounters excludes the span bookkeeping Stages() represents.
  for (const CounterSample& counter : snap.PlainCounters()) {
    EXPECT_EQ(counter.name.rfind("span/", 0), std::string::npos)
        << counter.name;
  }
}

}  // namespace
}  // namespace gp
