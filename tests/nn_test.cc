#include <cmath>
#include <cstdio>

#include <gtest/gtest.h>

#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"
#include "nn/serialize.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

TEST(LinearTest, OutputShape) {
  Rng rng(1);
  Linear layer(4, 3, &rng);
  Tensor x = Tensor::Randn(5, 4, &rng);
  Tensor y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
}

TEST(LinearTest, BiasIsApplied) {
  Rng rng(2);
  Linear layer(2, 2, &rng);
  // Zero input -> output equals bias (initially zero).
  Tensor y = layer.Forward(Tensor::Zeros(1, 2));
  EXPECT_EQ(y.at(0, 0), 0.0f);
  // Mutate the bias and observe it at the output.
  Tensor bias = layer.bias();
  bias.mutable_data()[1] = 3.5f;
  Tensor y2 = layer.Forward(Tensor::Zeros(1, 2));
  EXPECT_EQ(y2.at(0, 1), 3.5f);
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(3);
  Linear layer(2, 2, &rng, /*use_bias=*/false);
  EXPECT_EQ(layer.Parameters().size(), 1u);
}

TEST(LinearTest, ParametersRegistered) {
  Rng rng(4);
  Linear layer(3, 2, &rng);
  const auto named = layer.NamedParameters();
  ASSERT_EQ(named.size(), 2u);
  EXPECT_EQ(named[0].first, "weight");
  EXPECT_EQ(named[1].first, "bias");
  EXPECT_EQ(layer.NumParameters(), 3 * 2 + 2);
}

TEST(MlpTest, HiddenLayersAndShapes) {
  Rng rng(5);
  Mlp mlp({8, 16, 4}, &rng);
  EXPECT_EQ(mlp.num_layers(), 2);
  EXPECT_EQ(mlp.in_features(), 8);
  EXPECT_EQ(mlp.out_features(), 4);
  Tensor y = mlp.Forward(Tensor::Randn(3, 8, &rng));
  EXPECT_EQ(y.rows(), 3);
  EXPECT_EQ(y.cols(), 4);
}

TEST(MlpTest, GradientsReachAllLayers) {
  Rng rng(6);
  Mlp mlp({4, 8, 1}, &rng);
  Tensor x = Tensor::Randn(6, 4, &rng);
  Backward(SumAll(mlp.Forward(x)));
  for (const auto& p : mlp.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
  }
}

TEST(MlpTest, LearnsLinearlySeparableTask) {
  // Two Gaussian blobs; a small MLP should reach high training accuracy.
  Rng rng(7);
  const int n = 60;
  Tensor x = Tensor::Zeros(n, 2);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    const int cls = i % 2;
    labels[i] = cls;
    x.at(i, 0) = rng.Normal() * 0.5f + (cls == 0 ? -2.0f : 2.0f);
    x.at(i, 1) = rng.Normal() * 0.5f;
  }
  Mlp mlp({2, 16, 2}, &rng);
  Adam optimizer(mlp.Parameters(), 0.05f);
  for (int step = 0; step < 60; ++step) {
    optimizer.ZeroGrad();
    Backward(CrossEntropyWithLogits(mlp.Forward(x), labels));
    optimizer.Step();
  }
  const auto pred = ArgmaxRows(mlp.Forward(x));
  int correct = 0;
  for (int i = 0; i < n; ++i) correct += pred[i] == labels[i];
  EXPECT_GE(correct, n - 2);
}

TEST(ActivationTest, AllVariantsRun) {
  Tensor x = Tensor::FromData(1, 2, {-1.0f, 1.0f});
  EXPECT_EQ(ApplyActivation(x, Activation::kIdentity).at(0, 0), -1.0f);
  EXPECT_EQ(ApplyActivation(x, Activation::kRelu).at(0, 0), 0.0f);
  EXPECT_NEAR(ApplyActivation(x, Activation::kSigmoid).at(0, 1),
              1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
  EXPECT_NEAR(ApplyActivation(x, Activation::kTanh).at(0, 1),
              std::tanh(1.0f), 1e-5f);
  EXPECT_NEAR(ApplyActivation(x, Activation::kLeakyRelu).at(0, 0), -0.2f,
              1e-5f);
}

TEST(SerializeTest, SaveLoadRoundTrip) {
  Rng rng(8);
  Mlp original({4, 8, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/mlp_ckpt.bin";
  ASSERT_TRUE(SaveModule(original, path).ok());

  Rng rng2(999);  // different init
  Mlp restored({4, 8, 2}, &rng2);
  ASSERT_TRUE(LoadModule(&restored, path).ok());

  Tensor x = Tensor::Randn(3, 4, &rng);
  Tensor y1 = original.Forward(x);
  Tensor y2 = restored.Forward(x);
  for (int64_t i = 0; i < y1.size(); ++i) {
    EXPECT_FLOAT_EQ(y1.data()[i], y2.data()[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializeTest, ShapeMismatchFails) {
  Rng rng(9);
  Mlp original({4, 8, 2}, &rng);
  const std::string path = ::testing::TempDir() + "/mlp_bad.bin";
  ASSERT_TRUE(SaveModule(original, path).ok());
  Mlp different({4, 16, 2}, &rng);
  EXPECT_FALSE(LoadModule(&different, path).ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileFails) {
  Rng rng(10);
  Mlp mlp({2, 2}, &rng);
  EXPECT_EQ(LoadModule(&mlp, "/does/not/exist.bin").code(),
            StatusCode::kNotFound);
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(11);
  Mlp mlp({2, 4, 1}, &rng);
  Backward(SumAll(mlp.Forward(Tensor::Randn(2, 2, &rng))));
  mlp.ZeroGrad();
  for (const auto& p : mlp.Parameters()) {
    for (float g : p.grad()) EXPECT_EQ(g, 0.0f);
  }
}

}  // namespace
}  // namespace gp
