#include "core/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gp {
namespace {

TEST(AccuracyTest, Basic) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({1, 2, 3}, {1, 0, 0}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy({}, {}), 0.0);
}

TEST(AccuracyTest, MismatchedSizesDie) {
  EXPECT_DEATH(Accuracy({1}, {1, 2}), "Check failed");
}

TEST(MeanStdTest, KnownValues) {
  const MeanStd ms = ComputeMeanStd({2.0, 4.0, 6.0, 8.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_NEAR(ms.std, std::sqrt(5.0), 1e-9);
}

TEST(MeanStdTest, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(ComputeMeanStd({}).mean, 0.0);
  const MeanStd ms = ComputeMeanStd({7.0});
  EXPECT_DOUBLE_EQ(ms.mean, 7.0);
  EXPECT_DOUBLE_EQ(ms.std, 0.0);
}

TEST(SilhouetteTest, PerfectClustersScoreHigh) {
  // Two tight, well-separated clusters.
  Tensor emb = Tensor::FromData(4, 2, {0, 0, 0.1f, 0, 10, 10, 10.1f, 10});
  const double s = SilhouetteScore(emb, {0, 0, 1, 1});
  EXPECT_GT(s, 0.9);
}

TEST(SilhouetteTest, RandomLabelsScoreLow) {
  Rng rng(1);
  Tensor emb = Tensor::Randn(40, 4, &rng);
  std::vector<int> labels(40);
  for (int i = 0; i < 40; ++i) labels[i] = i % 2;
  const double s = SilhouetteScore(emb, labels);
  EXPECT_LT(std::abs(s), 0.25);
}

TEST(SilhouetteTest, DegenerateInputsReturnZero) {
  Tensor emb = Tensor::FromData(3, 1, {1, 2, 3});
  EXPECT_DOUBLE_EQ(SilhouetteScore(emb, {0, 0, 0}), 0.0);   // one cluster
  Tensor two = Tensor::FromData(2, 1, {1, 2});
  EXPECT_DOUBLE_EQ(SilhouetteScore(two, {0, 1}), 0.0);      // n < 3
}

TEST(SilhouetteTest, TighterClustersScoreHigher) {
  Rng rng(2);
  auto make = [&](float spread) {
    Tensor emb = Tensor::Zeros(30, 2);
    std::vector<int> labels(30);
    for (int i = 0; i < 30; ++i) {
      labels[i] = i % 3;
      emb.at(i, 0) = labels[i] * 5.0f + rng.Normal() * spread;
      emb.at(i, 1) = rng.Normal() * spread;
    }
    return std::make_pair(emb, labels);
  };
  auto [tight_emb, tight_labels] = make(0.3f);
  auto [loose_emb, loose_labels] = make(2.5f);
  EXPECT_GT(SilhouetteScore(tight_emb, tight_labels),
            SilhouetteScore(loose_emb, loose_labels));
}

TEST(IntraInterTest, SeparatedClustersHaveLowRatio) {
  Tensor emb = Tensor::FromData(4, 2, {0, 0, 0.1f, 0, 10, 10, 10.1f, 10});
  const double r = IntraInterDistanceRatio(emb, {0, 0, 1, 1});
  EXPECT_LT(r, 0.1);
}

TEST(IntraInterTest, DegenerateReturnsZero) {
  Tensor emb = Tensor::FromData(2, 1, {1, 2});
  EXPECT_DOUBLE_EQ(IntraInterDistanceRatio(emb, {0, 0}), 0.0);
}

}  // namespace
}  // namespace gp
