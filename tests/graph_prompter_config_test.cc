#include "core/graph_prompter.h"

#include <gtest/gtest.h>

#include "baselines/prodigy.h"

namespace gp {
namespace {

TEST(GraphPrompterConfigTest, FullConfigEnablesAllStages) {
  const auto config = FullGraphPrompterConfig(32, 7);
  EXPECT_TRUE(config.use_reconstruction);
  EXPECT_TRUE(config.use_selection_layer);
  EXPECT_TRUE(config.use_knn);
  EXPECT_TRUE(config.use_augmenter);
  EXPECT_FALSE(config.random_prompt_selection);
  EXPECT_EQ(config.feature_dim, 32);
  EXPECT_EQ(config.seed, 7u);
  EXPECT_EQ(config.augmenter.cache_capacity, 3);  // Fig. 5 optimum
  EXPECT_EQ(config.sampler.num_hops, 1);          // paper: l = 1
}

TEST(GraphPrompterModelTest, ComponentsShareConfiguredDims) {
  GraphPrompterConfig config = FullGraphPrompterConfig(16, 3);
  config.embedding_dim = 24;
  GraphPrompterModel model(config);
  EXPECT_EQ(model.generator().out_dim(), 24);
  EXPECT_EQ(model.task_net().config().embedding_dim, 24);
}

TEST(GraphPrompterModelTest, SameSeedSameInitialisation) {
  GraphPrompterModel a(FullGraphPrompterConfig(8, 11));
  GraphPrompterModel b(FullGraphPrompterConfig(8, 11));
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].data(), pb[i].data()) << "parameter " << i;
  }
}

TEST(GraphPrompterModelTest, DifferentSeedDifferentInitialisation) {
  GraphPrompterModel a(FullGraphPrompterConfig(8, 11));
  GraphPrompterModel b(FullGraphPrompterConfig(8, 12));
  bool any_diff = false;
  const auto pa = a.Parameters();
  const auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    if (pa[i].data() != pb[i].data()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GraphPrompterModelTest, ProdigyHasFewerParameters) {
  // Without the reconstruction MLP, the Prodigy architecture is smaller
  // (the selection layer is constructed either way but unused).
  GraphPrompterModel full(FullGraphPrompterConfig(32, 5));
  GraphPrompterModel prodigy(ProdigyConfig(32, 5));
  EXPECT_LT(prodigy.NumParameters(), full.NumParameters());
}

TEST(GraphPrompterModelTest, ParameterNamesAreHierarchical) {
  GraphPrompterModel model(FullGraphPrompterConfig(8, 5));
  bool has_generator = false, has_selection = false, has_task = false;
  for (const auto& [name, p] : model.NamedParameters()) {
    has_generator |= name.rfind("generator/", 0) == 0;
    has_selection |= name.rfind("selection/", 0) == 0;
    has_task |= name.rfind("task_net/", 0) == 0;
  }
  EXPECT_TRUE(has_generator);
  EXPECT_TRUE(has_selection);
  EXPECT_TRUE(has_task);
}

TEST(GraphPrompterModelTest, GatArchVariantConstructs) {
  GraphPrompterConfig config = FullGraphPrompterConfig(8, 5);
  config.gnn_arch = GnnArch::kGat;
  config.use_reconstruction = false;
  GraphPrompterModel model(config);
  EXPECT_GT(model.NumParameters(), 0);
}

TEST(EvalConfigTest, PaperDefaults) {
  EvalConfig config;
  EXPECT_EQ(config.shots, 3);                  // 3-shot prompts
  EXPECT_EQ(config.candidates_per_class, 10);  // N = 10
}

}  // namespace
}  // namespace gp
