#include "core/selection_layer.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

TEST(SelectionLayerTest, ImportanceInUnitInterval) {
  Rng rng(1);
  SelectionLayerConfig config;
  config.embedding_dim = 8;
  SelectionLayer layer(config, &rng);
  Tensor emb = Tensor::Randn(10, 8, &rng, 3.0f);
  Tensor importance = layer.Importance(emb);
  EXPECT_EQ(importance.rows(), 10);
  EXPECT_EQ(importance.cols(), 1);
  for (float v : importance.data()) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(SelectionLayerTest, WeightedEmbeddingsScaleRows) {
  Rng rng(2);
  SelectionLayerConfig config;
  config.embedding_dim = 4;
  SelectionLayer layer(config, &rng);
  Tensor emb = Tensor::Randn(5, 4, &rng);
  Tensor importance = layer.Importance(emb);
  Tensor weighted = layer.WeightedEmbeddings(emb);
  for (int r = 0; r < 5; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_NEAR(weighted.at(r, c), emb.at(r, c) * importance.at(r, 0),
                  1e-5f);
    }
  }
}

TEST(SelectionLayerTest, GradientsReachMlp) {
  Rng rng(3);
  SelectionLayerConfig config;
  config.embedding_dim = 4;
  SelectionLayer layer(config, &rng);
  Tensor emb = Tensor::Randn(5, 4, &rng);
  Backward(SumAll(layer.WeightedEmbeddings(emb)));
  for (const auto& p : layer.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
  }
}

TEST(SelectionLayerTest, LearnsToDownweightNoise) {
  // Two groups of embeddings: "signal" rows should be kept (target 1),
  // "noise" rows suppressed (target 0). The layer must be able to learn
  // this separation — the mechanism the Prompt Selector relies on.
  Rng rng(4);
  SelectionLayerConfig config;
  config.embedding_dim = 4;
  SelectionLayer layer(config, &rng);
  Tensor emb = Tensor::Zeros(20, 4);
  std::vector<int> is_signal(20);
  for (int i = 0; i < 20; ++i) {
    is_signal[i] = i % 2;
    for (int c = 0; c < 4; ++c) {
      emb.at(i, c) = rng.Normal() * 0.2f + (is_signal[i] ? 1.0f : -1.0f);
    }
  }
  Adam optimizer(layer.Parameters(), 0.05f);
  for (int step = 0; step < 80; ++step) {
    optimizer.ZeroGrad();
    Tensor importance = layer.Importance(emb);
    // Binary target: MSE against 0/1.
    Tensor target = Tensor::Zeros(20, 1);
    for (int i = 0; i < 20; ++i) {
      target.at(i, 0) = static_cast<float>(is_signal[i]);
    }
    Backward(MeanAll(Square(Sub(importance, target))));
    optimizer.Step();
  }
  Tensor importance = layer.Importance(emb);
  for (int i = 0; i < 20; ++i) {
    if (is_signal[i]) {
      EXPECT_GT(importance.at(i, 0), 0.6f);
    } else {
      EXPECT_LT(importance.at(i, 0), 0.4f);
    }
  }
}

}  // namespace
}  // namespace gp
