#include "graph/graph.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gp {
namespace {

Graph MakeTriangle() {
  GraphBuilder builder(/*num_relations=*/2);
  builder.AddNode(0);
  builder.AddNode(1);
  builder.AddNode(0);
  builder.AddEdge(0, 1, 0);
  builder.AddEdge(1, 2, 1);
  builder.AddEdge(2, 0, 0);
  Tensor features = Tensor::FromData(3, 2, {1, 0, 0, 1, 1, 1});
  builder.SetNodeFeatures(features);
  return builder.Build();
}

TEST(GraphBuilderTest, CountsAndLabels) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.num_nodes(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_relations(), 2);
  EXPECT_EQ(g.num_node_classes(), 2);
  EXPECT_EQ(g.node_label(1), 1);
}

TEST(GraphBuilderTest, UndirectedAdjacencyBothWays) {
  Graph g = MakeTriangle();
  // Every node in the triangle has degree 2 (each undirected edge counted
  // once per endpoint).
  for (int v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2);
  std::set<int> neighbors_of_0;
  for (int i = 0; i < g.NeighborsCount(0); ++i) {
    neighbors_of_0.insert(g.NeighborsBegin(0)[i].neighbor);
  }
  EXPECT_EQ(neighbors_of_0, (std::set<int>{1, 2}));
}

TEST(GraphBuilderTest, DirectedEdgeOnlyForward) {
  GraphBuilder builder;
  builder.AddNode();
  builder.AddNode();
  builder.AddEdge(0, 1, 0, /*undirected=*/false);
  Graph g = builder.Build();
  EXPECT_EQ(g.Degree(0), 1);
  EXPECT_EQ(g.Degree(1), 0);
}

TEST(GraphBuilderTest, EdgeRecordsKeepOrientationAndRelation) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.edge(1).src, 1);
  EXPECT_EQ(g.edge(1).dst, 2);
  EXPECT_EQ(g.edge(1).relation, 1);
}

TEST(GraphBuilderTest, EdgeIdSharedAcrossDirections) {
  Graph g = MakeTriangle();
  // Find the adjacency entries for edge 0 from both endpoints.
  int id_from_0 = -1, id_from_1 = -1;
  for (int i = 0; i < g.NeighborsCount(0); ++i) {
    if (g.NeighborsBegin(0)[i].neighbor == 1) {
      id_from_0 = g.NeighborsBegin(0)[i].edge_id;
    }
  }
  for (int i = 0; i < g.NeighborsCount(1); ++i) {
    if (g.NeighborsBegin(1)[i].neighbor == 0) {
      id_from_1 = g.NeighborsBegin(1)[i].edge_id;
    }
  }
  EXPECT_EQ(id_from_0, 0);
  EXPECT_EQ(id_from_1, 0);
}

TEST(GraphBuilderTest, ClassAndRelationIndexes) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.NodesOfClass(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.NodesOfClass(1), (std::vector<int>{1}));
  EXPECT_EQ(g.EdgesOfRelation(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.EdgesOfRelation(1), (std::vector<int>{1}));
}

TEST(GraphBuilderTest, FeaturesStored) {
  Graph g = MakeTriangle();
  EXPECT_EQ(g.feature_dim(), 2);
  EXPECT_EQ(g.node_features().at(1, 1), 1.0f);
}

TEST(GraphBuilderTest, DefaultFeaturesWhenUnset) {
  GraphBuilder builder;
  builder.AddNode();
  Graph g = builder.Build();
  EXPECT_EQ(g.feature_dim(), 1);
}

TEST(GraphBuilderTest, SelfLoopCountedOnce) {
  GraphBuilder builder;
  builder.AddNode();
  builder.AddEdge(0, 0);
  Graph g = builder.Build();
  EXPECT_EQ(g.Degree(0), 1);
}

TEST(GraphBuilderTest, UnlabeledNodesExcludedFromClassIndex) {
  GraphBuilder builder;
  builder.AddNode(-1);
  builder.AddNode(0);
  Graph g = builder.Build();
  EXPECT_EQ(g.num_node_classes(), 1);
  EXPECT_EQ(g.NodesOfClass(0), (std::vector<int>{1}));
}

TEST(GraphBuilderTest, InvalidEdgeDies) {
  GraphBuilder builder;
  builder.AddNode();
  EXPECT_DEATH(builder.AddEdge(0, 5), "Check failed");
  EXPECT_DEATH(builder.AddEdge(0, 0, 3), "Check failed");
}

TEST(GraphTest, DebugStringMentionsCounts) {
  Graph g = MakeTriangle();
  const std::string s = g.DebugString();
  EXPECT_NE(s.find("nodes=3"), std::string::npos);
  EXPECT_NE(s.find("edges=3"), std::string::npos);
}

}  // namespace
}  // namespace gp
