// Property tests for the int8 scalar quantizer (core/quantizer.h) and the
// quantized IVF candidate pass (core/prompt_index.h, options.quantize).
//
// Contracts under test:
//   1. Round trip: |dequantize(quantize(x)) - x| <= step/2 per dimension
//      for in-range rows, on random and adversarial one-hot populations.
//   2. Recall floor: with every shard probed (nprobe == nlist) the
//      quantized candidate pass + exact re-rank keeps recall@k >= 0.99.
//   3. The probe is deterministic and its stats account for the pruning.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/prompt_index.h"
#include "core/quantizer.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {
namespace {

Tensor MixtureEmbeddings(int rows, int dim, int clusters, uint64_t seed) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn(clusters, dim, &rng, 4.0f);
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) {
    const int c = r % clusters;
    for (int j = 0; j < dim; ++j) {
      out.at(r, j) = centers.at(c, j) + rng.Normal(0.0f, 0.5f);
    }
  }
  return out;
}

Tensor OneHotEmbeddings(int rows, int dim) {
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) out.at(r, r % dim) = 1.0f;
  return out;
}

void ExpectRoundTripWithinHalfStep(const Tensor& data) {
  const int rows = data.rows(), dim = data.cols();
  const QuantizerParams params = FitQuantizer(data.data().data(), rows, dim);
  ASSERT_TRUE(params.defined());
  ASSERT_EQ(params.dim, dim);
  std::vector<uint8_t> code(dim);
  std::vector<float> back(dim);
  for (int r = 0; r < rows; ++r) {
    const float* row = data.data().data() + static_cast<size_t>(r) * dim;
    QuantizeRow(params, row, code.data());
    DequantizeRow(params, code.data(), back.data());
    for (int j = 0; j < dim; ++j) {
      // Half a quantization step plus a whisker of float rounding slack.
      const float bound =
          0.5f * params.step[j] + 1e-5f * std::abs(params.min[j]) + 1e-7f;
      EXPECT_LE(std::abs(back[j] - row[j]), bound)
          << "row=" << r << " dim=" << j;
    }
  }
}

TEST(QuantizerTest, RoundTripErrorBoundedByHalfStepRandom) {
  Rng rng(21);
  Tensor data = Tensor::Randn(128, 24, &rng, 3.0f);
  ExpectRoundTripWithinHalfStep(data);
}

TEST(QuantizerTest, RoundTripErrorBoundedByHalfStepOneHot) {
  // Adversarial for per-dimension affine codes: each dimension is almost
  // always 0 with a single 1 — min 0, max 1, step 1/255.
  ExpectRoundTripWithinHalfStep(OneHotEmbeddings(64, 16));
}

TEST(QuantizerTest, ConstantDimensionReconstructsExactly) {
  const int rows = 10, dim = 3;
  std::vector<float> data(rows * dim);
  for (int r = 0; r < rows; ++r) {
    data[r * dim + 0] = 2.5f;                       // constant
    data[r * dim + 1] = static_cast<float>(r);      // varying
    data[r * dim + 2] = -1.0f;                      // constant
  }
  const QuantizerParams params = FitQuantizer(data.data(), rows, dim);
  EXPECT_EQ(params.step[0], 0.0f);
  EXPECT_EQ(params.step[2], 0.0f);
  std::vector<uint8_t> code(dim);
  std::vector<float> back(dim);
  QuantizeRow(params, data.data(), code.data());
  DequantizeRow(params, code.data(), back.data());
  EXPECT_EQ(back[0], 2.5f);
  EXPECT_EQ(back[2], -1.0f);
}

TEST(QuantizerTest, FitIgnoresNonFiniteValues) {
  const int rows = 4, dim = 2;
  std::vector<float> data = {
      1.0f, 2.0f,
      std::numeric_limits<float>::quiet_NaN(), 3.0f,
      -1.0f, std::numeric_limits<float>::infinity(),
      0.5f, 4.0f,
  };
  const QuantizerParams params = FitQuantizer(data.data(), rows, dim);
  // The poisoned entries must not stretch the fitted range.
  EXPECT_EQ(params.min[0], -1.0f);
  EXPECT_EQ(params.min[1], 2.0f);
  EXPECT_TRUE(std::isfinite(params.step[0]));
  EXPECT_TRUE(std::isfinite(params.step[1]));
  // Encoding a non-finite value degrades to code 0, not UB.
  std::vector<uint8_t> code(dim);
  QuantizeRow(params, data.data() + dim, code.data());
  EXPECT_EQ(code[0], 0);
}

TEST(QuantizerTest, OutOfRangeRowsSaturate) {
  Rng rng(22);
  Tensor data = Tensor::Randn(32, 8, &rng);
  const QuantizerParams params =
      FitQuantizer(data.data().data(), data.rows(), data.cols());
  std::vector<float> wild(8, 1e6f);
  std::vector<uint8_t> code(8);
  std::vector<float> back(8);
  QuantizeRow(params, wild.data(), code.data());
  DequantizeRow(params, code.data(), back.data());
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(code[j], 255);  // clamped to the fitted max
    EXPECT_LE(back[j], params.min[j] + params.step[j] * 255.0f + 1e-4f);
  }
}

// ---- quantized candidate pass recall ------------------------------------

// Exact top-k (score desc, id asc) over a candidate subset — the caller's
// re-rank, which is also the brute-force reference when `candidates` is
// every id.
std::vector<int64_t> ExactTopK(const Tensor& prompts, const float* query,
                               const std::vector<int64_t>& candidates, int k,
                               DistanceMetric metric) {
  const int dim = prompts.cols();
  std::vector<std::pair<float, int64_t>> scored;
  scored.reserve(candidates.size());
  for (const int64_t id : candidates) {
    const float* row =
        prompts.data().data() + static_cast<size_t>(id) * dim;
    scored.emplace_back(SimilarityRaw(query, row, dim, metric), id);
  }
  const int kk = std::min<int>(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int64_t> out;
  for (int i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

TEST(QuantizedIndexTest, RecallFloorAtFullProbeRandom) {
  const int num_prompts = 600, dim = 24, k = 10, num_queries = 48;
  Tensor prompts = MixtureEmbeddings(num_prompts, dim, 12, 31);
  Tensor queries = MixtureEmbeddings(num_queries, dim, 12, 31);
  std::vector<int64_t> all_ids(num_prompts);
  for (int i = 0; i < num_prompts; ++i) all_ids[i] = i;

  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean,
        DistanceMetric::kManhattan}) {
    PromptIndexOptions options;
    options.mode = IndexMode::kIvf;
    options.nlist = 8;
    options.nprobe = 8;  // probe everything: isolates the quantized pass
    options.min_points = 1;
    options.quantize = true;
    PromptIndex index(options, metric);
    index.Build(prompts);
    ASSERT_TRUE(index.ivf());
    ASSERT_TRUE(index.quantized());

    int hit = 0, total = 0;
    for (int q = 0; q < num_queries; ++q) {
      const float* qe =
          queries.data().data() + static_cast<size_t>(q) * dim;
      const std::vector<int64_t> want =
          ExactTopK(prompts, qe, all_ids, k, metric);
      PromptIndex::ProbeStats stats;
      const std::vector<int64_t> cands = index.Probe(qe, dim, k, &stats);
      EXPECT_EQ(stats.quantized_scored, num_prompts);
      EXPECT_LE(static_cast<int>(cands.size()), options.rerank * k);
      EXPECT_FALSE(stats.exact);  // quantize prunes even at full probe
      const std::vector<int64_t> got =
          ExactTopK(prompts, qe, cands, k, metric);
      const std::set<int64_t> got_set(got.begin(), got.end());
      for (const int64_t id : want) hit += got_set.count(id);
      total += static_cast<int>(want.size());
    }
    const double recall = static_cast<double>(hit) / total;
    EXPECT_GE(recall, 0.99) << DistanceMetricName(metric);
  }
}

TEST(QuantizedIndexTest, RecallOneOnAdversarialOneHot) {
  // One-hot embeddings are the worst case for affine codes; with the query
  // equal to an indexed vector the exact match must survive the quantized
  // pass (top-1 recall 1.0 — ties below the match don't matter).
  const int num_prompts = 256, dim = 32;
  Tensor prompts = OneHotEmbeddings(num_prompts, dim);
  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean}) {
    PromptIndexOptions options;
    options.mode = IndexMode::kIvf;
    options.nlist = 4;
    options.nprobe = 4;
    options.min_points = 1;
    options.quantize = true;
    PromptIndex index(options, metric);
    index.Build(prompts);
    ASSERT_TRUE(index.quantized());
    for (int q = 0; q < num_prompts; q += 17) {
      const float* qe =
          prompts.data().data() + static_cast<size_t>(q) * dim;
      const std::vector<int64_t> cands = index.Probe(qe, dim, 1);
      const std::vector<int64_t> top =
          ExactTopK(prompts, qe, cands, 1, metric);
      ASSERT_EQ(top.size(), 1u);
      // The query IS prompt q; any equal-scoring one-hot shares q's
      // nonzero dimension, i.e. id ≡ q (mod dim), and the tie-break picks
      // the smallest such id — still an exact-score match.
      const float* got_row =
          prompts.data().data() + static_cast<size_t>(top[0]) * dim;
      EXPECT_EQ(SimilarityRaw(qe, got_row, dim, metric),
                SimilarityRaw(qe, qe, dim, metric))
          << "q=" << q << " got=" << top[0];
    }
  }
}

TEST(QuantizedIndexTest, ProbeIsDeterministicAndStatsAccount) {
  const int num_prompts = 400, dim = 16, k = 5;
  Tensor prompts = MixtureEmbeddings(num_prompts, dim, 8, 33);
  PromptIndexOptions options;
  options.mode = IndexMode::kIvf;
  options.nlist = 8;
  options.nprobe = 2;
  options.min_points = 1;
  options.quantize = true;
  options.rerank = 4;
  PromptIndex index(options, DistanceMetric::kCosine);
  index.Build(prompts);
  ASSERT_TRUE(index.quantized());
  Rng rng(34);
  for (int trial = 0; trial < 8; ++trial) {
    std::vector<float> query(dim);
    for (int j = 0; j < dim; ++j) query[j] = rng.Normal();
    PromptIndex::ProbeStats s1, s2;
    const std::vector<int64_t> a = index.Probe(query.data(), dim, k, &s1);
    const std::vector<int64_t> b = index.Probe(query.data(), dim, k, &s2);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
    EXPECT_EQ(s1.shards_probed, s2.shards_probed);
    EXPECT_EQ(s1.quantized_scored, s2.quantized_scored);
    EXPECT_EQ(s1.quantized_kept, static_cast<int>(a.size()));
    EXPECT_LE(s1.quantized_kept, options.rerank * std::max(1, k));
    EXPECT_LE(s1.quantized_kept, s1.quantized_scored);
  }
}

TEST(QuantizedIndexTest, DynamicInsertEraseKeepsSidecarAligned) {
  const int dim = 12, k = 4;
  PromptIndexOptions options;
  options.mode = IndexMode::kIvf;
  options.nlist = 4;
  options.nprobe = 4;
  options.min_points = 1;
  options.quantize = true;
  PromptIndex index(options, DistanceMetric::kEuclidean);
  Tensor data = MixtureEmbeddings(120, dim, 4, 35);
  index.Build(data);
  ASSERT_TRUE(index.quantized());

  // Mutate: erase a third, insert fresh ids; probes must keep returning
  // present ids only and stay deterministic.
  Rng rng(36);
  for (int id = 0; id < 120; id += 3) index.Erase(id);
  std::vector<std::vector<float>> fresh;
  for (int i = 0; i < 30; ++i) {
    std::vector<float> v(dim);
    for (int j = 0; j < dim; ++j) v[j] = rng.Normal();
    index.Insert(1000 + i, v.data(), dim);
    fresh.push_back(std::move(v));
  }
  const std::vector<int64_t> present = index.Ids();
  const std::set<int64_t> present_set(present.begin(), present.end());
  for (int t = 0; t < 6; ++t) {
    const std::vector<int64_t> cands =
        index.Probe(fresh[t].data(), dim, k);
    EXPECT_FALSE(cands.empty());
    for (const int64_t id : cands) {
      EXPECT_TRUE(present_set.count(id)) << "ghost id " << id;
    }
    EXPECT_EQ(cands, index.Probe(fresh[t].data(), dim, k));
  }
}

}  // namespace
}  // namespace gp
