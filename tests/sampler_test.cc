#include "graph/sampler.h"

#include <set>

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace gp {
namespace {

// A path graph 0-1-2-3-4-5 plus a hub node 6 connected to 0.
Graph MakePath() {
  GraphBuilder builder;
  for (int i = 0; i < 7; ++i) builder.AddNode();
  for (int i = 0; i + 1 < 6; ++i) builder.AddEdge(i, i + 1);
  builder.AddEdge(6, 0);
  return builder.Build();
}

// A star: center 0, leaves 1..10.
Graph MakeStar(int leaves = 10) {
  GraphBuilder builder;
  for (int i = 0; i <= leaves; ++i) builder.AddNode();
  for (int i = 1; i <= leaves; ++i) builder.AddEdge(0, i);
  return builder.Build();
}

TEST(NeighborSamplerTest, OneHopIsExactNeighborhood) {
  Graph g = MakePath();
  SamplerConfig config;
  config.num_hops = 1;
  config.max_nodes = 100;
  NeighborSampler sampler(&g, config);
  Rng rng(1);
  Subgraph sg = sampler.SampleAroundNode(1, &rng);
  std::set<int> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_EQ(nodes, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(sg.center_local, (std::vector<int>{0}));
  EXPECT_EQ(sg.nodes[0], 1);
}

TEST(NeighborSamplerTest, TwoHopsExpand) {
  Graph g = MakePath();
  SamplerConfig config;
  config.num_hops = 2;
  config.max_nodes = 100;
  NeighborSampler sampler(&g, config);
  Rng rng(2);
  Subgraph sg = sampler.SampleAroundNode(2, &rng);
  std::set<int> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_EQ(nodes, (std::set<int>{0, 1, 2, 3, 4}));
}

TEST(NeighborSamplerTest, MaxNodesCapHolds) {
  Graph g = MakeStar(10);
  SamplerConfig config;
  config.num_hops = 1;
  config.max_nodes = 5;
  NeighborSampler sampler(&g, config);
  Rng rng(3);
  Subgraph sg = sampler.SampleAroundNode(0, &rng);
  EXPECT_LE(sg.num_nodes(), 5);
  EXPECT_EQ(sg.nodes[0], 0);  // center retained
}

TEST(NeighborSamplerTest, EdgeInputGetsTwoCenters) {
  Graph g = MakePath();
  SamplerConfig config;
  NeighborSampler sampler(&g, config);
  Rng rng(4);
  Subgraph sg = sampler.SampleAroundEdge(2, &rng);  // edge 2-3
  ASSERT_EQ(sg.center_local.size(), 2u);
  EXPECT_EQ(sg.nodes[sg.center_local[0]], 2);
  EXPECT_EQ(sg.nodes[sg.center_local[1]], 3);
}

TEST(NeighborSamplerTest, InducedEdgesAreWithinSubgraph) {
  Graph g = MakePath();
  SamplerConfig config;
  config.num_hops = 2;
  NeighborSampler sampler(&g, config);
  Rng rng(5);
  Subgraph sg = sampler.SampleAroundNode(3, &rng);
  for (int e = 0; e < sg.num_edges(); ++e) {
    EXPECT_GE(sg.edge_src[e], 0);
    EXPECT_LT(sg.edge_src[e], sg.num_nodes());
    EXPECT_GE(sg.edge_dst[e], 0);
    EXPECT_LT(sg.edge_dst[e], sg.num_nodes());
  }
}

TEST(NeighborSamplerTest, InducedEdgesComeInBothDirections) {
  Graph g = MakePath();
  SamplerConfig config;
  NeighborSampler sampler(&g, config);
  Rng rng(6);
  Subgraph sg = sampler.SampleAroundNode(1, &rng);
  // For every directed (u, v) there is (v, u).
  std::set<std::pair<int, int>> pairs;
  for (int e = 0; e < sg.num_edges(); ++e) {
    pairs.insert({sg.edge_src[e], sg.edge_dst[e]});
  }
  for (const auto& [u, v] : pairs) {
    EXPECT_TRUE(pairs.count({v, u})) << u << "->" << v;
  }
}

TEST(NeighborSamplerTest, IsolatedNodeYieldsSingleton) {
  GraphBuilder builder;
  builder.AddNode();
  Graph g = builder.Build();
  SamplerConfig config;
  NeighborSampler sampler(&g, config);
  Rng rng(7);
  Subgraph sg = sampler.SampleAroundNode(0, &rng);
  EXPECT_EQ(sg.num_nodes(), 1);
  EXPECT_EQ(sg.num_edges(), 0);
}

TEST(RandomWalkSamplerTest, CenterAlwaysFirst) {
  Graph g = MakePath();
  SamplerConfig config;
  config.num_hops = 2;
  RandomWalkSampler sampler(&g, config);
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Subgraph sg = sampler.SampleAroundNode(3, &rng);
    EXPECT_EQ(sg.nodes[0], 3);
    EXPECT_EQ(sg.center_local, (std::vector<int>{0}));
  }
}

TEST(RandomWalkSamplerTest, NodesAreUnique) {
  Graph g = MakeStar(8);
  SamplerConfig config;
  config.num_hops = 3;
  RandomWalkSampler sampler(&g, config);
  Rng rng(9);
  Subgraph sg = sampler.SampleAroundNode(0, &rng);
  std::set<int> unique(sg.nodes.begin(), sg.nodes.end());
  EXPECT_EQ(unique.size(), sg.nodes.size());
}

TEST(RandomWalkSamplerTest, RespectsCap) {
  Graph g = MakeStar(50);
  SamplerConfig config;
  config.num_hops = 3;
  config.max_nodes = 7;
  RandomWalkSampler sampler(&g, config);
  Rng rng(10);
  Subgraph sg = sampler.SampleAroundNode(0, &rng);
  EXPECT_LE(sg.num_nodes(), 7);
}

TEST(RandomWalkSamplerTest, CoversOneHopNeighborsOfCenter) {
  // With no cap pressure, the first step adds all neighbors of the center.
  Graph g = MakePath();
  SamplerConfig config;
  config.num_hops = 1;
  config.max_nodes = 100;
  RandomWalkSampler sampler(&g, config);
  Rng rng(11);
  Subgraph sg = sampler.SampleAroundNode(2, &rng);
  std::set<int> nodes(sg.nodes.begin(), sg.nodes.end());
  EXPECT_TRUE(nodes.count(1));
  EXPECT_TRUE(nodes.count(3));
}

TEST(RandomWalkSamplerTest, SelfLoopEdgeCenterDeduplicated) {
  GraphBuilder builder;
  builder.AddNode();
  builder.AddNode();
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  Graph g = builder.Build();
  SamplerConfig config;
  RandomWalkSampler sampler(&g, config);
  Rng rng(12);
  Subgraph sg = sampler.SampleAroundEdge(0, &rng);  // self loop (0,0)
  ASSERT_EQ(sg.center_local.size(), 2u);
  EXPECT_EQ(sg.center_local[0], sg.center_local[1]);
}

TEST(RandomWalkSamplerTest, DeterministicGivenSeed) {
  Graph g = MakeStar(20);
  SamplerConfig config;
  config.num_hops = 2;
  config.max_nodes = 10;
  RandomWalkSampler sampler(&g, config);
  Rng rng_a(13), rng_b(13);
  Subgraph a = sampler.SampleAroundNode(0, &rng_a);
  Subgraph b = sampler.SampleAroundNode(0, &rng_b);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.edge_src, b.edge_src);
}

TEST(InduceEdgesTest, RelationAndIdPreserved) {
  GraphBuilder builder(/*num_relations=*/3);
  builder.AddNode();
  builder.AddNode();
  builder.AddEdge(0, 1, 2);
  Graph g = builder.Build();
  Subgraph sg;
  sg.nodes = {0, 1};
  sg.center_local = {0};
  InduceEdges(g, &sg);
  ASSERT_EQ(sg.num_edges(), 2);  // both directions
  EXPECT_EQ(sg.edge_rel[0], 2);
  EXPECT_EQ(sg.edge_ids[0], 0);
}

}  // namespace
}  // namespace gp
