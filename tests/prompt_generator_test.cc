#include "core/prompt_generator.h"

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

PromptGeneratorConfig SmallConfig(int in_dim = 16) {
  PromptGeneratorConfig config;
  config.gnn.in_dim = in_dim;
  config.gnn.hidden_dim = 8;
  config.gnn.out_dim = 8;
  config.sampler.num_hops = 1;
  config.sampler.max_nodes = 12;
  return config;
}

class PromptGeneratorTest : public ::testing::Test {
 protected:
  PromptGeneratorTest() : dataset_(MakeArxivSim(0.1, 5)) {}
  DatasetBundle dataset_;
};

TEST_F(PromptGeneratorTest, EmbedItemsShape) {
  Rng rng(1);
  PromptGenerator generator(SmallConfig(dataset_.graph.feature_dim()), &rng);
  Rng sample_rng(2);
  std::vector<int> items = {dataset_.train_items_by_class[0][0],
                            dataset_.train_items_by_class[1][0],
                            dataset_.train_items_by_class[2][0]};
  Tensor emb = generator.EmbedItems(dataset_, items, &sample_rng);
  EXPECT_EQ(emb.rows(), 3);
  EXPECT_EQ(emb.cols(), 8);
}

TEST_F(PromptGeneratorTest, EdgeWeightsAreInUnitInterval) {
  Rng rng(3);
  PromptGenerator generator(SmallConfig(dataset_.graph.feature_dim()), &rng);
  Rng sample_rng(4);
  const int item = dataset_.train_items_by_class[0][0];
  Subgraph sg = generator.SampleForItem(dataset_, item, &sample_rng);
  Tensor weights = generator.ReconstructEdgeWeights(dataset_.graph, sg);
  EXPECT_EQ(weights.rows(), sg.num_edges());
  for (float w : weights.data()) {
    EXPECT_GT(w, 0.0f);
    EXPECT_LT(w, 1.0f);
  }
}

TEST_F(PromptGeneratorTest, ReconstructionDisabledGivesUnitWeights) {
  auto config = SmallConfig(dataset_.graph.feature_dim());
  config.use_reconstruction = false;
  Rng rng(5);
  PromptGenerator generator(config, &rng);
  Rng sample_rng(6);
  Subgraph sg = generator.SampleForItem(
      dataset_, dataset_.train_items_by_class[0][0], &sample_rng);
  Tensor weights = generator.ReconstructEdgeWeights(dataset_.graph, sg);
  for (float w : weights.data()) EXPECT_EQ(w, 1.0f);
}

TEST_F(PromptGeneratorTest, BatchedEqualsPerItemEmbedding) {
  // The disjoint-union batching must give the same embeddings as embedding
  // each subgraph alone.
  Rng rng(7);
  PromptGenerator generator(SmallConfig(dataset_.graph.feature_dim()), &rng);
  Rng sample_rng(8);
  std::vector<Subgraph> subgraphs;
  for (int i = 0; i < 4; ++i) {
    subgraphs.push_back(generator.SampleForItem(
        dataset_, dataset_.train_items_by_class[i][0], &sample_rng));
  }
  Tensor batched = generator.EmbedSubgraphs(dataset_.graph, subgraphs);
  for (int i = 0; i < 4; ++i) {
    Tensor single = generator.EmbedSubgraphs(dataset_.graph, {subgraphs[i]});
    for (int c = 0; c < batched.cols(); ++c) {
      EXPECT_NEAR(batched.at(i, c), single.at(0, c), 1e-4f);
    }
  }
}

TEST_F(PromptGeneratorTest, GradientsFlowThroughReconstruction) {
  Rng rng(9);
  PromptGenerator generator(SmallConfig(dataset_.graph.feature_dim()), &rng);
  Rng sample_rng(10);
  std::vector<int> items = {dataset_.train_items_by_class[0][0]};
  Backward(SumAll(generator.EmbedItems(dataset_, items, &sample_rng)));
  // Both the reconstruction MLP and the GNN must receive gradients.
  bool any_recon_grad = false;
  for (const auto& [name, p] : generator.NamedParameters()) {
    if (name.find("recon") != std::string::npos && !p.grad().empty()) {
      float total = 0;
      for (float g : p.grad()) total += std::abs(g);
      any_recon_grad = any_recon_grad || total > 0;
    }
  }
  EXPECT_TRUE(any_recon_grad);
}

TEST_F(PromptGeneratorTest, EdgeTaskEmbedsEdges) {
  DatasetBundle kg = MakeConceptNetSim(0.2, 11);
  Rng rng(12);
  PromptGenerator generator(SmallConfig(kg.graph.feature_dim()), &rng);
  Rng sample_rng(13);
  std::vector<int> items = {kg.train_items_by_class[0][0],
                            kg.train_items_by_class[1][0]};
  Tensor emb = generator.EmbedItems(kg, items, &sample_rng);
  EXPECT_EQ(emb.rows(), 2);
}

TEST_F(PromptGeneratorTest, FeatureOffsetChangesEmbedding) {
  Rng rng(14);
  PromptGenerator generator(SmallConfig(dataset_.graph.feature_dim()), &rng);
  Rng sample_rng(15);
  Subgraph sg = generator.SampleForItem(
      dataset_, dataset_.train_items_by_class[0][0], &sample_rng);
  Tensor base = generator.EmbedSubgraphs(dataset_.graph, {sg});
  Tensor offset = Tensor::Full(1, dataset_.graph.feature_dim(), 0.5f);
  Tensor shifted = generator.EmbedSubgraphs(dataset_.graph, {sg}, offset);
  float diff = 0;
  for (int64_t i = 0; i < base.size(); ++i) {
    diff += std::abs(base.data()[i] - shifted.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST_F(PromptGeneratorTest, BilinearReconstructionVariant) {
  auto config = SmallConfig(dataset_.graph.feature_dim());
  config.recon_arch = ReconArch::kBilinear;
  Rng rng(30);
  PromptGenerator generator(config, &rng);
  Rng sample_rng(31);
  Subgraph sg = generator.SampleForItem(
      dataset_, dataset_.train_items_by_class[0][0], &sample_rng);
  Tensor weights = generator.ReconstructEdgeWeights(dataset_.graph, sg);
  EXPECT_EQ(weights.rows(), sg.num_edges());
  for (float w : weights.data()) {
    EXPECT_GT(w, 0.0f);
    EXPECT_LT(w, 1.0f);
  }
  // Gradients reach the bilinear weight matrix.
  std::vector<int> items = {dataset_.train_items_by_class[0][0]};
  Backward(SumAll(generator.EmbedItems(dataset_, items, &sample_rng)));
  bool any_grad = false;
  for (const auto& [name, p] : generator.NamedParameters()) {
    if (name.find("bilinear") != std::string::npos && !p.grad().empty()) {
      any_grad = true;
    }
  }
  EXPECT_TRUE(any_grad);
}

TEST_F(PromptGeneratorTest, ReconArchNames) {
  EXPECT_STREQ(ReconArchName(ReconArch::kMlp), "MLP");
  EXPECT_STREQ(ReconArchName(ReconArch::kBilinear), "bilinear");
}

TEST_F(PromptGeneratorTest, BfsSamplerVariantWorks) {
  auto config = SmallConfig(dataset_.graph.feature_dim());
  config.use_random_walk = false;
  Rng rng(16);
  PromptGenerator generator(config, &rng);
  Rng sample_rng(17);
  Subgraph sg = generator.SampleForItem(
      dataset_, dataset_.train_items_by_class[0][0], &sample_rng);
  EXPECT_GE(sg.num_nodes(), 1);
  EXPECT_LE(sg.num_nodes(), config.sampler.max_nodes);
}

TEST_F(PromptGeneratorTest, MultiHopSamplesAtLeastAsManyNodes) {
  auto config1 = SmallConfig(dataset_.graph.feature_dim());
  config1.sampler.max_nodes = 60;
  auto config3 = config1;
  config3.sampler.num_hops = 3;
  Rng rng(18);
  PromptGenerator g1(config1, &rng);
  PromptGenerator g3(config3, &rng);
  double nodes1 = 0, nodes3 = 0;
  Rng s1(19), s3(19);
  for (int i = 0; i < 20; ++i) {
    const int item = dataset_.train_items_by_class[i % 5][0];
    nodes1 += g1.SampleForItem(dataset_, item, &s1).num_nodes();
    nodes3 += g3.SampleForItem(dataset_, item, &s3).num_nodes();
  }
  EXPECT_GE(nodes3, nodes1);
}

}  // namespace
}  // namespace gp
