#include "util/fault.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

namespace gp {
namespace {

TEST(ParseFaultSpecTest, EmptySpecDisablesEverything) {
  auto spec = ParseFaultSpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(spec->Any());
}

TEST(ParseFaultSpecTest, FullGrammarParses) {
  auto spec = ParseFaultSpec(
      "embed_nan=0.25,prompt_drop=0.5,prompt_dup=0.125,cache_poison=1,"
      "file=bitflip,slow_every=3,slow_ms=7,seed=99");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->embed_nan_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec->prompt_drop_prob, 0.5);
  EXPECT_DOUBLE_EQ(spec->prompt_dup_prob, 0.125);
  EXPECT_DOUBLE_EQ(spec->cache_poison_prob, 1.0);
  EXPECT_EQ(spec->file_mode, FileFaultMode::kBitFlip);
  EXPECT_EQ(spec->slow_every, 3);
  EXPECT_EQ(spec->slow_ms, 7);
  EXPECT_EQ(spec->seed, 99u);
  EXPECT_TRUE(spec->Any());
}

TEST(ParseFaultSpecTest, RejectsBadInput) {
  EXPECT_EQ(ParseFaultSpec("embed_nan=2.0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("embed_nan=-0.1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("embed_nan=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("file=shred").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("slow_every=-1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("no_such_key=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseFaultSpec("keyonly").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseFaultSpecTest, ServeFaultsParse) {
  auto spec = ParseFaultSpec(
      "serve_fail=0.25,serve_torn=0.5,serve_stall=0.125,serve_stall_ms=9");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->serve_fail_prob, 0.25);
  EXPECT_DOUBLE_EQ(spec->serve_torn_prob, 0.5);
  EXPECT_DOUBLE_EQ(spec->serve_stall_prob, 0.125);
  EXPECT_EQ(spec->serve_stall_ms, 9);
  EXPECT_TRUE(spec->Any());
  EXPECT_EQ(ParseFaultSpec("serve_fail=1.5").status().code(),
            StatusCode::kInvalidArgument);
}

// Pins the grammar's error reporting: a bad spec must name the offending
// token (and, for an unknown kind, list the alternatives) so a typo'd
// --fault flag is diagnosable from the message alone.
TEST(ParseFaultSpecTest, ErrorsNameTheOffendingToken) {
  const Status unknown = ParseFaultSpec("no_such_key=1").status();
  EXPECT_EQ(unknown.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(unknown.message(),
            "fault spec: unknown fault kind 'no_such_key' (valid kinds: "
            "embed_nan, prompt_drop, prompt_dup, cache_poison, file, "
            "slow_every, slow_ms, serve_fail, serve_torn, serve_stall, "
            "serve_stall_ms, seed)");

  const Status bad_rate = ParseFaultSpec("embed_nan=abc").status();
  EXPECT_EQ(bad_rate.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(bad_rate.message(),
            "fault spec: embed_nan needs a probability in [0,1], got 'abc'");

  const Status no_value = ParseFaultSpec("keyonly").status();
  EXPECT_EQ(no_value.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(no_value.message(),
            "fault spec item needs kind=value, got 'keyonly'");
}

TEST(ParseFaultSpecTest, ToleratesEmptyItems) {
  auto spec = ParseFaultSpec(",embed_nan=0.5,,");
  ASSERT_TRUE(spec.ok());
  EXPECT_DOUBLE_EQ(spec->embed_nan_prob, 0.5);
}

TEST(FaultInjectorTest, CorruptRowsIsDeterministic) {
  FaultSpec spec;
  spec.embed_nan_prob = 0.5;
  spec.seed = 7;

  std::vector<float> a(8 * 6, 1.0f), b(8 * 6, 1.0f);
  const int na = FaultInjector(spec).CorruptRows(&a, 8, 6);
  const int nb = FaultInjector(spec).CorruptRows(&b, 8, 6);
  EXPECT_EQ(na, nb);
  EXPECT_GT(na, 0);
  // Bitwise-identical corruption pattern (NaN != NaN, so compare bytes).
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));

  int bad_rows = 0;
  for (int r = 0; r < 8; ++r) {
    bool bad = false;
    for (int c = 0; c < 6; ++c) {
      if (!std::isfinite(a[r * 6 + c])) bad = true;
    }
    bad_rows += bad ? 1 : 0;
  }
  EXPECT_EQ(bad_rows, na);
}

TEST(FaultInjectorTest, CorruptRowsDisabledIsNoOp) {
  FaultSpec spec;  // embed_nan_prob = 0
  std::vector<float> data(4 * 4, 2.0f);
  EXPECT_EQ(FaultInjector(spec).CorruptRows(&data, 4, 4), 0);
  for (float v : data) EXPECT_EQ(v, 2.0f);
}

TEST(FaultInjectorTest, MutatePromptSetKeepsAtLeastOne) {
  FaultSpec spec;
  spec.prompt_drop_prob = 1.0;  // drop everything
  std::vector<int> selected = {3, 1, 4, 1, 5};
  FaultInjector injector(spec);
  EXPECT_GT(injector.MutatePromptSet(&selected), 0);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], 3);  // retains the first element
}

TEST(FaultInjectorTest, MutatePromptSetDuplicates) {
  FaultSpec spec;
  spec.prompt_dup_prob = 1.0;
  std::vector<int> selected = {1, 2, 3};
  FaultInjector injector(spec);
  EXPECT_EQ(injector.MutatePromptSet(&selected), 3);
  EXPECT_EQ(selected, (std::vector<int>{1, 1, 2, 2, 3, 3}));
}

TEST(FaultInjectorTest, PickCacheEntryRespectsProbability) {
  FaultSpec off;
  EXPECT_EQ(FaultInjector(off).PickCacheEntryToPoison(10), -1);

  FaultSpec on;
  on.cache_poison_prob = 1.0;
  FaultInjector injector(on);
  const int victim = injector.PickCacheEntryToPoison(10);
  EXPECT_GE(victim, 0);
  EXPECT_LT(victim, 10);
  EXPECT_EQ(injector.PickCacheEntryToPoison(0), -1);
}

TEST(FaultInjectorTest, CorruptFileBytesTruncatesToHalf) {
  const std::string path = ::testing::TempDir() + "/fault_trunc.bin";
  {
    std::ofstream out(path, std::ios::binary);
    std::string payload(64, 'x');
    out.write(payload.data(), payload.size());
  }
  FaultSpec spec;
  spec.file_mode = FileFaultMode::kTruncate;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_EQ(in.tellg(), 32);
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, CorruptFileBytesFlipsExactlyOneBit) {
  const std::string path = ::testing::TempDir() + "/fault_flip.bin";
  const std::string original(64, 'x');
  {
    std::ofstream out(path, std::ios::binary);
    out.write(original.data(), original.size());
  }
  FaultSpec spec;
  spec.file_mode = FileFaultMode::kBitFlip;
  ASSERT_TRUE(FaultInjector(spec).CorruptFileBytes(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string mutated((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  ASSERT_EQ(mutated.size(), original.size());
  int bits_changed = 0;
  for (size_t i = 0; i < original.size(); ++i) {
    unsigned char diff = static_cast<unsigned char>(original[i] ^ mutated[i]);
    while (diff != 0) {
      bits_changed += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(bits_changed, 1);
  std::remove(path.c_str());
}

TEST(FaultInjectorTest, CorruptFileBytesMissingFileIsNotFound) {
  FaultSpec spec;
  spec.file_mode = FileFaultMode::kMagic;
  EXPECT_EQ(
      FaultInjector(spec).CorruptFileBytes("/does/not/exist.bin").code(),
      StatusCode::kNotFound);
}

TEST(FaultInjectorTest, MaybeSlowBatchFiresEveryNth) {
  FaultSpec spec;
  spec.slow_every = 3;
  spec.slow_ms = 0;
  FaultInjector injector(spec);
  int fired = 0;
  for (int i = 0; i < 9; ++i) {
    if (injector.MaybeSlowBatch()) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_FALSE(FaultInjector(FaultSpec{}).MaybeSlowBatch());
}

TEST(FaultInjectorTest, ServeFaultsAreDeterministicPerSeed) {
  FaultSpec spec;
  spec.serve_fail_prob = 0.5;
  spec.serve_torn_prob = 0.5;
  spec.serve_stall_prob = 0.5;
  spec.serve_stall_ms = 3;
  spec.seed = 11;

  auto run = [&spec]() {
    FaultInjector injector(spec);
    std::vector<int64_t> decisions;
    for (int i = 0; i < 32; ++i) {
      decisions.push_back(injector.MaybeFailRequest() ? 1 : 0);
      decisions.push_back(injector.TornFrameBytes(64));
      decisions.push_back(injector.MaybeStallMs());
    }
    return decisions;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  // Each class fired at least once at p = 0.5 over 32 rounds.
  bool failed = false, torn = false, stalled = false;
  for (size_t i = 0; i < a.size(); i += 3) {
    failed = failed || a[i] == 1;
    torn = torn || a[i + 1] >= 0;
    stalled = stalled || a[i + 2] > 0;
  }
  EXPECT_TRUE(failed);
  EXPECT_TRUE(torn);
  EXPECT_TRUE(stalled);
  // A torn frame always keeps fewer bytes than the full frame.
  for (size_t i = 1; i < a.size(); i += 3) EXPECT_LT(a[i], 64);

  // Disabled spec never fires.
  FaultInjector off((FaultSpec()));
  EXPECT_FALSE(off.MaybeFailRequest());
  EXPECT_EQ(off.TornFrameBytes(64), -1);
  EXPECT_EQ(off.MaybeStallMs(), 0);
}

TEST(ThreadFaultInjectionTest, ScopedOverrideShadowsGlobal) {
  FaultSpec global_spec;
  global_spec.prompt_drop_prob = 1.0;
  ScopedFaultInjection global(global_spec);
  ASSERT_EQ(ActiveFaultInjector(), GlobalFaultInjector());

  FaultSpec tenant_spec;
  tenant_spec.serve_fail_prob = 1.0;
  FaultInjector tenant(tenant_spec);
  {
    ScopedThreadFaultInjector scoped(&tenant);
    EXPECT_EQ(ActiveFaultInjector(), &tenant);
    {
      // An explicit null override suppresses the global injector entirely.
      ScopedThreadFaultInjector suppressed(nullptr);
      EXPECT_EQ(ActiveFaultInjector(), nullptr);
    }
    EXPECT_EQ(ActiveFaultInjector(), &tenant);
  }
  EXPECT_EQ(ActiveFaultInjector(), GlobalFaultInjector());
}

TEST(GlobalFaultInjectionTest, ConfigureInstallsAndClears) {
  ASSERT_TRUE(ConfigureGlobalFaultInjection("embed_nan=0.5,seed=3").ok());
  ASSERT_NE(GlobalFaultInjector(), nullptr);
  EXPECT_DOUBLE_EQ(GlobalFaultInjector()->spec().embed_nan_prob, 0.5);

  // Invalid spec leaves an error and does not crash.
  EXPECT_EQ(ConfigureGlobalFaultInjection("embed_nan=nope").code(),
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(ConfigureGlobalFaultInjection("").ok());
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
}

TEST(GlobalFaultInjectionTest, ScopedInjectionRestoresPrevious) {
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
  {
    FaultSpec spec;
    spec.prompt_drop_prob = 1.0;
    ScopedFaultInjection scoped(spec);
    ASSERT_NE(GlobalFaultInjector(), nullptr);
    EXPECT_DOUBLE_EQ(GlobalFaultInjector()->spec().prompt_drop_prob, 1.0);
    {
      FaultSpec inner;
      inner.prompt_dup_prob = 1.0;
      ScopedFaultInjection nested(inner);
      EXPECT_DOUBLE_EQ(GlobalFaultInjector()->spec().prompt_dup_prob, 1.0);
    }
    EXPECT_DOUBLE_EQ(GlobalFaultInjector()->spec().prompt_drop_prob, 1.0);
  }
  EXPECT_EQ(GlobalFaultInjector(), nullptr);
}

}  // namespace
}  // namespace gp
