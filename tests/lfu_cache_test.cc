#include "core/lfu_cache.h"

#include <set>

#include <gtest/gtest.h>

namespace gp {
namespace {

CacheEntry Entry(int label) {
  CacheEntry e;
  e.embedding = {static_cast<float>(label)};
  e.pseudo_label = label;
  return e;
}

TEST(LfuCacheTest, InsertAndSize) {
  LfuCache cache(3);
  EXPECT_TRUE(cache.empty());
  cache.Insert(Entry(1));
  cache.Insert(Entry(2));
  EXPECT_EQ(cache.size(), 2);
  EXPECT_EQ(cache.capacity(), 3);
}

TEST(LfuCacheTest, ZeroCapacityRejects) {
  LfuCache cache(0);
  EXPECT_EQ(cache.Insert(Entry(1)), -1);
  EXPECT_TRUE(cache.empty());
}

TEST(LfuCacheTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  const int64_t b = cache.Insert(Entry(2));
  cache.Touch(a);  // a: freq 2, b: freq 1
  cache.Insert(Entry(3));  // evicts b
  EXPECT_EQ(cache.FrequencyOf(b), 0);
  EXPECT_GT(cache.FrequencyOf(a), 0);
  EXPECT_EQ(cache.size(), 2);
}

TEST(LfuCacheTest, FifoWithinFrequencyBucket) {
  LfuCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  const int64_t b = cache.Insert(Entry(2));
  // Both at frequency 1: the older insertion (a) is evicted first.
  cache.Insert(Entry(3));
  EXPECT_EQ(cache.FrequencyOf(a), 0);
  EXPECT_EQ(cache.FrequencyOf(b), 1);
}

TEST(LfuCacheTest, TouchIncrementsFrequency) {
  LfuCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  EXPECT_EQ(cache.FrequencyOf(a), 1);
  EXPECT_TRUE(cache.Touch(a));
  EXPECT_TRUE(cache.Touch(a));
  EXPECT_EQ(cache.FrequencyOf(a), 3);
}

TEST(LfuCacheTest, TouchUnknownIdIsIgnored) {
  LfuCache cache(2);
  EXPECT_FALSE(cache.Touch(12345));
}

TEST(LfuCacheTest, TouchEvictedIdIsIgnored) {
  LfuCache cache(1);
  const int64_t a = cache.Insert(Entry(1));
  cache.Insert(Entry(2));  // evicts a
  EXPECT_FALSE(cache.Touch(a));
}

TEST(LfuCacheTest, EntriesSnapshotsPayload) {
  LfuCache cache(3);
  cache.Insert(Entry(7));
  cache.Insert(Entry(8));
  const auto entries = cache.Entries();
  ASSERT_EQ(entries.size(), 2u);
  std::set<int> labels;
  for (const auto& [id, entry] : entries) labels.insert(entry->pseudo_label);
  EXPECT_EQ(labels, (std::set<int>{7, 8}));
}

TEST(LfuCacheTest, ClearEmpties) {
  LfuCache cache(3);
  cache.Insert(Entry(1));
  cache.Clear();
  EXPECT_TRUE(cache.empty());
  EXPECT_EQ(cache.Entries().size(), 0u);
}

TEST(LfuCacheTest, HighFrequencyEntrySurvivesManyInsertions) {
  LfuCache cache(3);
  const int64_t keeper = cache.Insert(Entry(0));
  for (int i = 0; i < 5; ++i) cache.Touch(keeper);
  for (int i = 1; i <= 20; ++i) cache.Insert(Entry(i));
  EXPECT_GT(cache.FrequencyOf(keeper), 0);  // never evicted
  EXPECT_EQ(cache.size(), 3);
}

TEST(LfuCacheTest, IdsAreUniqueAcrossEvictions) {
  LfuCache cache(1);
  std::set<int64_t> ids;
  for (int i = 0; i < 10; ++i) ids.insert(cache.Insert(Entry(i)));
  EXPECT_EQ(ids.size(), 10u);
}

// Property sweep: for any capacity, repeated inserts never exceed capacity
// and the most-touched entry always survives.
class LfuCapacityTest : public ::testing::TestWithParam<int> {};

TEST_P(LfuCapacityTest, CapacityInvariantHolds) {
  const int capacity = GetParam();
  LfuCache cache(capacity);
  const int64_t hot = cache.Insert(Entry(-1));
  for (int i = 0; i < 3; ++i) cache.Touch(hot);
  for (int i = 0; i < 50; ++i) {
    cache.Insert(Entry(i));
    EXPECT_LE(cache.size(), capacity);
  }
  if (capacity >= 2) {
    EXPECT_GT(cache.FrequencyOf(hot), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, LfuCapacityTest,
                         ::testing::Values(1, 2, 3, 5, 10));

}  // namespace
}  // namespace gp
