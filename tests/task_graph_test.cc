#include "core/task_graph.h"

#include <cmath>

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

TaskGraphConfig SmallConfig(int dim = 8) {
  TaskGraphConfig config;
  config.embedding_dim = dim;
  config.num_layers = 2;
  return config;
}

TEST(TaskGraphTest, OutputShapes) {
  Rng rng(1);
  TaskGraphNet net(SmallConfig(), &rng);
  Tensor prompts = Tensor::Randn(6, 8, &rng);
  Tensor queries = Tensor::Randn(4, 8, &rng);
  const auto out = net.Forward(prompts, {0, 0, 1, 1, 2, 2}, queries, 3);
  EXPECT_EQ(out.query_scores.rows(), 4);
  EXPECT_EQ(out.query_scores.cols(), 3);
  EXPECT_EQ(out.query_embeddings.rows(), 4);
  EXPECT_EQ(out.label_embeddings.rows(), 3);
}

TEST(TaskGraphTest, ScoresAreBoundedByTemperature) {
  Rng rng(2);
  TaskGraphNet net(SmallConfig(), &rng);
  Tensor prompts = Tensor::Randn(4, 8, &rng);
  Tensor queries = Tensor::Randn(2, 8, &rng);
  const auto out = net.Forward(prompts, {0, 0, 1, 1}, queries, 2);
  for (float s : out.query_scores.data()) {
    EXPECT_LE(std::abs(s), net.config().score_temperature + 1e-4f);
  }
}

TEST(TaskGraphTest, GradientsReachAllParameters) {
  Rng rng(3);
  TaskGraphNet net(SmallConfig(), &rng);
  Tensor prompts = Tensor::Randn(4, 8, &rng);
  Tensor queries = Tensor::Randn(2, 8, &rng);
  const auto out = net.Forward(prompts, {0, 0, 1, 1}, queries, 2);
  Backward(CrossEntropyWithLogits(out.query_scores, {0, 1}));
  int with_grad = 0;
  for (const auto& p : net.Parameters()) {
    if (!p.grad().empty()) ++with_grad;
  }
  EXPECT_EQ(with_grad, static_cast<int>(net.Parameters().size()));
}

TEST(TaskGraphTest, GradientsFlowToPromptAndQueryEmbeddings) {
  Rng rng(4);
  TaskGraphNet net(SmallConfig(), &rng);
  Tensor prompts = Tensor::Randn(4, 8, &rng, 1.0f, /*requires_grad=*/true);
  Tensor queries = Tensor::Randn(2, 8, &rng, 1.0f, /*requires_grad=*/true);
  const auto out = net.Forward(prompts, {0, 0, 1, 1}, queries, 2);
  Backward(CrossEntropyWithLogits(out.query_scores, {0, 1}));
  EXPECT_FALSE(prompts.grad().empty());
  EXPECT_FALSE(queries.grad().empty());
}

TEST(TaskGraphTest, LearnsSimplePromptMatching) {
  // Prompts of class 0 sit near +e1, class 1 near -e1. Queries near the
  // same poles. A few steps of training must classify queries correctly.
  Rng rng(5);
  TaskGraphNet net(SmallConfig(8), &rng);
  Adam optimizer(net.Parameters(), 0.01f);

  auto make_batch = [&](Rng* r, Tensor* prompts, Tensor* queries,
                        std::vector<int>* labels) {
    *prompts = Tensor::Zeros(6, 8);
    for (int p = 0; p < 6; ++p) {
      const int cls = p < 3 ? 0 : 1;
      for (int c = 0; c < 8; ++c) {
        prompts->at(p, c) = r->Normal() * 0.1f;
      }
      prompts->at(p, 0) += cls == 0 ? 1.0f : -1.0f;
    }
    *queries = Tensor::Zeros(4, 8);
    labels->clear();
    for (int q = 0; q < 4; ++q) {
      const int cls = q % 2;
      labels->push_back(cls);
      for (int c = 0; c < 8; ++c) queries->at(q, c) = r->Normal() * 0.1f;
      queries->at(q, 0) += cls == 0 ? 1.0f : -1.0f;
    }
  };

  Rng data_rng(6);
  for (int step = 0; step < 60; ++step) {
    Tensor prompts, queries;
    std::vector<int> labels;
    make_batch(&data_rng, &prompts, &queries, &labels);
    optimizer.ZeroGrad();
    const auto out =
        net.Forward(prompts, {0, 0, 0, 1, 1, 1}, queries, 2);
    Backward(CrossEntropyWithLogits(out.query_scores, labels));
    optimizer.Step();
  }

  // Fresh evaluation batch.
  Tensor prompts, queries;
  std::vector<int> labels;
  make_batch(&data_rng, &prompts, &queries, &labels);
  NoGradGuard no_grad;
  const auto out = net.Forward(prompts, {0, 0, 0, 1, 1, 1}, queries, 2);
  const auto pred = ArgmaxRows(out.query_scores);
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) correct += pred[i] == labels[i];
  EXPECT_GE(correct, 3);
}

TEST(TaskGraphTest, SingleQuerySingleClassPerPrompt) {
  Rng rng(7);
  TaskGraphNet net(SmallConfig(4), &rng);
  Tensor prompts = Tensor::Randn(2, 4, &rng);
  Tensor queries = Tensor::Randn(1, 4, &rng);
  const auto out = net.Forward(prompts, {0, 1}, queries, 2);
  EXPECT_EQ(out.query_scores.rows(), 1);
  EXPECT_EQ(out.query_scores.cols(), 2);
}

TEST(TaskGraphTest, ManyWaysShape) {
  Rng rng(8);
  TaskGraphNet net(SmallConfig(4), &rng);
  const int ways = 20;
  Tensor prompts = Tensor::Randn(ways * 3, 4, &rng);
  std::vector<int> labels;
  for (int c = 0; c < ways; ++c) {
    for (int k = 0; k < 3; ++k) labels.push_back(c);
  }
  Tensor queries = Tensor::Randn(5, 4, &rng);
  const auto out = net.Forward(prompts, labels, queries, ways);
  EXPECT_EQ(out.query_scores.cols(), ways);
}

TEST(TaskGraphTest, MismatchedLabelSizeDies) {
  Rng rng(9);
  TaskGraphNet net(SmallConfig(4), &rng);
  Tensor prompts = Tensor::Randn(2, 4, &rng);
  Tensor queries = Tensor::Randn(1, 4, &rng);
  EXPECT_DEATH(net.Forward(prompts, {0}, queries, 2), "Check failed");
}

}  // namespace
}  // namespace gp
