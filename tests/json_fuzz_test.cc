// Fuzz-style robustness tests for the RFC-8259 JSON parser (obs/json.cc).
//
// The parser feeds on bench reports, telemetry exports, and checkpoint
// metadata, so a malformed or truncated file must produce a clean error
// Status — never a crash, hang, or out-of-bounds read. These tests drive
// it with deterministic pseudo-random garbage, mutated/truncated valid
// documents, pathological nesting, and a corpus of known-bad inputs.
// Run them under ASan/UBSan via the `fuzz` ctest label (scripts/check.sh).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "util/rng.h"
#include "util/status.h"

namespace gp {
namespace {

using json::JsonValue;
using json::ParseJson;

// A representative valid document exercising every JSON type.
const char kValidDoc[] =
    R"({"name":"bench_index_scaling","ok":true,"skip":null,)"
    R"("metrics":{"recall":0.953,"pairs":-12345,"exp":1.5e-3},)"
    R"("sizes":[1000,2500,5000,10000],"tags":["a","\u00e9","b\\c","d\"e"]})";

void ExpectParses(const std::string& text) {
  const StatusOr<JsonValue> parsed = ParseJson(text);
  EXPECT_TRUE(parsed.ok()) << "rejected valid JSON: " << text.substr(0, 120)
                           << " — " << parsed.status().ToString();
}

// Must not crash; ok or error are both acceptable (a mutation can still be
// valid JSON). Re-serializing whatever parsed must also not crash.
void ExpectSurvives(const std::string& text) {
  const StatusOr<JsonValue> parsed = ParseJson(text);
  if (!parsed.ok()) {
    EXPECT_FALSE(parsed.status().ToString().empty());
  }
}

TEST(JsonFuzzTest, ValidCorpusParses) {
  ExpectParses(kValidDoc);
  ExpectParses("null");
  ExpectParses("true");
  ExpectParses("-0.5e2");
  ExpectParses("\"\"");
  ExpectParses("[]");
  ExpectParses("{}");
  ExpectParses("  [ 1 , 2 , 3 ]  ");
}

TEST(JsonFuzzTest, RandomBytesNeverCrash) {
  Rng rng(0xF022);
  for (int round = 0; round < 2000; ++round) {
    const int len = static_cast<int>(rng.UniformInt(64));
    std::string text;
    text.reserve(len);
    for (int i = 0; i < len; ++i) {
      text.push_back(static_cast<char>(rng.UniformInt(256)));
    }
    ExpectSurvives(text);
  }
}

TEST(JsonFuzzTest, StructuralCharacterSoupNeverCrashes) {
  // Garbage drawn from JSON's own alphabet hits far more parser states
  // than uniform bytes do.
  const char alphabet[] = "{}[]\",:.+-eE0123456789truefalsenull\\u \n\t";
  Rng rng(0xF033);
  for (int round = 0; round < 2000; ++round) {
    const int len = static_cast<int>(rng.UniformInt(96));
    std::string text;
    text.reserve(len);
    for (int i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.UniformInt(sizeof(alphabet) - 1)]);
    }
    ExpectSurvives(text);
  }
}

TEST(JsonFuzzTest, EveryTruncationOfValidDocErrors) {
  const std::string doc(kValidDoc);
  for (size_t cut = 0; cut < doc.size(); ++cut) {
    const std::string truncated = doc.substr(0, cut);
    const StatusOr<JsonValue> parsed = ParseJson(truncated);
    EXPECT_FALSE(parsed.ok())
        << "truncation at " << cut << " parsed: " << truncated;
  }
  ExpectParses(doc);
}

TEST(JsonFuzzTest, SingleByteMutationsNeverCrash) {
  const std::string doc(kValidDoc);
  Rng rng(0xF044);
  for (size_t pos = 0; pos < doc.size(); ++pos) {
    for (int m = 0; m < 4; ++m) {
      std::string mutated = doc;
      mutated[pos] = static_cast<char>(rng.UniformInt(256));
      ExpectSurvives(mutated);
    }
  }
}

TEST(JsonFuzzTest, DeepNestingErrorsInsteadOfOverflowing) {
  // 1000 levels must hit the parser's depth limit with a clean error (a
  // recursive-descent parser without the limit would smash the stack).
  for (const char* open_close : {"[]", "{}"}) {
    std::string deep;
    for (int i = 0; i < 1000; ++i) {
      if (open_close[0] == '{') deep += "{\"k\":";
      else deep += '[';
    }
    deep += open_close[0] == '{' ? "null" : "1";
    for (int i = 0; i < 1000; ++i) deep += open_close[1];
    const StatusOr<JsonValue> parsed = ParseJson(deep);
    EXPECT_FALSE(parsed.ok()) << "1000-deep " << open_close;
  }

  // 10 levels are ordinary and must parse.
  std::string shallow;
  for (int i = 0; i < 10; ++i) shallow += '[';
  shallow += '7';
  for (int i = 0; i < 10; ++i) shallow += ']';
  ExpectParses(shallow);
}

TEST(JsonFuzzTest, KnownMalformedCorpusErrors) {
  const std::vector<std::string> corpus = {
      "",
      "   ",
      "{",
      "}",
      "[",
      "]",
      "{]",
      "[}",
      "[1,]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "{\"a\":1,}",
      "{\"a\":1 \"b\":2}",
      "[1 2]",
      "tru",
      "falsee",
      "nul",
      "+1",
      "01",
      "1.",
      ".5",
      "1e",
      "1e+",
      "--1",
      "0x10",
      "Infinity",
      "NaN",
      "\"unterminated",
      "\"bad escape \\q\"",
      "\"bad unicode \\u12g4\"",
      "\"trailing backslash\\",
      "[1] extra",
      "{} {}",
      "\x01",
      std::string("\"embedded\0nul\"", 14),
  };
  for (const std::string& text : corpus) {
    const StatusOr<JsonValue> parsed = ParseJson(text);
    EXPECT_FALSE(parsed.ok()) << "accepted malformed: " << text;
  }
}

TEST(JsonFuzzTest, LongTokensDoNotOverread) {
  ExpectSurvives(std::string(1 << 16, '9'));          // giant number
  ExpectSurvives("\"" + std::string(1 << 16, 'a'));   // unterminated string
  ExpectParses("\"" + std::string(1 << 16, 'a') + "\"");
  ExpectSurvives(std::string(1 << 16, ' '));          // all whitespace
}

}  // namespace
}  // namespace gp
