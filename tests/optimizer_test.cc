#include "nn/optimizer.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

// Minimises f(x) = ||x - target||^2 and returns the final distance.
template <typename MakeOptimizer>
float MinimiseQuadratic(MakeOptimizer make, int steps) {
  Tensor x = Tensor::FromData(1, 2, {5.0f, -3.0f}, true);
  Tensor target = Tensor::FromData(1, 2, {1.0f, 2.0f});
  auto optimizer = make(std::vector<Tensor>{x});
  for (int i = 0; i < steps; ++i) {
    optimizer->ZeroGrad();
    Backward(SumAll(Square(Sub(x, target))));
    optimizer->Step();
  }
  return EuclideanDistance(x.Row(0), target.Row(0));
}

TEST(SgdTest, ConvergesOnQuadratic) {
  const float dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.1f);
      },
      100);
  EXPECT_LT(dist, 1e-3f);
}

TEST(SgdTest, MomentumConverges) {
  const float dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Sgd>(std::move(p), 0.02f, 0.9f);
      },
      300);
  EXPECT_LT(dist, 1e-2f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  const float dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<Adam>(std::move(p), 0.2f);
      },
      200);
  EXPECT_LT(dist, 1e-2f);
}

TEST(AdamWTest, ConvergesOnQuadratic) {
  const float dist = MinimiseQuadratic(
      [](std::vector<Tensor> p) {
        return std::make_unique<AdamW>(std::move(p), 0.2f, 1e-4f);
      },
      200);
  EXPECT_LT(dist, 5e-2f);
}

TEST(AdamWTest, WeightDecayShrinksUnusedParameter) {
  // A parameter with zero gradient should still decay toward zero.
  Tensor unused = Tensor::FromData(1, 1, {10.0f}, true);
  unused.mutable_grad();  // allocate a zero grad buffer
  AdamW optimizer({unused}, /*learning_rate=*/0.1f, /*weight_decay=*/0.5f);
  for (int i = 0; i < 20; ++i) optimizer.Step();
  EXPECT_LT(std::abs(unused.item()), 10.0f * std::pow(1.0f - 0.05f, 19));
}

TEST(AdamTest, ClassicL2CouplesDecayThroughGradient) {
  Tensor x = Tensor::FromData(1, 1, {4.0f}, true);
  x.mutable_grad();
  Adam optimizer({x}, 0.1f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.1f,
                 /*decoupled_weight_decay=*/false);
  for (int i = 0; i < 30; ++i) optimizer.Step();
  EXPECT_LT(x.item(), 4.0f);
}

TEST(OptimizerTest, SkipsParametersWithoutGradients) {
  Tensor with_grad = Tensor::FromData(1, 1, {1.0f}, true);
  Tensor without = Tensor::FromData(1, 1, {2.0f}, true);
  Backward(Square(with_grad));
  Sgd optimizer({with_grad, without}, 0.1f);
  optimizer.Step();
  EXPECT_EQ(without.item(), 2.0f);  // untouched
  EXPECT_LT(with_grad.item(), 1.0f);
}

TEST(OptimizerTest, ClipGradNormRescales) {
  Tensor x = Tensor::FromData(1, 2, {0.0f, 0.0f}, true);
  auto& grad = x.mutable_grad();
  grad[0] = 3.0f;
  grad[1] = 4.0f;  // norm 5
  Sgd optimizer({x}, 0.1f);
  const float before = optimizer.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(before, 5.0f);
  EXPECT_NEAR(x.grad()[0], 0.6f, 1e-5f);
  EXPECT_NEAR(x.grad()[1], 0.8f, 1e-5f);
}

TEST(OptimizerTest, ClipBelowThresholdIsNoop) {
  Tensor x = Tensor::FromData(1, 1, {0.0f}, true);
  x.mutable_grad()[0] = 0.5f;
  Sgd optimizer({x}, 0.1f);
  optimizer.ClipGradNorm(1.0f);
  EXPECT_FLOAT_EQ(x.grad()[0], 0.5f);
}

TEST(OptimizerTest, ZeroGradZeroesAll) {
  Tensor x = Tensor::FromData(1, 1, {1.0f}, true);
  Backward(Square(x));
  Sgd optimizer({x}, 0.1f);
  optimizer.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(OptimizerTest, LearningRateMutable) {
  Sgd optimizer({}, 0.1f);
  optimizer.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(optimizer.learning_rate(), 0.01f);
}

}  // namespace
}  // namespace gp
