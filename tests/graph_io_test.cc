#include "graph/graph_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "graph/builder.h"

namespace gp {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(GraphIoTest, RoundTripPreservesEverything) {
  KnowledgeGraphConfig config;
  config.num_nodes = 120;
  config.num_relations = 8;
  config.num_clusters = 4;
  config.num_edges = 500;
  Graph original = MakeKnowledgeGraph(config);

  const std::string path = TempPath("graph_roundtrip.bin");
  ASSERT_TRUE(SaveGraph(original, path).ok());
  auto loaded_or = LoadGraph(path);
  ASSERT_TRUE(loaded_or.ok());
  const Graph& loaded = *loaded_or;

  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.num_relations(), original.num_relations());
  EXPECT_EQ(loaded.feature_dim(), original.feature_dim());
  EXPECT_EQ(loaded.node_labels(), original.node_labels());
  EXPECT_EQ(loaded.node_features().data(), original.node_features().data());
  for (int e = 0; e < original.num_edges(); ++e) {
    EXPECT_EQ(loaded.edge(e).src, original.edge(e).src);
    EXPECT_EQ(loaded.edge(e).dst, original.edge(e).dst);
    EXPECT_EQ(loaded.edge(e).relation, original.edge(e).relation);
  }
  // Adjacency rebuilt identically.
  for (int v = 0; v < original.num_nodes(); ++v) {
    ASSERT_EQ(loaded.Degree(v), original.Degree(v));
  }
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileFails) {
  auto result = LoadGraph("/does/not/exist.graph");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, BadMagicFails) {
  const std::string path = TempPath("bad_magic.bin");
  {
    // Large enough to pass the minimum framed-file size check so the
    // magic check itself is what rejects it.
    std::ofstream out(path, std::ios::binary);
    const uint32_t junk[4] = {0xdeadbeef, 0xdeadbeef, 0xdeadbeef, 0xdeadbeef};
    out.write(reinterpret_cast<const char*>(junk), sizeof(junk));
  }
  auto result = LoadGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TinyFileIsDataLoss) {
  const std::string path = TempPath("tiny.bin");
  {
    std::ofstream out(path, std::ios::binary);
    const uint32_t junk = 0xdeadbeef;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  auto result = LoadGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(GraphIoTest, TruncatedFileFails) {
  // Save a valid graph, then truncate it.
  NodeGraphConfig config;
  config.num_nodes = 50;
  config.num_classes = 5;
  Graph graph = MakeNodeClassificationGraph(config);
  const std::string path = TempPath("truncated.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() / 2));
  }
  auto result = LoadGraph(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(GraphIoTest, UnlabeledGraphRoundTrips) {
  GraphBuilder builder;
  builder.AddNode();
  builder.AddNode();
  builder.AddEdge(0, 1);
  Graph graph = builder.Build();
  const std::string path = TempPath("unlabeled.bin");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_node_classes(), 0);
  EXPECT_EQ(loaded->num_edges(), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gp
