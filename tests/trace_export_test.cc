// Tests for trace spans and the observability exporters: span nesting and
// parent links, Chrome trace JSON, telemetry snapshot JSON/CSV, and the
// bench report schema — all round-tripped through the bundled JSON parser.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/bench_report.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace gp {
namespace {

using json::JsonValue;

class TraceExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry().Reset();
    ClearTraceEvents();
    SetTracingEnabled(false);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    ClearTraceEvents();
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }
};

TEST_F(TraceExportTest, SpanCountersAggregateWithoutTracing) {
  ASSERT_FALSE(TracingEnabled());
  { GP_TRACE_SPAN("export_test/stage"); }
  EXPECT_EQ(Telemetry().Snapshot().CounterValue(
                "span/export_test/stage/count"),
            1);
  // No events recorded while tracing is off.
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceExportTest, NestedSpansRecordParentLinks) {
  SetTracingEnabled(true);
  {
    GP_TRACE_SPAN("export_test/outer");
    GP_TRACE_SPAN("export_test/inner");
  }
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time: outer opens first.
  EXPECT_STREQ(events[0].name, "export_test/outer");
  EXPECT_STREQ(events[1].name, "export_test/inner");
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].parent_id, events[0].id);
  EXPECT_GE(events[0].dur_us, events[1].dur_us);

  ClearTraceEvents();
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST_F(TraceExportTest, ChromeTraceJsonParses) {
  SetTracingEnabled(true);
  { GP_TRACE_SPAN("export_test/chrome"); }
  const auto root_or = json::ParseJson(ChromeTraceToJson());
  ASSERT_TRUE(root_or.ok()) << root_or.status().ToString();
  const JsonValue* events = root_or->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());
  ASSERT_EQ(events->elements.size(), 1u);
  const JsonValue& event = events->elements[0];
  EXPECT_EQ(event.Find("name")->string_value, "export_test/chrome");
  EXPECT_EQ(event.Find("ph")->string_value, "X");
  EXPECT_TRUE(event.Find("ts")->IsNumber());
  EXPECT_TRUE(event.Find("dur")->IsNumber());
}

TEST_F(TraceExportTest, TelemetrySnapshotJsonSchema) {
  Telemetry().GetCounter("export_test/count")->Add(7);
  Telemetry().GetGauge("export_test/gauge")->Set(1.5);
  Telemetry().GetHistogram("export_test/hist", {1.0, 2.0})->Observe(1.5);
  { GP_TRACE_SPAN("export_test/span"); }

  const auto root_or =
      json::ParseJson(TelemetrySnapshotToJson(Telemetry().Snapshot()));
  ASSERT_TRUE(root_or.ok()) << root_or.status().ToString();
  const JsonValue& root = *root_or;
  EXPECT_EQ(root.Find("kind")->string_value, "telemetry");
  EXPECT_TRUE(root.Find("schema_version")->IsNumber());

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* count = counters->Find("export_test/count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->number_value, 7.0);

  const JsonValue* gauges = root.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("export_test/gauge")->number_value, 1.5);

  // Metric registration is permanent (Reset only zeroes values), so other
  // tests' entries may coexist — look ours up by name.
  const JsonValue* histograms = root.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  ASSERT_TRUE(histograms->IsArray());
  bool hist_found = false;
  for (const JsonValue& h : histograms->elements) {
    if (h.Find("name")->string_value == "export_test/hist") {
      hist_found = true;
      EXPECT_EQ(h.Find("count")->number_value, 1.0);
    }
  }
  EXPECT_TRUE(hist_found);

  const JsonValue* spans = root.Find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->IsArray());
  bool span_found = false;
  for (const JsonValue& s : spans->elements) {
    if (s.Find("name")->string_value == "export_test/span") {
      span_found = true;
      EXPECT_EQ(s.Find("count")->number_value, 1.0);
    }
  }
  EXPECT_TRUE(span_found);
}

TEST_F(TraceExportTest, WriteTelemetryFiles) {
  Telemetry().GetCounter("export_test/file")->Add(3);
  const std::string json_path = testing::TempDir() + "/telemetry.json";
  const std::string csv_path = testing::TempDir() + "/telemetry.csv";
  const TelemetrySnapshot snap = Telemetry().Snapshot();
  ASSERT_TRUE(WriteTelemetryJson(snap, json_path).ok());
  ASSERT_TRUE(WriteTelemetryCsv(snap, csv_path).ok());

  const auto root_or = json::ParseJson(ReadFile(json_path));
  ASSERT_TRUE(root_or.ok());
  EXPECT_EQ(root_or->Find("counters")->Find("export_test/file")->number_value,
            3.0);

  const std::string csv = ReadFile(csv_path);
  EXPECT_NE(csv.find("counter,export_test/file,3"), std::string::npos) << csv;
}

TEST_F(TraceExportTest, BenchReportSchema) {
  Telemetry().GetCounter("export_test/bench")->Add(1);
  BenchReporter report("unit_test_bench");
  report.AddConfig("scale", 0.5);
  report.AddConfig("seed", static_cast<int64_t>(17));
  report.AddMetric("cell/accuracy", 91.25, "%");

  const auto root_or = json::ParseJson(report.ToJson());
  ASSERT_TRUE(root_or.ok()) << root_or.status().ToString();
  const JsonValue& root = *root_or;
  EXPECT_EQ(root.Find("benchmark")->string_value, "unit_test_bench");

  const JsonValue* config = root.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->Find("scale")->number_value, 0.5);
  EXPECT_EQ(config->Find("seed")->number_value, 17.0);

  const JsonValue* results = root.Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->IsArray());
  ASSERT_EQ(results->elements.size(), 1u);
  EXPECT_EQ(results->elements[0].Find("label")->string_value,
            "cell/accuracy");
  EXPECT_EQ(results->elements[0].Find("value")->number_value, 91.25);
  EXPECT_EQ(results->elements[0].Find("unit")->string_value, "%");

  // The embedded telemetry snapshot: stages + counters from the registry.
  EXPECT_TRUE(root.Find("stages")->IsArray());
  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("export_test/bench"), nullptr);

  const std::string outdir = testing::TempDir();
  ASSERT_TRUE(report.WriteJson(outdir).ok());
  const std::string written =
      ReadFile(outdir + "/BENCH_unit_test_bench.json");
  EXPECT_FALSE(written.empty());
  EXPECT_TRUE(json::ParseJson(written).ok());
}

TEST_F(TraceExportTest, ConfiguredExportWritesBothSinks) {
  const std::string telemetry_path =
      testing::TempDir() + "/configured_telemetry.json";
  const std::string trace_path = testing::TempDir() + "/configured_trace.json";
  ConfigureObservability(telemetry_path, trace_path);
  EXPECT_TRUE(TracingEnabled());  // non-empty trace path enables recording

  Telemetry().GetCounter("export_test/configured")->Add(2);
  { GP_TRACE_SPAN("export_test/configured_span"); }
  ASSERT_TRUE(ExportConfiguredObservability().ok());

  const auto telemetry_or = json::ParseJson(ReadFile(telemetry_path));
  ASSERT_TRUE(telemetry_or.ok());
  EXPECT_EQ(telemetry_or->Find("kind")->string_value, "telemetry");

  const auto trace_or = json::ParseJson(ReadFile(trace_path));
  ASSERT_TRUE(trace_or.ok());
  EXPECT_GE(trace_or->Find("traceEvents")->elements.size(), 1u);

  // Unset so later tests/processes are unaffected.
  ConfigureObservability("", "");
}

}  // namespace
}  // namespace gp
