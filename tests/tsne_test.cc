#include "viz/tsne.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "util/rng.h"

namespace gp {
namespace {

TEST(TsneTest, OutputShape) {
  Rng rng(1);
  Tensor x = Tensor::Randn(20, 8, &rng);
  TsneConfig config;
  config.iterations = 50;
  Tensor y = RunTsne(x, config);
  EXPECT_EQ(y.rows(), 20);
  EXPECT_EQ(y.cols(), 2);
}

TEST(TsneTest, OutputIsFinite) {
  Rng rng(2);
  Tensor x = Tensor::Randn(30, 16, &rng);
  TsneConfig config;
  config.iterations = 100;
  Tensor y = RunTsne(x, config);
  for (float v : y.data()) EXPECT_TRUE(std::isfinite(v));
}

TEST(TsneTest, OutputIsCentred) {
  Rng rng(3);
  Tensor x = Tensor::Randn(25, 8, &rng);
  TsneConfig config;
  config.iterations = 60;
  Tensor y = RunTsne(x, config);
  double m0 = 0, m1 = 0;
  for (int i = 0; i < 25; ++i) {
    m0 += y.at(i, 0);
    m1 += y.at(i, 1);
  }
  EXPECT_NEAR(m0 / 25, 0.0, 1e-3);
  EXPECT_NEAR(m1 / 25, 0.0, 1e-3);
}

TEST(TsneTest, SeparatedClustersStaySeparated) {
  // Two far-apart Gaussian clusters in 10-D must remain separable in the
  // 2-D map (silhouette clearly positive).
  Rng rng(4);
  const int n = 40;
  Tensor x = Tensor::Zeros(n, 10);
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = i % 2;
    for (int c = 0; c < 10; ++c) {
      x.at(i, c) = rng.Normal() * 0.3f + (labels[i] == 0 ? 0.0f : 8.0f);
    }
  }
  TsneConfig config;
  config.iterations = 500;
  config.perplexity = 8.0;
  Tensor y = RunTsne(x, config);
  EXPECT_GT(SilhouetteScore(y, labels), 0.4);
}

TEST(TsneTest, DeterministicForSeed) {
  Rng rng(5);
  Tensor x = Tensor::Randn(15, 6, &rng);
  TsneConfig config;
  config.iterations = 40;
  Tensor a = RunTsne(x, config);
  Tensor b = RunTsne(x, config);
  for (int64_t i = 0; i < a.size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(TsneTest, TinyInputWorks) {
  Tensor x = Tensor::FromData(2, 3, {0, 0, 0, 1, 1, 1});
  TsneConfig config;
  config.iterations = 20;
  Tensor y = RunTsne(x, config);
  EXPECT_EQ(y.rows(), 2);
}

}  // namespace
}  // namespace gp
