// Request/response payload codec tests: roundtrips, truncation taxonomy,
// version gating, and field-range validation of untrusted wire values.

#include "serve/protocol.h"

#include <gtest/gtest.h>

#include <string>

namespace gp {
namespace {

EvalRequest TestRequest() {
  EvalRequest req;
  req.tenant = "tenant-a";
  req.request_id = 77;
  req.deadline_us = 250000;
  req.ways = 4;
  req.shots = 2;
  req.candidates_per_class = 6;
  req.num_queries = 12;
  req.query_batch = 4;
  req.trials = 2;
  req.seed = 99;
  req.fault_spec = "embed_nan=0.5,seed=3";
  return req;
}

TEST(ProtocolTest, RequestRoundTrip) {
  const EvalRequest req = TestRequest();
  auto decoded = DecodeEvalRequest(EncodeEvalRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->request_id, req.request_id);
  EXPECT_EQ(decoded->deadline_us, req.deadline_us);
  EXPECT_EQ(decoded->ways, req.ways);
  EXPECT_EQ(decoded->shots, req.shots);
  EXPECT_EQ(decoded->candidates_per_class, req.candidates_per_class);
  EXPECT_EQ(decoded->num_queries, req.num_queries);
  EXPECT_EQ(decoded->query_batch, req.query_batch);
  EXPECT_EQ(decoded->trials, req.trials);
  EXPECT_EQ(decoded->seed, req.seed);
  EXPECT_EQ(decoded->fault_spec, req.fault_spec);
}

TEST(ProtocolTest, ResponseRoundTrip) {
  EvalResponse resp;
  resp.request_id = 77;
  resp.status_code = static_cast<int32_t>(StatusCode::kDeadlineExceeded);
  resp.message = "deadline of 1000us expired";
  resp.accuracy_mean = 61.25;
  resp.accuracy_std = 4.5;
  resp.ms_per_query = 0.75;
  resp.degradation_events = 3;
  resp.server_latency_us = 1234;
  resp.retries = 2;
  auto decoded = DecodeEvalResponse(EncodeEvalResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, resp.request_id);
  EXPECT_EQ(decoded->status_code, resp.status_code);
  EXPECT_EQ(decoded->message, resp.message);
  EXPECT_DOUBLE_EQ(decoded->accuracy_mean, resp.accuracy_mean);
  EXPECT_DOUBLE_EQ(decoded->accuracy_std, resp.accuracy_std);
  EXPECT_DOUBLE_EQ(decoded->ms_per_query, resp.ms_per_query);
  EXPECT_EQ(decoded->degradation_events, resp.degradation_events);
  EXPECT_EQ(decoded->server_latency_us, resp.server_latency_us);
  EXPECT_EQ(decoded->retries, resp.retries);
}

TEST(ProtocolTest, EveryRequestTruncationIsDataLoss) {
  const std::string wire = EncodeEvalRequest(TestRequest());
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto decoded = DecodeEvalRequest(wire.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss)
        << "cut=" << cut << ": " << decoded.status().ToString();
  }
}

TEST(ProtocolTest, EveryResponseTruncationIsDataLoss) {
  EvalResponse resp;
  resp.request_id = 1;
  resp.message = "ok";
  const std::string wire = EncodeEvalResponse(resp);
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    auto decoded = DecodeEvalResponse(wire.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "cut=" << cut;
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
  }
}

TEST(ProtocolTest, VersionMismatchIsFailedPrecondition) {
  std::string wire = EncodeEvalRequest(TestRequest());
  wire[0] = static_cast<char>(kProtocolVersion + 1);
  auto decoded = DecodeEvalRequest(wire);
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProtocolTest, FieldRangeValidation) {
  EvalRequest req = TestRequest();
  req.tenant = "";
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);

  req = TestRequest();
  req.ways = 1;
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);
  req.ways = kMaxWays + 1;
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);

  req = TestRequest();
  req.num_queries = 0;
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);
  req.num_queries = kMaxQueriesPerRequest + 1;
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);

  req = TestRequest();
  req.trials = 0;
  EXPECT_EQ(DecodeEvalRequest(EncodeEvalRequest(req)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, OversizedTenantRejected) {
  EvalRequest req = TestRequest();
  req.tenant = std::string(kMaxTenantBytes + 1, 't');
  // The length prefix exceeds the cap, so decoding reports loss/corruption
  // rather than allocating an attacker-controlled string.
  EXPECT_FALSE(DecodeEvalRequest(EncodeEvalRequest(req)).ok());
}

}  // namespace
}  // namespace gp
