// Unit tests for the thread pool and chunked ParallelFor: range coverage,
// fixed chunking, exception propagation, nesting, and pool resizing.

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

namespace gp {
namespace {

// Restores the ambient thread count after each test so tests stay
// order-independent.
class ParallelForTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = NumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  int previous_threads_ = 1;
};

TEST_F(ParallelForTest, EmptyRangeNeverInvokes) {
  SetNumThreads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 8, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 8, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ParallelForTest, GrainLargerThanRangeRunsOneChunk) {
  SetNumThreads(4);
  EXPECT_EQ(NumChunks(2, 9, 100), 1);
  std::vector<std::pair<int64_t, int64_t>> chunks;
  ParallelFor(2, 9, 100, [&](int64_t first, int64_t last) {
    chunks.emplace_back(first, last);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], std::make_pair(int64_t{2}, int64_t{9}));
}

TEST_F(ParallelForTest, CoversRangeExactlyOnce) {
  SetNumThreads(4);
  constexpr int kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, kN, 7, [&](int64_t first, int64_t last) {
    for (int64_t i = first; i < last; ++i) counts[i].fetch_add(1);
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << "i=" << i;
}

TEST_F(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  auto collect = [](int threads) {
    SetNumThreads(threads);
    std::mutex mu;
    std::vector<std::pair<int64_t, int64_t>> chunks;
    ParallelFor(3, 250, 11, [&](int64_t first, int64_t last) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(first, last);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = collect(1);
  const auto parallel = collect(4);
  EXPECT_EQ(serial, parallel);
  ASSERT_EQ(static_cast<int64_t>(serial.size()), NumChunks(3, 250, 11));
  // Chunks partition [3, 250) in grain-11 steps.
  int64_t expected_first = 3;
  for (const auto& [first, last] : serial) {
    EXPECT_EQ(first, expected_first);
    EXPECT_EQ(last, std::min<int64_t>(250, first + 11));
    expected_first = last;
  }
  EXPECT_EQ(expected_first, 250);
}

TEST_F(ParallelForTest, ExceptionPropagatesToCaller) {
  SetNumThreads(4);
  EXPECT_THROW(
      ParallelFor(0, 64, 4,
                  [](int64_t first, int64_t last) {
                    for (int64_t i = first; i < last; ++i) {
                      if (i == 37) throw std::runtime_error("boom");
                    }
                  }),
      std::runtime_error);
  // The pool survives a throwing job and runs subsequent work.
  std::atomic<int64_t> total{0};
  ParallelFor(0, 100, 5, [&](int64_t first, int64_t last) {
    for (int64_t i = first; i < last; ++i) total.fetch_add(i);
  });
  EXPECT_EQ(total.load(), 99 * 100 / 2);
}

TEST_F(ParallelForTest, NestedParallelForRunsInline) {
  SetNumThreads(4);
  constexpr int kRows = 32;
  constexpr int kCols = 48;
  std::vector<int> cells(kRows * kCols, 0);
  ParallelFor(0, kRows, 2, [&](int64_t rfirst, int64_t rlast) {
    for (int64_t r = rfirst; r < rlast; ++r) {
      // Inner loop must run serially inline on this thread — it still
      // covers its whole range.
      ParallelFor(0, kCols, 8, [&](int64_t cfirst, int64_t clast) {
        for (int64_t c = cfirst; c < clast; ++c) {
          cells[r * kCols + c] += 1;
        }
      });
    }
  });
  EXPECT_EQ(std::accumulate(cells.begin(), cells.end(), 0), kRows * kCols);
  EXPECT_EQ(*std::min_element(cells.begin(), cells.end()), 1);
  EXPECT_EQ(*std::max_element(cells.begin(), cells.end()), 1);
}

TEST_F(ParallelForTest, SetNumThreadsClampsAndRoundTrips) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(0);  // clamps to 1 (fully serial)
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(-5);
  EXPECT_EQ(NumThreads(), 1);
}

TEST_F(ParallelForTest, OrderedChunkReductionIsDeterministic) {
  // Per-chunk partials reduced in chunk order give bitwise-identical
  // floating-point sums at any thread count.
  std::vector<float> values(10000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = std::sin(static_cast<float>(i)) * 1e-3f;
  }
  auto chunked_sum = [&](int threads) {
    SetNumThreads(threads);
    const int64_t grain = 64;
    const int64_t chunks =
        NumChunks(0, static_cast<int64_t>(values.size()), grain);
    std::vector<double> partial(chunks, 0.0);
    ParallelFor(0, static_cast<int64_t>(values.size()), grain,
                [&](int64_t first, int64_t last) {
                  double acc = 0.0;
                  for (int64_t i = first; i < last; ++i) acc += values[i];
                  partial[first / grain] = acc;
                });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double serial = chunked_sum(1);
  const double parallel = chunked_sum(4);
  EXPECT_EQ(serial, parallel);  // bitwise, not approximate
}

}  // namespace
}  // namespace gp
