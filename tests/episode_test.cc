#include "data/episode.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace gp {
namespace {

class EpisodeSamplerTest : public ::testing::Test {
 protected:
  EpisodeSamplerTest() : dataset_(MakeArxivSim(0.5, 3)) {}
  DatasetBundle dataset_;
};

TEST_F(EpisodeSamplerTest, ShapesMatchConfig) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  config.ways = 5;
  config.candidates_per_class = 4;
  config.num_queries = 12;
  Rng rng(1);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->ways(), 5);
  EXPECT_EQ(task->candidates.size(), 20u);
  EXPECT_EQ(task->queries.size(), 12u);
}

TEST_F(EpisodeSamplerTest, CandidatesBalancedPerClass) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  config.ways = 4;
  config.candidates_per_class = 6;
  Rng rng(2);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  std::vector<int> counts(4, 0);
  for (const auto& ex : task->candidates) ++counts[ex.label];
  for (int c : counts) EXPECT_EQ(c, 6);
}

TEST_F(EpisodeSamplerTest, LabelsMatchDataset) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  Rng rng(3);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  for (const auto& ex : task->candidates) {
    EXPECT_EQ(dataset_.LabelOfItem(ex.item),
              task->class_global[ex.label]);
  }
  for (const auto& ex : task->queries) {
    EXPECT_EQ(dataset_.LabelOfItem(ex.item),
              task->class_global[ex.label]);
  }
}

TEST_F(EpisodeSamplerTest, CandidatesComeFromTrainSplit) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  Rng rng(4);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  for (const auto& ex : task->candidates) {
    const int cls = task->class_global[ex.label];
    const auto& train = dataset_.train_items_by_class[cls];
    EXPECT_NE(std::find(train.begin(), train.end(), ex.item), train.end());
  }
}

TEST_F(EpisodeSamplerTest, QueriesComeFromTestSplitByDefault) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  Rng rng(5);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  for (const auto& ex : task->queries) {
    const int cls = task->class_global[ex.label];
    const auto& test = dataset_.test_items_by_class[cls];
    EXPECT_NE(std::find(test.begin(), test.end(), ex.item), test.end());
  }
}

TEST_F(EpisodeSamplerTest, CandidatesAreDistinctWithinClass) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  config.candidates_per_class = 10;
  Rng rng(6);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  for (int cls = 0; cls < config.ways; ++cls) {
    std::set<int> items;
    for (const auto& ex : task->candidates) {
      if (ex.label == cls) items.insert(ex.item);
    }
    EXPECT_EQ(items.size(), 10u);
  }
}

TEST_F(EpisodeSamplerTest, TooManyWaysFails) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  config.ways = dataset_.num_classes + 1;
  Rng rng(7);
  auto task = sampler.Sample(config, &rng);
  EXPECT_FALSE(task.ok());
  EXPECT_EQ(task.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EpisodeSamplerTest, EligibleClassCounting) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  config.candidates_per_class = 1;
  EXPECT_EQ(sampler.NumEligibleClasses(config), dataset_.num_classes);
  config.candidates_per_class = 1000000;
  EXPECT_EQ(sampler.NumEligibleClasses(config), 0);
}

TEST_F(EpisodeSamplerTest, DeterministicForSeed) {
  EpisodeSampler sampler(&dataset_);
  EpisodeConfig config;
  Rng rng_a(8), rng_b(8);
  auto a = sampler.Sample(config, &rng_a);
  auto b = sampler.Sample(config, &rng_b);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->class_global, b->class_global);
  for (size_t i = 0; i < a->queries.size(); ++i) {
    EXPECT_EQ(a->queries[i].item, b->queries[i].item);
  }
}

TEST_F(EpisodeSamplerTest, ManyWayEpisodeOnKg) {
  DatasetBundle kg = MakeFb15kSim(0.4, 9);
  EpisodeSampler sampler(&kg);
  EpisodeConfig config;
  config.ways = 50;
  config.candidates_per_class = 5;
  config.num_queries = 50;
  Rng rng(10);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->ways(), 50);
  std::set<int> classes(task->class_global.begin(),
                        task->class_global.end());
  EXPECT_EQ(classes.size(), 50u);
}

}  // namespace
}  // namespace gp
