// Edge-case behaviour of the tensor ops that the main gradcheck sweep does
// not cover: zero-sized inputs, degenerate norms, NoGrad interactions, and
// numerical-stability corners hit by the training pipeline.

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

TEST(OpsEdgeCaseTest, GatherEmptyIndexYieldsZeroRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {});
  EXPECT_EQ(g.rows(), 0);
  EXPECT_EQ(g.cols(), 2);
}

TEST(OpsEdgeCaseTest, ScatterEmptySourceYieldsZeros) {
  Tensor src = Tensor::Zeros(0, 3);
  Tensor out = ScatterAddRows(src, {}, 4);
  EXPECT_EQ(out.rows(), 4);
  for (float v : out.data()) EXPECT_EQ(v, 0.0f);
}

TEST(OpsEdgeCaseTest, SliceZeroRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(a, 1, 0);
  EXPECT_EQ(s.rows(), 0);
}

TEST(OpsEdgeCaseTest, RowL2NormalizeZeroRowGradientIsFinite) {
  // Zero rows use the eps floor; gradients must stay finite.
  Tensor x = Tensor::FromData(2, 2, {0, 0, 3, 4}, /*requires_grad=*/true);
  Backward(SumAll(RowL2Normalize(x)));
  for (float g : x.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(OpsEdgeCaseTest, SegmentSoftmaxSingleMemberSegments) {
  Tensor a = Tensor::FromData(3, 1, {5, -2, 100});
  Tensor s = SegmentSoftmax(a, {0, 1, 2}, 3);
  for (float v : s.data()) EXPECT_NEAR(v, 1.0f, 1e-6f);
}

TEST(OpsEdgeCaseTest, SegmentSoftmaxExtremeLogitsStable) {
  Tensor a = Tensor::FromData(2, 1, {1000.0f, -1000.0f});
  Tensor s = SegmentSoftmax(a, {0, 0}, 1);
  EXPECT_NEAR(s.at(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(s.at(1, 0), 0.0f, 1e-5f);
}

TEST(OpsEdgeCaseTest, CrossEntropyExtremeLogitsFinite) {
  Tensor logits =
      Tensor::FromData(2, 2, {500.0f, -500.0f, -500.0f, 500.0f}, true);
  Tensor loss = CrossEntropyWithLogits(logits, {0, 1});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_NEAR(loss.item(), 0.0f, 1e-4f);
  Backward(loss);
  for (float g : logits.grad()) EXPECT_TRUE(std::isfinite(g));
}

TEST(OpsEdgeCaseTest, CrossEntropyWorstCaseLogits) {
  Tensor logits = Tensor::FromData(1, 2, {-60.0f, 60.0f});
  Tensor loss = CrossEntropyWithLogits(logits, {0});
  EXPECT_TRUE(std::isfinite(loss.item()));
  EXPECT_GT(loss.item(), 10.0f);  // clamped log, large but finite
}

TEST(OpsEdgeCaseTest, LogClampsAtEps) {
  Tensor x = Tensor::FromData(1, 2, {0.0f, -5.0f});
  Tensor y = Log(x, 1e-6f);
  EXPECT_NEAR(y.at(0, 0), std::log(1e-6f), 1e-4f);
  EXPECT_NEAR(y.at(0, 1), std::log(1e-6f), 1e-4f);
}

TEST(OpsEdgeCaseTest, NoGradOpsStillComputeValues) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4}, true);
  NoGradGuard guard;
  Tensor b = MatMul(a, a);
  EXPECT_EQ(b.at(0, 0), 7.0f);
  EXPECT_TRUE(b.impl()->parents.empty());
  EXPECT_FALSE(static_cast<bool>(b.impl()->backward_fn));
}

TEST(OpsEdgeCaseTest, MixedGradAndNoGradChain) {
  // Graph built outside the guard still backprops even if later ops were
  // run under NoGrad on other tensors.
  Tensor x = Tensor::FromData(1, 1, {3.0f}, true);
  Tensor y = Square(x);
  {
    NoGradGuard guard;
    Tensor z = Square(y);  // not part of the differentiable chain
    EXPECT_FALSE(z.requires_grad());
  }
  Backward(y);
  EXPECT_NEAR(x.grad()[0], 6.0f, 1e-5f);
}

TEST(OpsEdgeCaseTest, SingleElementReductions) {
  Tensor a = Tensor::FromData(1, 1, {42.0f});
  EXPECT_EQ(SumAll(a).item(), 42.0f);
  EXPECT_EQ(MeanAll(a).item(), 42.0f);
  EXPECT_EQ(SumRows(a).item(), 42.0f);
  EXPECT_EQ(SumCols(a).item(), 42.0f);
}

TEST(OpsEdgeCaseTest, ConcatRowsSinglePart) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor c = ConcatRows({a});
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.at(1, 1), 4.0f);
}

TEST(OpsEdgeCaseTest, MatMulWithZeroEntriesSkipsCorrectly) {
  // The ikj kernel skips zero multiplicands; result must still be exact.
  Tensor a = Tensor::FromData(2, 3, {0, 1, 0, 2, 0, 3});
  Tensor b = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.at(0, 0), 3.0f);
  EXPECT_EQ(c.at(0, 1), 4.0f);
  EXPECT_EQ(c.at(1, 0), 17.0f);
  EXPECT_EQ(c.at(1, 1), 22.0f);
}

TEST(OpsEdgeCaseTest, MatMulZeroGradSkipPreservesBackward) {
  // dB accumulation skips rows where A entries are zero; gradcheck the
  // exact sparsity pattern.
  Tensor a = Tensor::FromData(1, 2, {0.0f, 2.0f});
  Tensor b = Tensor::FromData(2, 1, {3.0f, 4.0f}, true);
  Backward(SumAll(MatMul(a, b)));
  EXPECT_EQ(b.grad()[0], 0.0f);  // zero A entry -> no gradient
  EXPECT_EQ(b.grad()[1], 2.0f);
}

TEST(OpsEdgeCaseTest, DropoutProbabilityOneDies) {
  Rng rng(1);
  Tensor a = Tensor::Zeros(1, 4);
  EXPECT_DEATH(Dropout(a, 1.0f, &rng, true), "Check failed");
}

TEST(OpsEdgeCaseTest, BackwardTwiceOnSameGraphCompoundsSeeds) {
  // Replaying the same tape accumulates the root seed too (1 then 2), so
  // the second pass contributes double: 4 + 8 = 12. Training loops must
  // rebuild the graph each step (as Pretrain does) and ZeroGrad between
  // steps.
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  Tensor loss = Square(x);
  Backward(loss);
  Backward(loss);
  EXPECT_NEAR(x.grad()[0], 12.0f, 1e-5f);
}

TEST(OpsEdgeCaseTest, SegmentMeanAllRowsOneSegment) {
  Tensor a = Tensor::FromData(3, 1, {3, 6, 9});
  Tensor m = SegmentMeanRows(a, {0, 0, 0}, 1);
  EXPECT_NEAR(m.item(), 6.0f, 1e-6f);
}

}  // namespace
}  // namespace gp
