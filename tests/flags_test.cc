#include "util/flags.h"

#include <gtest/gtest.h>

namespace gp {
namespace {

Flags MakeFlags(std::vector<const char*> args) {
  args.insert(args.begin(), "binary");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(FlagsTest, ParsesEqualsForm) {
  Flags flags = MakeFlags({"--seed=42", "--scale=0.5", "--name=hello"});
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 0.0), 0.5);
  EXPECT_EQ(flags.GetString("name", ""), "hello");
}

TEST(FlagsTest, ParsesSpaceForm) {
  Flags flags = MakeFlags({"--trials", "7"});
  EXPECT_EQ(flags.GetInt("trials", 0), 7);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags flags = MakeFlags({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags flags = MakeFlags({});
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_EQ(flags.GetString("missing", "d"), "d");
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(FlagsTest, BooleanSpellings) {
  Flags flags = MakeFlags({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(flags.GetBool("a", false));
  EXPECT_TRUE(flags.GetBool("b", false));
  EXPECT_TRUE(flags.GetBool("c", false));
  EXPECT_FALSE(flags.GetBool("d", true));
}

TEST(FlagsTest, LaterValueWins) {
  Flags flags = MakeFlags({"--k=1", "--k=2"});
  EXPECT_EQ(flags.GetInt("k", 0), 2);
}

}  // namespace
}  // namespace gp
