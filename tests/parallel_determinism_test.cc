// Determinism contract of the parallel execution layer: the parallelized
// tensor kernels and kNN retrieval produce bitwise-identical results at 1
// and N threads (fixed chunking + disjoint writes / ordered reductions).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/knn_retrieval.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gp {
namespace {

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0,
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)));
}

void ExpectBitwiseEqual(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0,
            std::memcmp(a.data(), b.data(), a.size() * sizeof(double)));
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = NumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  int previous_threads_ = 1;
};

struct MatMulRun {
  std::vector<float> forward;
  std::vector<float> grad_a;
  std::vector<float> grad_b;
};

// Sizes chosen to clear the serial threshold so the parallel path is
// actually exercised (96*80*72 flops per MatMul).
MatMulRun RunMatMulBackward(int threads) {
  SetNumThreads(threads);
  Rng rng(20240807);
  Tensor a = Tensor::Randn(96, 80, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b = Tensor::Randn(80, 72, &rng, 1.0f, /*requires_grad=*/true);
  Tensor c = MatMul(a, b);
  Tensor loss = SumAll(Mul(c, c));
  Backward(loss);
  MatMulRun run;
  run.forward = c.data();
  run.grad_a = a.grad();
  run.grad_b = b.grad();
  return run;
}

TEST_F(ParallelDeterminismTest, MatMulForwardAndBackwardBitwiseIdentical) {
  const MatMulRun serial = RunMatMulBackward(1);
  const MatMulRun parallel = RunMatMulBackward(4);
  ExpectBitwiseEqual(serial.forward, parallel.forward);
  ExpectBitwiseEqual(serial.grad_a, parallel.grad_a);
  ExpectBitwiseEqual(serial.grad_b, parallel.grad_b);
}

TEST_F(ParallelDeterminismTest, ElementwiseChainBitwiseIdentical) {
  auto run = [](int threads) {
    SetNumThreads(threads);
    Rng rng(99);
    Tensor a = Tensor::Randn(512, 160, &rng, 1.0f, /*requires_grad=*/true);
    Tensor out = Tanh(Relu(Scale(a, 0.37f)));
    Tensor loss = MeanAll(Square(out));
    Backward(loss);
    return std::make_pair(out.data(), a.grad());
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  ExpectBitwiseEqual(serial.first, parallel.first);
  ExpectBitwiseEqual(serial.second, parallel.second);
}

KnnSelection RunSelectPrompts(int threads, DistanceMetric metric) {
  SetNumThreads(threads);
  Rng rng(4242);
  constexpr int kPrompts = 200;
  constexpr int kQueries = 64;
  constexpr int kDim = 64;
  constexpr int kClasses = 5;
  Tensor prompts = Tensor::Randn(kPrompts, kDim, &rng);
  Tensor queries = Tensor::Randn(kQueries, kDim, &rng);
  Tensor prompt_imp = Tensor::Randn(kPrompts, 1, &rng, 0.2f);
  Tensor query_imp = Tensor::Randn(kQueries, 1, &rng, 0.2f);
  std::vector<int> labels(kPrompts);
  for (int p = 0; p < kPrompts; ++p) labels[p] = p % kClasses;
  KnnConfig config;
  config.shots = 3;
  config.metric = metric;
  return SelectPrompts(prompts, prompt_imp, labels, queries, query_imp,
                       kClasses, config);
}

TEST_F(ParallelDeterminismTest, SelectPromptsBitwiseIdenticalAllMetrics) {
  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean,
        DistanceMetric::kManhattan}) {
    SCOPED_TRACE(DistanceMetricName(metric));
    const KnnSelection serial = RunSelectPrompts(1, metric);
    const KnnSelection parallel = RunSelectPrompts(4, metric);
    EXPECT_EQ(serial.selected, parallel.selected);
    EXPECT_EQ(serial.hit_counts, parallel.hit_counts);
    ExpectBitwiseEqual(serial.votes, parallel.votes);
  }
}

}  // namespace
}  // namespace gp
