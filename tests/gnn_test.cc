#include <cmath>

#include <gtest/gtest.h>

#include "gnn/encoder.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

// A 3-node path 0-1-2 (directed both ways) with 2-dim features.
struct TinyGraph {
  Tensor x = Tensor::FromData(3, 2, {1, 0, 0, 1, 1, 1});
  std::vector<int> src = {0, 1, 1, 2};
  std::vector<int> dst = {1, 0, 2, 1};
};

TEST(SageConvTest, OutputShape) {
  Rng rng(1);
  SageConv conv(2, 4, &rng);
  TinyGraph g;
  Tensor h = conv.Forward(g.x, g.src, g.dst, Tensor());
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
}

TEST(SageConvTest, NoEdgesUsesSelfOnly) {
  Rng rng(2);
  SageConv conv(2, 3, &rng);
  Tensor x = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor h = conv.Forward(x, {}, {}, Tensor());
  EXPECT_EQ(h.rows(), 2);
}

TEST(SageConvTest, ZeroEdgeWeightsMatchNoNeighborsUpToEpsilon) {
  Rng rng(3);
  SageConv conv(2, 3, &rng);
  TinyGraph g;
  Tensor zero_w = Tensor::Zeros(4, 1);
  Tensor with_zero = conv.Forward(g.x, g.src, g.dst, zero_w);
  Tensor no_edges = conv.Forward(g.x, {}, {}, Tensor());
  for (int64_t i = 0; i < with_zero.size(); ++i) {
    EXPECT_NEAR(with_zero.data()[i], no_edges.data()[i], 1e-3f);
  }
}

TEST(SageConvTest, EdgeWeightChangesOutput) {
  Rng rng(4);
  SageConv conv(2, 3, &rng);
  TinyGraph g;
  Tensor w1 = Tensor::Full(4, 1, 1.0f);
  Tensor w2 = Tensor::FromData(4, 1, {1.0f, 0.1f, 0.9f, 0.2f});
  Tensor h1 = conv.Forward(g.x, g.src, g.dst, w1);
  Tensor h2 = conv.Forward(g.x, g.src, g.dst, w2);
  float diff = 0;
  for (int64_t i = 0; i < h1.size(); ++i) {
    diff += std::abs(h1.data()[i] - h2.data()[i]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(SageConvTest, GradientFlowsToEdgeWeights) {
  Rng rng(5);
  SageConv conv(2, 3, &rng);
  TinyGraph g;
  Tensor w = Tensor::Full(4, 1, 0.5f, /*requires_grad=*/true);
  Backward(SumAll(conv.Forward(g.x, g.src, g.dst, w)));
  ASSERT_FALSE(w.grad().empty());
  float total = 0;
  for (float v : w.grad()) total += std::abs(v);
  EXPECT_GT(total, 0.0f);
}

TEST(SageConvTest, PermutationEquivariant) {
  // Relabeling nodes permutes outputs identically.
  Rng rng(6);
  SageConv conv(2, 3, &rng);
  TinyGraph g;
  Tensor h = conv.Forward(g.x, g.src, g.dst, Tensor());
  // Permutation: 0->2, 1->0, 2->1.
  std::vector<int> perm = {2, 0, 1};
  Tensor xp = Tensor::Zeros(3, 2);
  for (int i = 0; i < 3; ++i) {
    for (int c = 0; c < 2; ++c) xp.at(perm[i], c) = g.x.at(i, c);
  }
  std::vector<int> src_p, dst_p;
  for (size_t e = 0; e < g.src.size(); ++e) {
    src_p.push_back(perm[g.src[e]]);
    dst_p.push_back(perm[g.dst[e]]);
  }
  Tensor hp = conv.Forward(xp, src_p, dst_p, Tensor());
  for (int i = 0; i < 3; ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(h.at(i, c), hp.at(perm[i], c), 1e-4f);
    }
  }
}

TEST(GcnConvTest, OutputShapeAndGrad) {
  Rng rng(7);
  GcnConv conv(2, 4, &rng);
  TinyGraph g;
  Tensor w = Tensor::Full(4, 1, 1.0f, true);
  Tensor h = conv.Forward(g.x, g.src, g.dst, w);
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
  Backward(SumAll(h));
  EXPECT_FALSE(w.grad().empty());
}

TEST(GcnConvTest, IsolatedGraphStillWorks) {
  Rng rng(8);
  GcnConv conv(2, 2, &rng);
  Tensor x = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor h = conv.Forward(x, {}, {}, Tensor());
  EXPECT_EQ(h.rows(), 2);
}

TEST(GatConvTest, OutputShape) {
  Rng rng(9);
  GatConv conv(2, 4, &rng);
  TinyGraph g;
  Tensor h = conv.Forward(g.x, g.src, g.dst, Tensor());
  EXPECT_EQ(h.rows(), 3);
  EXPECT_EQ(h.cols(), 4);
}

TEST(GatConvTest, AttentionIsNormalizedPerDestination) {
  // With identical neighbor features, GAT attention halves each message;
  // compare against a single-neighbor graph to detect normalisation.
  Rng rng(10);
  GatConv conv(2, 2, &rng);
  Tensor x = Tensor::FromData(3, 2, {1, 1, 1, 1, 5, 5});
  // Node 2 receives from 0 and 1 (identical features).
  Tensor h_two = conv.Forward(x, {0, 1}, {2, 2}, Tensor());
  Tensor h_one = conv.Forward(x, {0}, {2}, Tensor());
  for (int c = 0; c < 2; ++c) {
    EXPECT_NEAR(h_two.at(2, c), h_one.at(2, c), 1e-4f);
  }
}

TEST(GatConvTest, GradientsFlowToAttentionParams) {
  Rng rng(11);
  GatConv conv(2, 3, &rng);
  TinyGraph g;
  Backward(SumAll(conv.Forward(g.x, g.src, g.dst, Tensor())));
  for (const auto& p : conv.Parameters()) {
    ASSERT_FALSE(p.grad().empty());
  }
}

TEST(GnnEncoderTest, AllArchitecturesProduceShapes) {
  TinyGraph g;
  for (GnnArch arch : {GnnArch::kSage, GnnArch::kGcn, GnnArch::kGat}) {
    Rng rng(12);
    GnnEncoderConfig config;
    config.arch = arch;
    config.in_dim = 2;
    config.hidden_dim = 8;
    config.out_dim = 4;
    config.num_layers = 2;
    GnnEncoder encoder(config, &rng);
    Tensor h = encoder.Forward(g.x, g.src, g.dst, Tensor());
    EXPECT_EQ(h.rows(), 3);
    EXPECT_EQ(h.cols(), 4);
  }
}

TEST(GnnEncoderTest, ArchNames) {
  EXPECT_STREQ(GnnArchName(GnnArch::kSage), "GraphSAGE");
  EXPECT_STREQ(GnnArchName(GnnArch::kGat), "GAT");
  EXPECT_STREQ(GnnArchName(GnnArch::kGcn), "GCN");
}

TEST(GnnEncoderTest, ReadoutAveragesCenters) {
  Rng rng(13);
  GnnEncoderConfig config;
  config.in_dim = 2;
  config.hidden_dim = 4;
  config.out_dim = 4;
  config.num_layers = 1;
  GnnEncoder encoder(config, &rng);
  TinyGraph g;
  Tensor h = encoder.Forward(g.x, g.src, g.dst, Tensor());
  Subgraph sg;
  sg.nodes = {10, 11, 12};
  sg.center_local = {0, 2};
  Tensor readout = encoder.Readout(sg, h);
  EXPECT_EQ(readout.rows(), 1);
  for (int c = 0; c < 4; ++c) {
    EXPECT_NEAR(readout.at(0, c), 0.5f * (h.at(0, c) + h.at(2, c)), 1e-5f);
  }
}

TEST(GnnEncoderTest, SingleLayerConfig) {
  Rng rng(14);
  GnnEncoderConfig config;
  config.in_dim = 2;
  config.out_dim = 3;
  config.num_layers = 1;
  GnnEncoder encoder(config, &rng);
  TinyGraph g;
  EXPECT_EQ(encoder.Forward(g.x, g.src, g.dst, Tensor()).cols(), 3);
}

}  // namespace
}  // namespace gp
