// Socket-mode concurrency test (runs under TSan via the `concurrency`
// ctest label): several tenants hammer the daemon from parallel client
// threads, one tenant under chaos, and the invariants are
//   - every request gets exactly one response (served or shed),
//   - the process survives torn frames and transient faults,
//   - degradation counters never bleed across tenants,
//   - SIGTERM-style drain finishes in-flight work and joins cleanly.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/graph_prompter.h"
#include "data/datasets.h"
#include "serve/byte_stream.h"
#include "serve/frame.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace gp {
namespace {

GraphPrompterConfig TinyConfig(int feature_dim) {
  GraphPrompterConfig config = FullGraphPrompterConfig(feature_dim, 7);
  config.embedding_dim = 16;
  config.recon_hidden = 16;
  config.selection_hidden = 16;
  config.sampler.max_nodes = 8;
  return config;
}

std::string TestSocketPath() {
  return "/tmp/gp_serve_conc_" + std::to_string(::getpid()) + ".sock";
}

int ConnectOrDie(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // The accept loop may still be coming up; retry briefly.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      return fd;
    }
    ::usleep(10000);
  }
  ADD_FAILURE() << "could not connect to " << path;
  return fd;
}

TEST(ServeConcurrencyTest, MultiTenantChaosSoakStaysIsolated) {
  DatasetBundle dataset = MakeArxivSim(0.25, 2);
  GraphPrompterModel model(TinyConfig(dataset.graph.feature_dim()));

  ServeConfig sc;
  sc.workers = 2;
  sc.queue_capacity = 8;
  sc.default_deadline_us = 30'000'000;
  PromptServer server(&model, &dataset, sc);

  const std::string path = TestSocketPath();
  std::thread server_thread([&server, &path] {
    const Status status = server.ServeUnixSocket(path);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });

  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 6;
  std::atomic<int> ok_responses{0};
  std::atomic<int> shed_responses{0};
  std::atomic<int> other_responses{0};

  std::vector<std::thread> clients;
  for (int t = 0; t < kTenants; ++t) {
    clients.emplace_back([&, t] {
      const std::string tenant = "tenant-" + std::to_string(t);
      // Tenant 3 runs chaotic: corrupted embeddings, transient request
      // failures, occasional torn frames sent mid-stream.
      const bool chaotic = t == kTenants - 1;
      FaultSpec torn_spec;
      torn_spec.serve_torn_prob = chaotic ? 0.3 : 0.0;
      torn_spec.seed = 100 + static_cast<uint64_t>(t);
      FaultInjector torn(torn_spec);

      int fd = ConnectOrDie(path);
      auto stream = std::make_unique<FdStream>(fd, /*owns_fd=*/true);
      for (int r = 0; r < kRequestsPerTenant; ++r) {
        EvalRequest req;
        req.tenant = tenant;
        req.request_id = static_cast<uint64_t>(t * 1000 + r);
        req.ways = 3;
        req.shots = 2;
        req.candidates_per_class = 4;
        req.num_queries = 6;
        req.query_batch = 3;
        req.trials = 1;
        req.seed = req.request_id + 1;
        if (chaotic) {
          req.fault_spec = "embed_nan=0.5,serve_fail=0.2,seed=21";
        }
        Frame frame;
        frame.type = FrameType::kEvalRequest;
        frame.payload = EncodeEvalRequest(req);
        const std::string wire = EncodeFrame(frame);

        const int64_t torn_bytes = torn.TornFrameBytes(wire.size());
        if (torn_bytes >= 0) {
          // Send a deliberately torn frame, abandon the connection, and
          // reconnect — the server must reject the tear and keep serving.
          (void)stream->Write(wire.data(),
                              static_cast<size_t>(torn_bytes));
          stream = std::make_unique<FdStream>(ConnectOrDie(path),
                                              /*owns_fd=*/true);
          --r;  // retry this request on the fresh connection
          continue;
        }
        ASSERT_TRUE(stream->Write(wire.data(), wire.size()).ok());
        auto reply = ReadFrame(stream.get());
        ASSERT_TRUE(reply.ok()) << reply.status().ToString();
        auto resp = DecodeEvalResponse(reply->payload);
        ASSERT_TRUE(resp.ok());
        EXPECT_EQ(resp->request_id, req.request_id);
        const auto code = static_cast<StatusCode>(resp->status_code);
        if (code == StatusCode::kOk) {
          ++ok_responses;
          if (!chaotic) {
            EXPECT_EQ(resp->degradation_events, 0u)
                << tenant << " request " << r << " observed degradation";
          }
        } else if (code == StatusCode::kUnavailable) {
          ++shed_responses;
        } else {
          ++other_responses;
          ADD_FAILURE() << tenant << " got unexpected status "
                        << resp->status_code << ": " << resp->message;
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  // Graceful drain: all in-flight work finishes, the server thread joins.
  server.RequestDrain();
  server_thread.join();

  // Every non-shed request was answered.
  EXPECT_GT(ok_responses.load(), 0);
  EXPECT_EQ(other_responses.load(), 0);

  // Isolation: only the chaos tenant may carry degradation events.
  bool saw_chaos_tenant = false;
  for (const auto& t : server.SnapshotTenants()) {
    if (t.name == "tenant-3") {
      saw_chaos_tenant = true;
    } else {
      EXPECT_EQ(t.degradation_events, 0)
          << t.name << " absorbed another tenant's degradation";
      EXPECT_EQ(t.breaker_trips, 0) << t.name;
    }
  }
  EXPECT_TRUE(saw_chaos_tenant);
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace gp
