#include "tensor/buffer_pool.h"

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace gp {
namespace {

TEST(BufferPoolTest, ReleasedBufferIsReusedForSameBucket) {
  std::vector<float> buf = AcquireBuffer(100);
  const float* raw = buf.data();
  ReleaseBuffer(std::move(buf));
  // 100 and 120 both land in the 128-float capacity class, so the second
  // acquire must reuse the parked allocation without reallocating.
  std::vector<float> again = AcquireBuffer(120);
  EXPECT_EQ(again.data(), raw);
  EXPECT_EQ(again.size(), 120u);
  ReleaseBuffer(std::move(again));
  DrainBufferPool();
}

TEST(BufferPoolTest, HitAndMissStatsAdvance) {
  DrainBufferPool();
  const BufferPoolStats before = PoolStatsSnapshot();
  std::vector<float> buf = AcquireBuffer(1000);  // empty pool: miss
  ReleaseBuffer(std::move(buf));
  std::vector<float> again = AcquireBuffer(1000);  // parked buffer: hit
  ReleaseBuffer(std::move(again));
  const BufferPoolStats after = PoolStatsSnapshot();
  EXPECT_GE(after.misses - before.misses, 1);
  EXPECT_GE(after.hits - before.hits, 1);
  EXPECT_GE(after.bytes_reused - before.bytes_reused,
            static_cast<int64_t>(1000 * sizeof(float)));
  DrainBufferPool();
}

TEST(BufferPoolTest, AcquireZeroedClearsRecycledContents) {
  std::vector<float> buf = AcquireBuffer(64);
  for (auto& v : buf) v = 42.0f;
  ReleaseBuffer(std::move(buf));
  std::vector<float> zeroed = AcquireZeroedBuffer(64);
  for (float v : zeroed) EXPECT_EQ(v, 0.0f);
  ReleaseBuffer(std::move(zeroed));
  DrainBufferPool();
}

TEST(BufferPoolTest, AdoptsForeignVectorsOnRelease) {
  // A buffer that never came from the pool (e.g. Tensor::FromData storage)
  // is adopted into the matching capacity class.
  std::vector<float> foreign(256, 1.0f);
  const float* raw = foreign.data();
  ReleaseBuffer(std::move(foreign));
  std::vector<float> reused = AcquireBuffer(200);
  EXPECT_EQ(reused.data(), raw);
  ReleaseBuffer(std::move(reused));
  DrainBufferPool();
}

TEST(BufferPoolTest, TinyAndZeroRequestsAreSafe) {
  std::vector<float> empty = AcquireBuffer(0);
  EXPECT_TRUE(empty.empty());
  ReleaseBuffer(std::move(empty));
  // Below the smallest capacity class the release frees instead of parking.
  std::vector<float> tiny(3, 1.0f);
  ReleaseBuffer(std::move(tiny));
  DrainBufferPool();
}

TEST(BufferPoolTest, CrossThreadReleaseIsServedToOtherThreads) {
  DrainBufferPool();
  const float* raw = nullptr;
  std::thread producer([&] {
    std::vector<float> buf = AcquireBuffer(512);
    raw = buf.data();
    ReleaseBuffer(std::move(buf));
    // Thread exit flushes its cache into the global lists.
  });
  producer.join();
  std::vector<float> reused = AcquireBuffer(512);
  EXPECT_EQ(reused.data(), raw);
  ReleaseBuffer(std::move(reused));
  DrainBufferPool();
}

TEST(BufferPoolTest, DrainEmptiesFreeLists) {
  DrainBufferPool();
  std::vector<float> a = AcquireBuffer(4096);
  std::vector<float> b = AcquireBuffer(4096);
  ReleaseBuffer(std::move(a));
  ReleaseBuffer(std::move(b));
  EXPECT_GT(PoolStatsSnapshot().free_bytes, 0);
  DrainBufferPool();
  EXPECT_EQ(PoolStatsSnapshot().free_bytes, 0);
}

TEST(BufferPoolTest, PoolScopeDrainsOnOutermostExit) {
  DrainBufferPool();
  {
    PoolScope outer;
    {
      PoolScope inner;
      std::vector<float> buf = AcquireBuffer(2048);
      ReleaseBuffer(std::move(buf));
    }
    // Inner exit is not outermost: parked buffers survive for reuse.
    EXPECT_GT(PoolStatsSnapshot().free_bytes, 0);
  }
  EXPECT_EQ(PoolStatsSnapshot().free_bytes, 0);
}

TEST(BufferPoolTest, LivePeakTracksAcquiredBytes) {
  DrainBufferPool();
  // Adopted-release tests can leave the internal live counter slightly
  // negative (snapshot clamps to zero); park one buffer first so the
  // counter is positive and the delta below is exact.
  std::vector<float> pad = AcquireBuffer(1 << 16);
  const BufferPoolStats before = PoolStatsSnapshot();
  {
    std::vector<float> big = AcquireBuffer(1 << 16);
    const BufferPoolStats during = PoolStatsSnapshot();
    // 1<<16 floats is an exact capacity class, so live bytes grow by
    // exactly that much, and the peak must cover the current live level.
    EXPECT_EQ(during.live_bytes - before.live_bytes,
              static_cast<int64_t>((1 << 16) * sizeof(float)));
    EXPECT_GE(during.live_peak_bytes, during.live_bytes);
    ReleaseBuffer(std::move(big));
  }
  ReleaseBuffer(std::move(pad));
  DrainBufferPool();
}

TEST(BufferPoolTest, DisablingPoolPreservesResultsBitwise) {
  // The pool recycles raw storage only; computed values must be identical
  // with pooling on and off.
  auto compute = [] {
    Rng rng(1234);
    Tensor a = Tensor::Randn(17, 23, &rng);
    Tensor b = Tensor::Randn(23, 9, &rng);
    Tensor c = Relu(MatMul(a, b));
    Tensor d = RowL2Normalize(Add(c, Tensor::Full(1, 1, 0.25f)));
    return d.data();
  };
  const std::vector<float> pooled = compute();
  SetBufferPoolEnabled(false);
  const std::vector<float> unpooled = compute();
  SetBufferPoolEnabled(true);
  ASSERT_EQ(pooled.size(), unpooled.size());
  for (size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i], unpooled[i]) << "index " << i;
  }
}

TEST(BufferPoolTest, TensorChurnRecyclesStorage) {
  // Repeated op graphs of the same shapes should settle into pure reuse:
  // after a warm-up round, further rounds allocate nothing new.
  DrainBufferPool();
  Rng rng(7);
  Tensor a = Tensor::Randn(32, 16, &rng);
  Tensor b = Tensor::Randn(16, 8, &rng);
  auto round = [&] { return SumAll(Sigmoid(MatMul(a, b))).item(); };
  const float first = round();
  const BufferPoolStats warm = PoolStatsSnapshot();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(round(), first);
  const BufferPoolStats after = PoolStatsSnapshot();
  EXPECT_EQ(after.misses, warm.misses);
  EXPECT_GT(after.hits, warm.hits);
  DrainBufferPool();
}

}  // namespace
}  // namespace gp
