// Concurrency test for the telemetry registry under the ParallelFor thread
// pool; carries the `concurrency` ctest label so it runs in the TSan build
// (see tests/CMakeLists.txt). Counter merges are integer sums, so totals
// must be exact no matter how iterations land on worker threads.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace gp {
namespace {

class TelemetryConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry().Reset();
    ClearTraceEvents();
    SetTracingEnabled(false);
  }
};

TEST_F(TelemetryConcurrencyTest, CounterSumIsExactUnderParallelFor) {
  constexpr int64_t kIters = 200000;
  Counter* c = Telemetry().GetCounter("conc/adds");
  ParallelFor(0, kIters, 256, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) c->Add(1);
  });
  EXPECT_EQ(c->Value(), kIters);
}

TEST_F(TelemetryConcurrencyTest, RegistrationRacesResolveToOneHandle) {
  // Many chunks resolving the same names concurrently must all get the
  // same handles; interleaved registration of fresh names must not lose
  // increments.
  constexpr int64_t kIters = 5000;
  ParallelFor(0, kIters, 64, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Telemetry().GetCounter("conc/shared")->Add(1);
      Telemetry().GetCounter("conc/name_" + std::to_string(i % 7))->Add(1);
    }
  });
  const TelemetrySnapshot snap = Telemetry().Snapshot();
  EXPECT_EQ(snap.CounterValue("conc/shared"), kIters);
  int64_t spread = 0;
  for (int k = 0; k < 7; ++k) {
    spread += snap.CounterValue("conc/name_" + std::to_string(k));
  }
  EXPECT_EQ(spread, kIters);
}

TEST_F(TelemetryConcurrencyTest, HistogramCountsAreExactUnderParallelFor) {
  constexpr int64_t kIters = 100000;
  Histogram* h = Telemetry().GetHistogram("conc/hist", {0.25, 0.5, 0.75});
  ParallelFor(0, kIters, 128, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      h->Observe(static_cast<double>(i % 4) / 4.0);  // 0, .25, .5, .75
    }
  });
  EXPECT_EQ(h->TotalCount(), kIters);
  const std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0] + counts[1] + counts[2] + counts[3], kIters);
  EXPECT_EQ(counts[3], 0);  // every value lands within the bounds
}

TEST_F(TelemetryConcurrencyTest, SpansFromWorkerThreadsAggregate) {
  SetTracingEnabled(true);
  constexpr int64_t kIters = 2000;
  ParallelFor(0, kIters, 50, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      GP_TRACE_SPAN("conc/span");
    }
  });
  SetTracingEnabled(false);
  EXPECT_EQ(
      Telemetry().Snapshot().CounterValue("span/conc/span/count"), kIters);
  // Events recorded from workers are collectible and well-formed (the
  // buffer is bounded, so some may have been dropped).
  const std::vector<TraceEvent> events = CollectTraceEvents();
  EXPECT_LE(static_cast<int64_t>(events.size()), kIters);
  EXPECT_EQ(static_cast<int64_t>(events.size()) + DroppedTraceEvents(),
            kIters);
  for (const TraceEvent& event : events) {
    EXPECT_STREQ(event.name, "conc/span");
    EXPECT_GE(event.dur_us, 0);
  }
  ClearTraceEvents();
}

TEST_F(TelemetryConcurrencyTest, SnapshotWhileWritersRun) {
  // Snapshots race benignly with writers: each observes some partial but
  // valid count in [0, total], and the post-region snapshot the exact
  // total.
  constexpr int64_t kIters = 50000;
  Counter* c = Telemetry().GetCounter("conc/racing");
  ParallelFor(0, kIters, 100, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      c->Add(1);
      if (i % 997 == 0) {
        const int64_t seen =
            Telemetry().Snapshot().CounterValue("conc/racing");
        EXPECT_GE(seen, 1);
        EXPECT_LE(seen, kIters);
      }
    }
  });
  EXPECT_EQ(Telemetry().Snapshot().CounterValue("conc/racing"), kIters);
}

}  // namespace
}  // namespace gp
