// The fused kernels promise bitwise equality with the unfused op chains
// they replace (DESIGN.md §9): identical per-element FP operations in an
// identical order, for both the forward values and the gradients. These
// tests hold them to exactly that — EXPECT_EQ on floats, no tolerances.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {
namespace {

void ExpectBitwiseEqual(const std::vector<float>& a,
                        const std::vector<float>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "index " << i;
  }
}

struct EdgeFixture {
  Tensor x;       // (5 x 3) node features, requires_grad
  Tensor w;       // (7 x 1) edge weights, requires_grad
  std::vector<int> src{0, 1, 2, 3, 4, 0, 2};
  std::vector<int> dst{1, 0, 1, 4, 3, 2, 2};

  EdgeFixture() {
    Rng rng(99);
    x = Tensor::Randn(5, 3, &rng, 1.0f, /*requires_grad=*/true);
    w = Tensor::Randn(7, 1, &rng, 1.0f, /*requires_grad=*/true);
  }
};

TEST(FusedOpsTest, GatherScaleScatterSumMatchesUnfusedForward) {
  EdgeFixture f;
  NoGradGuard no_grad;
  Tensor unfused =
      ScatterAddRows(RowScale(GatherRows(f.x, f.src), f.w), f.dst, 5);
  Tensor fused = GatherScaleScatterSum(f.x, f.src, f.dst, 5, f.w);
  ExpectBitwiseEqual(fused.data(), unfused.data());
}

TEST(FusedOpsTest, GatherScaleScatterSumUnweightedMatchesForward) {
  EdgeFixture f;
  NoGradGuard no_grad;
  Tensor unfused = ScatterAddRows(GatherRows(f.x, f.src), f.dst, 5);
  Tensor fused = GatherScaleScatterSum(f.x, f.src, f.dst, 5, Tensor());
  ExpectBitwiseEqual(fused.data(), unfused.data());
}

TEST(FusedOpsTest, GatherScaleScatterSumMatchesUnfusedGradients) {
  EdgeFixture f;
  {
    Tensor out =
        ScatterAddRows(RowScale(GatherRows(f.x, f.src), f.w), f.dst, 5);
    Backward(SumAll(Mul(out, out)));
  }
  const std::vector<float> dx_ref = f.x.grad();
  const std::vector<float> dw_ref = f.w.grad();

  EdgeFixture g;
  {
    Tensor out = GatherScaleScatterSum(g.x, g.src, g.dst, 5, g.w);
    Backward(SumAll(Mul(out, out)));
  }
  ExpectBitwiseEqual(g.x.grad(), dx_ref);
  ExpectBitwiseEqual(g.w.grad(), dw_ref);
}

TEST(FusedOpsTest, GatherScaleScatterMeanMatchesUnfusedForward) {
  EdgeFixture f;
  NoGradGuard no_grad;
  Tensor sums =
      ScatterAddRows(RowScale(GatherRows(f.x, f.src), f.w), f.dst, 5);
  Tensor wsum = ScatterAddRows(f.w, f.dst, 5);
  Tensor unfused = Div(sums, AddScalar(wsum, 1e-6f));
  Tensor fused = GatherScaleScatterMean(f.x, f.src, f.dst, 5, f.w, 1e-6f);
  ExpectBitwiseEqual(fused.data(), unfused.data());
}

TEST(FusedOpsTest, GatherScaleScatterMeanUnweightedMatchesForward) {
  EdgeFixture f;
  NoGradGuard no_grad;
  Tensor sums = ScatterAddRows(GatherRows(f.x, f.src), f.dst, 5);
  Tensor ones = Tensor::Full(static_cast<int>(f.src.size()), 1, 1.0f);
  Tensor wsum = ScatterAddRows(ones, f.dst, 5);
  Tensor unfused = Div(sums, AddScalar(wsum, 1e-6f));
  Tensor fused =
      GatherScaleScatterMean(f.x, f.src, f.dst, 5, Tensor(), 1e-6f);
  ExpectBitwiseEqual(fused.data(), unfused.data());
}

TEST(FusedOpsTest, GatherScaleScatterMeanMatchesUnfusedGradients) {
  EdgeFixture f;
  {
    Tensor sums =
        ScatterAddRows(RowScale(GatherRows(f.x, f.src), f.w), f.dst, 5);
    Tensor wsum = ScatterAddRows(f.w, f.dst, 5);
    Tensor out = Div(sums, AddScalar(wsum, 1e-6f));
    Backward(SumAll(Mul(out, out)));
  }
  const std::vector<float> dx_ref = f.x.grad();
  const std::vector<float> dw_ref = f.w.grad();

  EdgeFixture g;
  {
    Tensor out = GatherScaleScatterMean(g.x, g.src, g.dst, 5, g.w, 1e-6f);
    Backward(SumAll(Mul(out, out)));
  }
  ExpectBitwiseEqual(g.x.grad(), dx_ref);
  ExpectBitwiseEqual(g.w.grad(), dw_ref);
}

TEST(FusedOpsTest, RowScaleScatterAddMatchesUnfused) {
  Rng rng(5);
  std::vector<int> dst{2, 0, 1, 1, 3, 2};
  Tensor rows_a = Tensor::Randn(6, 4, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w_a = Tensor::Randn(6, 1, &rng, 1.0f, /*requires_grad=*/true);
  {
    Tensor out = ScatterAddRows(RowScale(rows_a, w_a), dst, 4);
    Backward(SumAll(Mul(out, out)));
  }

  Tensor rows_b = rows_a.Clone();
  Tensor w_b = w_a.Clone();
  Tensor fused_fwd;
  {
    Tensor out = RowScaleScatterAdd(rows_b, w_b, dst, 4);
    fused_fwd = out.Detach();
    Backward(SumAll(Mul(out, out)));
  }
  {
    NoGradGuard no_grad;
    Tensor unfused_fwd = ScatterAddRows(RowScale(rows_a, w_a), dst, 4);
    ExpectBitwiseEqual(fused_fwd.data(), unfused_fwd.data());
  }
  ExpectBitwiseEqual(rows_b.grad(), rows_a.grad());
  ExpectBitwiseEqual(w_b.grad(), w_a.grad());
}

TEST(FusedOpsTest, LinearReluMatchesUnfusedForwardAndGradients) {
  Rng rng(11);
  Tensor x_a = Tensor::Randn(9, 6, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w_a = Tensor::Randn(6, 5, &rng, 1.0f, /*requires_grad=*/true);
  Tensor b_a = Tensor::Randn(1, 5, &rng, 1.0f, /*requires_grad=*/true);
  Tensor x_b = x_a.Clone();
  Tensor w_b = w_a.Clone();
  Tensor b_b = b_a.Clone();

  Tensor ref_fwd;
  {
    Tensor out = Relu(Add(MatMul(x_a, w_a), b_a));
    ref_fwd = out.Detach();
    Backward(SumAll(Mul(out, out)));
  }
  {
    Tensor out = LinearRelu(x_b, w_b, b_b);
    ExpectBitwiseEqual(out.data(), ref_fwd.data());
    Backward(SumAll(Mul(out, out)));
  }
  ExpectBitwiseEqual(x_b.grad(), x_a.grad());
  ExpectBitwiseEqual(w_b.grad(), w_a.grad());
  ExpectBitwiseEqual(b_b.grad(), b_a.grad());
}

TEST(FusedOpsTest, LinearReluWithoutBiasMatches) {
  Rng rng(13);
  Tensor x_a = Tensor::Randn(4, 3, &rng, 1.0f, /*requires_grad=*/true);
  Tensor w_a = Tensor::Randn(3, 2, &rng, 1.0f, /*requires_grad=*/true);
  Tensor x_b = x_a.Clone();
  Tensor w_b = w_a.Clone();

  Tensor ref_fwd;
  {
    Tensor out = Relu(MatMul(x_a, w_a));
    ref_fwd = out.Detach();
    Backward(SumAll(out));
  }
  {
    Tensor out = LinearRelu(x_b, w_b, Tensor());
    ExpectBitwiseEqual(out.data(), ref_fwd.data());
    Backward(SumAll(out));
  }
  ExpectBitwiseEqual(x_b.grad(), x_a.grad());
  ExpectBitwiseEqual(w_b.grad(), w_a.grad());
}

TEST(FusedOpsTest, AddScalarDivMatchesUnfusedAllBroadcastModes) {
  Rng rng(17);
  struct Case {
    int brows, bcols;
  };
  for (const Case& c : {Case{6, 4}, Case{1, 4}, Case{6, 1}, Case{1, 1}}) {
    Tensor a_a = Tensor::Randn(6, 4, &rng, 1.0f, /*requires_grad=*/true);
    Tensor b_a = Tensor::Full(c.brows, c.bcols, 0.0f, /*requires_grad=*/true);
    for (auto& v : b_a.mutable_data()) v = rng.UniformFloat() + 0.5f;
    Tensor a_b = a_a.Clone();
    Tensor b_b = b_a.Clone();

    Tensor ref_fwd;
    {
      Tensor out = Div(a_a, AddScalar(b_a, 0.75f));
      ref_fwd = out.Detach();
      Backward(SumAll(Mul(out, out)));
    }
    {
      Tensor out = AddScalarDiv(a_b, b_b, 0.75f);
      ExpectBitwiseEqual(out.data(), ref_fwd.data());
      Backward(SumAll(Mul(out, out)));
    }
    ExpectBitwiseEqual(a_b.grad(), a_a.grad());
    ExpectBitwiseEqual(b_b.grad(), b_a.grad());
  }
}

TEST(FusedOpsTest, GemmAccumulateSkipTogglesAgreeOnDenseInputs) {
  Rng rng(23);
  const int rows = 12, inner = 17, cols = 33;
  Tensor a = Tensor::Randn(rows, inner, &rng);
  Tensor b = Tensor::Randn(inner, cols, &rng);
  std::vector<float> with_skip(static_cast<size_t>(rows) * cols, 0.0f);
  std::vector<float> without(static_cast<size_t>(rows) * cols, 0.0f);
  internal::GemmAccumulate(a.data().data(), b.data().data(), with_skip.data(),
                           rows, inner, cols, /*skip_zeros=*/true);
  internal::GemmAccumulate(a.data().data(), b.data().data(), without.data(),
                           rows, inner, cols, /*skip_zeros=*/false);
  // Dense (no exact zeros with probability 1): both paths perform the same
  // additions, so the results are bitwise equal — and match MatMul.
  ExpectBitwiseEqual(with_skip, without);
  NoGradGuard no_grad;
  ExpectBitwiseEqual(with_skip, MatMul(a, b).data());
}

TEST(FusedOpsTest, GemmAccumulateHandlesOneHotRows) {
  // One-hot lhs selects rows of b exactly; the skip path must produce the
  // identical selection.
  const int classes = 7, cols = 5;
  Rng rng(29);
  Tensor b = Tensor::Randn(classes, cols, &rng);
  std::vector<int> labels{3, 0, 6, 3};
  Tensor onehot = Tensor::OneHot(labels, classes);
  std::vector<float> out(labels.size() * cols, 0.0f);
  internal::GemmAccumulate(onehot.data().data(), b.data().data(), out.data(),
                           static_cast<int>(labels.size()), classes, cols,
                           /*skip_zeros=*/true);
  for (size_t r = 0; r < labels.size(); ++r) {
    for (int c = 0; c < cols; ++c) {
      EXPECT_EQ(out[r * cols + c], b.at(labels[r], c));
    }
  }
}

TEST(FusedOpsTest, CachedOnesColumnSharesStorageAndIsAllOnes) {
  Tensor a = CachedOnesColumn(40);
  EXPECT_EQ(a.rows(), 40);
  EXPECT_EQ(a.cols(), 1);
  for (float v : a.data()) EXPECT_EQ(v, 1.0f);
  Tensor b = CachedOnesColumn(40);
  EXPECT_EQ(a.raw(), b.raw());  // same cached impl, no new allocation
  Tensor c = CachedOnesColumn(8);
  EXPECT_EQ(c.rows(), 8);
  EXPECT_NE(c.raw(), a.raw());
  for (float v : c.data()) EXPECT_EQ(v, 1.0f);
}

}  // namespace
}  // namespace gp
