#include "core/cache_policy.h"

#include <set>

#include "core/prompt_augmenter.h"
#include "util/rng.h"

#include <gtest/gtest.h>

namespace gp {
namespace {

CacheEntry Entry(int label) {
  CacheEntry e;
  e.embedding = {static_cast<float>(label)};
  e.pseudo_label = label;
  return e;
}

TEST(CachePolicyTest, Names) {
  EXPECT_STREQ(CachePolicyName(CachePolicy::kLfu), "LFU");
  EXPECT_STREQ(CachePolicyName(CachePolicy::kLru), "LRU");
  EXPECT_STREQ(CachePolicyName(CachePolicy::kFifo), "FIFO");
}

TEST(CachePolicyTest, FactoryCreatesEachPolicy) {
  for (CachePolicy policy :
       {CachePolicy::kLfu, CachePolicy::kLru, CachePolicy::kFifo}) {
    auto cache = MakeCache(policy, 2);
    ASSERT_NE(cache, nullptr);
    EXPECT_EQ(cache->capacity(), 2);
    EXPECT_TRUE(cache->empty());
    cache->Insert(Entry(1));
    EXPECT_EQ(cache->size(), 1);
  }
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  const int64_t b = cache.Insert(Entry(2));
  // Touch a -> b becomes least recently used.
  EXPECT_TRUE(cache.Touch(a));
  cache.Insert(Entry(3));
  std::set<int> labels;
  for (const auto& [id, entry] : cache.Entries()) {
    labels.insert(entry->pseudo_label);
  }
  EXPECT_TRUE(labels.count(1));
  EXPECT_FALSE(labels.count(2));
  EXPECT_TRUE(labels.count(3));
  EXPECT_FALSE(cache.Touch(b));
}

TEST(LruCacheTest, InsertionOrderWithoutTouches) {
  LruCache cache(2);
  cache.Insert(Entry(1));
  cache.Insert(Entry(2));
  cache.Insert(Entry(3));  // evicts 1
  std::set<int> labels;
  for (const auto& [id, entry] : cache.Entries()) {
    labels.insert(entry->pseudo_label);
  }
  EXPECT_EQ(labels, (std::set<int>{2, 3}));
}

TEST(LruCacheTest, ZeroCapacity) {
  LruCache cache(0);
  EXPECT_EQ(cache.Insert(Entry(1)), -1);
  EXPECT_TRUE(cache.empty());
}

TEST(LruCacheTest, ClearEmpties) {
  LruCache cache(3);
  cache.Insert(Entry(1));
  cache.Clear();
  EXPECT_TRUE(cache.empty());
}

TEST(FifoCacheTest, TouchDoesNotAffectEviction) {
  FifoCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  cache.Insert(Entry(2));
  // Touch the oldest repeatedly; FIFO still evicts it first.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(cache.Touch(a));
  cache.Insert(Entry(3));
  std::set<int> labels;
  for (const auto& [id, entry] : cache.Entries()) {
    labels.insert(entry->pseudo_label);
  }
  EXPECT_EQ(labels, (std::set<int>{2, 3}));
}

TEST(FifoCacheTest, TouchUnknownReturnsFalse) {
  FifoCache cache(2);
  EXPECT_FALSE(cache.Touch(99));
}

TEST(FifoCacheTest, CapacityInvariant) {
  FifoCache cache(3);
  for (int i = 0; i < 20; ++i) {
    cache.Insert(Entry(i));
    EXPECT_LE(cache.size(), 3);
  }
}

TEST(LfuAdapterTest, DelegatesToLfu) {
  LfuReplacementCache cache(2);
  const int64_t a = cache.Insert(Entry(1));
  cache.Insert(Entry(2));
  cache.Touch(a);
  cache.Insert(Entry(3));  // LFU evicts entry 2
  std::set<int> labels;
  for (const auto& [id, entry] : cache.Entries()) {
    labels.insert(entry->pseudo_label);
  }
  EXPECT_EQ(labels, (std::set<int>{1, 3}));
}

// Property sweep: every policy keeps size <= capacity and ids unique.
class PolicyInvariantTest : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(PolicyInvariantTest, SizeAndIdInvariants) {
  auto cache = MakeCache(GetParam(), 4);
  std::set<int64_t> ids;
  Rng rng(3);
  for (int i = 0; i < 60; ++i) {
    const int64_t id = cache->Insert(Entry(i));
    EXPECT_TRUE(ids.insert(id).second) << "duplicate id";
    EXPECT_LE(cache->size(), 4);
    if (i % 3 == 0 && !cache->Entries().empty()) {
      const auto entries = cache->Entries();
      cache->Touch(entries[rng.UniformInt(entries.size())].first);
    }
  }
  cache->Clear();
  EXPECT_TRUE(cache->empty());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyInvariantTest,
                         ::testing::Values(CachePolicy::kLfu,
                                           CachePolicy::kLru,
                                           CachePolicy::kFifo));

TEST(AugmenterPolicyTest, AugmenterRunsWithEveryPolicy) {
  for (CachePolicy policy :
       {CachePolicy::kLfu, CachePolicy::kLru, CachePolicy::kFifo}) {
    PromptAugmenterConfig config;
    config.policy = policy;
    config.min_confidence = 0.0f;
    PromptAugmenter augmenter(config, 5);
    Tensor batch = Tensor::FromData(2, 2, {1, 0, 0, 1});
    augmenter.ObserveQueries(batch, {0, 1}, {0.9f, 0.8f}, 2);
    EXPECT_EQ(augmenter.cache().size(), 2);
    const auto cached = augmenter.GetCachedPrompts(2);
    EXPECT_EQ(cached.embeddings.rows(), 2);
  }
}

}  // namespace
}  // namespace gp
