#include "core/knn_retrieval.h"

#include <gtest/gtest.h>

namespace gp {
namespace {

// Candidates: 2 classes x 3 candidates in 2-D. Class 0 near (1,0), class 1
// near (0,1); one candidate per class is an outlier.
struct Fixture {
  Tensor prompts = Tensor::FromData(6, 2,
                                    {
                                        1.0f, 0.0f,    // 0: class 0, good
                                        0.9f, 0.1f,    // 1: class 0, good
                                        -1.0f, 0.0f,   // 2: class 0, outlier
                                        0.0f, 1.0f,    // 3: class 1, good
                                        0.1f, 0.9f,    // 4: class 1, good
                                        0.0f, -1.0f,   // 5: class 1, outlier
                                    });
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  Tensor queries = Tensor::FromData(2, 2, {1.0f, 0.1f, 0.1f, 1.0f});
};

TEST(KnnRetrievalTest, SelectsKPerClass) {
  Fixture f;
  KnnConfig config;
  config.shots = 2;
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  ASSERT_EQ(sel.selected.size(), 4u);
  int class0 = 0, class1 = 0;
  for (int p : sel.selected) {
    if (f.labels[p] == 0) ++class0;
    if (f.labels[p] == 1) ++class1;
  }
  EXPECT_EQ(class0, 2);
  EXPECT_EQ(class1, 2);
}

TEST(KnnRetrievalTest, OutliersAreFilteredBySimilarity) {
  Fixture f;
  KnnConfig config;
  config.shots = 2;
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  for (int p : sel.selected) {
    EXPECT_NE(p, 2);  // class-0 outlier rejected
    EXPECT_NE(p, 5);  // class-1 outlier rejected
  }
}

TEST(KnnRetrievalTest, VotesAreNonNegativeForTopPrompts) {
  Fixture f;
  KnnConfig config;
  config.shots = 1;
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  for (int p : sel.selected) {
    EXPECT_GT(sel.votes[p], 0.0);
  }
}

TEST(KnnRetrievalTest, ImportanceTermBreaksTies) {
  // Two identical candidates per class; importance decides.
  Tensor prompts = Tensor::FromData(4, 2, {1, 0, 1, 0, 0, 1, 0, 1});
  std::vector<int> labels = {0, 0, 1, 1};
  Tensor queries = Tensor::FromData(1, 2, {1.0f, 1.0f});
  Tensor prompt_importance = Tensor::FromData(4, 1, {0.1f, 0.9f, 0.9f, 0.1f});
  Tensor query_importance = Tensor::FromData(1, 1, {1.0f});
  KnnConfig config;
  config.shots = 1;
  const auto sel = SelectPrompts(prompts, prompt_importance, labels, queries,
                                 query_importance, 2, config);
  ASSERT_EQ(sel.selected.size(), 2u);
  EXPECT_EQ(sel.selected[0], 1);  // higher-importance class-0 candidate
  EXPECT_EQ(sel.selected[1], 2);  // higher-importance class-1 candidate
}

TEST(KnnRetrievalTest, SimilarityOnlyWhenImportanceDisabled) {
  Fixture f;
  KnnConfig config;
  config.shots = 1;
  config.use_importance = false;
  // Importance tensors deliberately undefined.
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  EXPECT_EQ(sel.selected.size(), 2u);
}

TEST(KnnRetrievalTest, BothTermsDisabledFallsBackDeterministically) {
  Fixture f;
  KnnConfig config;
  config.shots = 2;
  config.use_similarity = false;
  config.use_importance = false;
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  // Stable order: first candidates of each class.
  EXPECT_EQ(sel.selected, (std::vector<int>{0, 1, 3, 4}));
}

TEST(KnnRetrievalTest, FewerCandidatesThanShots) {
  Tensor prompts = Tensor::FromData(2, 2, {1, 0, 0, 1});
  std::vector<int> labels = {0, 1};
  Tensor queries = Tensor::FromData(1, 2, {1.0f, 0.0f});
  KnnConfig config;
  config.shots = 5;
  const auto sel = SelectPrompts(prompts, Tensor(), labels, queries,
                                 Tensor(), 2, config);
  EXPECT_EQ(sel.selected.size(), 2u);  // everything available
}

TEST(KnnRetrievalTest, MetricNames) {
  EXPECT_STREQ(DistanceMetricName(DistanceMetric::kCosine), "cosine");
  EXPECT_STREQ(DistanceMetricName(DistanceMetric::kEuclidean), "euclidean");
  EXPECT_STREQ(DistanceMetricName(DistanceMetric::kManhattan), "manhattan");
}

// All three metrics must agree on the clear-cut outlier fixture (the paper
// notes the metric is substitutable).
class KnnMetricTest : public ::testing::TestWithParam<DistanceMetric> {};

TEST_P(KnnMetricTest, OutlierFilteredUnderAnyMetric) {
  Fixture f;
  KnnConfig config;
  config.shots = 2;
  config.metric = GetParam();
  const auto sel = SelectPrompts(f.prompts, Tensor(), f.labels, f.queries,
                                 Tensor(), 2, config);
  for (int p : sel.selected) {
    EXPECT_NE(p, 2);
    EXPECT_NE(p, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, KnnMetricTest,
                         ::testing::Values(DistanceMetric::kCosine,
                                           DistanceMetric::kEuclidean,
                                           DistanceMetric::kManhattan));

TEST(EmbeddingSimilarityTest, CosineOfIdenticalRows) {
  Tensor a = Tensor::FromData(1, 3, {1, 2, 3});
  EXPECT_NEAR(EmbeddingSimilarity(a, 0, a, 0, DistanceMetric::kCosine), 1.0f,
              1e-5f);
  EXPECT_NEAR(EmbeddingSimilarity(a, 0, a, 0, DistanceMetric::kEuclidean),
              0.0f, 1e-5f);
}

}  // namespace
}  // namespace gp
