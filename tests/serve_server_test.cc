// Serving-daemon behaviour tests, all on deterministic in-memory streams:
// pipe-mode replay equivalence against direct EvaluateInContext, deadline
// discipline, retry/breaker behaviour, and per-tenant isolation.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/graph_prompter.h"
#include "data/datasets.h"
#include "serve/byte_stream.h"
#include "serve/frame.h"
#include "serve/protocol.h"

namespace gp {
namespace {

GraphPrompterConfig TinyConfig(int feature_dim) {
  GraphPrompterConfig config = FullGraphPrompterConfig(feature_dim, 7);
  config.embedding_dim = 16;
  config.recon_hidden = 16;
  config.selection_hidden = 16;
  config.sampler.max_nodes = 8;
  return config;
}

EvalRequest TinyRequest(const std::string& tenant, uint64_t id) {
  EvalRequest req;
  req.tenant = tenant;
  req.request_id = id;
  req.deadline_us = 30'000'000;  // generous: these tests assert logic, not speed
  req.ways = 3;
  req.shots = 2;
  req.candidates_per_class = 4;
  req.num_queries = 6;
  req.query_batch = 3;
  req.trials = 1;
  req.seed = 1000 + id;
  return req;
}

class ServeServerTest : public ::testing::Test {
 protected:
  ServeServerTest()
      : dataset_(MakeArxivSim(0.25, 2)),
        model_(TinyConfig(dataset_.graph.feature_dim())) {}

  DatasetBundle dataset_;
  GraphPrompterModel model_;
};

// The acceptance bar for pipe mode: a request log replayed through the
// daemon produces results bitwise identical to calling EvaluateInContext
// directly with the same parameters.
TEST_F(ServeServerTest, PipeModeMatchesBatchEvaluation) {
  ServeConfig sc;
  // Per-request augmenters, exactly like batch evaluation constructs them.
  sc.persist_tenant_cache = false;
  PromptServer server(&model_, &dataset_, sc);

  std::vector<EvalRequest> requests;
  for (uint64_t id = 1; id <= 3; ++id) {
    requests.push_back(TinyRequest("replay", id));
  }
  std::string wire;
  for (const EvalRequest& req : requests) {
    Frame f;
    f.type = FrameType::kEvalRequest;
    f.payload = EncodeEvalRequest(req);
    wire += EncodeFrame(f);
  }
  Frame shutdown;
  shutdown.type = FrameType::kShutdown;
  wire += EncodeFrame(shutdown);

  StringByteStream in(wire);
  StringByteStream out;
  ASSERT_TRUE(server.ServePipe(&in, &out).ok());

  StringByteStream replies(out.output());
  for (const EvalRequest& req : requests) {
    auto frame = ReadFrame(&replies);
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, FrameType::kEvalResponse);
    auto resp = DecodeEvalResponse(frame->payload);
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->request_id, req.request_id);
    ASSERT_EQ(resp->status_code, static_cast<int32_t>(StatusCode::kOk));

    EvalConfig ec;
    ec.ways = req.ways;
    ec.shots = req.shots;
    ec.candidates_per_class = req.candidates_per_class;
    ec.num_queries = req.num_queries;
    ec.query_batch = req.query_batch;
    ec.trials = req.trials;
    ec.seed = req.seed;
    const EvalResult direct = EvaluateInContext(model_, dataset_, ec);
    // Bitwise equality, not near-equality: the serving path adds deadline
    // checks and response plumbing but must not perturb the computation.
    EXPECT_EQ(resp->accuracy_mean, direct.accuracy_percent.mean);
    EXPECT_EQ(resp->accuracy_std, direct.accuracy_percent.std);
    EXPECT_EQ(resp->degradation_events,
              static_cast<uint64_t>(direct.degradation.TotalEvents()));
  }
  // Nothing after the last response.
  EXPECT_EQ(ReadFrame(&replies).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ServeServerTest, PipeModeTornFrameEndsSessionWithTypedError) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  Frame f;
  f.type = FrameType::kEvalRequest;
  f.payload = EncodeEvalRequest(TinyRequest("torn", 1));
  const std::string wire = EncodeFrame(f);
  StringByteStream in(wire.substr(0, wire.size() / 2));
  StringByteStream out;
  const Status status = server.ServePipe(&in, &out);
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(out.output().empty());
}

TEST_F(ServeServerTest, PipeModeAnswersMalformedRequestInBand) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  // First frame: valid framing, garbage payload. Second: a real request.
  Frame bad;
  bad.type = FrameType::kEvalRequest;
  bad.payload = "definitely not a request";
  Frame good;
  good.type = FrameType::kEvalRequest;
  good.payload = EncodeEvalRequest(TinyRequest("mixed", 2));
  std::string wire = EncodeFrame(bad) + EncodeFrame(good);
  Frame shutdown;
  shutdown.type = FrameType::kShutdown;
  wire += EncodeFrame(shutdown);

  StringByteStream in(wire);
  StringByteStream out;
  ASSERT_TRUE(server.ServePipe(&in, &out).ok());

  StringByteStream replies(out.output());
  auto first = ReadFrame(&replies);
  ASSERT_TRUE(first.ok());
  auto first_resp = DecodeEvalResponse(first->payload);
  ASSERT_TRUE(first_resp.ok());
  EXPECT_NE(first_resp->status_code, static_cast<int32_t>(StatusCode::kOk));
  auto second = ReadFrame(&replies);
  ASSERT_TRUE(second.ok());
  auto second_resp = DecodeEvalResponse(second->payload);
  ASSERT_TRUE(second_resp.ok());
  EXPECT_EQ(second_resp->status_code, static_cast<int32_t>(StatusCode::kOk));
  EXPECT_EQ(second_resp->request_id, 2u);
}

TEST_F(ServeServerTest, ImpossibleDeadlineIsDeadlineExceeded) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  EvalRequest req = TinyRequest("hurried", 5);
  req.deadline_us = 1;  // nothing real completes in a microsecond
  const EvalResponse resp = server.Handle(req);
  EXPECT_EQ(resp.status_code,
            static_cast<int32_t>(StatusCode::kDeadlineExceeded));
}

TEST_F(ServeServerTest, WaysBeyondDatasetRejected) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  EvalRequest req = TinyRequest("greedy", 6);
  req.ways = dataset_.num_classes + 1;
  const EvalResponse resp = server.Handle(req);
  EXPECT_EQ(resp.status_code,
            static_cast<int32_t>(StatusCode::kInvalidArgument));
}

TEST_F(ServeServerTest, MalformedFaultSpecRejectedPerRequest) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  EvalRequest req = TinyRequest("chaotic", 7);
  req.fault_spec = "no_such_fault=1";
  const EvalResponse resp = server.Handle(req);
  EXPECT_EQ(resp.status_code,
            static_cast<int32_t>(StatusCode::kInvalidArgument));
}

TEST_F(ServeServerTest, TransientFaultsRetryThenExhaust) {
  ServeConfig sc;
  sc.max_retries = 2;
  sc.retry_backoff_us = 10;
  PromptServer server(&model_, &dataset_, sc);

  // serve_fail=1: every attempt fails, so each request burns all retries
  // and comes back kUnavailable with the retry count reported.
  EvalRequest req = TinyRequest("flaky", 8);
  req.fault_spec = "serve_fail=1,seed=4";
  const EvalResponse resp = server.Handle(req);
  EXPECT_EQ(resp.status_code, static_cast<int32_t>(StatusCode::kUnavailable));
  EXPECT_EQ(resp.retries, 2u);
}

TEST_F(ServeServerTest, BreakerTripsIntoSafeModeAndRecovers) {
  ServeConfig sc;
  sc.breaker.trip_threshold = 2;
  sc.breaker.cooldown_requests = 2;
  PromptServer server(&model_, &dataset_, sc);

  // Heavy embedding corruption: every request degrades (quarantine events).
  for (uint64_t id = 1; id <= 2; ++id) {
    EvalRequest req = TinyRequest("victim", id);
    req.fault_spec = "embed_nan=0.9,seed=6";
    const EvalResponse resp = server.Handle(req);
    EXPECT_GT(resp.degradation_events, 0u) << "request " << id;
  }
  auto tenants = server.SnapshotTenants();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].breaker_trips, 1);
  EXPECT_EQ(tenants[0].breaker_state, BreakerState::kOpen);

  // Faults cleared: cooldown requests run in safe mode, then the half-open
  // probe comes back clean and the breaker closes.
  for (uint64_t id = 3; id <= 6; ++id) {
    EvalRequest req = TinyRequest("victim", id);
    const EvalResponse resp = server.Handle(req);
    EXPECT_EQ(resp.status_code, static_cast<int32_t>(StatusCode::kOk));
  }
  tenants = server.SnapshotTenants();
  ASSERT_EQ(tenants.size(), 1u);
  EXPECT_EQ(tenants[0].breaker_state, BreakerState::kClosed);
  EXPECT_GE(tenants[0].safe_mode_requests, 2);
}

TEST_F(ServeServerTest, ChaosTenantNeverBleedsIntoCleanTenants) {
  PromptServer server(&model_, &dataset_, ServeConfig());
  // Interleave a heavily faulted tenant with two clean ones.
  for (uint64_t round = 1; round <= 4; ++round) {
    EvalRequest chaos = TinyRequest("chaos", round * 10);
    chaos.fault_spec = "embed_nan=0.8,cache_poison=0.8,seed=9";
    server.Handle(chaos);
    for (const char* tenant : {"clean-a", "clean-b"}) {
      const EvalResponse resp =
          server.Handle(TinyRequest(tenant, round * 10 + 1));
      EXPECT_EQ(resp.status_code, static_cast<int32_t>(StatusCode::kOk));
      EXPECT_EQ(resp.degradation_events, 0u)
          << tenant << " degraded in round " << round;
    }
  }
  int64_t chaos_events = 0;
  for (const auto& t : server.SnapshotTenants()) {
    if (t.name == "chaos") {
      chaos_events = t.degradation_events;
    } else {
      EXPECT_EQ(t.degradation_events, 0)
          << t.name << " absorbed another tenant's faults";
    }
  }
  EXPECT_GT(chaos_events, 0);
}

}  // namespace
}  // namespace gp
