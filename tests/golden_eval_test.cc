// Golden regression tests for the retrieval/scoring pipeline.
//
// Pins (a) the quickstart-style in-context trial accuracies and (b) the
// prompt selector's top-k selections, vote totals, and hit counts for
// fixed seeds into tests/golden/. Values are rendered with %.17g, so any
// change to retrieval or scoring that shifts predictions by even one ULP
// fails loudly. The golden files were generated from the pre-index
// brute-force pipeline; the default (auto) index configuration and
// --index=exact must keep matching them bitwise.
//
// Regenerate (after an *intentional* numeric change, reviewed in the PR):
//   scripts/update_golden.sh

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/graph_prompter.h"
#include "core/knn_retrieval.h"
#ifndef GP_GOLDEN_SEED_BOOTSTRAP
#include "core/prompt_index.h"
#endif
#include "data/datasets.h"
#include "util/rng.h"

#ifndef GP_GOLDEN_DIR
#error "GP_GOLDEN_DIR must point at tests/golden (set by tests/CMakeLists.txt)"
#endif

namespace gp {
namespace {

std::string Fmt(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// ---- renderers: each produces the exact text pinned in tests/golden/.

// Quickstart-shaped evaluation: deterministically initialised model (no
// pretraining, so the test stays fast), synthetic downstream graph, three
// trials. Pins per-trial accuracy plus the mean/std.
std::string RenderEvalGolden() {
  DatasetBundle downstream = MakeArxivSim(0.4, 21);
  GraphPrompterConfig config =
      FullGraphPrompterConfig(downstream.graph.feature_dim(), 7);
  GraphPrompterModel model(config);

  EvalConfig eval;
  eval.ways = 5;
  eval.shots = 3;
  eval.candidates_per_class = 10;
  eval.num_queries = 40;
  eval.trials = 3;
  eval.seed = 99;
  const EvalResult result = EvaluateInContext(model, downstream, eval);

  std::ostringstream out;
  out << "dataset " << downstream.name << "\n";
  for (size_t t = 0; t < result.trial_accuracy_percent.size(); ++t) {
    out << "trial " << t << " accuracy_percent "
        << Fmt(result.trial_accuracy_percent[t]) << "\n";
  }
  out << "mean " << Fmt(result.accuracy_percent.mean) << "\n";
  out << "std " << Fmt(result.accuracy_percent.std) << "\n";
  return out.str();
}

// Raw selector outputs on fixed random embeddings, one block per distance
// metric: selected candidate ids, per-candidate vote totals, hit counts.
std::string RenderSelectionGolden() {
  Rng rng(123);
  const int num_prompts = 48, num_queries = 20, dim = 12, classes = 4;
  Tensor prompts = Tensor::Randn(num_prompts, dim, &rng);
  Tensor prompt_importance = Tensor::Randn(num_prompts, 1, &rng);
  Tensor queries = Tensor::Randn(num_queries, dim, &rng);
  Tensor query_importance = Tensor::Randn(num_queries, 1, &rng);
  std::vector<int> labels(num_prompts);
  for (int p = 0; p < num_prompts; ++p) labels[p] = p % classes;

  std::ostringstream out;
  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean,
        DistanceMetric::kManhattan}) {
    KnnConfig config;
    config.shots = 3;
    config.metric = metric;
    const KnnSelection sel =
        SelectPrompts(prompts, prompt_importance, labels, queries,
                      query_importance, classes, config);
    out << "metric " << DistanceMetricName(metric) << "\n";
    out << "selected";
    for (int p : sel.selected) out << " " << p;
    out << "\n";
    for (int p = 0; p < num_prompts; ++p) {
      if (sel.hit_counts[p] == 0) continue;
      out << "candidate " << p << " votes " << Fmt(sel.votes[p]) << " hits "
          << sel.hit_counts[p] << "\n";
    }
  }
  return out.str();
}

// ---- harness: compare against (or regenerate) tests/golden/<name>.

bool UpdateRequested() {
  const char* env = std::getenv("GP_UPDATE_GOLDEN");
  return env != nullptr && std::string(env) == "1";
}

void CheckGolden(const std::string& name, const std::string& rendered) {
  const std::string path = std::string(GP_GOLDEN_DIR) + "/" + name;
  if (UpdateRequested()) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    ASSERT_TRUE(out.good()) << "short write to " << path;
    std::printf("updated %s\n", path.c_str());
    return;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing golden file " << path
      << " — run scripts/update_golden.sh to generate it";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), rendered)
      << "pipeline output diverged from " << path
      << ". If the change is intentional, regenerate with "
         "scripts/update_golden.sh and review the diff.";
}

TEST(GoldenEvalTest, QuickstartTrialAccuracies) {
  CheckGolden("quickstart_eval.golden", RenderEvalGolden());
}

TEST(GoldenEvalTest, SelectorTopKPerMetric) {
  CheckGolden("selector_topk.golden", RenderSelectionGolden());
}

// The exact index mode must be a byte-for-byte no-op relative to the
// pinned brute-force pipeline, and the auto default must resolve to exact
// at these candidate-pool sizes.
#ifndef GP_GOLDEN_SEED_BOOTSTRAP
TEST(GoldenEvalTest, ExactIndexModeMatchesGolden) {
  const PromptIndexOptions saved = GlobalIndexOptions();
  PromptIndexOptions exact = saved;
  exact.mode = IndexMode::kExact;
  SetGlobalIndexOptions(exact);
  CheckGolden("quickstart_eval.golden", RenderEvalGolden());
  CheckGolden("selector_topk.golden", RenderSelectionGolden());
  SetGlobalIndexOptions(saved);
}
#endif  // GP_GOLDEN_SEED_BOOTSTRAP

}  // namespace
}  // namespace gp
