// Thread-safety tests for the tensor buffer pool. Carries the
// `concurrency` ctest label so scripts/check.sh runs it under TSan: the
// interesting properties are that concurrent acquire/release never hands
// the same buffer to two threads, that cross-thread releases are safe, and
// that pooled tensor ops inside ParallelFor workers stay race-free.

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/buffer_pool.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace gp {
namespace {

TEST(BufferPoolConcurrencyTest, ParallelChurnNeverAliasesLiveBuffers) {
  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failed] {
      for (int round = 0; round < kRounds && !failed.load(); ++round) {
        // Two live buffers at once, stamped with a thread-unique pattern;
        // if the pool ever served one allocation to two threads, the
        // verification below trips (and TSan reports the race).
        const size_t n = 64 + static_cast<size_t>((t * 37 + round) % 1000);
        std::vector<float> a = AcquireBuffer(n);
        std::vector<float> b = AcquireZeroedBuffer(n);
        const float stamp = static_cast<float>(t * 100000 + round);
        for (size_t i = 0; i < n; ++i) {
          if (b[i] != 0.0f) failed.store(true);
          a[i] = stamp;
        }
        for (size_t i = 0; i < n; ++i) {
          if (a[i] != stamp) failed.store(true);
        }
        ReleaseBuffer(std::move(a));
        ReleaseBuffer(std::move(b));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  DrainBufferPool();
}

TEST(BufferPoolConcurrencyTest, CrossThreadHandoffUnderContention) {
  // Producers release into the pool while consumers acquire from it; the
  // global overflow list is the shared channel.
  constexpr int kPairs = 4;
  constexpr int kRounds = 100;
  std::vector<std::thread> threads;
  for (int p = 0; p < kPairs; ++p) {
    threads.emplace_back([] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<float> buf = AcquireBuffer(4096);
        buf[0] = 1.0f;
        ReleaseBuffer(std::move(buf));
      }
    });
    threads.emplace_back([] {
      for (int round = 0; round < kRounds; ++round) {
        std::vector<float> buf = AcquireZeroedBuffer(4096);
        EXPECT_EQ(buf[0], 0.0f);
        ReleaseBuffer(std::move(buf));
      }
    });
  }
  for (auto& th : threads) th.join();
  DrainBufferPool();
}

TEST(BufferPoolConcurrencyTest, PooledOpsInsideParallelForAreRaceFree) {
  // Tensor ops executed by ParallelFor workers allocate through the pool
  // from worker threads; results must be deterministic across repeats.
  Rng rng(31);
  Tensor a = Tensor::Randn(8, 12, &rng);
  Tensor b = Tensor::Randn(12, 6, &rng);
  std::vector<float> reference;
  for (int repeat = 0; repeat < 5; ++repeat) {
    std::vector<float> results(16, 0.0f);
    ParallelFor(0, 16, 1, [&](int64_t first, int64_t last) {
      for (int64_t i = first; i < last; ++i) {
        NoGradGuard no_grad;
        Tensor out = Relu(MatMul(a, b));
        results[i] = SumAll(out).item();
      }
    });
    if (repeat == 0) {
      reference = results;
    } else {
      for (size_t i = 0; i < results.size(); ++i) {
        EXPECT_EQ(results[i], reference[i]) << "slot " << i;
      }
    }
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i], results[0]);
    }
  }
  DrainBufferPool();
}

TEST(BufferPoolConcurrencyTest, StatsStayConsistentUnderConcurrency) {
  DrainBufferPool();
  const BufferPoolStats before = PoolStatsSnapshot();
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int round = 0; round < 50; ++round) {
        std::vector<float> buf = AcquireBuffer(512);
        ReleaseBuffer(std::move(buf));
      }
    });
  }
  for (auto& th : threads) th.join();
  const BufferPoolStats after = PoolStatsSnapshot();
  // Every acquire is either a hit or a miss, and all 300 went through.
  EXPECT_EQ((after.hits + after.misses) - (before.hits + before.misses),
            kThreads * 50);
  DrainBufferPool();
}

}  // namespace
}  // namespace gp
