// End-to-end tests: pretrain on one graph, apply in-context to another
// graph with a disjoint label vocabulary — the paper's core claim chain.

#include <gtest/gtest.h>

#include <cstdio>

#include "baselines/no_pretrain.h"
#include "baselines/prodigy.h"
#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "nn/serialize.h"
#include "obs/telemetry.h"
#include "obs/trace.h"

namespace gp {
namespace {

GraphPrompterConfig TinyFullConfig(int feature_dim, uint64_t seed) {
  GraphPrompterConfig config = FullGraphPrompterConfig(feature_dim, seed);
  config.embedding_dim = 16;
  config.recon_hidden = 16;
  config.selection_hidden = 16;
  config.sampler.max_nodes = 10;
  return config;
}

PretrainConfig TinyPretrain(int steps = 80) {
  PretrainConfig config;
  config.steps = steps;
  config.ways = 3;
  config.shots = 2;
  config.queries_per_task = 3;
  config.log_every = steps;
  return config;
}

EvalConfig TinyEval(int ways = 3) {
  EvalConfig config;
  config.ways = ways;
  config.shots = 2;
  config.candidates_per_class = 5;
  config.num_queries = 24;
  config.trials = 2;
  config.seed = 11;
  return config;
}

TEST(IntegrationTest, FullPipelineRunsOnNodeTask) {
  DatasetBundle pretrain_ds = MakeMagSim(0.08, 1);
  DatasetBundle eval_ds = MakeArxivSim(0.3, 2);
  GraphPrompterModel model(
      TinyFullConfig(pretrain_ds.graph.feature_dim(), 3));
  Pretrain(&model, pretrain_ds, TinyPretrain(40));
  const auto result = EvaluateInContext(model, eval_ds, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
  EXPECT_GE(result.accuracy_percent.mean, 0.0);
  EXPECT_LE(result.accuracy_percent.mean, 100.0);
  EXPECT_GT(result.ms_per_query, 0.0);
}

TEST(IntegrationTest, PretrainedBeatsNoPretrainCrossGraph) {
  // The headline property: pretraining on MagSim transfers in-context to
  // ArxivSim (disjoint classes) and beats an architecture-matched
  // random-weight model.
  DatasetBundle pretrain_ds = MakeMagSim(0.3, 4);
  DatasetBundle eval_ds = MakeArxivSim(0.35, 5);

  GraphPrompterConfig config =
      TinyFullConfig(pretrain_ds.graph.feature_dim(), 6);
  config.embedding_dim = 32;
  config.sampler.max_nodes = 20;
  GraphPrompterModel model(config);
  Pretrain(&model, pretrain_ds, TinyPretrain(250));

  EvalConfig eval = TinyEval(3);
  eval.num_queries = 45;
  eval.trials = 3;
  const auto ours = EvaluateInContext(model, eval_ds, eval);

  GraphPrompterConfig floor_config =
      ProdigyConfig(pretrain_ds.graph.feature_dim(), 7);
  floor_config.embedding_dim = config.embedding_dim;
  floor_config.sampler = config.sampler;
  GraphPrompterModel floor_model(floor_config);
  const auto floor = EvaluateInContext(floor_model, eval_ds, eval);

  EXPECT_GT(ours.accuracy_percent.mean, floor.accuracy_percent.mean);
  // And meaningfully above 3-way chance.
  EXPECT_GT(ours.accuracy_percent.mean, 40.0);
}

TEST(IntegrationTest, EdgeTaskCrossGraphTransfer) {
  DatasetBundle pretrain_ds = MakeWikiSim(0.12, 8);
  DatasetBundle eval_ds = MakeConceptNetSim(0.2, 9);
  GraphPrompterModel model(
      TinyFullConfig(pretrain_ds.graph.feature_dim(), 10));
  Pretrain(&model, pretrain_ds, TinyPretrain(120));
  EvalConfig eval = TinyEval(4);
  eval.num_queries = 40;
  const auto result = EvaluateInContext(model, eval_ds, eval);
  EXPECT_GT(result.accuracy_percent.mean, 30.0);  // 4-way chance = 25%
}

TEST(IntegrationTest, EvaluationIsDeterministicForSeed) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyFullConfig(ds.graph.feature_dim(), 13));
  const auto a = EvaluateInContext(model, ds, TinyEval());
  const auto b = EvaluateInContext(model, ds, TinyEval());
  ASSERT_EQ(a.trial_accuracy_percent.size(), b.trial_accuracy_percent.size());
  for (size_t i = 0; i < a.trial_accuracy_percent.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trial_accuracy_percent[i],
                     b.trial_accuracy_percent[i]);
  }
}

TEST(IntegrationTest, TelemetryDoesNotPerturbPredictions) {
  // The observability determinism contract (DESIGN.md): telemetry is
  // write-only from the pipeline's view, so running with trace recording
  // on must yield bitwise-identical predictions to running with it off.
  DatasetBundle ds = MakeArxivSim(0.3, 40);
  GraphPrompterModel model(TinyFullConfig(ds.graph.feature_dim(), 41));

  SetTracingEnabled(false);
  Telemetry().Reset();
  const auto off = EvaluateInContext(model, ds, TinyEval());

  SetTracingEnabled(true);
  const auto on = EvaluateInContext(model, ds, TinyEval());
  SetTracingEnabled(false);
  ClearTraceEvents();

  ASSERT_EQ(off.trial_accuracy_percent.size(),
            on.trial_accuracy_percent.size());
  for (size_t i = 0; i < off.trial_accuracy_percent.size(); ++i) {
    EXPECT_EQ(off.trial_accuracy_percent[i], on.trial_accuracy_percent[i]);
  }

  // And the instrumentation did actually fire while evaluating.
  const TelemetrySnapshot snap = Telemetry().Snapshot();
  EXPECT_GE(snap.CounterValue("eval/trials"), 4);
  EXPECT_GT(snap.CounterValue("span/eval/predict/count"), 0);
}

TEST(IntegrationTest, AblationTogglesAllRun) {
  DatasetBundle ds = MakeArxivSim(0.3, 14);
  for (int variant = 0; variant < 4; ++variant) {
    GraphPrompterConfig config =
        TinyFullConfig(ds.graph.feature_dim(), 15 + variant);
    switch (variant) {
      case 0: config.use_reconstruction = false; break;
      case 1: config.use_knn = false; break;
      case 2: config.use_selection_layer = false; break;
      case 3: config.use_augmenter = false; break;
    }
    GraphPrompterModel model(config);
    const auto result = EvaluateInContext(model, ds, TinyEval());
    EXPECT_EQ(result.trial_accuracy_percent.size(), 2u) << variant;
  }
}

TEST(IntegrationTest, ClusteringSelectorEvaluates) {
  DatasetBundle ds = MakeArxivSim(0.3, 30);
  GraphPrompterConfig config = TinyFullConfig(ds.graph.feature_dim(), 31);
  config.selector = SelectorKind::kClustering;
  GraphPrompterModel model(config);
  const auto result = EvaluateInContext(model, ds, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
}

TEST(IntegrationTest, BilinearReconstructionPipelineRuns) {
  DatasetBundle pretrain_ds = MakeMagSim(0.08, 32);
  DatasetBundle eval_ds = MakeArxivSim(0.3, 33);
  GraphPrompterConfig config =
      TinyFullConfig(pretrain_ds.graph.feature_dim(), 34);
  config.recon_arch = ReconArch::kBilinear;
  GraphPrompterModel model(config);
  Pretrain(&model, pretrain_ds, TinyPretrain(30));
  const auto result = EvaluateInContext(model, eval_ds, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
}

TEST(IntegrationTest, CachePolicyVariantsEvaluate) {
  DatasetBundle ds = MakeFb15kSim(0.3, 35);
  for (CachePolicy policy : {CachePolicy::kLru, CachePolicy::kFifo}) {
    GraphPrompterConfig config = TinyFullConfig(ds.graph.feature_dim(), 36);
    config.augmenter.policy = policy;
    GraphPrompterModel model(config);
    EvalConfig eval = TinyEval(5);
    eval.trials = 1;
    const auto result = EvaluateInContext(model, ds, eval);
    EXPECT_EQ(result.trial_accuracy_percent.size(), 1u);
  }
}

TEST(IntegrationTest, CheckpointRoundTripPreservesPredictions) {
  DatasetBundle pretrain_ds = MakeMagSim(0.08, 37);
  DatasetBundle eval_ds = MakeArxivSim(0.3, 38);
  GraphPrompterConfig config =
      TinyFullConfig(pretrain_ds.graph.feature_dim(), 39);
  GraphPrompterModel model(config);
  Pretrain(&model, pretrain_ds, TinyPretrain(20));
  const std::string path = ::testing::TempDir() + "/gp_ckpt_test.bin";
  ASSERT_TRUE(SaveModule(model, path).ok());

  GraphPrompterModel restored(config);
  ASSERT_TRUE(LoadModule(&restored, path).ok());
  const auto a = EvaluateInContext(model, eval_ds, TinyEval());
  const auto b = EvaluateInContext(restored, eval_ds, TinyEval());
  ASSERT_EQ(a.trial_accuracy_percent.size(), b.trial_accuracy_percent.size());
  for (size_t i = 0; i < a.trial_accuracy_percent.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trial_accuracy_percent[i],
                     b.trial_accuracy_percent[i]);
  }
  std::remove(path.c_str());
}

TEST(IntegrationTest, KeepEmbeddingsPopulatesFigureData) {
  DatasetBundle ds = MakeArxivSim(0.3, 20);
  GraphPrompterModel model(TinyFullConfig(ds.graph.feature_dim(), 21));
  EvalConfig eval = TinyEval();
  eval.keep_embeddings = true;
  const auto result = EvaluateInContext(model, ds, eval);
  const int expected_rows =
      eval.ways * eval.candidates_per_class + eval.num_queries;
  EXPECT_EQ(result.embeddings.rows(), expected_rows);
  EXPECT_EQ(static_cast<int>(result.embedding_labels.size()), expected_rows);
}

TEST(IntegrationTest, ProdigyConfigurationEvaluates) {
  DatasetBundle ds = MakeArxivSim(0.3, 22);
  GraphPrompterConfig config = ProdigyConfig(ds.graph.feature_dim(), 23);
  config.embedding_dim = 16;
  config.sampler.max_nodes = 10;
  GraphPrompterModel model(config);
  const auto result = EvaluateInContext(model, ds, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
}

TEST(IntegrationTest, ManyWaysEvaluationOnKg) {
  DatasetBundle ds = MakeFb15kSim(0.3, 24);
  GraphPrompterModel model(TinyFullConfig(ds.graph.feature_dim(), 25));
  EvalConfig eval = TinyEval(10);
  eval.num_queries = 30;
  eval.trials = 1;
  const auto result = EvaluateInContext(model, ds, eval);
  EXPECT_EQ(result.trial_accuracy_percent.size(), 1u);
}

}  // namespace
}  // namespace gp
