// End-to-end numeric gradient checks through composite modules: the
// convolution layers, the reconstruction-weighted encoder, and the task
// graph. These catch chain-rule mistakes that per-op checks cannot (e.g.
// wrong gradient routing across gather/scatter/segment compositions).

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "core/prompt_generator.h"
#include "core/task_graph.h"
#include "gnn/encoder.h"
#include "tensor/autograd.h"
#include "tensor/ops.h"

namespace gp {
namespace {

// Checks d(fn)/d(param) against central differences on a subset of
// coordinates (full sweeps are slow for big modules).
void CheckParamGradient(const std::function<Tensor()>& fn, Tensor param,
                        int max_coords = 12, float tolerance = 3e-2f,
                        float eps = 2e-3f) {
  param.ZeroGrad();
  Tensor loss = fn();
  ASSERT_EQ(loss.size(), 1);
  Backward(loss);
  ASSERT_FALSE(param.grad().empty());
  const std::vector<float> analytic = param.grad();

  const int stride =
      std::max<int>(1, static_cast<int>(param.size()) / max_coords);
  for (int64_t i = 0; i < param.size(); i += stride) {
    const float original = param.mutable_data()[i];
    param.mutable_data()[i] = original + eps;
    const float up = fn().item();
    param.mutable_data()[i] = original - eps;
    const float down = fn().item();
    param.mutable_data()[i] = original;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::abs(numeric)))
        << "param coordinate " << i;
  }
}

// Fixed weighted-sum reduction so each output coordinate matters.
Tensor Reduce(const Tensor& out) {
  Rng rng(4242);
  return SumAll(Mul(out, Tensor::Randn(out.rows(), out.cols(), &rng)));
}

struct TinyGraphData {
  Tensor x = Tensor::FromData(4, 3,
                              {0.5f, -0.2f, 0.1f, 0.3f, 0.8f, -0.5f, -0.1f,
                               0.2f, 0.4f, 0.7f, -0.3f, 0.6f});
  std::vector<int> src = {0, 1, 1, 2, 2, 3};
  std::vector<int> dst = {1, 0, 2, 1, 3, 2};
};

TEST(ModuleGradCheckTest, SageConvWeights) {
  Rng rng(1);
  SageConv conv(3, 2, &rng);
  TinyGraphData g;
  Tensor w = Tensor::Full(6, 1, 0.7f);
  for (Tensor param : conv.Parameters()) {
    CheckParamGradient(
        [&]() { return Reduce(conv.Forward(g.x, g.src, g.dst, w)); }, param);
  }
}

TEST(ModuleGradCheckTest, SageConvEdgeWeights) {
  Rng rng(2);
  SageConv conv(3, 2, &rng);
  TinyGraphData g;
  Tensor w = Tensor::Full(6, 1, 0.6f, /*requires_grad=*/true);
  CheckParamGradient(
      [&]() { return Reduce(conv.Forward(g.x, g.src, g.dst, w)); }, w);
}

TEST(ModuleGradCheckTest, GcnConvWeights) {
  Rng rng(3);
  GcnConv conv(3, 2, &rng);
  TinyGraphData g;
  for (Tensor param : conv.Parameters()) {
    CheckParamGradient(
        [&]() {
          return Reduce(conv.Forward(g.x, g.src, g.dst, Tensor()));
        },
        param);
  }
}

TEST(ModuleGradCheckTest, GatConvAttentionParams) {
  Rng rng(4);
  GatConv conv(3, 2, &rng);
  TinyGraphData g;
  for (Tensor param : conv.Parameters()) {
    CheckParamGradient(
        [&]() {
          return Reduce(conv.Forward(g.x, g.src, g.dst, Tensor()));
        },
        param);
  }
}

TEST(ModuleGradCheckTest, TwoLayerEncoder) {
  Rng rng(5);
  GnnEncoderConfig config;
  config.in_dim = 3;
  config.hidden_dim = 4;
  config.out_dim = 2;
  config.num_layers = 2;
  GnnEncoder encoder(config, &rng);
  TinyGraphData g;
  // Check a couple of representative parameters (first and last).
  auto params = encoder.Parameters();
  ASSERT_GE(params.size(), 2u);
  for (Tensor param : {params.front(), params.back()}) {
    CheckParamGradient(
        [&]() {
          return Reduce(encoder.Forward(g.x, g.src, g.dst, Tensor()));
        },
        param);
  }
}

TEST(ModuleGradCheckTest, TaskGraphScoresWrtPromptEmbeddings) {
  Rng rng(6);
  TaskGraphConfig config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  TaskGraphNet net(config, &rng);
  // Non-zero gates so attention actually participates.
  for (auto& [name, p] : net.NamedParameters()) {
    if (name.find("gate") != std::string::npos) p.mutable_data()[0] = 0.5f;
  }
  Tensor prompts = Tensor::Randn(4, 4, &rng, 1.0f, /*requires_grad=*/true);
  Tensor queries = Tensor::Randn(2, 4, &rng);
  const std::vector<int> labels = {0, 0, 1, 1};
  CheckParamGradient(
      [&]() {
        const auto out = net.Forward(prompts, labels, queries, 2);
        return CrossEntropyWithLogits(out.query_scores, {0, 1});
      },
      prompts, /*max_coords=*/16);
}

TEST(ModuleGradCheckTest, TaskGraphParameters) {
  Rng rng(7);
  TaskGraphConfig config;
  config.embedding_dim = 4;
  config.num_layers = 1;
  TaskGraphNet net(config, &rng);
  for (auto& [name, p] : net.NamedParameters()) {
    if (name.find("gate") != std::string::npos) p.mutable_data()[0] = 0.4f;
  }
  Tensor prompts = Tensor::Randn(4, 4, &rng);
  Tensor queries = Tensor::Randn(2, 4, &rng);
  const std::vector<int> labels = {0, 0, 1, 1};
  auto fn = [&]() {
    const auto out = net.Forward(prompts, labels, queries, 2);
    return CrossEntropyWithLogits(out.query_scores, {0, 1});
  };
  // Check a representative subset of parameters.
  const auto named = net.NamedParameters();
  for (const auto& [name, param] : named) {
    if (name.find("attn0/message/weight") != std::string::npos ||
        name.find("attn0/self/weight") != std::string::npos ||
        name.find("gate") != std::string::npos ||
        name.find("label_init") != std::string::npos) {
      CheckParamGradient(fn, param, /*max_coords=*/8);
    }
  }
}

TEST(ModuleGradCheckTest, ReconstructionMlpThroughFullGenerator) {
  // Gradient of the embedding loss wrt the reconstruction MLP — the
  // joint-training path of Sec. IV-A.
  Rng rng(8);
  DatasetBundle ds = MakeConceptNetSim(0.15, 9);
  PromptGeneratorConfig config;
  config.gnn.in_dim = ds.graph.feature_dim();
  config.gnn.hidden_dim = 4;
  config.gnn.out_dim = 4;
  config.sampler.max_nodes = 6;
  PromptGenerator generator(config, &rng);

  // Freeze the sampled subgraphs so fn() is deterministic.
  Rng sample_rng(10);
  std::vector<Subgraph> subgraphs = {
      generator.SampleForItem(ds, ds.train_items_by_class[0][0], &sample_rng),
      generator.SampleForItem(ds, ds.train_items_by_class[1][0],
                              &sample_rng)};
  auto fn = [&]() {
    return Reduce(generator.EmbedSubgraphs(ds.graph, subgraphs));
  };
  for (const auto& [name, param] : generator.NamedParameters()) {
    if (name.find("recon_mlp/layer0/weight") != std::string::npos) {
      CheckParamGradient(fn, param, /*max_coords=*/6);
    }
  }
}

}  // namespace
}  // namespace gp
