// Property sweeps over the synthetic dataset generators: for a grid of
// configurations, structural invariants must hold — these guard the
// assumptions every benchmark builds on.

#include <set>

#include <gtest/gtest.h>

#include "data/datasets.h"
#include "data/episode.h"
#include "data/synthetic.h"

namespace gp {
namespace {

struct KgCase {
  int num_nodes;
  int num_relations;
  int num_clusters;
  int num_edges;
};

class KgGeneratorPropertyTest : public ::testing::TestWithParam<KgCase> {};

TEST_P(KgGeneratorPropertyTest, StructuralInvariants) {
  const KgCase& c = GetParam();
  KnowledgeGraphConfig config;
  config.num_nodes = c.num_nodes;
  config.num_relations = c.num_relations;
  config.num_clusters = c.num_clusters;
  config.num_edges = c.num_edges;
  config.seed = 77;
  Graph g = MakeKnowledgeGraph(config);

  EXPECT_EQ(g.num_nodes(), c.num_nodes);
  EXPECT_EQ(g.num_relations(), c.num_relations);
  EXPECT_EQ(g.feature_dim(), config.feature_dim);
  // Self-loop filtering only drops a tiny fraction of edges.
  EXPECT_GE(g.num_edges(), c.num_edges * 9 / 10);

  // Every edge's relation id is valid and endpoints are in range.
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.relation, 0);
    EXPECT_LT(e.relation, c.num_relations);
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, c.num_nodes);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, c.num_nodes);
  }

  // Adjacency is consistent with the edge records: total adjacency entries
  // = 2 * edges (minus nothing, as self loops were dropped).
  int64_t total_degree = 0;
  for (int v = 0; v < g.num_nodes(); ++v) total_degree += g.Degree(v);
  EXPECT_EQ(total_degree, 2LL * g.num_edges());

  // Cluster labels cover the configured range.
  std::set<int> clusters(g.node_labels().begin(), g.node_labels().end());
  EXPECT_EQ(static_cast<int>(clusters.size()), c.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KgGeneratorPropertyTest,
    ::testing::Values(KgCase{200, 5, 3, 800}, KgCase{500, 30, 8, 3000},
                      KgCase{800, 100, 12, 6000},
                      KgCase{1000, 291, 18, 9000}));

struct NodeCase {
  int num_nodes;
  int num_classes;
  double homophily;
};

class NodeGeneratorPropertyTest
    : public ::testing::TestWithParam<NodeCase> {};

TEST_P(NodeGeneratorPropertyTest, StructuralInvariants) {
  const NodeCase& c = GetParam();
  NodeGraphConfig config;
  config.num_nodes = c.num_nodes;
  config.num_classes = c.num_classes;
  config.homophily = c.homophily;
  config.seed = 88;
  Graph g = MakeNodeClassificationGraph(config);

  EXPECT_EQ(g.num_nodes(), c.num_nodes);
  EXPECT_EQ(g.num_node_classes(), c.num_classes);
  // Balanced classes (within one).
  const int per_class = c.num_nodes / c.num_classes;
  for (int cls = 0; cls < c.num_classes; ++cls) {
    const int size = static_cast<int>(g.NodesOfClass(cls).size());
    EXPECT_GE(size, per_class);
    EXPECT_LE(size, per_class + 1);
  }
  // Homophily above the class-count baseline when configured high.
  if (c.homophily >= 0.7) {
    int same = 0;
    for (const Edge& e : g.edges()) {
      same += g.node_label(e.src) == g.node_label(e.dst);
    }
    EXPECT_GT(static_cast<double>(same) / g.num_edges(),
              2.0 / c.num_classes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NodeGeneratorPropertyTest,
    ::testing::Values(NodeCase{200, 4, 0.8}, NodeCase{500, 10, 0.75},
                      NodeCase{1000, 40, 0.7}, NodeCase{300, 3, 0.9}));

// Episodes sampled from any generated dataset satisfy the m-way k-shot
// contract.
class EpisodePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EpisodePropertyTest, EpisodeContractAcrossWays) {
  const int ways = GetParam();
  DatasetBundle ds = MakeFb15kSim(0.4, 99);
  EpisodeSampler sampler(&ds);
  EpisodeConfig config;
  config.ways = ways;
  config.candidates_per_class = 5;
  config.num_queries = 2 * ways;
  Rng rng(ways);
  auto task = sampler.Sample(config, &rng);
  ASSERT_TRUE(task.ok());
  EXPECT_EQ(task->ways(), ways);
  EXPECT_EQ(static_cast<int>(task->candidates.size()), 5 * ways);
  EXPECT_EQ(static_cast<int>(task->queries.size()), 2 * ways);
  // Episode-local labels are dense in [0, ways).
  std::set<int> labels;
  for (const auto& ex : task->candidates) labels.insert(ex.label);
  EXPECT_EQ(static_cast<int>(labels.size()), ways);
  // Queries balanced across classes (round-robin construction).
  std::vector<int> counts(ways, 0);
  for (const auto& ex : task->queries) ++counts[ex.label];
  for (int c : counts) EXPECT_EQ(c, 2);
}

INSTANTIATE_TEST_SUITE_P(Ways, EpisodePropertyTest,
                         ::testing::Values(2, 5, 10, 20, 50));

}  // namespace
}  // namespace gp
