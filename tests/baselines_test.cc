#include <cmath>

#include <gtest/gtest.h>

#include "baselines/contrastive.h"
#include "baselines/finetune.h"
#include "baselines/no_pretrain.h"
#include "baselines/ofa_lite.h"
#include "baselines/prodigy.h"
#include "baselines/prog_lite.h"

namespace gp {
namespace {

EvalConfig TinyEval() {
  EvalConfig config;
  config.ways = 3;
  config.shots = 2;
  config.candidates_per_class = 4;
  config.num_queries = 18;
  config.trials = 2;
  config.seed = 5;
  return config;
}

SamplerConfig TinySampler() {
  SamplerConfig config;
  config.max_nodes = 10;
  return config;
}

TEST(ProdigyConfigTest, DisablesAllStages) {
  const auto config = ProdigyConfig(32, 1);
  EXPECT_FALSE(config.use_reconstruction);
  EXPECT_FALSE(config.use_selection_layer);
  EXPECT_FALSE(config.use_knn);
  EXPECT_FALSE(config.use_augmenter);
  EXPECT_TRUE(config.random_prompt_selection);
  EXPECT_EQ(config.feature_dim, 32);
}

TEST(NoPretrainTest, RunsAndReportsSaneAccuracy) {
  DatasetBundle ds = MakeArxivSim(0.3, 2);
  const auto result = EvaluateNoPretrain(ds, TinyEval(), 3);
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
  EXPECT_GE(result.accuracy_percent.mean, 0.0);
  EXPECT_LE(result.accuracy_percent.mean, 100.0);
}

TEST(ContrastiveTest, PretrainReducesLossAndBeatsChance) {
  DatasetBundle ds = MakeArxivSim(0.3, 4);
  ContrastiveEncoder encoder(ds.graph.feature_dim(), 16, TinySampler(), 7);
  ContrastivePretrainConfig pre;
  pre.steps = 60;
  pre.batch_size = 8;
  const double tail_loss = PretrainContrastive(&encoder, ds, pre);
  EXPECT_TRUE(std::isfinite(tail_loss));
  const auto result = EvaluateContrastive(encoder, ds, TinyEval());
  // 3-way chance = 33%; class-conditioned features should beat it.
  EXPECT_GT(result.accuracy_percent.mean, 35.0);
}

TEST(ContrastiveTest, EvaluateWithoutPretrainStillRuns) {
  DatasetBundle ds = MakeArxivSim(0.3, 5);
  ContrastiveEncoder encoder(ds.graph.feature_dim(), 16, TinySampler(), 8);
  const auto result = EvaluateContrastive(encoder, ds, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
}

TEST(FinetuneTest, HeadTrainsAndClassifies) {
  DatasetBundle ds = MakeArxivSim(0.3, 6);
  ContrastiveEncoder encoder(ds.graph.feature_dim(), 16, TinySampler(), 9);
  ContrastivePretrainConfig pre;
  pre.steps = 40;
  pre.batch_size = 8;
  PretrainContrastive(&encoder, ds, pre);
  FinetuneConfig ft;
  ft.head_steps = 40;
  const auto result = EvaluateFinetune(encoder, ds, TinyEval(), ft);
  EXPECT_GT(result.accuracy_percent.mean, 30.0);
}

TEST(ProgLiteTest, TokenIsMetaTrainedAndTuned) {
  DatasetBundle ds = MakeArxivSim(0.3, 7);
  ProgLiteConfig config;
  config.feature_dim = ds.graph.feature_dim();
  config.embedding_dim = 16;
  config.sampler = TinySampler();
  ProgLiteModel model(config);

  const std::vector<float> token_before = model.prompt_token().Row(0);
  ProgPretrainConfig pre;
  pre.steps = 30;
  pre.ways = 3;
  PretrainProgLite(&model, ds, pre);
  const std::vector<float> token_after = model.prompt_token().Row(0);
  double change = 0;
  for (size_t i = 0; i < token_before.size(); ++i) {
    change += std::abs(token_before[i] - token_after[i]);
  }
  EXPECT_GT(change, 0.0);

  ProgTuneConfig tune;
  tune.tune_steps = 5;
  const auto result = EvaluateProgLite(model, ds, TinyEval(), tune);
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
}

TEST(OfaLiteTest, JointPretrainAcrossDatasets) {
  DatasetBundle a = MakeConceptNetSim(0.2, 8);
  DatasetBundle b = MakeFb15kSim(0.2, 9);
  OfaLiteConfig config;
  config.feature_dim = a.graph.feature_dim();
  config.embedding_dim = 16;
  config.sampler = TinySampler();
  OfaLiteModel model(config);
  OfaPretrainConfig pre;
  pre.steps = 30;
  pre.ways = 3;
  PretrainOfaLite(&model, {&a, &b}, pre);
  const auto result = EvaluateOfaLite(model, a, TinyEval());
  EXPECT_EQ(result.trial_accuracy_percent.size(), 2u);
  EXPECT_GE(result.accuracy_percent.mean, 0.0);
}

TEST(OfaLiteTest, ClassProjectionShape) {
  OfaLiteConfig config;
  config.feature_dim = 8;
  config.embedding_dim = 4;
  OfaLiteModel model(config);
  Rng rng(10);
  Tensor descriptors = Tensor::Randn(5, 8, &rng);
  Tensor projected = model.ProjectClassNodes(descriptors);
  EXPECT_EQ(projected.rows(), 5);
  EXPECT_EQ(projected.cols(), 4);
}

}  // namespace
}  // namespace gp
